"""Tests for repro.obs.telemetry: spools, heartbeats, merged timelines."""

import json
from dataclasses import replace

import pytest

from repro.api import RunSpec, build_pair, run
from repro.obs import spans as spans_mod
from repro.obs import telemetry
from repro.obs.spans import (
    SPAN_CHECKPOINT_RESTORE,
    SPAN_CHECKPOINT_SAVE,
    SPAN_FAULT,
    SPAN_FINISH,
    SPAN_HEARTBEAT,
    SPAN_RETRY,
    SPAN_START,
    SPAN_SUBMIT,
    SpanEvent,
    span_summary,
)
from repro.obs.telemetry import (
    TelemetryConfig,
    TelemetrySession,
    spool_path,
)
from repro.obs.trace import JsonlSink
from repro.runtime import Fault, FaultPlan


@pytest.fixture(autouse=True)
def clean_worker_context():
    # Every test starts and ends with the module-level context disarmed,
    # exactly like a worker process between attempts.
    telemetry.deactivate()
    yield
    telemetry.deactivate()


class TestConfig:
    def test_validates_intervals(self):
        with pytest.raises(ValueError, match="heartbeat_every"):
            TelemetryConfig(root="/tmp/x", heartbeat_every=0)
        with pytest.raises(ValueError, match="fsync_every"):
            TelemetryConfig(root="/tmp/x", fsync_every=0)

    def test_spool_path_is_unique_per_attempt(self, tmp_path):
        first = spool_path(tmp_path, 3, 1)
        retry = spool_path(tmp_path, 3, 2)
        assert first != retry
        assert first.name == "cell0003.attempt01.spool.jsonl"


class TestWorkerContext:
    def config(self, tmp_path, **kw):
        return TelemetryConfig(root=str(tmp_path), **kw)

    def test_activate_emits_start_and_deactivate_disarms(self, tmp_path):
        assert not telemetry.is_active()
        telemetry.activate(self.config(tmp_path), cell=0, attempt=1)
        assert telemetry.is_active()
        telemetry.deactivate()
        assert not telemetry.is_active()
        events = list(spans_mod.iter_spans(spool_path(tmp_path, 0, 1)))
        assert [e.kind for e in events] == [SPAN_START]

    def test_emit_payload_matches_span_event_shape(self, tmp_path):
        # The hot path writes a hand-built dict; it must stay loadable
        # as (and identical to) the SpanEvent JSON schema.
        telemetry.activate(self.config(tmp_path), cell=2, attempt=1,
                           label="shard 2")
        telemetry.annotate(shard=2)
        payload = telemetry._ACTIVE.emit(
            SPAN_HEARTBEAT, tick=16, data={"output": 1}
        )
        event = SpanEvent.from_json(payload)
        assert event.to_json() == payload
        assert (event.cell, event.attempt, event.shard) == (2, 1, 2)
        assert event.label == "shard 2"

    def test_spool_round_trip(self, tmp_path):
        telemetry.activate(self.config(tmp_path), cell=1, attempt=2)
        telemetry.annotate(shard=1)
        telemetry.checkpoint_saved(0.01, tick=31, key="cell1")
        telemetry.checkpoint_restored(tick=32, key="cell1")
        telemetry.record_fault(40)
        telemetry.deactivate()
        events = list(spans_mod.iter_spans(spool_path(tmp_path, 1, 2)))
        assert [e.kind for e in events] == [
            SPAN_START, SPAN_CHECKPOINT_SAVE, SPAN_CHECKPOINT_RESTORE,
            SPAN_FAULT,
        ]
        assert all(e.attempt == 2 for e in events)
        assert events[1].data == {"seconds": 0.01, "key": "cell1"}

    def test_functions_are_noops_when_disarmed(self, tmp_path):
        telemetry.annotate(shard=1)
        telemetry.maybe_heartbeat(0, lambda: pytest.fail("called"))
        telemetry.checkpoint_saved(0.01)
        telemetry.record_fault(5)
        telemetry.record_failure(RuntimeError("x"))
        assert list(tmp_path.iterdir()) == []

    def test_heartbeat_cadence_and_rate(self, tmp_path):
        telemetry.activate(
            self.config(tmp_path, heartbeat_every=4), cell=0, attempt=1
        )
        calls = []

        def progress():
            calls.append(True)
            return {"arrivals": 10 * len(calls)}

        for tick in range(9):
            telemetry.maybe_heartbeat(tick, progress)
        telemetry.deactivate()
        # Only ticks 0, 4, 8 beat; progress is untouched in between.
        assert len(calls) == 3
        beats = [
            e for e in spans_mod.iter_spans(spool_path(tmp_path, 0, 1))
            if e.kind == SPAN_HEARTBEAT
        ]
        assert [b.tick for b in beats] == [0, 4, 8]
        # The second and later beats derive a tuples/s rate.
        assert "tuples_per_s" not in beats[0].data
        assert beats[1].data["tuples_per_s"] >= 0

    def test_truncated_tail_is_tolerated(self, tmp_path):
        telemetry.activate(self.config(tmp_path, fsync_every=1),
                           cell=0, attempt=1)
        telemetry.checkpoint_saved(0.01)
        telemetry.deactivate()
        path = spool_path(tmp_path, 0, 1)
        with path.open("a") as handle:
            handle.write('{"ts": 1.0, "kind": "heartb')  # killed mid-line
        assert [
            e.kind for e in spans_mod.iter_spans(path, strict=False)
        ] == [SPAN_START, SPAN_CHECKPOINT_SAVE]
        with pytest.raises(ValueError, match="not a JSONL span line"):
            list(spans_mod.iter_spans(path, strict=True))


class TestJsonlSinkSpoolApi:
    def test_write_json_counts_and_fsyncs(self, tmp_path):
        path = tmp_path / "spool.jsonl"
        sink = JsonlSink(path, fsync_every=2)
        sink.write_json({"a": 1})
        sink.write_json({"b": 2})
        sink.write_json({"c": 3})
        assert sink.total == 3
        # The first two were fsynced; the third is only buffered until...
        sink.flush()
        sink.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines == [{"a": 1}, {"b": 2}, {"c": 3}]


class TestSession:
    def test_merged_timeline_folds_both_sides(self, tmp_path):
        session = TelemetrySession(tmp_path / "tel", heartbeat_every=8)
        session.spans.emit(SPAN_SUBMIT, cell=0)
        telemetry.activate(session.config, cell=0, attempt=1)
        telemetry.annotate(shard=0)
        telemetry.maybe_heartbeat(0, lambda: {"arrivals": 1})
        telemetry.deactivate()
        session.spans.emit(SPAN_FINISH, cell=0)
        timeline = session.merged_timeline()
        assert [e.kind for e in timeline] == [
            SPAN_SUBMIT, SPAN_START, SPAN_HEARTBEAT, SPAN_FINISH,
        ]
        sources = {e.kind: e.source for e in timeline}
        assert sources[SPAN_SUBMIT] == "supervisor"
        assert sources[SPAN_HEARTBEAT] == "worker"


SPEC = RunSpec(
    algorithm="EXACT", window=40, memory=20, length=400, domain=30,
    seed=3, shards=4,
)


class TestRunIntegration:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="telemetry_dir"):
            replace(SPEC, telemetry_dir="/tmp/x")
        with pytest.raises(ValueError, match="heartbeat_every"):
            replace(SPEC, telemetry=True, heartbeat_every=0)
        with pytest.raises(ValueError, match="shards"):
            replace(SPEC, shards=1, telemetry=True)

    def test_telemetry_does_not_change_results(self):
        pair = build_pair(SPEC)
        plain = run(SPEC, pair=pair, workers=1)
        traced = run(replace(SPEC, telemetry=True, heartbeat_every=16),
                     pair=pair, workers=1)
        assert traced.output_count == plain.output_count
        assert traced.total_output_count == plain.total_output_count
        assert traced.drop_breakdown().as_dict() == plain.drop_breakdown().as_dict()
        assert plain.timeline is None
        assert traced.timeline is not None

    def test_heartbeat_count_is_deterministic(self):
        spec = replace(SPEC, telemetry=True, heartbeat_every=100)
        pair = build_pair(spec)
        result = run(spec, pair=pair, workers=1)
        summary = span_summary(result.timeline)
        # Ticks 0, 100, 200, 300 beat in each of the 4 shards.
        assert summary["kinds"][SPAN_HEARTBEAT] == 16
        again = run(spec, pair=pair, workers=1)
        assert span_summary(again.timeline)["kinds"] == summary["kinds"]

    def test_telemetry_dir_keeps_spools(self, tmp_path):
        spec = replace(
            SPEC, telemetry=True, telemetry_dir=str(tmp_path / "tel"),
            heartbeat_every=50,
        )
        result = run(spec, pair=build_pair(spec), workers=1)
        spools = sorted((tmp_path / "tel").glob("*.spool.jsonl"))
        assert len(spools) == 4
        assert result.timeline

    def test_attempts_and_retry_metrics(self, tmp_path):
        spec = replace(
            SPEC, telemetry=True, heartbeat_every=16, metrics=True,
            max_retries=2, checkpoint_every=25,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        plan = FaultPlan((Fault("kill", cell=1, tick=60, attempts=1),))
        pair = build_pair(spec)
        faulted = run(spec, pair=pair, workers=1, fault_plan=plan)
        assert faulted.attempts == (1, 2, 1, 1)
        counters = {
            (c["name"], c["labels"].get("shard")): c["value"]
            for c in faulted.metrics["counters"]
            if c["name"].startswith("runtime.")
        }
        assert counters[("runtime.attempts", "1")] == 2
        assert counters[("runtime.retries", "1")] == 1
        assert counters[("runtime.attempts", "0")] == 1
        assert ("runtime.retries", "0") not in counters

    def test_faulted_pooled_run_timeline(self, tmp_path):
        # The acceptance path: kill a shard mid-run at shards=4 over a
        # worker pool; the merged timeline must show the killed attempt,
        # the retry, and the checkpoint restore, and the result must be
        # bit-identical to the fault-free run.
        spec = replace(
            SPEC, telemetry=True, heartbeat_every=16, max_retries=2,
            checkpoint_every=25, checkpoint_dir=str(tmp_path / "ckpt"),
        )
        plan = FaultPlan((Fault("kill", cell=2, tick=60, attempts=1),))
        pair = build_pair(spec)
        clean = run(SPEC, pair=pair, workers=1)
        faulted = run(spec, pair=pair, workers=4, fault_plan=plan)
        assert faulted.output_count == clean.output_count
        assert faulted.total_output_count == clean.total_output_count

        kinds = span_summary(faulted.timeline)["kinds"]
        for kind in (SPAN_SUBMIT, SPAN_START, SPAN_HEARTBEAT, SPAN_FAULT,
                     SPAN_RETRY, SPAN_CHECKPOINT_SAVE,
                     SPAN_CHECKPOINT_RESTORE, SPAN_FINISH):
            assert kinds.get(kind), f"timeline is missing {kind!r} spans"
        assert faulted.attempts == (1, 1, 2, 1)

        # The killed attempt and its retry are separate span streams.
        cell2 = [e for e in faulted.timeline if e.cell == 2]
        assert {e.attempt for e in cell2} == {1, 2}
        restores = [e for e in cell2 if e.kind == SPAN_CHECKPOINT_RESTORE]
        assert restores and all(e.attempt == 2 for e in restores)


class TestEngineHookStride:
    def run_ticks(self, every, resume=None):
        from repro.core.async_engine import AsyncEngineConfig, AsyncJoinEngine

        config = AsyncEngineConfig(window=10, memory=100)
        engine = AsyncJoinEngine(config)
        r = [[("r", t, t)] for t in range(12)]
        s = [[] for _ in range(12)]
        seen = []
        engine.run(r, s, resume=resume,
                   on_tick=lambda eng, t: seen.append(t),
                   on_tick_every=every)
        return seen

    def test_stride_one_hits_every_tick(self):
        assert self.run_ticks(1) == list(range(12))

    def test_stride_hits_the_grid(self):
        assert self.run_ticks(5) == [0, 5, 10]

    def test_stride_validation(self):
        with pytest.raises(ValueError, match="on_tick_every"):
            self.run_ticks(0)

    def test_progress_valid_only_inside_hook(self):
        from repro.core.async_engine import AsyncEngineConfig, AsyncJoinEngine

        config = AsyncEngineConfig(window=10, memory=100)
        engine = AsyncJoinEngine(config)
        snapshots = []
        engine.run(
            [[("r", t, t)] for t in range(8)],
            [[("s", t, t)] for t in range(8)],
            on_tick=lambda eng, t: snapshots.append(eng.progress()),
            on_tick_every=4,
        )
        assert [s["tick"] for s in snapshots] == [0, 4]
        assert all(
            {"output", "total_output", "arrivals", "occupancy", "drops"}
            <= set(s) for s in snapshots
        )
        with pytest.raises(RuntimeError, match="on_tick"):
            engine.progress()
