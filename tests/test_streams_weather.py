"""Tests for the synthetic weather-dataset substitute."""

import numpy as np
import pytest

from repro.streams import (
    GRID_COLS,
    GRID_ROWS,
    NUM_CELLS,
    GridCell,
    cell_id_for,
    weather_pair,
    weather_records,
)


class TestGrid:
    def test_grid_dimensions_match_paper(self):
        assert GRID_ROWS == 18
        assert GRID_COLS == 36
        assert NUM_CELLS == 648  # "about 650 distinct location values"

    def test_cell_centres(self):
        cell = GridCell(0)
        assert cell.latitude == -85.0
        assert cell.longitude == -175.0
        last = GridCell(NUM_CELLS - 1)
        assert last.latitude == 85.0
        assert last.longitude == 175.0

    def test_cell_id_roundtrip(self):
        for cell_id in (0, 100, 359, 647):
            cell = GridCell(cell_id)
            assert cell_id_for(cell.latitude, cell.longitude) == cell_id

    def test_boundary_snapping(self):
        assert cell_id_for(90.0, 180.0) == NUM_CELLS - 1
        assert cell_id_for(-90.0, -180.0) == 0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            cell_id_for(91.0, 0.0)
        with pytest.raises(ValueError):
            cell_id_for(0.0, 200.0)


class TestWeatherPair:
    def test_keys_are_grid_cells(self):
        pair = weather_pair(3000, seed=1)
        assert all(0 <= key < NUM_CELLS for key in pair.r)
        assert all(0 <= key < NUM_CELLS for key in pair.s)

    def test_years_have_similar_distributions(self):
        """The paper's dataset property driving PROB == PROBV / 50-50 split."""
        pair = weather_pair(1000, seed=2)
        p1 = pair.metadata["r_probabilities"]
        p2 = pair.metadata["s_probabilities"]
        overlap = np.minimum(p1, p2).sum()  # total variation overlap
        assert overlap > 0.9

    def test_distribution_is_skewed(self):
        pair = weather_pair(1000, seed=3)
        p1 = np.sort(pair.metadata["r_probabilities"])[::-1]
        # Top 10% of cells carry far more than 10% of the mass.
        assert p1[: NUM_CELLS // 10].sum() > 0.3

    def test_determinism(self):
        a = weather_pair(500, seed=9)
        b = weather_pair(500, seed=9)
        assert list(a.r) == list(b.r)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            weather_pair(-1)

    def test_uses_most_of_the_grid(self):
        pair = weather_pair(50_000, seed=4)
        assert len(pair.domain()) > 500  # paper: ~650 distinct values


class TestWeatherRecords:
    def test_record_fields(self):
        pair = weather_pair(10, seed=0)
        records = list(weather_records(pair.r, seed=0))
        assert len(records) == 10
        record = records[0]
        assert set(record) == {
            "time",
            "cell_id",
            "latitude",
            "longitude",
            "sky_brightness",
            "cloud_cover_octas",
            "solar_altitude_deg",
        }
        assert 0 <= record["cloud_cover_octas"] <= 8
        assert -90 <= record["latitude"] <= 90
