"""Tests for m-relation static join shedding and its approximation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.static_join.multiway import (
    MultiwayInstance,
    approximation_ratio_bound,
    brute_force_optimal,
    independent_selection,
)


class TestInstance:
    def test_output_size(self):
        instance = MultiwayInstance.from_relations(
            [[1, 1, 2], [1, 2, 2], [1, 2]]
        )
        # key 1: 2*1*1 = 2; key 2: 1*2*1 = 2.
        assert instance.output_size() == 4

    def test_output_after_deletions(self):
        instance = MultiwayInstance.from_relations([[1, 1], [1]])
        assert instance.output_size([{1: 1}, {}]) == 1
        assert instance.output_size([{1: 2}, {}]) == 0

    def test_over_deletion_rejected(self):
        instance = MultiwayInstance.from_relations([[1], [1]])
        with pytest.raises(ValueError):
            instance.output_size([{1: 2}, {}])

    def test_requires_two_relations(self):
        with pytest.raises(ValueError):
            MultiwayInstance.from_relations([[1]])

    def test_relation_size_and_keys(self):
        instance = MultiwayInstance.from_relations([[1, 2, 2], [3]])
        assert instance.relation_size(0) == 3
        assert instance.keys() == {1, 2, 3}


class TestIndependentSelection:
    def test_deletes_cheapest_tuples(self):
        # Key 9 has no partners in B: deleting it from A is free.
        instance = MultiwayInstance.from_relations([[1, 1, 9], [1, 1]])
        plan = independent_selection(instance, [1, 0])
        assert plan.deletions[0] == {9: 1}
        assert plan.lost_output == 0

    def test_budget_validation(self):
        instance = MultiwayInstance.from_relations([[1], [1]])
        with pytest.raises(ValueError):
            independent_selection(instance, [2, 0])
        with pytest.raises(ValueError):
            independent_selection(instance, [1])

    def test_respects_budgets_exactly(self):
        instance = MultiwayInstance.from_relations([[1, 1, 2, 3], [1, 2], [2, 3]])
        plan = independent_selection(instance, [2, 1, 1])
        for i, deletions in enumerate(plan.deletions):
            assert sum(deletions.values()) == [2, 1, 1][i]

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 5000),
        budget=st.integers(0, 2),
    )
    def test_approximation_guarantee(self, seed, budget):
        """approx loss <= m * optimal loss (the paper's bound)."""
        import numpy as np

        rng = np.random.default_rng(seed)
        relations = [rng.integers(0, 3, size=5).tolist() for _ in range(3)]
        instance = MultiwayInstance.from_relations(relations)
        budgets = [budget] * 3
        approx = independent_selection(instance, budgets)
        optimal = brute_force_optimal(instance, budgets)
        assert approx.output_size <= optimal.output_size
        bound = approximation_ratio_bound(instance)
        assert approx.lost_output <= bound * max(optimal.lost_output, 0) or (
            optimal.lost_output == 0 and approx.lost_output == 0
        )


class TestFourRelations:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2000))
    def test_approximation_guarantee_m4(self, seed):
        """The factor-m bound also holds for m = 4 relations."""
        import numpy as np

        rng = np.random.default_rng(seed)
        relations = [rng.integers(0, 2, size=4).tolist() for _ in range(4)]
        instance = MultiwayInstance.from_relations(relations)
        budgets = [1] * 4
        approx = independent_selection(instance, budgets)
        optimal = brute_force_optimal(instance, budgets)
        assert approx.lost_output <= 4 * optimal.lost_output or (
            optimal.lost_output == 0 and approx.lost_output == 0
        )
        assert approx.output_size <= optimal.output_size


class TestBruteForce:
    def test_two_relation_optimal_matches_dp_objective(self):
        """2-way brute force agrees with the (optimal) Kurotowski DP."""
        from repro.core.static_join import (
            extract_components,
            max_edges_retaining_per_relation,
        )

        a = [1, 1, 2, 3]
        b = [1, 2, 2, 3]
        instance = MultiwayInstance.from_relations([a, b])
        budgets = [1, 1]
        brute = brute_force_optimal(instance, budgets)
        components = extract_components(a, b)
        dp = max_edges_retaining_per_relation(
            components, len(a) - budgets[0], len(b) - budgets[1]
        )
        assert brute.output_size == dp.retained_edges

    def test_zero_budgets_are_identity(self):
        instance = MultiwayInstance.from_relations([[1, 2], [1, 2], [2]])
        plan = brute_force_optimal(instance, [0, 0, 0])
        assert plan.output_size == instance.output_size()
        assert plan.lost_output == 0
