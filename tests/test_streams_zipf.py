"""Tests for Zipf distributions and samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import AliasSampler, ZipfDistribution, zipf_probabilities


class TestZipfPmf:
    def test_probabilities_sum_to_one(self):
        for skew in (0.0, 0.5, 1.0, 2.0):
            p = zipf_probabilities(50, skew)
            assert p.sum() == pytest.approx(1.0)
            assert (p >= 0).all()

    def test_skew_zero_is_uniform(self):
        p = zipf_probabilities(10, 0.0)
        assert np.allclose(p, 0.1)

    def test_higher_skew_concentrates_mass(self):
        top_mild = zipf_probabilities(50, 0.5).max()
        top_heavy = zipf_probabilities(50, 2.0).max()
        assert top_heavy > top_mild

    def test_rank_monotonicity_without_permutation(self):
        dist = ZipfDistribution(20, 1.0)
        p = dist.probabilities()
        assert all(p[i] >= p[i + 1] for i in range(19))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfDistribution(0, 1.0)
        with pytest.raises(ValueError):
            ZipfDistribution(10, -0.5)

    def test_permutation_reassigns_values(self):
        perm = [2, 0, 1]
        dist = ZipfDistribution(3, 1.0, value_permutation=perm)
        p = dist.probabilities()
        base = ZipfDistribution(3, 1.0).probabilities()
        # Rank 1 (most frequent) maps to value 2 under the permutation.
        assert p[2] == pytest.approx(base[0])
        assert p[0] == pytest.approx(base[1])

    def test_bad_permutation_rejected(self):
        with pytest.raises(ValueError, match="permute"):
            ZipfDistribution(3, 1.0, value_permutation=[0, 0, 1])

    def test_probability_of_out_of_domain(self):
        dist = ZipfDistribution(5, 1.0)
        assert dist.probability_of(-1) == 0.0
        assert dist.probability_of(5) == 0.0
        assert dist.probability_of(0) > 0

    def test_match_probability(self):
        a = ZipfDistribution(10, 0.0)
        b = ZipfDistribution(10, 0.0)
        assert a.match_probability(b) == pytest.approx(0.1)
        with pytest.raises(ValueError, match="share a domain"):
            a.match_probability(ZipfDistribution(5, 0.0))


class TestSampling:
    def test_inverse_cdf_empirical_distribution(self):
        dist = ZipfDistribution(10, 1.0)
        rng = np.random.default_rng(0)
        sample = dist.sample(50_000, rng)
        counts = np.bincount(sample, minlength=10) / len(sample)
        assert np.allclose(counts, dist.probabilities(), atol=0.01)

    def test_sample_determinism(self):
        dist = ZipfDistribution(10, 1.0)
        a = dist.sample(100, np.random.default_rng(7))
        b = dist.sample(100, np.random.default_rng(7))
        assert (a == b).all()

    def test_negative_count_rejected(self):
        dist = ZipfDistribution(5, 1.0)
        with pytest.raises(ValueError):
            dist.sample(-1, np.random.default_rng(0))

    def test_alias_sampler_matches_pmf(self):
        probabilities = [0.5, 0.2, 0.2, 0.1]
        sampler = AliasSampler(probabilities, np.random.default_rng(1))
        sample = sampler.sample(50_000)
        counts = np.bincount(sample, minlength=4) / len(sample)
        assert np.allclose(counts, probabilities, atol=0.01)

    def test_alias_sampler_via_distribution(self):
        dist = ZipfDistribution(6, 1.5)
        sampler = dist.alias_sampler(np.random.default_rng(2))
        sample = sampler.sample(50_000)
        counts = np.bincount(sample, minlength=6) / len(sample)
        assert np.allclose(counts, dist.probabilities(), atol=0.01)

    def test_alias_sampler_input_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            AliasSampler([], rng)
        with pytest.raises(ValueError):
            AliasSampler([-0.1, 1.1], rng)
        with pytest.raises(ValueError):
            AliasSampler([0.0, 0.0], rng)

    @settings(max_examples=30, deadline=None)
    @given(
        domain=st.integers(1, 40),
        skew=st.floats(0, 3, allow_nan=False),
    )
    def test_pmf_always_valid(self, domain, skew):
        p = zipf_probabilities(domain, skew)
        assert p.sum() == pytest.approx(1.0)
        assert (p >= 0).all()
        assert len(p) == domain
