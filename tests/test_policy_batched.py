"""Tests for the vectorized policy lanes (``repro.core.batched_policies``).

Three contracts:

* **identity** — a batched RAND/PROB/LIFE run reproduces the per-tuple
  run bit-for-bit (output, total, drop ledger, survival departures,
  metrics totals) across batch sizes and both allocation modes; the
  exhaustive pair-path sweep lives in ``test_batched.py``, this module
  adds the streaming-source side (``run_stream`` chunking) and the
  fallback boundaries;
* **gating** — only static-table, observer-free configurations take a
  lane; ARM, FIFO, estimator-updating policies, and tracers fall back
  to the per-tuple path (and the fallback is itself identical);
* **cache invalidation** — a wholesale
  :meth:`~repro.stats.frequency.StaticFrequencyTable.update` refreshes
  the PROB/LIFE partner-probability caches, so decisions (per-tuple and
  batched alike) track the live table instead of the snapshot taken at
  policy construction.
"""

import pytest

from repro.api import RunSpec, build_pair, run
from repro.core.engine import EngineConfig, JoinEngine
from repro.core.batched import lane_kind_for_policies
from repro.core.policies import (
    ArmAwarePolicy,
    LifePolicy,
    ProbPolicy,
    RandomEvictionPolicy,
    SidePolicies,
)
from repro.stats import EwmaFrequencyEstimator
from repro.stats.frequency import StaticFrequencyTable
from repro.streams.sources import DriftingZipfSource, ZipfSource

SMALL = dict(window=20, memory=10, length=400, seed=3)
LANE_POLICIES = ("RAND", "RANDV", "PROB", "PROBV", "LIFE", "LIFEV")


def small_spec(algorithm: str, **overrides) -> RunSpec:
    return RunSpec(algorithm=algorithm, **{**SMALL, **overrides})


def fingerprint(result):
    return (
        result.output_count,
        result.total_output_count,
        dict(result.drop_counts),
        result.length,
    )


def tables_for(probs_r: dict, probs_s: dict) -> dict:
    return {
        "R": StaticFrequencyTable(probs_r),
        "S": StaticFrequencyTable(probs_s),
    }


# ----------------------------------------------------------------------
# gating
# ----------------------------------------------------------------------

class TestLaneGating:
    def _kind(self, policy_r, policy_s, variable=False, observers=()):
        return lane_kind_for_policies(
            policy_r, policy_s, variable=variable, observers=tuple(observers)
        )

    def test_static_policies_classify(self):
        est = tables_for({1: 1.0}, {1: 1.0})
        rand = RandomEvictionPolicy(seed=0, include_newcomer=True)
        prob = ProbPolicy(est)
        life = LifePolicy(est, 10)
        assert self._kind(rand, RandomEvictionPolicy(
            seed=1, include_newcomer=True)) == "rand"
        assert self._kind(prob, ProbPolicy(est)) == "prob"
        assert self._kind(life, LifePolicy(est, 10)) == "life"
        assert self._kind(prob, prob, variable=True) == "prob"

    def test_mixed_or_updating_policies_fall_back(self):
        est = tables_for({1: 1.0}, {1: 1.0})
        prob = ProbPolicy(est)
        life = LifePolicy(est, 10)
        assert self._kind(prob, life) is None  # mixed kinds
        assert self._kind(ArmAwarePolicy(est, 10), ArmAwarePolicy(est, 10)) is None
        ewma = {"R": EwmaFrequencyEstimator(0.1), "S": EwmaFrequencyEstimator(0.1)}
        updating = ProbPolicy(ewma, update_estimators=True)
        assert self._kind(updating, updating, variable=True) is None
        # Arrival observers force the per-tuple path outright.
        assert self._kind(prob, ProbPolicy(est), observers=[object()]) is None

    @pytest.mark.parametrize("algorithm", LANE_POLICIES)
    def test_pair_lane_engages(self, algorithm, monkeypatch):
        lanes = []
        original = JoinEngine._run_policy_batched

        def spy(self, pair, obs, kind):
            lanes.append(kind)
            return original(self, pair, obs, kind)

        monkeypatch.setattr(JoinEngine, "_run_policy_batched", spy)
        run(small_spec(algorithm, batch_size=64))
        assert lanes == [algorithm.rstrip("V").lower()]

    def test_arm_never_takes_a_lane(self, monkeypatch):
        monkeypatch.setattr(
            JoinEngine, "_run_policy_batched",
            lambda *a, **k: pytest.fail("ARM must stay per-tuple"),
        )
        run(small_spec("ARM", batch_size=64))

    def test_trace_forces_per_tuple(self, monkeypatch):
        monkeypatch.setattr(
            JoinEngine, "_run_policy_batched",
            lambda *a, **k: pytest.fail("traced runs must stay per-tuple"),
        )
        run(small_spec("PROB", batch_size=64, trace=True))


# ----------------------------------------------------------------------
# streaming sources (satellite: run_stream chunking)
# ----------------------------------------------------------------------

class TestStreamingPolicyLanes:
    def _source_spec(self, algorithm, source, **overrides):
        return RunSpec(
            algorithm=algorithm, window=SMALL["window"], memory=SMALL["memory"],
            seed=SMALL["seed"], source=source, **overrides,
        )

    @pytest.mark.parametrize("algorithm", LANE_POLICIES)
    @pytest.mark.parametrize("batch_size", (7, 64))
    def test_zipf_source_matches_incremental(self, algorithm, batch_size):
        source = ZipfSource(30, 1.0, seed=11, length=1200)
        baseline = run(self._source_spec(algorithm, source))
        batched = run(self._source_spec(algorithm, source, batch_size=batch_size))
        assert fingerprint(batched) == fingerprint(baseline)

    @pytest.mark.parametrize("algorithm", ("PROB", "LIFEV"))
    def test_drifting_source_matches_incremental(self, algorithm):
        # The oracle tables come from phase 0 and go stale as the
        # distribution drifts — the lane must reproduce the per-tuple
        # decisions of those same stale tables, not "better" ones.
        source = DriftingZipfSource(30, 1.2, phase_length=300, seed=4, length=1500)
        baseline = run(self._source_spec(algorithm, source))
        batched = run(self._source_spec(algorithm, source, batch_size=64))
        assert fingerprint(batched) == fingerprint(baseline)

    def test_stream_lane_engages(self, monkeypatch):
        lanes = []
        original = JoinEngine._run_policy_stream

        def spy(self, source, until, stop, kind):
            lanes.append(kind)
            return original(self, source, until, stop, kind)

        monkeypatch.setattr(JoinEngine, "_run_policy_stream", spy)
        source = ZipfSource(30, 1.0, seed=11, length=600)
        run(self._source_spec("PROB", source, batch_size=64))
        assert lanes == ["prob"]

    def test_estimator_fed_prob_falls_back_identically(self, monkeypatch):
        # An online estimator updates mid-stream, so no static table
        # exists to vectorize against: batch_size must quietly take the
        # per-tuple incremental path and change nothing.
        monkeypatch.setattr(
            JoinEngine, "_run_policy_stream",
            lambda *a, **k: pytest.fail("estimator-fed runs must stay per-tuple"),
        )
        source = ZipfSource(30, 1.0, seed=11, length=1200)
        baseline = run(self._source_spec("PROB", source, estimator="ewma"))
        batched = run(self._source_spec(
            "PROB", source, estimator="ewma", batch_size=64,
        ))
        assert fingerprint(batched) == fingerprint(baseline)

    def test_unbounded_source_stays_bounded(self):
        # An unbounded generator cannot be materialized at all — the
        # batched stream lane has to chunk it incrementally.  Peak
        # memory must be set by window/domain, not run length: a run 4x
        # longer may not cost 4x the memory (generous 2x bound for
        # allocator noise).
        import tracemalloc

        def peak(duration):
            source = ZipfSource(30, 1.0, seed=2)  # no length: unbounded
            spec = self._source_spec("PROB", source, batch_size=64,
                                     duration=duration)
            tracemalloc.start()
            result = run(spec)
            _, high = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert result.length == duration
            return high

        short, long = peak(3000), peak(12000)
        assert long < 2 * short, (short, long)

    def test_non_unit_rate_source_stays_per_tuple(self, monkeypatch):
        # Poisson rates produce multi-tuple ticks; the chunk encoding is
        # one arrival per side per tick, so the lane must not engage.
        from repro.streams.sources import PoissonSource

        monkeypatch.setattr(
            JoinEngine, "_run_policy_stream",
            lambda *a, **k: pytest.fail("rated sources must stay per-tuple"),
        )
        source = PoissonSource(30, 1.0, rate=0.7, seed=5, length=500)
        run(self._source_spec("PROB", source, batch_size=64))


# ----------------------------------------------------------------------
# static-table cache invalidation (satellite: update() regression)
# ----------------------------------------------------------------------

class TestTableUpdateInvalidation:
    DIST_A = {k: p for k, p in enumerate([0.4, 0.3, 0.15, 0.1, 0.05])}
    DIST_B = {k: p for k, p in enumerate([0.05, 0.1, 0.15, 0.3, 0.4])}

    def test_update_bumps_version_and_notifies(self):
        table = StaticFrequencyTable(self.DIST_A)
        seen = []
        table.subscribe(lambda: seen.append(table.version))
        assert table.version == 0
        table.update(self.DIST_B)
        assert table.version == 1
        assert seen == [1]
        assert table.probability(4) == pytest.approx(0.4)

    @pytest.mark.parametrize("policy_cls", (ProbPolicy, LifePolicy))
    def test_policy_cache_tracks_update(self, policy_cls):
        est = tables_for(self.DIST_A, self.DIST_A)
        args = (est,) if policy_cls is ProbPolicy else (est, SMALL["window"])

        def probe(policy):
            # ProbPolicy scores a record; LifePolicy scores (stream, key).
            if policy_cls is ProbPolicy:
                from repro.core.memory import TupleRecord
                return policy.partner_probability(TupleRecord("R", 0, 0))
            return policy.partner_probability("R", 0)

        stale = policy_cls(*args)
        before = probe(stale)
        est["S"].update(self.DIST_B)
        fresh = policy_cls(*args)
        assert probe(stale) == probe(fresh)
        assert probe(stale) != before

    @pytest.mark.parametrize("algorithm", ("PROB", "LIFE"))
    def test_engine_decisions_track_update(self, algorithm):
        # A policy built on dist A whose tables are then updated to
        # dist B must shed exactly like a policy built on dist B — per
        # tuple and through the batched lane alike.  (A stale cache
        # would keep shedding by dist A: the sensitivity check below
        # pins that the two distributions actually decide differently.)
        pair = build_pair(small_spec(algorithm))
        window = SMALL["window"]

        def engine_run(est, batch_size=None):
            if algorithm == "PROB":
                policy = SidePolicies(r=ProbPolicy(est), s=ProbPolicy(est))
            else:
                policy = SidePolicies(
                    r=LifePolicy(est, window), s=LifePolicy(est, window)
                )
            config = EngineConfig(
                window=window, memory=SMALL["memory"], batch_size=batch_size,
            )
            return JoinEngine(config, policy=policy).run(pair)

        est = tables_for(self.DIST_A, self.DIST_A)
        stale_before_update = fingerprint(engine_run(est))
        est["R"].update(self.DIST_B)
        est["S"].update(self.DIST_B)
        updated = fingerprint(engine_run(est))
        updated_batched = fingerprint(engine_run(est, batch_size=64))
        rebuilt = fingerprint(engine_run(tables_for(self.DIST_B, self.DIST_B)))

        assert updated == rebuilt
        assert updated_batched == rebuilt
        # Sensitivity: if A- and B-table runs agreed, the asserts above
        # could not catch a stale cache in the first place.
        assert stale_before_update != rebuilt
