"""Smoke tests: every example script runs end-to-end.

Each example is executed as a subprocess with small arguments, exactly
as a user would run it, asserting a clean exit and sane output markers.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

CASES = {
    "quickstart.py": (
        ["--length", "400", "--window", "30"],
        ["EXACT", "semantic shedding (PROB)"],
    ),
    "sensor_proxy.py": (
        ["--readings", "120"],
        ["optimal DP (paper)", "per-value transmission plan"],
    ),
    "weather_join.py": (
        ["--length", "2500", "--window", "120"],
        ["PROBV memory split", "EXACT"],
    ),
    "archive_smoothing.py": (
        ["--length", "600", "--window", "40"],
        ["exact result recovered", "Archive-metric"],
    ),
    "slow_cpu_shedding.py": (
        ["--length", "600", "--window", "40"],
        ["queue policy", "prob"],
    ),
    "multi_query_sharing.py": (
        ["--length", "800", "--window", "50"],
        ["shed rule", "max"],
    ),
    "memory_provisioning.py": (
        ["--length", "500", "--window", "40"],
        ["OPT output", "smallest measured budget"],
    ),
}


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(CASES), "update CASES when adding/removing examples"


@pytest.mark.parametrize("script,case", sorted(CASES.items()))
def test_example_runs(script, case):
    arguments, expected_markers = case
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *arguments],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for marker in expected_markers:
        assert marker in completed.stdout, (
            f"{script}: missing {marker!r} in output:\n{completed.stdout[-1500:]}"
        )
