"""Tests for the error-measure design space (Section 2.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    MaxSubsetReport,
    cosine_coefficient,
    dice_coefficient,
    emd,
    emd_sorted,
    fraction_of,
    is_multisubset,
    jaccard_coefficient,
    mac_distance,
    matching_coefficient,
    max_subset_report,
    missing_tuples,
    multiset_intersection_size,
    multiset_union_size,
    overlap_coefficient,
    symmetric_difference_size,
    verify_subset,
)

multisets = st.lists(st.integers(0, 5), max_size=15)


class TestMultisetPrimitives:
    def test_intersection_uses_min_multiplicity(self):
        assert multiset_intersection_size([1, 1, 2], [1, 2, 2]) == 2

    def test_union_uses_max_multiplicity(self):
        assert multiset_union_size([1, 1, 2], [1, 2, 2]) == 4

    def test_symmetric_difference(self):
        assert symmetric_difference_size([1, 1, 2], [1, 2, 2]) == 2
        assert symmetric_difference_size([], [1]) == 1
        assert symmetric_difference_size([1], [1]) == 0

    def test_subset_detection(self):
        assert is_multisubset([1, 1], [1, 1, 2])
        assert not is_multisubset([1, 1, 1], [1, 1])


class TestCoefficients:
    def test_identical_sets(self):
        x = [1, 2, 2, 3]
        assert matching_coefficient(x, x) == 4
        assert dice_coefficient(x, x) == pytest.approx(1.0)
        assert jaccard_coefficient(x, x) == pytest.approx(1.0)
        assert cosine_coefficient(x, x) == pytest.approx(1.0)
        assert overlap_coefficient(x, x) == pytest.approx(1.0)

    def test_disjoint_sets(self):
        x, y = [1, 2], [3, 4]
        assert matching_coefficient(x, y) == 0
        assert dice_coefficient(x, y) == 0.0
        assert jaccard_coefficient(x, y) == 0.0
        assert cosine_coefficient(x, y) == 0.0
        assert overlap_coefficient(x, y) == 0.0

    def test_empty_conventions(self):
        assert dice_coefficient([], []) == 1.0
        assert jaccard_coefficient([], []) == 1.0
        assert cosine_coefficient([], []) == 1.0
        assert cosine_coefficient([], [1]) == 0.0
        assert overlap_coefficient([], [1]) == 1.0

    def test_overlap_is_one_for_subsets(self):
        """The paper: overlap degenerates to 1 whenever X is a subset."""
        assert overlap_coefficient([1, 2], [1, 2, 3, 4]) == pytest.approx(1.0)

    def test_subset_measures_reduce_to_max_subset(self):
        """For X ⊆ Y, all coefficients are monotone in |X| (paper claim)."""
        y = [1, 1, 2, 2, 3, 3]
        small = [1, 2]
        large = [1, 1, 2, 3]
        for measure in (
            matching_coefficient,
            dice_coefficient,
            jaccard_coefficient,
            cosine_coefficient,
        ):
            assert measure(large, y) > measure(small, y)

    @settings(max_examples=50, deadline=None)
    @given(x=multisets, y=multisets)
    def test_symmetry_and_bounds(self, x, y):
        for measure in (dice_coefficient, jaccard_coefficient, cosine_coefficient):
            value = measure(x, y)
            assert 0.0 <= value <= 1.0 + 1e-9
            assert value == pytest.approx(measure(y, x))
        assert symmetric_difference_size(x, y) == symmetric_difference_size(y, x)

    @settings(max_examples=50, deadline=None)
    @given(x=multisets, y=multisets)
    def test_symmetric_difference_identity(self, x, y):
        assert (symmetric_difference_size(x, y) == 0) == (sorted(x) == sorted(y))


class TestMaxSubset:
    def test_report_basics(self):
        report = max_subset_report(100, 80)
        assert report.missing == 20
        assert report.fraction == pytest.approx(0.8)
        assert missing_tuples(100, 80) == 20

    def test_zero_exact(self):
        assert max_subset_report(0, 0).fraction == 1.0

    def test_superset_rejected(self):
        with pytest.raises(ValueError, match="not a subset"):
            MaxSubsetReport(exact_size=5, produced_size=6)

    def test_verify_subset(self):
        report = verify_subset([1, 2], [1, 2, 3])
        assert report.missing == 1
        with pytest.raises(ValueError):
            verify_subset([1, 1], [1, 2])

    def test_fraction_of_allows_exceeding(self):
        assert fraction_of(10, 15) == pytest.approx(1.5)
        assert fraction_of(0, 5) == 1.0
        with pytest.raises(ValueError):
            fraction_of(-1, 2)


class TestEmd:
    def test_sorted_closed_form(self):
        assert emd_sorted([0, 4], [1, 3]) == 2
        assert emd_sorted([], []) == 0
        with pytest.raises(ValueError):
            emd_sorted([1], [1, 2])

    def test_flow_matches_sorted_on_equal_mass(self):
        for x, y in ([[0, 4], [1, 3]], [[1, 1, 5], [2, 3, 3]], [[7], [7]]):
            assert emd(x, y) == emd_sorted(x, y)

    def test_subset_is_zero(self):
        """The paper: EMD trivially evaluates to 0 when X ⊆ Y."""
        assert emd([1, 3], [1, 2, 3, 4]) == 0

    def test_unequal_mass_partial_transport(self):
        # One unit of mass at 0 must reach {5} or {6}: distance 5.
        assert emd([0], [5, 6]) == 5

    def test_mass_order_enforced(self):
        with pytest.raises(ValueError, match="swap"):
            emd([1, 2, 3], [1])

    def test_empty_x(self):
        assert emd([], [1, 2]) == 0

    def test_custom_distance(self):
        assert emd(["a"], ["a", "b"], distance=lambda a, b: 0 if a == b else 9) == 0

    def test_non_integer_distance_rejected(self):
        with pytest.raises(ValueError, match="integer"):
            emd([0], [1], distance=lambda a, b: 0.5)


class TestMac:
    def test_identical_multisets_zero(self):
        assert mac_distance([1, 2, 2], [2, 1, 2]) == 0

    def test_subset_pays_only_penalty(self):
        assert mac_distance([1, 2], [1, 2, 3, 4], unmatched_penalty=7) == 14

    def test_symmetry(self):
        a, b = [1, 5], [2, 2, 9]
        assert mac_distance(a, b) == mac_distance(b, a)

    def test_matching_cost(self):
        # Best matching: 1-2 (1) + 10-9 (1); one element of the larger side
        # unmatched (penalty 3).
        assert mac_distance([1, 10], [2, 9, 100], unmatched_penalty=3) == 2 + 3

    def test_empty_sides(self):
        assert mac_distance([], [1, 2], unmatched_penalty=2) == 4
        assert mac_distance([], []) == 0

    def test_negative_penalty_rejected(self):
        with pytest.raises(ValueError):
            mac_distance([1], [1], unmatched_penalty=-1)
