"""Tests for repro.obs.spans: events, merging, export, fleet folding."""

import json
import random

import pytest

from repro.obs.spans import (
    SPAN_CHECKPOINT_RESTORE,
    SPAN_CHECKPOINT_SAVE,
    SPAN_DEGRADE,
    SPAN_FAIL,
    SPAN_FAULT,
    SPAN_FINISH,
    SPAN_HEARTBEAT,
    SPAN_KINDS,
    SPAN_MERGE,
    SPAN_RETRY,
    SPAN_START,
    SPAN_SUBMIT,
    SOURCE_SUPERVISOR,
    SOURCE_WORKER,
    SpanEvent,
    SpanRecorder,
    fleet_rows,
    load_spans,
    merge_timeline,
    save_spans,
    span_summary,
    spans_or_none,
    stage_durations,
    stage_stats,
    to_chrome_trace,
)


def ev(ts, kind, cell=0, attempt=1, source=SOURCE_WORKER, **kw):
    return SpanEvent(ts=ts, kind=kind, cell=cell, attempt=attempt,
                     source=source, **kw)


class TestSpanEvent:
    def test_json_round_trip(self):
        event = ev(1.5, SPAN_HEARTBEAT, cell=3, attempt=2, shard=3,
                   tick=160, label="shard 3", data={"output": 7})
        assert SpanEvent.from_json(event.to_json()) == event

    def test_to_json_omits_none_fields(self):
        record = ev(1.0, SPAN_START).to_json()
        assert set(record) == {"ts", "kind", "cell", "attempt", "source"}

    def test_round_trip_through_json_text(self):
        event = ev(2.0, SPAN_FINISH, cell=1, data={"ok": True})
        assert SpanEvent.from_json(json.loads(json.dumps(event.to_json()))) == event

    def test_key_is_cell_attempt_shard(self):
        assert ev(0.0, SPAN_START, cell=2, attempt=3, shard=2).key == (2, 3, 2)


class TestRecorder:
    def test_scripted_clock(self):
        ticks = iter([10.0, 11.0])
        recorder = SpanRecorder(clock=lambda: next(ticks))
        recorder.emit(SPAN_SUBMIT, cell=0)
        recorder.emit(SPAN_RETRY, cell=0, attempt=1)
        assert [e.ts for e in recorder.events] == [10.0, 11.0]
        assert all(e.source == SOURCE_SUPERVISOR for e in recorder.events)

    def test_spans_or_none(self):
        recorder = SpanRecorder()
        assert spans_or_none(recorder) is recorder
        assert spans_or_none(None) is None

        class Disabled:
            enabled = False

        assert spans_or_none(Disabled()) is None


class TestMergeTimeline:
    def events(self):
        # Two workers plus a supervisor, with deliberate timestamp ties.
        supervisor = [
            ev(0.0, SPAN_SUBMIT, cell=0, source=SOURCE_SUPERVISOR),
            ev(0.0, SPAN_SUBMIT, cell=1, source=SOURCE_SUPERVISOR),
            ev(5.0, SPAN_MERGE, cell=None, source=SOURCE_SUPERVISOR),
        ]
        worker0 = [
            ev(1.0, SPAN_START, cell=0, shard=0),
            ev(2.0, SPAN_HEARTBEAT, cell=0, shard=0, tick=16),
            ev(4.0, SPAN_FINISH, cell=0, shard=0),
        ]
        worker1 = [
            ev(1.0, SPAN_START, cell=1, shard=1),
            ev(2.0, SPAN_HEARTBEAT, cell=1, shard=1, tick=16),
            ev(4.0, SPAN_FINISH, cell=1, shard=1),
        ]
        return supervisor, worker0, worker1

    def test_merge_is_order_invariant(self):
        groups = self.events()
        reference = merge_timeline(*groups)
        rng = random.Random(7)
        for _ in range(10):
            shuffled = [list(g) for g in groups]
            for group in shuffled:
                rng.shuffle(group)
            rng.shuffle(shuffled)
            assert merge_timeline(*shuffled) == reference

    def test_ties_break_on_causal_rank(self):
        start = ev(3.0, SPAN_START, cell=0)
        beat = ev(3.0, SPAN_HEARTBEAT, cell=0, tick=0)
        assert merge_timeline([beat], [start]) == [start, beat]
        assert SPAN_KINDS.index(SPAN_START) < SPAN_KINDS.index(SPAN_HEARTBEAT)

    def test_save_load_round_trip(self, tmp_path):
        timeline = merge_timeline(*self.events())
        path = save_spans(timeline, tmp_path / "spans.jsonl")
        assert load_spans(path) == timeline


class TestStages:
    def timeline(self):
        return [
            ev(0.0, SPAN_SUBMIT, source=SOURCE_SUPERVISOR),
            ev(0.5, SPAN_START),
            ev(1.0, SPAN_CHECKPOINT_SAVE, tick=31, data={"seconds": 0.25}),
            ev(2.0, SPAN_FAULT, tick=40),
            ev(2.0, SPAN_FAIL, data={"error": "InjectedFault"}),
            ev(2.5, SPAN_RETRY, source=SOURCE_SUPERVISOR,
               data={"next_attempt": 2}),
            ev(3.0, SPAN_START, attempt=2),
            ev(3.1, SPAN_CHECKPOINT_RESTORE, attempt=2, tick=31),
            ev(4.0, SPAN_FINISH, attempt=2),
        ]

    def test_stage_durations(self):
        durations = stage_durations(self.timeline())
        assert durations["queue"] == [0.5]
        assert durations["run"] == [pytest.approx(1.5), pytest.approx(1.0)]
        assert durations["checkpoint_save"] == [0.25]
        assert durations["retry_backoff"] == [pytest.approx(0.5)]

    def test_stage_stats_shape(self):
        stats = stage_stats(self.timeline())
        run = stats["run"]
        assert run["count"] == 2
        assert run["mean"] == pytest.approx(1.25)
        for quantile in ("p50", "p90", "p99"):
            assert run["min"] <= run[quantile] <= run["max"]
        # A stage with no samples reports a bare zero count.
        assert stage_stats([])["queue"] == {"count": 0}

    def test_negative_spans_clamp_to_zero(self):
        # Cross-process clock skew: start stamped before submit.
        skewed = [
            ev(1.0, SPAN_SUBMIT, source=SOURCE_SUPERVISOR),
            ev(0.9, SPAN_START),
            ev(2.0, SPAN_FINISH),
        ]
        assert stage_durations(skewed)["queue"] == [0.0]

    def test_span_summary(self):
        summary = span_summary(self.timeline())
        assert summary["events"] == 9
        assert summary["cells"] == [0]
        assert summary["retries"] == 1
        assert summary["wall_seconds"] == pytest.approx(4.0)
        assert summary["kinds"][SPAN_START] == 2
        assert span_summary([]) == {
            "events": 0, "kinds": {}, "cells": [], "retries": 0,
            "wall_seconds": 0.0,
        }


class TestChromeTrace:
    def timeline(self):
        return [
            ev(0.0, SPAN_SUBMIT, source=SOURCE_SUPERVISOR),
            ev(0.5, SPAN_START, shard=0),
            ev(1.0, SPAN_HEARTBEAT, shard=0, tick=16,
               data={"occupancy": 10, "tuples_per_s": 5.0}),
            ev(1.5, SPAN_CHECKPOINT_SAVE, shard=0, data={"seconds": 0.1}),
            ev(2.0, SPAN_FAULT, shard=0, tick=40),
            ev(3.0, SPAN_FINISH, shard=0),
            ev(3.5, SPAN_MERGE, cell=None, source=SOURCE_SUPERVISOR),
        ]

    def test_schema(self):
        trace = to_chrome_trace(self.timeline())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        assert events, "no trace events exported"
        phases = {e["ph"] for e in events}
        assert phases >= {"M", "X", "i", "C"}
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] >= 0
            if event["ph"] == "i":
                assert event["s"] == "t"
            if event["ph"] != "M":
                assert event["ts"] >= 0  # microseconds from the origin

    def test_timestamps_are_microseconds(self):
        events = to_chrome_trace(self.timeline())["traceEvents"]
        finish = [e for e in events if e.get("cat") == "attempt"][0]
        # start at 0.5 s -> 500000 us after the 0.0 origin.
        assert finish["ts"] == pytest.approx(500_000)
        assert finish["dur"] == pytest.approx(2_500_000)

    def test_counter_tracks_from_heartbeats(self):
        events = to_chrome_trace(self.timeline())["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert names == {"cell0/occupancy", "cell0/tuples_per_s"}

    def test_lane_metadata(self):
        events = to_chrome_trace(self.timeline())["traceEvents"]
        lanes = {e["args"]["name"] for e in events if e["ph"] == "M"}
        # The supervisor's submit touches the lane first, so it is named
        # by cell; a worker-only timeline would name it by shard.
        assert "supervisor" in lanes
        assert "cell 0" in lanes
        worker_only = [e for e in self.timeline() if e.source == SOURCE_WORKER]
        lanes = {
            e["args"]["name"]
            for e in to_chrome_trace(worker_only)["traceEvents"]
            if e["ph"] == "M"
        }
        assert "shard 0" in lanes

    def test_json_serializable_and_empty(self):
        json.dumps(to_chrome_trace(self.timeline()))
        assert to_chrome_trace([])["traceEvents"] == []


class TestFleetRows:
    def test_lifecycle_statuses(self):
        events = [
            ev(0.0, SPAN_SUBMIT, cell=0, source=SOURCE_SUPERVISOR),
            ev(0.0, SPAN_SUBMIT, cell=1, source=SOURCE_SUPERVISOR),
            ev(1.0, SPAN_START, cell=0, shard=0),
            ev(1.0, SPAN_START, cell=1, shard=1),
            ev(2.0, SPAN_HEARTBEAT, cell=0, shard=0, tick=16,
               data={"output": 3}),
            ev(2.5, SPAN_FAULT, cell=1, shard=1, tick=20),
            ev(2.5, SPAN_FAIL, cell=1, shard=1),
            ev(3.0, SPAN_RETRY, cell=1, source=SOURCE_SUPERVISOR,
               data={"next_attempt": 2}),
            ev(4.0, SPAN_FINISH, cell=0, shard=0),
        ]
        rows = fleet_rows(events)
        assert [row["cell"] for row in rows] == [0, 1]
        done, retrying = rows
        assert done["status"] == "done"
        assert done["heartbeat"] == {"output": 3}
        assert done["heartbeat_age"] == pytest.approx(2.0)
        assert retrying["status"] == "retrying"
        assert retrying["retries"] == 1
        assert retrying["faults"] == 1

    def test_degrade_marks_shard_lost(self):
        events = [
            ev(0.0, SPAN_START, cell=2, shard=2),
            ev(1.0, SPAN_DEGRADE, cell=None, source=SOURCE_SUPERVISOR,
               data={"lost": [2]}),
        ]
        assert fleet_rows(events)[0]["status"] == "lost"

    def test_upto_ts_replays_prefix(self):
        events = [
            ev(0.0, SPAN_START, cell=0),
            ev(5.0, SPAN_FINISH, cell=0),
        ]
        assert fleet_rows(events, upto_ts=1.0)[0]["status"] == "running"
        assert fleet_rows(events)[0]["status"] == "done"
