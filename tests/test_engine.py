"""Tests for the fast-CPU join engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CapacityExceededError, EngineConfig, JoinEngine, run_exact
from repro.core.policies import ProbPolicy, RandomEvictionPolicy, SidePolicies
from repro.experiments.runner import estimators_for, run_algorithm
from repro.streams import StreamPair, exact_join_size, zipf_pair


def recount_from_departures(pair, result) -> int:
    """Independent recount of the output from survival records."""
    count = 0
    window = result.window
    n = len(pair)
    for i in range(n):
        for j in range(n):
            if pair.r[i] != pair.s[j] or abs(i - j) >= window:
                continue
            if max(i, j) < result.warmup:
                continue
            if i == j:
                count += 1
            elif i < j:
                if result.r_departures[i] >= j:
                    count += 1
            else:
                if result.s_departures[j] >= i:
                    count += 1
    return count


class TestEngineConfig:
    def test_default_warmup_is_two_windows(self):
        assert EngineConfig(window=50, memory=10).warmup == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(window=0, memory=10)
        with pytest.raises(ValueError):
            EngineConfig(window=5, memory=0)
        with pytest.raises(ValueError):
            EngineConfig(window=5, memory=4, warmup=-1)
        with pytest.raises(ValueError):
            EngineConfig(window=5, memory=4, share_sample_every=0)


class TestExactReference:
    def test_matches_direct_computation(self, small_zipf_pair):
        window = 25
        result = run_exact(small_zipf_pair, window)
        assert result.output_count == exact_join_size(
            small_zipf_pair, window, count_from=2 * window
        )

    def test_total_output_includes_warmup(self, small_zipf_pair):
        window = 25
        result = run_exact(small_zipf_pair, window)
        assert result.total_output_count == exact_join_size(small_zipf_pair, window)
        assert result.total_output_count >= result.output_count

    def test_materialized_pairs_match_count(self, small_zipf_pair):
        window = 20
        result = run_exact(small_zipf_pair, window, materialize=True)
        assert len(result.pairs) == result.output_count
        for pair_result in result.pairs:
            assert abs(pair_result.r_arrival - pair_result.s_arrival) < window
            assert pair_result.emitted_at >= result.warmup

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500), window=st.integers(2, 15))
    def test_exact_engine_equals_direct_for_any_input(self, seed, window):
        pair = zipf_pair(120, 6, 1.0, seed=seed)
        result = run_exact(pair, window)
        assert result.output_count == exact_join_size(pair, window, count_from=2 * window)


class TestPolicyWiring:
    def test_single_policy_requires_variable(self):
        config = EngineConfig(window=10, memory=10)
        with pytest.raises(ValueError, match="variable"):
            JoinEngine(config, policy=RandomEvictionPolicy())

    def test_side_policies_require_fixed(self):
        config = EngineConfig(window=10, memory=10, variable=True)
        with pytest.raises(ValueError, match="fixed"):
            JoinEngine(
                config,
                policy=SidePolicies(
                    r=RandomEvictionPolicy(), s=RandomEvictionPolicy()
                ),
            )

    def test_shared_instance_rejected(self):
        shared = RandomEvictionPolicy()
        with pytest.raises(ValueError, match="independent"):
            SidePolicies(r=shared, s=shared)

    def test_dict_spec_removed(self):
        config = EngineConfig(window=10, memory=10)
        with pytest.raises(TypeError, match="removed"):
            JoinEngine(
                config,
                policy={"R": RandomEvictionPolicy(), "S": RandomEvictionPolicy()},
            )

    def test_unsupported_policy_type(self):
        config = EngineConfig(window=10, memory=10)
        with pytest.raises(TypeError):
            JoinEngine(config, policy="RAND")

    def test_policy_names(self):
        assert JoinEngine(EngineConfig(window=5, memory=10)).policy_name == "EXACT"
        assert JoinEngine(EngineConfig(window=5, memory=4)).policy_name == "NONE"
        variable = EngineConfig(window=5, memory=4, variable=True)
        assert JoinEngine(variable, RandomEvictionPolicy()).policy_name == "RANDV"


class TestShedding:
    def test_overflow_without_policy_raises(self, small_zipf_pair):
        config = EngineConfig(window=30, memory=4)
        with pytest.raises(CapacityExceededError):
            JoinEngine(config, policy=None).run(small_zipf_pair)

    def test_output_bounded_by_exact(self, small_zipf_pair):
        window = 25
        exact = run_exact(small_zipf_pair, window).output_count
        for name in ("RAND", "PROB", "LIFE", "RANDV", "PROBV", "LIFEV"):
            result = run_algorithm(name, small_zipf_pair, window, 10, seed=3)
            assert 0 <= result.output_count <= exact

    def test_memory_never_exceeded_with_validation(self, small_zipf_pair):
        estimators = estimators_for(small_zipf_pair)
        config = EngineConfig(window=25, memory=10, validate=True)
        engine = JoinEngine(
            config,
            policy=SidePolicies(r=ProbPolicy(estimators), s=ProbPolicy(estimators)),
        )
        engine.run(small_zipf_pair)  # raises on any invariant violation

    def test_variable_mode_validation(self, small_zipf_pair):
        estimators = estimators_for(small_zipf_pair)
        config = EngineConfig(window=25, memory=9, variable=True, validate=True)
        JoinEngine(config, policy=ProbPolicy(estimators)).run(small_zipf_pair)

    def test_drop_accounting_balances(self, small_zipf_pair):
        window = 25
        result = run_algorithm("RAND", small_zipf_pair, window, 10, seed=1)
        for stream in ("R", "S"):
            counts = result.drop_counts[stream]
            # Every tuple is eventually rejected, evicted, or expired
            # (those resident at stream end are counted as expiring).
            assert counts["rejected"] + counts["evicted"] <= len(small_zipf_pair)

    def test_survival_records_consistent_with_output(self):
        pair = zipf_pair(150, 6, 1.0, seed=11)
        window = 12
        for name in ("RAND", "PROB", "LIFE"):
            result = run_algorithm(
                name, pair, window, 6, seed=2, track_survival=True
            )
            assert recount_from_departures(pair, result) == result.output_count

    def test_survival_records_variable_mode(self):
        pair = zipf_pair(150, 6, 1.0, seed=12)
        result = run_algorithm("PROBV", pair, 12, 7, track_survival=True)
        assert recount_from_departures(pair, result) == result.output_count

    def test_materialized_pairs_are_subset_of_exact(self):
        pair = zipf_pair(150, 6, 1.0, seed=13)
        window = 12
        exact = run_exact(pair, window, materialize=True)
        approx = run_algorithm("PROB", pair, window, 6, materialize=True)
        exact_set = set((p.r_arrival, p.s_arrival) for p in exact.pairs)
        approx_set = set((p.r_arrival, p.s_arrival) for p in approx.pairs)
        assert approx_set <= exact_set
        assert len(approx.pairs) == approx.output_count


class TestAccountingDetails:
    def test_simultaneous_pairs_counted_once(self):
        pair = StreamPair(r=[1, 1], s=[1, 2])
        config = EngineConfig(window=2, memory=4, warmup=0)
        result = JoinEngine(config).run(pair)
        # t=0: (r0, s0) simultaneous. t=1: r1 matches s0? s0=1 yes -> wait
        # s-memory holds s0=1; r1=1 matches -> 1; s1=2 matches nothing;
        # (r1, s1) keys differ. Total = 1 + 1 = 2.
        assert result.output_count == 2

    def test_simultaneous_disabled(self):
        pair = StreamPair(r=[1, 1], s=[1, 2])
        config = EngineConfig(window=2, memory=4, warmup=0, count_simultaneous=False)
        result = JoinEngine(config).run(pair)
        assert result.output_count == 1

    def test_expiry_excludes_window_boundary(self):
        # r0 expires at t=w: s at t=w must NOT match it.
        pair = StreamPair(r=[7, 101, 102, 103], s=[201, 202, 203, 7])
        config = EngineConfig(window=3, memory=20, warmup=0, count_simultaneous=False)
        result = JoinEngine(config).run(pair)
        # r0=7 at t=0; s3=7 at t=3: |0-3| = 3, not < 3 -> no match.
        assert result.output_count == 0

    def test_boundary_match_just_inside_window(self):
        pair = StreamPair(r=[7, 101, 102], s=[201, 202, 7])
        config = EngineConfig(window=3, memory=20, warmup=0, count_simultaneous=False)
        result = JoinEngine(config).run(pair)
        assert result.output_count == 1  # |0-2| = 2 < 3

    def test_share_tracking(self, small_zipf_pair):
        result = run_algorithm(
            "PROBV", small_zipf_pair, 20, 10, track_shares=True, share_sample_every=5
        )
        assert result.shares is not None
        assert all(r + s <= 10 for _, r, s in result.shares)
        fractions = result.share_fraction_r()
        assert all(0.0 <= f <= 1.0 for _, f in fractions)

    def test_share_fraction_requires_tracking(self, small_zipf_pair):
        result = run_algorithm("PROB", small_zipf_pair, 20, 10)
        with pytest.raises(ValueError, match="track_shares"):
            result.share_fraction_r()


class TestFastLoopDispatch:
    """The inlined fast loop must be observationally identical to the
    fully-featured general loop — same outputs, drops, and survival
    records — with or without a metrics registry attached."""

    ALGORITHMS = ("RAND", "PROB", "PROBV", "LIFE")

    def _run(self, name, pair, **kwargs):
        return run_algorithm(name, pair, 25, 12, seed=3, **kwargs)

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_plain_metrics_and_general_agree(self, name):
        from repro.obs import MetricsRegistry

        pair = zipf_pair(600, 40, 1.0, seed=3)
        plain = self._run(name, pair)
        timed = self._run(name, pair, metrics=MetricsRegistry())
        # materialize=True forces the general loop (it collects pairs).
        general = self._run(name, pair, materialize=True)
        for other in (timed, general):
            assert plain.output_count == other.output_count
            assert plain.drop_breakdown() == other.drop_breakdown()
            assert plain.r_departures == other.r_departures
            assert plain.s_departures == other.s_departures

    def test_metrics_counters_match_result(self):
        from repro.obs import MetricsRegistry

        pair = zipf_pair(600, 40, 1.0, seed=3)
        registry = MetricsRegistry()
        result = self._run("PROB", pair, metrics=registry)
        assert registry.counter_total("engine.output") == result.output_count
        assert registry.counter_total("engine.arrivals") == 2 * len(pair)
        drops = result.drop_breakdown()
        assert registry.counter_total("engine.drops") == (
            drops.rejected + drops.evicted + drops.expired
        )
