"""Tests for the FIFO baseline policy and the multi-seed sweep utility."""

import pytest

from repro.core import EngineConfig, JoinEngine
from repro.core.memory import JoinMemory, TupleRecord
from repro.core.policies import FifoPolicy, SidePolicies
from repro.experiments import run_algorithm
from repro.experiments.sweep import Aggregate, sweep_seeds, variance_study
from repro.streams import zipf_pair


class TestFifoPolicy:
    def test_evicts_oldest(self):
        memory = JoinMemory(4)
        policy = FifoPolicy()
        policy.bind(memory)
        first = TupleRecord("R", 0, "a")
        second = TupleRecord("R", 1, "b")
        memory.admit(first)
        memory.admit(second)
        candidate = TupleRecord("R", 2, "c")
        assert policy.choose_victim(candidate, 2) is first

    def test_always_admits(self, small_zipf_pair):
        result = run_algorithm("FIFO", small_zipf_pair, 20, 10)
        assert result.drop_counts["R"]["rejected"] == 0
        assert result.drop_counts["S"]["rejected"] == 0

    def test_fifo_memory_is_shrunken_window(self):
        """FIFO with per-side budget m behaves as a window of size m."""
        pair = zipf_pair(300, 8, 1.0, seed=5)
        window, memory = 20, 10
        fifo = run_algorithm("FIFO", pair, window, memory)
        # A window of m = M/2 = 5, but probes still governed by w=20 for
        # expiry; since m < w the memory constraint binds: every tuple
        # survives exactly m arrivals of its own stream.
        from repro.streams import exact_join_size

        shrunken = exact_join_size(pair, memory // 2 + 1, count_from=2 * window)
        # Not an exact identity (pairs emitted by the *later* tuple while
        # the earlier is within m survive), but tightly correlated:
        assert abs(fifo.output_count - shrunken) / max(shrunken, 1) < 0.35

    def test_weakest_resident_supports_shrink(self):
        pair = zipf_pair(200, 6, 1.0, seed=6)
        config = EngineConfig(
            window=15,
            memory=10,
            memory_schedule=lambda t: 10 if t < 100 else 4,
            validate=True,
        )
        engine = JoinEngine(
            config, policy=SidePolicies(r=FifoPolicy(), s=FifoPolicy())
        )
        result = engine.run(pair)
        assert result.output_count >= 0

    def test_variable_mode(self, small_zipf_pair):
        result = run_algorithm("FIFOV", small_zipf_pair, 20, 9)
        assert result.output_count > 0

    def test_tracks_rand_on_iid_inputs(self):
        pair = zipf_pair(800, 50, 1.0, seed=7)
        window, memory = 40, 20
        fifo = run_algorithm("FIFO", pair, window, memory).output_count
        rand = run_algorithm("RAND", pair, window, memory, seed=1).output_count
        prob = run_algorithm("PROB", pair, window, memory).output_count
        assert abs(fifo - rand) / max(rand, 1) < 0.35
        assert prob > 1.5 * fifo


class TestAggregate:
    def test_statistics(self):
        aggregate = Aggregate.of([1, 2, 3, 4])
        assert aggregate.mean == pytest.approx(2.5)
        assert aggregate.minimum == 1 and aggregate.maximum == 4
        assert aggregate.std == pytest.approx(1.1180, abs=1e-3)
        assert aggregate.runs == 4

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Aggregate.of([])


class TestSweep:
    def test_sweep_seeds(self):
        def factory(seed):
            return zipf_pair(200, 8, 1.0, seed=seed)

        aggregates = sweep_seeds(
            ("RAND", "PROB"), factory, window=15, memory=8, seeds=(0, 1, 2)
        )
        assert set(aggregates) == {"RAND", "PROB"}
        assert aggregates["PROB"].mean > aggregates["RAND"].mean
        assert aggregates["PROB"].runs == 3

    def test_needs_seeds(self):
        with pytest.raises(ValueError):
            sweep_seeds(("RAND",), lambda s: zipf_pair(10, 3, 1.0), 5, 4, seeds=())

    def test_variance_study_shape(self, tiny_scale):
        table = variance_study(tiny_scale, seeds=(0, 1))
        names = table.column("algorithm")
        assert "PROB" in names and "OPT" in names
        # The dominance row reports PROB>RAND on every seed.
        dominance = table.rows[-1]
        assert dominance[0] == "PROB>RAND"
        assert dominance[1] == 2
