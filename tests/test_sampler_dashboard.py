"""Tests for repro.obs.sampler and repro.obs.dashboard."""

import io

import pytest

from repro.api import RunSpec, run
from repro.obs import Sampler, WindowSample, sample_trace
from repro.obs.dashboard import play, render_frame
from repro.obs.trace import (
    EVENT_ADMIT,
    EVENT_ARRIVE,
    EVENT_EVICT,
    EVENT_EXPIRE,
    EVENT_JOIN_OUTPUT,
    TraceEvent,
)


def arrive(tick):
    return TraceEvent(tick, "R", 0, EVENT_ARRIVE, tick)


def admit(tick):
    return TraceEvent(tick, "R", 0, EVENT_ADMIT, tick)


def evict(tick):
    return TraceEvent(tick, "R", 0, EVENT_EVICT, tick - 1)


class TestSampler:
    def test_buckets_by_tick(self):
        sampler = Sampler(10)
        sampler.extend([arrive(0), arrive(9), arrive(10), arrive(25)])
        windows = sampler.windows()
        assert [w.start for w in windows] == [0, 10, 20]
        assert windows[0].get(EVENT_ARRIVE) == 2
        assert windows[1].get(EVENT_ARRIVE) == 1

    def test_gap_filling(self):
        sampler = Sampler(10)
        sampler.extend([arrive(0), arrive(45)])
        filled = sampler.windows(fill=True)
        assert len(filled) == 5
        assert filled[2].counts == {}
        sparse = sampler.windows(fill=False)
        assert len(sparse) == 2

    def test_occupancy_is_running_balance(self):
        sampler = Sampler(10)
        sampler.extend([admit(0), admit(1), admit(12), evict(13)])
        windows = sampler.windows()
        assert windows[0].occupancy == 2
        assert windows[1].occupancy == 2  # +1 admit, -1 evict

    def test_expire_reduces_occupancy(self):
        sampler = Sampler(10)
        sampler.extend([admit(0), TraceEvent(11, "R", 0, EVENT_EXPIRE, 0)])
        windows = sampler.windows()
        assert windows[-1].occupancy == 0

    def test_totals_zero_filled(self):
        sampler = Sampler(10)
        sampler.add(arrive(3))
        totals = sampler.totals()
        assert totals[EVENT_ARRIVE] == 1
        assert totals[EVENT_JOIN_OUTPUT] == 0

    def test_empty_sampler(self):
        assert Sampler(10).windows() == []
        assert len(Sampler(10)) == 0

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            Sampler(0)

    def test_sample_trace_matches_engine_run(self):
        result = run(
            RunSpec(algorithm="PROB", length=500, window=50, memory=24, trace=True)
        )
        windows = sample_trace(result.trace, width=50)
        assert sum(w.get(EVENT_ARRIVE) for w in windows) == 2 * 500
        assert sum(w.get(EVENT_JOIN_OUTPUT) for w in windows) \
            == result.total_output_count
        # final occupancy equals tuples still resident at stream end
        assert 0 <= windows[-1].occupancy <= 2 * 24

    def test_window_sample_to_json(self):
        sample = WindowSample(start=10, width=5, counts={EVENT_ARRIVE: 3})
        record = sample.to_json()
        assert record["start"] == 10
        assert record["counts"] == {EVENT_ARRIVE: 3}


class TestDashboard:
    def _events(self):
        result = run(
            RunSpec(algorithm="PROB", length=400, window=40, memory=20, trace=True)
        )
        return result.trace

    def test_render_frame_plain(self):
        windows = sample_trace(self._events(), width=40)
        frame = render_frame(windows, len(windows) - 1, color=False)
        assert "arrive" in frame
        assert "memory" in frame
        assert "\x1b[" not in frame  # colour off means no ANSI codes

    def test_render_frame_color_uses_ansi(self):
        windows = sample_trace(self._events(), width=40)
        frame = render_frame(windows, 0, color=True)
        assert "\x1b[1m" in frame

    def test_render_empty(self):
        assert "(no trace events)" in render_frame([], 0, color=False)

    def test_play_once_prints_single_frame(self):
        out = io.StringIO()
        frames = play(self._events(), width=40, once=True, color=False, out=out)
        assert frames == 1
        assert "produced" in out.getvalue()

    def test_play_animates_every_window(self):
        out = io.StringIO()
        naps = []
        frames = play(
            self._events(), width=40, color=False, out=out,
            sleep=naps.append,
        )
        assert frames == 10  # 400 ticks / 40 per bucket
        assert len(naps) == frames - 1

    def test_play_empty_trace(self):
        out = io.StringIO()
        assert play([], once=True, out=out) == 0
        assert "empty" in out.getvalue()
