"""Naive reference implementation of the fast-CPU model (tests only).

A deliberately simple O(n · M) simulation with plain lists and linear
scans — no heaps, buckets, or slot arrays — used to fuzz the production
engine's bookkeeping.  Mirrors the engine's semantics exactly: expiry →
probe both arrivals → admit R then S, with the paper's tie rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.streams.tuples import StreamPair


@dataclass(frozen=True)
class _Resident:
    stream: str
    arrival: int
    key: object


def naive_run(
    pair: StreamPair,
    window: int,
    memory: int,
    policy_kind: str,
    estimators: Optional[dict] = None,
    *,
    variable: bool = False,
    warmup: Optional[int] = None,
) -> int:
    """Post-warmup output of PROB / LIFE / EXACT via brute-force scans."""
    if warmup is None:
        warmup = 2 * window
    if policy_kind not in ("PROB", "LIFE", "EXACT"):
        raise ValueError(policy_kind)
    if policy_kind != "EXACT" and estimators is None:
        raise ValueError("PROB/LIFE need estimators")

    def partner_probability(resident_stream: str, key) -> float:
        other = "S" if resident_stream == "R" else "R"
        return estimators[other].probability(key)

    residents: list[_Resident] = []
    output = 0

    for t in range(len(pair)):
        residents = [r for r in residents if r.arrival > t - window]
        r_key, s_key = pair.r[t], pair.s[t]

        matches = sum(1 for r in residents if r.stream == "S" and r.key == r_key)
        matches += sum(1 for r in residents if r.stream == "R" and r.key == s_key)
        if r_key == s_key:
            matches += 1
        if t >= warmup:
            output += matches

        for stream, key in (("R", r_key), ("S", s_key)):
            if variable:
                pool = residents
                capacity = memory
            else:
                pool = [r for r in residents if r.stream == stream]
                capacity = memory // 2 if policy_kind != "EXACT" else window

            newcomer = _Resident(stream, t, key)
            if len(pool) < capacity:
                residents.append(newcomer)
                continue
            if policy_kind == "EXACT":
                raise AssertionError("EXACT must never overflow")

            if policy_kind == "PROB":
                def prob_rank(r: _Resident):
                    return (partner_probability(r.stream, r.key), r.arrival)

                weakest = min(pool, key=prob_rank)
                if prob_rank(weakest) < (partner_probability(stream, key), t):
                    residents.remove(weakest)
                    residents.append(newcomer)
            else:  # LIFE
                def life_priority(r: _Resident) -> float:
                    return (r.arrival + window - t) * partner_probability(
                        r.stream, r.key
                    )

                weakest = min(pool, key=lambda r: (life_priority(r), r.arrival))
                weakest_priority = life_priority(weakest)
                candidate_priority = window * partner_probability(stream, key)
                evict = weakest_priority < candidate_priority or (
                    weakest_priority == candidate_priority and weakest.arrival < t
                )
                if evict:
                    residents.remove(weakest)
                    residents.append(newcomer)

    return output


def naive_async_run(
    r_batches,
    s_batches,
    window: int,
    memory: int,
    estimators: dict,
    *,
    variable: bool = False,
    warmup: int = 0,
) -> int:
    """Naive mirror of the asynchronous engine (time windows, PROB).

    Async semantics differ from the synchronous engine: each arrival
    probes when *processed* (R batch first, then S), so a tuple sees
    same-tick partners already admitted.
    """

    def partner_probability(resident_stream: str, key) -> float:
        other = "S" if resident_stream == "R" else "R"
        return estimators[other].probability(key)

    residents: list[_Resident] = []
    output = 0

    for t in range(len(r_batches)):
        residents = [r for r in residents if r.arrival > t - window]
        for stream, batch in (("R", r_batches[t]), ("S", s_batches[t])):
            for key in batch:
                other = "S" if stream == "R" else "R"
                matches = sum(
                    1 for r in residents if r.stream == other and r.key == key
                )
                if t >= warmup:
                    output += matches

                if variable:
                    pool = residents
                    capacity = memory
                else:
                    pool = [r for r in residents if r.stream == stream]
                    capacity = memory // 2

                newcomer = _Resident(stream, t, key)
                if len(pool) < capacity:
                    residents.append(newcomer)
                    continue
                if not pool:
                    continue  # zero-capacity pool: always reject

                def prob_rank(r: _Resident):
                    return (partner_probability(r.stream, r.key), r.arrival)

                weakest = min(pool, key=prob_rank)
                if prob_rank(weakest) < (partner_probability(stream, key), t):
                    residents.remove(weakest)
                    residents.append(newcomer)

    return output
