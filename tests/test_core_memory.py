"""Tests for window semantics and the join-memory data structures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import JoinMemory, TupleRecord, WindowSpec
from repro.core.memory import StreamMemory


class TestWindowSpec:
    def test_contains_boundaries(self):
        window = WindowSpec(3)
        # At t=5 the window holds arrivals 3, 4, 5.
        assert not window.contains(2, 5)
        assert window.contains(3, 5)
        assert window.contains(5, 5)
        assert not window.contains(6, 5)

    def test_expiry_and_last_event(self):
        window = WindowSpec(4)
        assert window.expiry_time(10) == 14
        assert window.last_event_seen(10) == 13

    def test_joins_with(self):
        window = WindowSpec(3)
        assert window.joins_with(5, 7)
        assert not window.joins_with(5, 8)
        assert window.joins_with(7, 5)

    def test_exact_memory_and_warmup(self):
        window = WindowSpec(400)
        assert window.exact_memory_requirement() == 800
        assert window.default_warmup() == 800

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            WindowSpec(0)


def _record(arrival: int, key, stream: str = "R") -> TupleRecord:
    return TupleRecord(stream, arrival, key)


class TestStreamMemory:
    def test_add_and_match_count(self):
        memory = StreamMemory("R")
        memory.add(_record(0, "a"))
        memory.add(_record(1, "a"))
        memory.add(_record(2, "b"))
        assert memory.size == 3
        assert memory.match_count("a") == 2
        assert memory.match_count("b") == 1
        assert memory.match_count("zzz") == 0

    def test_remove_updates_counts_and_slots(self):
        memory = StreamMemory("R")
        records = [_record(i, "a") for i in range(3)]
        for record in records:
            memory.add(record)
        memory.remove(records[0])
        assert memory.size == 2
        assert memory.match_count("a") == 2
        # Slot array stays dense and consistent.
        assert {memory.record_at_slot(i).arrival for i in range(2)} == {1, 2}

    def test_double_add_and_double_remove_rejected(self):
        memory = StreamMemory("R")
        record = _record(0, "a")
        memory.add(record)
        with pytest.raises(ValueError):
            memory.add(record)
        memory.remove(record)
        with pytest.raises(ValueError):
            memory.remove(record)

    def test_oldest_alive_skips_dead(self):
        memory = StreamMemory("R")
        first = _record(0, "a")
        second = _record(5, "a")
        memory.add(first)
        memory.add(second)
        assert memory.oldest_alive("a") is first
        memory.remove(first)
        assert memory.oldest_alive("a") is second
        memory.remove(second)
        assert memory.oldest_alive("a") is None
        assert memory.oldest_alive("never") is None

    def test_expire_until(self):
        memory = StreamMemory("R")
        for i in range(5):
            memory.add(_record(i, i))
        expired = memory.expire_until(2)
        assert sorted(r.arrival for r in expired) == [0, 1, 2]
        assert memory.size == 2

    def test_expire_skips_already_evicted(self):
        memory = StreamMemory("R")
        a, b = _record(0, "x"), _record(1, "y")
        memory.add(a)
        memory.add(b)
        memory.remove(a)
        expired = memory.expire_until(1)
        assert expired == [b]

    def test_matches_iterates_alive_records(self):
        memory = StreamMemory("R")
        a, b = _record(0, "k"), _record(1, "k")
        memory.add(a)
        memory.add(b)
        memory.remove(a)
        assert [r.arrival for r in memory.matches("k")] == [1]
        assert list(memory.matches("other")) == []


class TestJoinMemory:
    def test_fixed_allocation_split(self):
        memory = JoinMemory(4, variable=False)
        assert memory.side_capacity("R") == 2
        memory.admit(_record(0, "a", "R"))
        memory.admit(_record(1, "b", "R"))
        assert memory.needs_eviction("R")
        assert not memory.needs_eviction("S")
        with pytest.raises(RuntimeError):
            memory.admit(_record(2, "c", "R"))

    def test_fixed_requires_even_capacity(self):
        with pytest.raises(ValueError, match="even"):
            JoinMemory(3, variable=False)

    def test_variable_pool_shared(self):
        memory = JoinMemory(3, variable=True)
        memory.admit(_record(0, "a", "R"))
        memory.admit(_record(1, "b", "R"))
        memory.admit(_record(2, "c", "S"))
        assert memory.needs_eviction("R")
        assert memory.needs_eviction("S")
        assert memory.total_size == 3

    def test_eviction_candidates(self):
        fixed = JoinMemory(4, variable=False)
        assert [m.stream for m in fixed.eviction_candidates("R")] == ["R"]
        pooled = JoinMemory(4, variable=True)
        assert [m.stream for m in pooled.eviction_candidates("R")] == ["R", "S"]

    def test_side_lookup(self):
        memory = JoinMemory(2)
        assert memory.side("R") is memory.r
        assert memory.other_side("R") is memory.s
        with pytest.raises(ValueError):
            memory.side("Q")

    def test_expire_both_sides(self):
        memory = JoinMemory(4)
        memory.admit(_record(0, "a", "R"))
        memory.admit(_record(0, "b", "S"))
        expired = memory.expire_until(0)
        assert {r.stream for r in expired} == {"R", "S"}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            JoinMemory(0)


class TestJoinMemoryVariablePoolProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        capacity=st.integers(1, 6),
        ops=st.lists(
            st.tuples(
                st.sampled_from(["R", "S"]),
                st.integers(0, 3),
                st.booleans(),  # evict-random-resident before admitting
            ),
            max_size=40,
        ),
    )
    def test_shared_pool_never_overflows(self, capacity, ops):
        """Admissions guarded by needs_eviction keep the pool in budget."""
        memory = JoinMemory(capacity, variable=True)
        alive: list[TupleRecord] = []
        for clock, (stream, key, evict_first) in enumerate(ops):
            if memory.needs_eviction(stream):
                if not evict_first or not alive:
                    continue  # reject the newcomer
                victim = alive.pop(key % len(alive))
                memory.remove(victim)
            record = TupleRecord(stream, clock, key)
            memory.admit(record)
            alive.append(record)
            assert memory.total_size <= capacity
            assert memory.total_size == len(alive)
            assert memory.r.size == sum(1 for r in alive if r.stream == "R")


class TestMemoryInvariantsProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["add", "remove", "expire"]), st.integers(0, 5)),
            max_size=60,
        )
    )
    def test_random_operation_sequences(self, ops):
        """Counts, slots and buckets stay mutually consistent."""
        memory = StreamMemory("R")
        alive: list[TupleRecord] = []
        clock = 0
        for op, value in ops:
            if op == "add":
                record = _record(clock, value)
                memory.add(record)
                alive.append(record)
                clock += 1
            elif op == "remove" and alive:
                victim = alive.pop(value % len(alive))
                memory.remove(victim)
            elif op == "expire":
                horizon = clock - value
                expired = memory.expire_until(horizon)
                alive = [r for r in alive if r.arrival > horizon]
                assert all(r.arrival <= horizon for r in expired)

            assert memory.size == len(alive)
            from collections import Counter

            expected = Counter(r.key for r in alive)
            for key in range(6):
                assert memory.match_count(key) == expected.get(key, 0)
            assert {id(memory.record_at_slot(i)) for i in range(memory.size)} == {
                id(r) for r in alive
            }
