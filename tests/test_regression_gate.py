"""Tests for benchmarks/regression.py: the perf-regression gate logic."""

import sys
from pathlib import Path

import pytest

BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"
if str(BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS))

from regression import (  # noqa: E402
    check_runtime,
    compare_snapshots,
    format_comparison,
)


def snapshot(**overrides):
    entry = {
        "policy": "PROB",
        "output_count": 3020,
        "ktuples_per_second": 100.0,
        "seconds": 0.02,
        "metrics_overhead_pct": 30.0,
        "trace_overhead_pct": 80.0,
    }
    entry.update(overrides)
    return {"benchmark": "engine_throughput", "scale": "ci", "policies": [entry]}


class TestCompareSnapshots:
    def test_identical_snapshots_pass(self):
        assert compare_snapshots(snapshot(), snapshot()) == []

    def test_small_drop_within_tolerance_passes(self):
        fresh = snapshot(ktuples_per_second=85.0)
        assert compare_snapshots(snapshot(), fresh, tolerance=0.20) == []

    def test_large_drop_fails(self):
        fresh = snapshot(ktuples_per_second=70.0)
        failures = compare_snapshots(snapshot(), fresh, tolerance=0.20)
        assert len(failures) == 1
        assert "throughput" in failures[0]
        assert "PROB" in failures[0]

    def test_speedup_never_fails(self):
        fresh = snapshot(ktuples_per_second=500.0)
        assert compare_snapshots(snapshot(), fresh) == []

    def test_output_count_drift_fails(self):
        fresh = snapshot(output_count=3021)
        failures = compare_snapshots(snapshot(), fresh)
        assert any("output_count" in f for f in failures)
        assert any("semantics" in f for f in failures)

    def test_overhead_doubling_fails(self):
        fresh = snapshot(metrics_overhead_pct=90.0)
        failures = compare_snapshots(snapshot(), fresh)
        assert any("metrics_overhead_pct" in f for f in failures)

    def test_overhead_within_slack_passes(self):
        # baseline 80% + max(20, 80) slack = 160% ceiling
        fresh = snapshot(trace_overhead_pct=150.0)
        assert compare_snapshots(snapshot(), fresh) == []

    def test_overhead_drop_never_fails(self):
        fresh = snapshot(metrics_overhead_pct=1.0, trace_overhead_pct=2.0)
        assert compare_snapshots(snapshot(), fresh) == []

    def test_missing_policy_in_fresh_fails(self):
        fresh = snapshot()
        fresh["policies"] = []
        failures = compare_snapshots(snapshot(), fresh)
        assert any("missing from fresh" in f for f in failures)

    def test_new_policy_without_baseline_fails(self):
        base = snapshot()
        fresh = snapshot()
        fresh["policies"].append({
            "policy": "NEW",
            "output_count": 1,
            "ktuples_per_second": 1.0,
        })
        failures = compare_snapshots(base, fresh)
        assert any("NEW" in f and "baseline" in f for f in failures)

    def test_old_baseline_without_trace_overhead_is_skipped(self):
        base = snapshot()
        del base["policies"][0]["trace_overhead_pct"]
        fresh = snapshot(trace_overhead_pct=400.0)
        assert compare_snapshots(base, fresh) == []


class TestFormatComparison:
    def test_table_shows_both_sides(self):
        base = snapshot()
        fresh = snapshot(ktuples_per_second=90.0)
        table = format_comparison(base, fresh)
        assert "PROB" in table
        assert "100.00" in table
        assert "90.00" in table
        assert "-10.0%" in table

    def test_missing_policy_is_called_out(self):
        fresh = snapshot()
        fresh["policies"] = []
        assert "missing" in format_comparison(snapshot(), fresh)


class TestCommittedBaseline:
    """The checked-in BENCH_engine.json must stay gate-compatible."""

    def test_baseline_has_gated_fields(self):
        import json

        path = BENCHMARKS.parent / "BENCH_engine.json"
        baseline = json.loads(path.read_text())
        assert baseline["scale"] in ("ci", "default", "paper")
        assert baseline["policies"]
        for entry in baseline["policies"]:
            assert entry["output_count"] > 0
            assert entry["ktuples_per_second"] > 0
            assert "metrics_overhead_pct" in entry
            assert "trace_overhead_pct" in entry

    def test_baseline_compares_clean_against_itself(self):
        import json

        path = BENCHMARKS.parent / "BENCH_engine.json"
        baseline = json.loads(path.read_text())
        assert compare_snapshots(baseline, baseline) == []


def runtime_snapshot(**overrides):
    data = {
        "benchmark": "runtime_parallel",
        "scale": "ci",
        "serial_seconds": 0.2,
        "parallel_seconds": 0.25,
        "speedup": 0.8,
        "outputs_match": True,
        "mismatches": [],
        "counts": [
            {"seed": 0, "RAND": 100, "PROB": 300},
            {"seed": 1, "RAND": 110, "PROB": 290},
        ],
    }
    data.update(overrides)
    return data


class TestCheckRuntime:
    def test_identical_snapshots_pass(self):
        assert check_runtime(runtime_snapshot(), runtime_snapshot()) == []

    def test_parallel_serial_divergence_fails(self):
        fresh = runtime_snapshot(
            outputs_match=False,
            mismatches=["PROB(seed=0): serial 300 != parallel 299"],
        )
        failures = check_runtime(runtime_snapshot(), fresh)
        assert any("parallel != serial" in f for f in failures)

    def test_count_drift_vs_baseline_fails(self):
        fresh = runtime_snapshot(
            counts=[
                {"seed": 0, "RAND": 100, "PROB": 301},
                {"seed": 1, "RAND": 110, "PROB": 290},
            ]
        )
        failures = check_runtime(runtime_snapshot(), fresh)
        assert any("PROB(seed=0)" in f for f in failures)
        assert any("semantics" in f for f in failures)

    def test_modest_slowdown_passes(self):
        fresh = runtime_snapshot(parallel_seconds=0.6)  # 3x serial
        assert check_runtime(runtime_snapshot(), fresh) == []

    def test_pathological_slowdown_fails(self):
        fresh = runtime_snapshot(parallel_seconds=1.5)  # 7.5x serial
        failures = check_runtime(runtime_snapshot(), fresh, max_slowdown=5.0)
        assert any("wall-clock" in f for f in failures)

    def test_speedup_never_fails(self):
        fresh = runtime_snapshot(parallel_seconds=0.05, speedup=4.0)
        assert check_runtime(runtime_snapshot(), fresh) == []


class TestCommittedRuntimeBaseline:
    """The checked-in BENCH_runtime.json must stay gate-compatible."""

    def test_baseline_is_internally_consistent(self):
        import json

        path = BENCHMARKS.parent / "BENCH_runtime.json"
        baseline = json.loads(path.read_text())
        assert baseline["outputs_match"] is True
        assert baseline["mismatches"] == []
        assert baseline["serial_seconds"] > 0
        assert baseline["parallel_seconds"] > 0
        assert baseline["counts"]
        assert check_runtime(baseline, baseline) == []
