"""Unit tests for the flow-network problem model."""

import pytest

from repro.flow import Arc, FlowNetwork


class TestFlowNetworkConstruction:
    def test_add_node_returns_dense_ids(self):
        network = FlowNetwork()
        assert network.add_node() == 0
        assert network.add_node("labelled") == 1
        assert network.num_nodes == 2
        assert network.label(1) == "labelled"

    def test_add_nodes_bulk(self):
        network = FlowNetwork()
        ids = network.add_nodes(5)
        assert list(ids) == [0, 1, 2, 3, 4]
        assert network.num_nodes == 5

    def test_add_nodes_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FlowNetwork().add_nodes(-1)

    def test_add_arc_basic(self):
        network = FlowNetwork()
        network.add_nodes(2)
        arc_id = network.add_arc(0, 1, capacity=3, cost=-2)
        assert arc_id == 0
        assert network.arc(0) == Arc(0, 1, 3, -2)
        assert network.num_arcs == 1

    def test_parallel_arcs_allowed(self):
        network = FlowNetwork()
        network.add_nodes(2)
        network.add_arc(0, 1, 1, 0)
        network.add_arc(0, 1, 1, -5)
        assert network.num_arcs == 2

    def test_self_loop_rejected(self):
        network = FlowNetwork()
        network.add_nodes(1)
        with pytest.raises(ValueError, match="self-loop"):
            network.add_arc(0, 0, 1, 0)

    def test_unknown_endpoint_rejected(self):
        network = FlowNetwork()
        network.add_nodes(2)
        with pytest.raises(ValueError, match="unknown node"):
            network.add_arc(0, 7, 1, 0)

    def test_negative_capacity_rejected(self):
        network = FlowNetwork()
        network.add_nodes(2)
        with pytest.raises(ValueError, match="non-negative"):
            network.add_arc(0, 1, -1, 0)


class TestSupplies:
    def test_supply_bookkeeping(self):
        network = FlowNetwork()
        network.add_node(supply=5)
        network.add_node()
        network.set_supply(1, -3)
        network.add_supply(1, -2)
        assert network.supply(0) == 5
        assert network.supply(1) == -5
        assert network.total_supply() == 5
        assert network.is_balanced()

    def test_unbalanced_detected(self):
        network = FlowNetwork()
        network.add_node(supply=2)
        network.add_node(supply=-1)
        assert not network.is_balanced()


class TestTopologicalOrderCheck:
    def test_forward_arcs_are_ordered(self):
        network = FlowNetwork()
        network.add_nodes(3)
        network.add_arc(0, 1, 1, 0)
        network.add_arc(1, 2, 1, 0)
        assert network.is_topologically_ordered()

    def test_backward_arc_breaks_order(self):
        network = FlowNetwork()
        network.add_nodes(3)
        network.add_arc(2, 1, 1, 0)
        assert not network.is_topologically_ordered()

    def test_out_arcs_adjacency(self):
        network = FlowNetwork()
        network.add_nodes(3)
        a = network.add_arc(0, 1, 1, 0)
        b = network.add_arc(0, 2, 1, 0)
        c = network.add_arc(1, 2, 1, 0)
        assert network.out_arcs() == [[a, b], [c], []]
