"""Tests for time-varying window sizes and landmark windows."""

import pytest

from repro.core import EngineConfig, JoinEngine
from repro.core.async_engine import AsyncEngineConfig, AsyncJoinEngine, batches_from_pair
from repro.experiments import estimators_for
from repro.experiments.runner import _policy_for, run_algorithm
from repro.streams import StreamPair, exact_join_size, zipf_pair


class TestWindowSchedule:
    def _run(self, pair, schedule, *, window, memory=None, policy="PROB"):
        estimators = estimators_for(pair)
        config = EngineConfig(
            window=window,
            memory=memory if memory is not None else 4 * window,
            window_schedule=schedule,
            track_survival=False,
        )
        spec = None if policy is None else _policy_for(policy, estimators, window, 0)
        return JoinEngine(config, policy=spec).run(pair)

    def test_constant_schedule_matches_plain(self, small_zipf_pair):
        plain = run_algorithm("PROB", small_zipf_pair, 20, 10)
        scheduled = self._run(small_zipf_pair, lambda t: 20, window=20, memory=10)
        assert scheduled.output_count == plain.output_count

    def test_shrunk_window_reduces_output(self, small_zipf_pair):
        wide = self._run(small_zipf_pair, lambda t: 20, window=20, policy=None)
        narrow = self._run(small_zipf_pair, lambda t: 5, window=20, policy=None)
        assert narrow.output_count < wide.output_count

    def test_alternating_window_bounded_by_extremes(self, small_zipf_pair):
        narrow = self._run(small_zipf_pair, lambda t: 5, window=20, policy=None)
        wide = self._run(small_zipf_pair, lambda t: 20, window=20, policy=None)
        wave = self._run(
            small_zipf_pair,
            lambda t: 20 if (t // 20) % 2 == 0 else 5,
            window=20,
            policy=None,
        )
        assert narrow.output_count <= wave.output_count <= wide.output_count

    def test_pure_shrink_matches_smaller_exact_join(self):
        """Once the schedule settles on w', output matches the w' join."""
        pair = zipf_pair(300, 6, 1.0, seed=9)
        result = self._run(pair, lambda t: 8, window=16, policy=None)
        expected = exact_join_size(pair, 8, count_from=2 * 16)
        assert result.output_count == expected

    def test_sequence_schedule(self, small_zipf_pair):
        schedule = [20] * len(small_zipf_pair)
        scheduled = self._run(small_zipf_pair, schedule, window=20, memory=10)
        plain = run_algorithm("PROB", small_zipf_pair, 20, 10)
        assert scheduled.output_count == plain.output_count

    def test_survival_tracking_rejected(self):
        with pytest.raises(ValueError, match="track_survival"):
            EngineConfig(window=10, memory=4, window_schedule=lambda t: 10)

    def test_non_positive_window_rejected(self):
        pair = zipf_pair(30, 4, 1.0, seed=0)
        config = EngineConfig(
            window=5, memory=20, window_schedule=lambda t: 0, track_survival=False
        )
        with pytest.raises(ValueError, match="schedule produced"):
            JoinEngine(config).run(pair)


class TestLandmarkWindows:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="landmark_every"):
            AsyncEngineConfig(window=5, memory=4, window_mode="landmark")
        with pytest.raises(ValueError, match="only applies"):
            AsyncEngineConfig(window=5, memory=4, landmark_every=10)

    def test_state_resets_at_landmarks(self):
        # r(0)=7 would match s(5)=7 in a time window of 10, but the
        # landmark at t=4 wipes it first.
        r_batches = [[7], [], [], [], [], []]
        s_batches = [[], [], [], [], [], [7]]
        config = AsyncEngineConfig(
            window=10, memory=20, warmup=0,
            window_mode="landmark", landmark_every=4,
        )
        result = AsyncJoinEngine(config).run(r_batches, s_batches)
        assert result.output_count == 0

    def test_pairs_within_a_landmark_period_survive(self):
        r_batches = [[7], [], [], [], [], []]
        s_batches = [[], [], [7], [], [], []]
        config = AsyncEngineConfig(
            window=10, memory=20, warmup=0,
            window_mode="landmark", landmark_every=4,
        )
        result = AsyncJoinEngine(config).run(r_batches, s_batches)
        assert result.output_count == 1

    def test_no_expiry_between_landmarks(self):
        """Tuples live arbitrarily long within one landmark period."""
        length = 30
        r_batches = [[1]] + [[] for _ in range(length - 1)]
        s_batches = [[] for _ in range(length - 1)] + [[1]]
        config = AsyncEngineConfig(
            window=2, memory=20, warmup=0,
            window_mode="landmark", landmark_every=100,
        )
        result = AsyncJoinEngine(config).run(r_batches, s_batches)
        assert result.output_count == 1  # a w=2 time window would say 0

    def test_landmark_with_shedding_policy(self):
        pair = zipf_pair(200, 6, 1.0, seed=11)
        from repro.core.policies import ProbPolicy, SidePolicies

        estimators = estimators_for(pair)
        config = AsyncEngineConfig(
            window=10, memory=8, warmup=20,
            window_mode="landmark", landmark_every=25, validate=True,
        )
        engine = AsyncJoinEngine(
            config,
            policy=SidePolicies(r=ProbPolicy(estimators), s=ProbPolicy(estimators)),
        )
        result = engine.run(*batches_from_pair(pair))
        assert result.output_count > 0

    def test_landmark_rejects_life(self):
        pair = zipf_pair(20, 4, 1.0, seed=0)
        from repro.core.policies import LifePolicy, SidePolicies

        estimators = estimators_for(pair)
        config = AsyncEngineConfig(
            window=5, memory=4, window_mode="landmark", landmark_every=10
        )
        with pytest.raises(ValueError, match="LIFE"):
            AsyncJoinEngine(
                config,
                policy=SidePolicies(
                    r=LifePolicy(estimators, 5),
                    s=LifePolicy(estimators, 5),
                ),
            )
