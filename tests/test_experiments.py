"""Tests for the experiment harness: config, runner, reporting."""

import pytest

from repro.experiments import (
    ALL_ALGORITHMS,
    SCALES,
    current_scale,
    estimators_for,
    even_memory,
    format_figure,
    format_table,
    memory_sweep,
    output_counts,
    run_algorithm,
    run_suite,
)
from repro.experiments.figures import FigureData, Series, TableData
from repro.streams import StreamPair, weather_pair, zipf_pair


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"paper", "default", "ci"}
        paper = SCALES["paper"]
        assert paper.stream_length == 5600
        assert paper.window == 400
        assert paper.window_large == 800
        assert paper.weather_window == 5000

    def test_current_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        assert current_scale().name == "ci"
        monkeypatch.setenv("REPRO_SCALE", "full")
        assert current_scale().name == "paper"
        monkeypatch.delenv("REPRO_SCALE")
        assert current_scale().name == "default"
        monkeypatch.setenv("REPRO_SCALE", "bogus")
        with pytest.raises(ValueError):
            current_scale()

    def test_even_memory(self):
        assert even_memory(400, 0.1) == 40
        assert even_memory(60, 0.25) == 14  # 15 rounded down to even
        assert even_memory(4, 0.1) == 2  # floor of 2

    def test_memory_sweep_matches_paper_fractions(self):
        assert memory_sweep(400) == [40, 100, 200, 400, 600]


class TestEstimators:
    def test_synthetic_distributions_used(self):
        pair = zipf_pair(100, 10, 1.0, seed=0)
        estimators = estimators_for(pair)
        true_p = pair.metadata["r_distribution"].probabilities()
        for value in range(10):
            assert estimators["R"].probability(value) == pytest.approx(true_p[value])

    def test_weather_probability_arrays_used(self):
        pair = weather_pair(100, seed=0)
        estimators = estimators_for(pair)
        p = pair.metadata["r_probabilities"]
        assert estimators["R"].probability(0) == pytest.approx(p[0])

    def test_fallback_to_empirical_frequency(self):
        pair = StreamPair(r=[1, 1, 2, 2], s=[2, 2, 2, 3])
        estimators = estimators_for(pair)
        assert estimators["R"].probability(1) == pytest.approx(0.5)
        assert estimators["S"].probability(2) == pytest.approx(0.75)


class TestRunner:
    def test_all_algorithms_run(self, small_zipf_pair):
        for name in ALL_ALGORITHMS:
            result = run_algorithm(name, small_zipf_pair, 20, 10, seed=1)
            assert result.output_count >= 0

    def test_unknown_algorithm_rejected(self, small_zipf_pair):
        with pytest.raises(ValueError, match="unknown algorithm"):
            run_algorithm("FANCY", small_zipf_pair, 20, 10)

    def test_exact_ignores_memory(self, small_zipf_pair):
        a = run_algorithm("EXACT", small_zipf_pair, 20, 2)
        b = run_algorithm("EXACT", small_zipf_pair, 20, 999)
        assert a.output_count == b.output_count

    def test_run_suite_and_output_counts(self, small_zipf_pair):
        results = run_suite(("RAND", "PROB", "OPT"), small_zipf_pair, 20, 10, seed=2)
        counts = output_counts(results)
        assert set(counts) == {"RAND", "PROB", "OPT"}
        assert counts["PROB"] <= counts["OPT"]

    def test_determinism(self, small_zipf_pair):
        a = run_algorithm("RAND", small_zipf_pair, 20, 10, seed=9)
        b = run_algorithm("RAND", small_zipf_pair, 20, 10, seed=9)
        assert a.output_count == b.output_count

    def test_seed_changes_rand(self, small_zipf_pair):
        a = run_algorithm("RAND", small_zipf_pair, 20, 10, seed=1)
        b = run_algorithm("RAND", small_zipf_pair, 20, 10, seed=2)
        assert a.output_count != b.output_count  # overwhelmingly likely

    def test_warmup_override(self, small_zipf_pair):
        default = run_algorithm("PROB", small_zipf_pair, 20, 10)
        from_zero = run_algorithm("PROB", small_zipf_pair, 20, 10, warmup=0)
        assert from_zero.output_count >= default.output_count


class TestReporting:
    def _figure(self):
        return FigureData(
            figure_id="fig-test",
            title="A title",
            x_label="x",
            y_label="y",
            series=[
                Series("alpha", [(1, 10), (2, 20)]),
                Series("beta", [(1, 11), (2, 21)]),
            ],
            expectation="alpha below beta",
        )

    def test_format_figure_contains_everything(self):
        text = format_figure(self._figure())
        for token in ("fig-test", "alpha", "beta", "10", "21", "alpha below beta"):
            assert token in text

    def test_format_figure_downsamples(self):
        series = Series("long", [(i, i) for i in range(1000)])
        figure = FigureData("f", "t", "x", "y", [series])
        text = format_figure(figure, max_rows=10)
        data_lines = text.splitlines()[3:]  # title + header + rule
        assert len(data_lines) == 10

    def test_series_lookup(self):
        figure = self._figure()
        assert figure.series_by_label("alpha").y == [10, 20]
        with pytest.raises(KeyError):
            figure.series_by_label("gamma")

    def test_format_table(self):
        table = TableData(
            table_id="tbl",
            title="T",
            columns=["a", "b"],
            rows=[[1, 2.5], [3, 4.0]],
            expectation="b grows",
        )
        text = format_table(table)
        for token in ("tbl", "a", "b", "2.5", "b grows"):
            assert token in text
        assert table.column("a") == [1, 3]
