"""Tests for the reservoir estimator, plan materialisation, and exports."""

import json

import numpy as np
import pytest

from repro.core.static_join import (
    apply_plan,
    extract_components,
    join_size,
    max_edges_retaining,
    total_nodes,
)
from repro.experiments.figures import FigureData, Series, TableData
from repro.experiments.reporting import (
    figure_to_dict,
    save_figure_csv,
    save_table_csv,
    table_to_dict,
)
from repro.stats import ReservoirSample


class TestReservoirSample:
    def test_fills_then_samples(self):
        reservoir = ReservoirSample(5, seed=0)
        for key in range(5):
            reservoir.observe(key)
        assert len(reservoir) == 5
        assert reservoir.seen == 5
        for key in range(5):
            assert reservoir.probability(key) == pytest.approx(0.2)

    def test_bounded_size(self):
        reservoir = ReservoirSample(10, seed=1)
        for key in range(1000):
            reservoir.observe(key % 7)
        assert len(reservoir) == 10
        assert reservoir.seen == 1000

    def test_estimates_converge(self):
        rng = np.random.default_rng(2)
        reservoir = ReservoirSample(500, seed=2)
        stream = rng.choice([0, 1, 2], p=[0.6, 0.3, 0.1], size=20_000)
        for key in stream:
            reservoir.observe(int(key))
        assert reservoir.probability(0) == pytest.approx(0.6, abs=0.08)
        assert reservoir.probability(1) == pytest.approx(0.3, abs=0.08)
        assert reservoir.probability(2) == pytest.approx(0.1, abs=0.06)

    def test_counts_consistent_with_sample(self):
        reservoir = ReservoirSample(16, seed=3)
        for key in range(200):
            reservoir.observe(key % 5)
        assert sum(reservoir.sample_count(k) for k in range(5)) == len(reservoir)

    def test_empty_and_validation(self):
        assert ReservoirSample(3).probability("x") == 0.0
        with pytest.raises(ValueError):
            ReservoirSample(0)


class TestApplyPlan:
    def test_truncated_join_matches_plan(self):
        a = [1, 1, 2, 2, 2, 3]
        b = [1, 2, 2, 4]
        components = extract_components(a, b)
        plan = max_edges_retaining(components, 6)
        kept_a, kept_b = apply_plan(a, b, components, plan)
        assert len(kept_a) + len(kept_b) == 6
        assert join_size(kept_a, kept_b) == plan.retained_edges

    def test_order_preserved(self):
        a = [3, 1, 3, 2]
        b = [3, 2]
        components = extract_components(a, b)
        plan = max_edges_retaining(components, total_nodes(components))
        kept_a, _ = apply_plan(a, b, components, plan)
        assert kept_a == a  # keeping everything preserves the input order

    def test_misaligned_plan_rejected(self):
        a, b = [1], [1]
        components = extract_components(a, b)
        plan = max_edges_retaining(components, 1)
        other = extract_components([1, 2], [1, 2])  # two components
        with pytest.raises(ValueError, match="components"):
            apply_plan([1, 2], [1, 2], other, plan)

    def test_foreign_key_rejected(self):
        a, b = [1], [1]
        components = extract_components(a, b)
        plan = max_edges_retaining(components, 2)
        with pytest.raises(ValueError, match="absent"):
            apply_plan([1, 9], [1], components, plan)

    def test_overcommitted_plan_rejected(self):
        a, b = [1, 1], [1]
        components = extract_components(a, b)
        plan = max_edges_retaining(components, 3)
        with pytest.raises(ValueError, match="more tuples"):
            apply_plan([1], [1], components, plan)

    def test_join_size_helper(self):
        assert join_size([1, 1, 2], [1, 2, 2]) == 2 + 2


class TestExports:
    def _figure(self):
        return FigureData(
            "f1", "title", "x", "y",
            [Series("a", [(1, 2), (3, 4)]), Series("b", [(1, 5)])],
            params={"p": 1},
            expectation="a < b",
        )

    def test_figure_to_dict_roundtrips_json(self):
        payload = figure_to_dict(self._figure())
        decoded = json.loads(json.dumps(payload))
        assert decoded["figure_id"] == "f1"
        assert decoded["series"][0]["points"] == [[1, 2], [3, 4]]

    def test_table_to_dict(self):
        table = TableData("t1", "title", ["a"], [[1], [2]])
        payload = json.loads(json.dumps(table_to_dict(table)))
        assert payload["rows"] == [[1], [2]]

    def test_save_figure_csv(self, tmp_path):
        path = tmp_path / "fig.csv"
        save_figure_csv(self._figure(), path)
        lines = path.read_text().splitlines()
        assert lines[0] == "x,a,b"
        assert lines[1] == "1,2,5"
        assert lines[2] == "3,4,"

    def test_save_table_csv(self, tmp_path):
        path = tmp_path / "tbl.csv"
        save_table_csv(TableData("t", "t", ["c1", "c2"], [[1, "x"]]), path)
        assert path.read_text().splitlines() == ["c1,c2", "1,x"]
