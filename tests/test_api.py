"""Tests for the unified public run API (repro.api)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import RunSpec, build_pair, compare, optimal_offline, run_join
from repro.core.policies import POLICY_NAMES
from repro.obs import MetricsRegistry

SMALL = dict(window=20, memory=10, length=300, seed=3)


def small_spec(algorithm: str, **overrides) -> RunSpec:
    params = {**SMALL, **overrides}
    return RunSpec(algorithm=algorithm, **params)


class TestRunSpec:
    def test_algorithm_upper_cased_and_validated(self):
        assert RunSpec(algorithm="prob").algorithm == "PROB"
        with pytest.raises(ValueError, match="unknown algorithm"):
            RunSpec(algorithm="NOPE")

    def test_variable_inferred_from_suffix(self):
        assert RunSpec(algorithm="PROB").variable is False
        assert RunSpec(algorithm="PROBV").variable is True
        assert RunSpec(algorithm="OPTV").variable is True

    def test_engine_and_workload_validated(self):
        with pytest.raises(ValueError, match="engine"):
            RunSpec(engine="gpu")
        with pytest.raises(ValueError, match="workload"):
            RunSpec(workload="pareto")

    def test_exact_gets_lossless_memory(self):
        spec = RunSpec(algorithm="EXACT", window=50, memory=10)
        assert spec.effective_memory == 100
        assert RunSpec(algorithm="PROB", memory=10).effective_memory == 10


class TestFacadeRoundTrip:
    """Every registered policy runs through the facade, both allocations."""

    @pytest.mark.parametrize("base", POLICY_NAMES)
    @pytest.mark.parametrize("variable", [False, True])
    def test_policy_times_allocation(self, base, variable):
        name = f"{base}V" if variable else base
        result = run_join(small_spec(name))
        assert result.engine_kind == "fast"
        assert result.policy_name == name
        assert result.output_count >= 0
        summary = result.summary()
        assert summary.engine == "fast"
        assert summary.policy_name == name
        assert summary.drops.total == result.drop_breakdown().total

    def test_exact_matches_run_exact(self):
        spec = small_spec("EXACT")
        result = run_join(spec)
        assert result.policy_name == "EXACT"
        assert result.drop_breakdown().shed == 0

    def test_opt_delegates_to_offline(self):
        spec = small_spec("OPT")
        via_run = run_join(spec)
        direct = optimal_offline(spec)
        assert via_run.output_count == direct.output_count
        assert via_run.policy_name == "OPT"

    def test_async_engine(self):
        result = run_join(small_spec("PROB", engine="async"))
        assert result.engine_kind == "async"
        assert result.output_count >= 0

    def test_slowcpu_engine(self):
        result = run_join(
            small_spec("PROB", engine="slowcpu", service_per_tick=1,
                       queue_capacity=8)
        )
        assert result.engine_kind == "slowcpu"
        assert result.drop_breakdown().total > 0

    def test_explicit_pair_overrides_workload(self):
        spec = small_spec("RAND")
        pair = build_pair(spec)
        assert run_join(spec, pair=pair).output_count == run_join(spec).output_count

    def test_deterministic_given_seed(self):
        spec = small_spec("RAND")
        assert run_join(spec).output_count == run_join(spec).output_count


class TestCompare:
    def test_shares_one_workload(self):
        results = compare([small_spec("RAND"), "PROB", "OPT"])
        assert list(results) == ["RAND", "PROB", "OPT"]
        assert results["PROB"].output_count <= results["OPT"].output_count

    def test_duplicate_labels_are_suffixed(self):
        results = compare([small_spec("RAND"), "RAND"])
        assert list(results) == ["RAND", "RAND#2"]
        assert results["RAND"].output_count == results["RAND#2"].output_count

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            compare([])


class TestMetricsAttachment:
    def test_disabled_by_default(self):
        assert run_join(small_spec("PROB")).metrics is None

    def test_snapshot_attached_when_requested(self):
        result = run_join(small_spec("PROB", metrics=True))
        snapshot = result.metrics
        assert snapshot is not None
        registry = MetricsRegistry.from_snapshot(snapshot)
        assert registry.counter_value("engine.output") == result.output_count
        assert registry.counter_value("engine.probes") > 0
        series = {s.name for s in registry.all_series()}
        assert "engine.occupancy" in series
        assert any(p.path == "engine/run" for p in registry.phases())

    def test_opt_metrics_cover_the_flow_solver(self):
        result = optimal_offline(small_spec("OPT", metrics=True, memory=8))
        registry = MetricsRegistry.from_snapshot(result.metrics)
        assert registry.counter_total("flow.ssp.augmentations") > 0


class TestCounterReconciliation:
    """Counters and the drop breakdown describe the same run."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        memory_slots=st.integers(min_value=2, max_value=20),
        base=st.sampled_from(["RAND", "PROB", "LIFE", "FIFO"]),
        variable=st.booleans(),
    )
    def test_fast_engine_counters_reconcile(self, seed, memory_slots, base, variable):
        name = f"{base}V" if variable else base
        spec = RunSpec(
            algorithm=name,
            window=15,
            memory=2 * memory_slots,
            length=200,
            seed=seed,
            metrics=True,
        )
        result = run_join(spec)
        registry = MetricsRegistry.from_snapshot(result.metrics)
        drops = result.drop_breakdown()

        assert registry.counter_total("engine.drops") == drops.total
        for reason in ("rejected", "evicted", "expired"):
            total = sum(
                registry.counter_value("engine.drops", side=side, reason=reason)
                for side in ("R", "S")
            )
            assert total == getattr(drops, reason)

        arrivals = registry.counter_total("engine.arrivals")
        admissions = registry.counter_total("engine.admissions")
        assert arrivals == 2 * spec.length
        # Every arrival is either admitted or rejected on arrival.
        assert admissions + drops.rejected == arrivals
        # Admitted tuples eventually leave by eviction or expiry, or are
        # still resident at the end of the run.
        resident = sum(g.value for g in registry.gauges()
                       if g.name == "engine.final_occupancy")
        assert admissions == drops.evicted + drops.expired + resident
        assert registry.counter_value("engine.output") == result.output_count

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_slowcpu_counters_reconcile(self, seed):
        spec = RunSpec(
            algorithm="PROB",
            window=15,
            memory=10,
            length=200,
            seed=seed,
            engine="slowcpu",
            service_per_tick=1,
            queue_capacity=6,
            metrics=True,
        )
        result = run_join(spec)
        registry = MetricsRegistry.from_snapshot(result.metrics)
        drops = result.drop_breakdown()
        assert registry.counter_total("queue.shed") == result.shed_from_queue
        assert registry.counter_value("queue.expired") == result.expired_in_queue
        assert (
            registry.counter_value("engine.drops", reason="evicted")
            == result.evicted_from_memory
        )
        assert drops.rejected == result.shed_from_queue + result.rejected_from_memory
        assert drops.expired == result.expired_in_queue + result.expired_resident
