"""Tests for the unified public run API (repro.api)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.api as api_module
from repro.api import (
    RunSpec,
    build_pair,
    compare,
    optimal_offline,
    run,
    run_join,
    run_sharded,
)
from repro.core.policies import POLICY_NAMES
from repro.core.results import SCHEMA_VERSION, DropBreakdown, RunSummary
from repro.obs import MetricsRegistry
from repro.runtime import Fault, FaultPlan

SMALL = dict(window=20, memory=10, length=300, seed=3)


def small_spec(algorithm: str, **overrides) -> RunSpec:
    params = {**SMALL, **overrides}
    return RunSpec(algorithm=algorithm, **params)


class TestRunSpec:
    def test_algorithm_upper_cased_and_validated(self):
        assert RunSpec(algorithm="prob").algorithm == "PROB"
        with pytest.raises(ValueError, match="unknown algorithm"):
            RunSpec(algorithm="NOPE")

    def test_variable_inferred_from_suffix(self):
        assert RunSpec(algorithm="PROB").variable is False
        assert RunSpec(algorithm="PROBV").variable is True
        assert RunSpec(algorithm="OPTV").variable is True

    def test_engine_and_workload_validated(self):
        with pytest.raises(ValueError, match="engine"):
            RunSpec(engine="gpu")
        with pytest.raises(ValueError, match="workload"):
            RunSpec(workload="pareto")

    def test_exact_gets_lossless_memory(self):
        spec = RunSpec(algorithm="EXACT", window=50, memory=10)
        assert spec.effective_memory == 100
        assert RunSpec(algorithm="PROB", memory=10).effective_memory == 10


class TestFacadeRoundTrip:
    """Every registered policy runs through the facade, both allocations."""

    @pytest.mark.parametrize("base", POLICY_NAMES)
    @pytest.mark.parametrize("variable", [False, True])
    def test_policy_times_allocation(self, base, variable):
        name = f"{base}V" if variable else base
        result = run(small_spec(name))
        assert result.engine_kind == "fast"
        assert result.policy_name == name
        assert result.output_count >= 0
        summary = result.summary()
        assert summary.engine == "fast"
        assert summary.policy_name == name
        assert summary.drops.total == result.drop_breakdown().total

    def test_exact_matches_run_exact(self):
        spec = small_spec("EXACT")
        result = run(spec)
        assert result.policy_name == "EXACT"
        assert result.drop_breakdown().shed == 0

    def test_opt_delegates_to_offline(self):
        spec = small_spec("OPT")
        via_run = run(spec)
        direct = optimal_offline(spec)
        assert via_run.output_count == direct.output_count
        assert via_run.policy_name == "OPT"

    def test_async_engine(self):
        result = run(small_spec("PROB", engine="async"))
        assert result.engine_kind == "async"
        assert result.output_count >= 0

    def test_slowcpu_engine(self):
        result = run(
            small_spec("PROB", engine="slowcpu", service_per_tick=1,
                       queue_capacity=8)
        )
        assert result.engine_kind == "slowcpu"
        assert result.drop_breakdown().total > 0

    def test_explicit_pair_overrides_workload(self):
        spec = small_spec("RAND")
        pair = build_pair(spec)
        assert run(spec, pair=pair).output_count == run(spec).output_count

    def test_deterministic_given_seed(self):
        spec = small_spec("RAND")
        assert run(spec).output_count == run(spec).output_count


class TestCompare:
    def test_shares_one_workload(self):
        results = compare([small_spec("RAND"), "PROB", "OPT"])
        assert list(results) == ["RAND", "PROB", "OPT"]
        assert results["PROB"].output_count <= results["OPT"].output_count

    def test_duplicate_labels_are_suffixed(self):
        results = compare([small_spec("RAND"), "RAND"])
        assert list(results) == ["RAND", "RAND#2"]
        assert results["RAND"].output_count == results["RAND#2"].output_count

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            compare([])


class TestMetricsAttachment:
    def test_disabled_by_default(self):
        assert run(small_spec("PROB")).metrics is None

    def test_snapshot_attached_when_requested(self):
        result = run(small_spec("PROB", metrics=True))
        snapshot = result.metrics
        assert snapshot is not None
        registry = MetricsRegistry.from_snapshot(snapshot)
        assert registry.counter_value("engine.output") == result.output_count
        assert registry.counter_value("engine.probes") > 0
        series = {s.name for s in registry.all_series()}
        assert "engine.occupancy" in series
        assert any(p.path == "engine/run" for p in registry.phases())

    def test_opt_metrics_cover_the_flow_solver(self):
        result = optimal_offline(small_spec("OPT", metrics=True, memory=8))
        registry = MetricsRegistry.from_snapshot(result.metrics)
        assert registry.counter_total("flow.ssp.augmentations") > 0


class TestUnifiedEntrypoint:
    def test_public_surface_is_explicit(self):
        assert "run" in api_module.__all__
        assert "_run_join_shard" not in api_module.__all__
        assert hasattr(api_module, "_run_join_shard")  # private, but real

    def test_run_join_is_a_deprecated_alias(self):
        spec = small_spec("PROB")
        with pytest.warns(DeprecationWarning, match="run_join"):
            legacy = run_join(spec)
        assert legacy.output_count == run(spec).output_count

    def test_run_sharded_is_a_deprecated_alias(self):
        spec = small_spec("PROB", shards=2)
        with pytest.warns(DeprecationWarning, match="run_sharded"):
            legacy = run_sharded(spec)
        assert legacy.output_count == run(spec).output_count

    def test_run_itself_never_warns(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run(small_spec("PROB", shards=2))


class TestFaultToleranceValidation:
    @pytest.mark.parametrize(
        "knob",
        [
            dict(max_retries=1),
            dict(timeout_s=5.0),
            dict(checkpoint_every=8),
            dict(degrade=True),
        ],
    )
    def test_knobs_require_sharding(self, knob):
        with pytest.raises(ValueError, match="requires sharded execution"):
            small_spec("PROB", **knob)

    @pytest.mark.parametrize(
        "knob, match",
        [
            (dict(max_retries=-1), "max_retries"),
            (dict(timeout_s=0), "timeout_s"),
            (dict(checkpoint_every=0), "checkpoint_every"),
            (dict(checkpoint_dir="/tmp/x"), "checkpoint_dir"),
        ],
    )
    def test_knob_values_validated(self, knob, match):
        with pytest.raises(ValueError, match=match):
            small_spec("PROB", shards=2, **knob)


class TestResultSchema:
    def test_summary_round_trips(self):
        summary = run(small_spec("PROB")).summary()
        record = summary.to_dict()
        assert record["schema_version"] == SCHEMA_VERSION
        assert RunSummary.from_dict(record) == summary

    def test_drops_round_trip(self):
        drops = DropBreakdown(rejected=3, evicted=2, expired=9, lost=4)
        assert DropBreakdown.from_dict(drops.to_dict()) == drops

    def test_metrics_embedded_only_on_request(self):
        summary = run(small_spec("PROB", metrics=True)).summary()
        assert "metrics" not in summary.to_dict()
        assert summary.to_dict(metrics=True)["metrics"] is not None

    def test_v1_records_still_load(self):
        # pre-lost_shard era: no schema_version, no lost_shard key
        drops = DropBreakdown.from_dict(
            {"rejected": 5, "evicted": 1, "expired": 2}
        )
        assert drops.lost == 0 and drops.total == 8
        summary = RunSummary.from_dict(
            {"engine": "fast", "policy": "PROB", "output_count": 42,
             "drops": {"rejected": 5}}
        )
        assert summary.output_count == 42
        assert summary.drops.rejected == 5

    def test_future_versions_are_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            DropBreakdown.from_dict({"schema_version": SCHEMA_VERSION + 1})
        with pytest.raises(ValueError, match="schema_version"):
            RunSummary.from_dict(
                {"schema_version": SCHEMA_VERSION + 1, "engine": "fast",
                 "policy": "PROB", "output_count": 0}
            )


def _ft_spec(algorithm, **overrides):
    params = dict(
        window=20, memory=10, length=300, seed=3, shards=3,
        max_retries=2, checkpoint_every=16,
    )
    params.update(overrides)
    return RunSpec(algorithm=algorithm, **params)


def _fingerprint(result):
    return (
        result.output_count,
        result.total_output_count,
        result.drop_breakdown(),
        result.per_shard,
    )


class TestFaultRecoveryIdentity:
    """A retried worker-kill run is bit-identical to the fault-free one."""

    @pytest.mark.parametrize("algorithm", ["EXACT", "PROB", "RAND"])
    @pytest.mark.parametrize("workers", [1, 2])
    def test_mid_run_kill_recovers_identically(self, algorithm, workers):
        spec = _ft_spec(algorithm)
        pair = build_pair(spec)
        baseline = run(spec, pair=pair, workers=workers)
        plan = FaultPlan((Fault("kill", cell=1, tick=150),))
        recovered = run(spec, pair=pair, workers=workers, fault_plan=plan)
        assert _fingerprint(recovered) == _fingerprint(baseline)

    def test_ft_knobs_alone_change_nothing(self):
        plain = RunSpec(algorithm="PROB", window=20, memory=10,
                        length=300, seed=3, shards=3)
        pair = build_pair(plain)
        assert _fingerprint(run(plain, pair=pair)) == _fingerprint(
            run(_ft_spec("PROB"), pair=pair)
        )

    def test_seeded_plan_recovers_identically(self):
        spec = _ft_spec("PROB")
        pair = build_pair(spec)
        baseline = run(spec, pair=pair, workers=2)
        plan = FaultPlan.seeded(11, cells=spec.shards, ticks=spec.length,
                                kills=2)
        recovered = run(spec, pair=pair, workers=2, fault_plan=plan)
        assert _fingerprint(recovered) == _fingerprint(baseline)


class TestGracefulDegradation:
    def test_exact_loss_reconciles_to_the_tuple(self):
        spec = _ft_spec("EXACT", max_retries=0, checkpoint_every=None,
                        degrade=True)
        pair = build_pair(spec)
        fault_free = run(RunSpec(algorithm="EXACT", window=20, memory=10,
                                 length=300, seed=3, shards=3), pair=pair)
        plan = FaultPlan((Fault("kill", cell=2, attempts=10**6),))
        degraded = run(spec, pair=pair, workers=2, fault_plan=plan)
        assert degraded.lost_shards == (2,)
        assert degraded.per_shard[2] is None
        assert degraded.lost_output is not None
        assert (
            degraded.output_count + degraded.lost_output
            == fault_free.output_count
        )
        assert degraded.drop_breakdown().lost > 0

    def test_policy_loss_is_attributed_without_reconciliation(self):
        spec = _ft_spec("PROB", max_retries=0, checkpoint_every=None,
                        degrade=True)
        pair = build_pair(spec)
        plan = FaultPlan((Fault("kill", cell=0, attempts=10**6),))
        degraded = run(spec, pair=pair, workers=2, fault_plan=plan)
        assert degraded.lost_shards == (0,)
        # no exact reconciliation for lossy policies — but the ledger books
        # every input tuple the abandoned shard owned
        assert degraded.lost_output is None
        assert degraded.drop_breakdown().lost > 0

    def test_without_degrade_the_failure_raises(self):
        from repro.runtime import CellError

        spec = _ft_spec("EXACT", max_retries=0, checkpoint_every=None)
        pair = build_pair(spec)
        plan = FaultPlan((Fault("kill", cell=1, attempts=10**6),))
        with pytest.raises(CellError, match="injected kill"):
            run(spec, pair=pair, workers=2, fault_plan=plan)


class TestCounterReconciliation:
    """Counters and the drop breakdown describe the same run."""

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        memory_slots=st.integers(min_value=2, max_value=20),
        base=st.sampled_from(["RAND", "PROB", "LIFE", "FIFO"]),
        variable=st.booleans(),
    )
    def test_fast_engine_counters_reconcile(self, seed, memory_slots, base, variable):
        name = f"{base}V" if variable else base
        spec = RunSpec(
            algorithm=name,
            window=15,
            memory=2 * memory_slots,
            length=200,
            seed=seed,
            metrics=True,
        )
        result = run(spec)
        registry = MetricsRegistry.from_snapshot(result.metrics)
        drops = result.drop_breakdown()

        assert registry.counter_total("engine.drops") == drops.total
        for reason in ("rejected", "evicted", "expired"):
            total = sum(
                registry.counter_value("engine.drops", side=side, reason=reason)
                for side in ("R", "S")
            )
            assert total == getattr(drops, reason)

        arrivals = registry.counter_total("engine.arrivals")
        admissions = registry.counter_total("engine.admissions")
        assert arrivals == 2 * spec.length
        # Every arrival is either admitted or rejected on arrival.
        assert admissions + drops.rejected == arrivals
        # Admitted tuples eventually leave by eviction or expiry, or are
        # still resident at the end of the run.
        resident = sum(g.value for g in registry.gauges()
                       if g.name == "engine.final_occupancy")
        assert admissions == drops.evicted + drops.expired + resident
        assert registry.counter_value("engine.output") == result.output_count

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_slowcpu_counters_reconcile(self, seed):
        spec = RunSpec(
            algorithm="PROB",
            window=15,
            memory=10,
            length=200,
            seed=seed,
            engine="slowcpu",
            service_per_tick=1,
            queue_capacity=6,
            metrics=True,
        )
        result = run(spec)
        registry = MetricsRegistry.from_snapshot(result.metrics)
        drops = result.drop_breakdown()
        assert registry.counter_total("queue.shed") == result.shed_from_queue
        assert registry.counter_value("queue.expired") == result.expired_in_queue
        assert (
            registry.counter_value("engine.drops", reason="evicted")
            == result.evicted_from_memory
        )
        assert drops.rejected == result.shed_from_queue + result.rejected_from_memory
        assert drops.expired == result.expired_in_queue + result.expired_resident
