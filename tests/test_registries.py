"""Consistency checks across the public registries and exports."""

import pytest

import repro
from repro.experiments import (
    ABLATION_GENERATORS,
    ALL_ALGORITHMS,
    FIGURE_GENERATORS,
    TABLE_GENERATORS,
)


class TestAlgorithmRegistry:
    def test_every_fixed_algorithm_has_a_variable_twin(self):
        fixed = [n for n in ALL_ALGORITHMS if not n.endswith("V") and n not in ("EXACT",)]
        for name in fixed:
            if name == "OPT":
                assert "OPTV" in ALL_ALGORITHMS
            else:
                assert f"{name}V" in ALL_ALGORITHMS

    def test_no_duplicates(self):
        assert len(set(ALL_ALGORITHMS)) == len(ALL_ALGORITHMS)


class TestFigureRegistry:
    def test_all_paper_figures_present(self):
        expected = {f"figure{i}" for i in range(3, 12)}
        assert expected == set(FIGURE_GENERATORS)

    def test_table_registry_covers_prose_results_and_extensions(self):
        expected = {
            "variable_memory",
            "varying_memory",
            "multi_query",
            "static_join",
            "multiway_join",
            "arm_study",
            "slow_cpu",
        }
        assert expected == set(TABLE_GENERATORS)

    def test_ablation_registry(self):
        assert set(ABLATION_GENERATORS) == {
            "ablation_statistics",
            "ablation_predictor",
            "ablation_drift",
            "ablation_solver",
        }

    def test_registries_disjoint(self):
        assert not set(TABLE_GENERATORS) & set(ABLATION_GENERATORS)
        assert not set(FIGURE_GENERATORS) & set(TABLE_GENERATORS)


class TestPackageExports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import repro.core as core
        import repro.experiments as experiments
        import repro.flow as flow
        import repro.stats as stats
        import repro.streams as streams

        for module in (core, experiments, flow, stats, streams):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_readme_quickstart_snippet(self):
        """The README's quickstart code runs and shows the right ordering."""
        from repro import exact_join_size, run_algorithm, zipf_pair

        pair = zipf_pair(length=2000, domain_size=50, skew=1.0, seed=7)
        window, memory = 100, 50
        rand = run_algorithm("RAND", pair, window, memory)
        prob = run_algorithm("PROB", pair, window, memory)
        opt = run_algorithm("OPT", pair, window, memory)
        exact = exact_join_size(pair, window, count_from=2 * window)
        assert rand.output_count < prob.output_count <= opt.output_count <= exact
