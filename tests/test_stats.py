"""Tests for the statistics module (frequency estimators & sketches)."""

import numpy as np
import pytest
from collections import Counter
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    CountMinSketch,
    EquiDepthHistogram,
    EquiWidthHistogram,
    EwmaFrequencyEstimator,
    FrequencyEstimator,
    OnlineFrequencyCounter,
    SpaceSaving,
    StaticFrequencyTable,
)


class TestStaticFrequencyTable:
    def test_normalisation(self):
        table = StaticFrequencyTable({1: 2, 2: 2})
        assert table.probability(1) == pytest.approx(0.5)
        assert table.probability(99) == 0.0

    def test_from_stream(self):
        table = StaticFrequencyTable.from_stream([1, 1, 1, 2])
        assert table.probability(1) == pytest.approx(0.75)

    def test_from_array(self):
        table = StaticFrequencyTable.from_array([0.2, 0.8])
        assert table.probability(1) == pytest.approx(0.8)

    def test_observe_is_noop(self):
        table = StaticFrequencyTable({1: 1})
        table.observe(2)
        assert table.probability(2) == 0.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            StaticFrequencyTable({})
        with pytest.raises(ValueError):
            StaticFrequencyTable({1: -1, 2: 2})
        with pytest.raises(ValueError):
            StaticFrequencyTable.from_stream([])

    def test_satisfies_protocol(self):
        assert isinstance(StaticFrequencyTable({1: 1}), FrequencyEstimator)


class TestOnlineCounter:
    def test_counts(self):
        counter = OnlineFrequencyCounter()
        for key in [1, 1, 2]:
            counter.observe(key)
        assert counter.probability(1) == pytest.approx(2 / 3)
        assert counter.count(2) == 1
        assert counter.total == 3
        assert len(counter) == 2

    def test_empty(self):
        assert OnlineFrequencyCounter().probability(1) == 0.0

    def test_smoothing_gives_unseen_keys_mass(self):
        counter = OnlineFrequencyCounter(smoothing=1.0)
        counter.observe(1)
        assert counter.probability(2) > 0.0
        assert counter.probability(1) > counter.probability(2)

    def test_negative_smoothing_rejected(self):
        with pytest.raises(ValueError):
            OnlineFrequencyCounter(smoothing=-1)


class TestEwma:
    def test_converges_on_stationary_stream(self):
        est = EwmaFrequencyEstimator(alpha=0.01)
        rng = np.random.default_rng(0)
        for key in rng.choice([0, 1], p=[0.7, 0.3], size=5000):
            est.observe(int(key))
        assert est.probability(0) == pytest.approx(0.7, abs=0.08)
        assert est.probability(1) == pytest.approx(0.3, abs=0.08)

    def test_adapts_to_shift(self):
        est = EwmaFrequencyEstimator(alpha=0.05)
        for _ in range(500):
            est.observe("old")
        for _ in range(500):
            est.observe("new")
        assert est.probability("new") > 0.9
        assert est.probability("old") < 0.05

    def test_alpha_one_remembers_only_last(self):
        est = EwmaFrequencyEstimator(alpha=1.0)
        est.observe("a")
        est.observe("b")
        assert est.probability("b") == pytest.approx(1.0)
        assert est.probability("a") == pytest.approx(0.0)

    def test_empty(self):
        assert EwmaFrequencyEstimator(0.1).probability("x") == 0.0

    def test_invalid_alpha(self):
        for alpha in (0.0, -1, 1.5):
            with pytest.raises(ValueError):
                EwmaFrequencyEstimator(alpha)

    @settings(max_examples=25, deadline=None)
    @given(keys=st.lists(st.integers(0, 5), min_size=1, max_size=200))
    def test_probabilities_sum_to_at_most_one(self, keys):
        est = EwmaFrequencyEstimator(alpha=0.1)
        for key in keys:
            est.observe(key)
        total = sum(est.probability(k) for k in range(6))
        assert total == pytest.approx(1.0, abs=1e-9)


class TestCountMin:
    def test_never_undercounts(self):
        sketch = CountMinSketch(width=20, depth=4, seed=1)
        rng = np.random.default_rng(1)
        stream = rng.integers(0, 100, size=2000).tolist()
        truth = Counter(stream)
        for key in stream:
            sketch.observe(key)
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_error_bound(self):
        sketch = CountMinSketch.from_error_bounds(epsilon=0.01, delta=0.01, seed=2)
        rng = np.random.default_rng(2)
        stream = rng.zipf(1.5, size=5000).tolist()
        truth = Counter(stream)
        for key in stream:
            sketch.observe(key)
        overshoot = [sketch.estimate(k) - c for k, c in truth.items()]
        # epsilon * N bound should hold for the vast majority of keys.
        within = sum(1 for o in overshoot if o <= 0.01 * len(stream))
        assert within / len(overshoot) > 0.95

    def test_conservative_no_worse(self):
        plain = CountMinSketch(width=10, depth=3, seed=3)
        conservative = CountMinSketch(width=10, depth=3, seed=3, conservative=True)
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 50, size=1000).tolist()
        for key in stream:
            plain.observe(key)
            conservative.observe(key)
        for key in set(stream):
            assert conservative.estimate(key) <= plain.estimate(key)
            assert conservative.estimate(key) >= Counter(stream)[key]

    def test_probability_and_memory(self):
        sketch = CountMinSketch(width=8, depth=2)
        assert sketch.probability("x") == 0.0
        sketch.observe("x")
        assert sketch.probability("x") == pytest.approx(1.0)
        assert sketch.memory_counters() == 16

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountMinSketch(0, 1)
        with pytest.raises(ValueError):
            CountMinSketch.from_error_bounds(epsilon=2, delta=0.1)


class TestSpaceSaving:
    def test_estimate_brackets_truth(self):
        summary = SpaceSaving(capacity=10)
        rng = np.random.default_rng(4)
        stream = rng.zipf(1.8, size=3000)
        stream = stream[stream <= 50].tolist()
        truth = Counter(stream)
        for key in stream:
            summary.observe(key)
        for key in truth:
            estimate = summary.estimate(key)
            if estimate:  # tracked
                assert estimate >= truth[key]
                assert summary.guaranteed_count(key) <= truth[key]

    def test_heavy_hitters_guarantee(self):
        summary = SpaceSaving(capacity=20)
        stream = [1] * 500 + [2] * 300 + list(range(3, 203))
        truth = Counter(stream)
        for key in stream:
            summary.observe(key)
        hitters = summary.heavy_hitters(0.2)
        assert set(hitters) == {1, 2} or set(hitters) == {1}
        for key in hitters:
            assert truth[key] > 0.2 * summary.total - summary.error(key)

    def test_capacity_bound(self):
        summary = SpaceSaving(capacity=5)
        for key in range(100):
            summary.observe(key)
        assert len(summary) == 5

    def test_probability(self):
        summary = SpaceSaving(capacity=4)
        for key in [1, 1, 2]:
            summary.observe(key)
        assert summary.probability(1) == pytest.approx(2 / 3)

    def test_invalid_threshold_and_capacity(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)
        with pytest.raises(ValueError):
            SpaceSaving(3).heavy_hitters(2.0)


class TestHistograms:
    def test_equi_width_add_remove(self):
        hist = EquiWidthHistogram(0, 10, buckets=5)
        hist.add(1.0)
        hist.add(1.5)
        hist.add(9.0)
        assert hist.total == 3
        assert hist.probability(1.2) == pytest.approx(2 / 3)
        hist.remove(1.0)
        assert hist.probability(1.2) == pytest.approx(1 / 2)

    def test_equi_width_clamps_out_of_range(self):
        hist = EquiWidthHistogram(0, 10, buckets=5)
        assert hist.bucket_of(-5) == 0
        assert hist.bucket_of(50) == 4

    def test_equi_width_remove_from_empty_rejected(self):
        hist = EquiWidthHistogram(0, 10, buckets=2)
        with pytest.raises(ValueError):
            hist.remove(1.0)

    def test_equi_width_validation(self):
        with pytest.raises(ValueError):
            EquiWidthHistogram(0, 10, buckets=0)
        with pytest.raises(ValueError):
            EquiWidthHistogram(5, 5, buckets=2)

    def test_equi_depth_balanced_buckets(self):
        data = list(range(100))
        hist = EquiDepthHistogram(data, buckets=4)
        assert sum(hist.counts()) == 100
        assert max(hist.counts()) - min(hist.counts()) <= 1

    def test_equi_depth_probability(self):
        hist = EquiDepthHistogram([1, 2, 3, 4], buckets=2)
        assert hist.probability(1) == pytest.approx(0.5)
        assert hist.probability(100) == 0.0

    def test_equi_depth_empty_rejected(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram([], buckets=2)
