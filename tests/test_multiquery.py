"""Tests for multi-query resource sharing and its workload generator."""

import pytest

from repro.core.multiquery import QuerySpec, SharedQueueSystem
from repro.experiments import multi_query_study
from repro.streams import exact_join_size, multi_attribute_pair
from repro.streams.tuples import StreamPair


def _single_attribute_view(pair, attribute: int) -> StreamPair:
    """Project a multi-attribute pair onto one join attribute."""
    return StreamPair(
        r=[keys[attribute] for keys in pair.r],
        s=[keys[attribute] for keys in pair.s],
    )


class TestMultiAttributePair:
    def test_shape(self):
        pair = multi_attribute_pair(100, [10, 5], [1.0, 0.0], seed=1)
        assert len(pair) == 100
        assert all(len(keys) == 2 for keys in pair.r)
        assert all(0 <= keys[0] < 10 and 0 <= keys[1] < 5 for keys in pair.s)
        assert len(pair.metadata["attribute_distributions"]) == 2

    def test_determinism(self):
        a = multi_attribute_pair(50, [5], [1.0], seed=2)
        b = multi_attribute_pair(50, [5], [1.0], seed=2)
        assert list(a.r) == list(b.r)

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_attribute_pair(10, [5], [1.0, 2.0])
        with pytest.raises(ValueError):
            multi_attribute_pair(10, [], [])
        with pytest.raises(ValueError):
            multi_attribute_pair(-1, [5], [1.0])


class TestQuerySpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuerySpec("q", attribute=0, window=0, memory=4)
        with pytest.raises(ValueError):
            QuerySpec("q", attribute=0, window=5, memory=3)
        with pytest.raises(ValueError):
            QuerySpec("q", attribute=-1, window=5, memory=4)


class TestSharedQueueSystem:
    def _pair(self, length=400, seed=3):
        return multi_attribute_pair(length, [10, 8], [1.2, 0.8], seed=seed)

    def _queries(self, window=20):
        return [
            QuerySpec("alpha", attribute=0, window=window, memory=2 * window),
            QuerySpec("beta", attribute=1, window=window, memory=2 * window),
        ]

    def test_configuration_validation(self):
        pair = self._pair()
        queries = self._queries()
        with pytest.raises(ValueError, match="at least one"):
            SharedQueueSystem(pair, [], service_per_tick=2, queue_capacity=4)
        with pytest.raises(ValueError, match="unique"):
            SharedQueueSystem(
                pair, [queries[0], queries[0]], service_per_tick=2, queue_capacity=4
            )
        with pytest.raises(ValueError, match="shed_rule"):
            SharedQueueSystem(
                pair, queries, service_per_tick=2, queue_capacity=4, shed_rule="x"
            )
        with pytest.raises(ValueError, match="out of range"):
            SharedQueueSystem(
                pair,
                [QuerySpec("q", attribute=7, window=5, memory=10)],
                service_per_tick=2,
                queue_capacity=4,
            )
        plain = StreamPair(r=[1], s=[1])
        with pytest.raises(ValueError, match="multi_attribute_pair"):
            SharedQueueSystem(plain, queries, service_per_tick=2, queue_capacity=4)

    def test_ample_resources_give_each_query_its_exact_join(self):
        """With enough service/queue/memory each query sees its full join."""
        pair = self._pair()
        window = 20
        queries = self._queries(window)
        system = SharedQueueSystem(
            pair,
            queries,
            service_per_tick=2 * len(queries),
            queue_capacity=8,
            warmup=0,
        )
        result = system.run()
        assert result.shed_from_queue == 0
        for query in queries:
            view = _single_attribute_view(pair, query.attribute)
            assert result.outputs[query.name] == exact_join_size(view, window)

    def test_overload_sheds(self):
        pair = self._pair()
        system = SharedQueueSystem(
            pair,
            self._queries(),
            service_per_tick=2,  # half of what two queries need
            queue_capacity=6,
        )
        result = system.run()
        assert result.shed_from_queue > 0
        assert result.processed < result.arrived

    @pytest.mark.parametrize("rule", ["max", "sum"])
    def test_semantic_sharing_beats_random(self, rule):
        pair = multi_attribute_pair(800, [30, 15], [1.5, 1.0], seed=4)
        queries = [
            QuerySpec("alpha", attribute=0, window=30, memory=16),
            QuerySpec("beta", attribute=1, window=30, memory=16),
        ]

        def total(shed_rule):
            system = SharedQueueSystem(
                pair,
                queries,
                service_per_tick=2,
                queue_capacity=10,
                shed_rule=shed_rule,
                warmup=60,
                seed=5,
            )
            return system.run().total_output

        assert total(rule) > total("random")

    def test_determinism(self):
        pair = self._pair()

        def run_once():
            system = SharedQueueSystem(
                pair,
                self._queries(),
                service_per_tick=2,
                queue_capacity=6,
                shed_rule="random",
                seed=9,
            )
            return system.run().outputs

        assert run_once() == run_once()


class TestMultiQueryStudy:
    def test_expected_shape(self, tiny_scale):
        table = multi_query_study(tiny_scale, seed=0)
        totals = dict(zip(table.column("shed rule"), table.column("total")))
        assert totals["max"] > totals["random"]
        assert totals["sum"] > totals["random"]
        # Neither query is starved under semantic sharing.
        for rule_row in table.rows:
            if rule_row[0] in ("max", "sum"):
                assert rule_row[1] > 0 and rule_row[2] > 0
