"""Unit tests for the shared join kernel (repro.core.kernel)."""

import pytest

from repro.core.kernel import JoinKernel
from repro.core.memory import JoinMemory, TupleRecord
from repro.core.policies import FifoPolicy
from repro.core.policies.base import EvictionPolicy, arrival_observers


def _fifo_kernel(capacity=4, **kwargs):
    memory = JoinMemory(capacity)
    policy_r, policy_s = FifoPolicy(), FifoPolicy()
    policy_r.bind(memory)
    policy_s.bind(memory)
    return JoinKernel(memory, policy_r, policy_s, **kwargs)


class TestProbeAndInsert:
    def test_probe_counts_opposite_side_matches(self):
        kernel = _fifo_kernel()
        kernel.insert(TupleRecord("R", 0, "a"), 0)
        kernel.insert(TupleRecord("R", 1, "a"), 1)
        assert kernel.probe("S", "a", 2) == 2
        assert kernel.probe("S", "b", 2) == 0
        assert kernel.probe("R", "a", 2) == 0  # own side never matches

    def test_free_admit(self):
        kernel = _fifo_kernel()
        admitted, victim = kernel.insert(TupleRecord("R", 0, "a"), 0)
        assert admitted and victim is None
        assert kernel.drops().total == 0

    def test_displacement_counts_eviction(self):
        kernel = _fifo_kernel(capacity=2)  # one slot per side
        kernel.insert(TupleRecord("R", 0, "a"), 0)
        admitted, victim = kernel.insert(TupleRecord("R", 1, "b"), 1)
        assert admitted and victim is not None
        assert victim.arrival == 0  # FIFO displaces the oldest
        assert kernel.side_drops("R", "evicted") == 1
        assert kernel.drops().evicted == 1

    def test_overflow_without_policy_raises_configured_error(self):
        class Boom(RuntimeError):
            pass

        memory = JoinMemory(2)
        kernel = JoinKernel(memory, None, None, overflow_error=Boom)
        kernel.insert(TupleRecord("R", 0, "a"), 0)
        with pytest.raises(Boom, match="overflow"):
            kernel.insert(TupleRecord("R", 1, "b"), 1)

    def test_rejection_counts_against_newcomer_side(self):
        class RejectAll(EvictionPolicy):
            name = "REJECT"

            def choose_victim(self, candidate, now):
                return None

            def weakest_resident(self, stream, now):
                return None

        memory = JoinMemory(2)
        policy_r, policy_s = RejectAll(), RejectAll()
        policy_r.bind(memory)
        policy_s.bind(memory)
        kernel = JoinKernel(memory, policy_r, policy_s)
        kernel.insert(TupleRecord("S", 0, "a"), 0)
        admitted, victim = kernel.insert(TupleRecord("S", 1, "b"), 1)
        assert not admitted and victim is None
        assert kernel.side_drops("S", "rejected") == 1
        assert kernel.side_drops("R", "rejected") == 0


class TestExpire:
    def test_expire_sweeps_both_sides_and_counts(self):
        kernel = _fifo_kernel(capacity=8)
        kernel.insert(TupleRecord("R", 0, "a"), 0)
        kernel.insert(TupleRecord("S", 1, "a"), 1)
        kernel.insert(TupleRecord("R", 5, "a"), 5)
        expired = kernel.expire(1, 6)
        assert sorted(r.arrival for r in expired) == [0, 1]
        assert kernel.drops().expired == 2
        assert kernel.probe("S", "a", 6) == 1  # only the t=5 tuple remains

    def test_expire_single_side(self):
        kernel = _fifo_kernel(capacity=8)
        kernel.insert(TupleRecord("R", 0, "a"), 0)
        kernel.insert(TupleRecord("S", 0, "a"), 0)
        expired = kernel.expire(0, 3, side="R")
        assert [r.stream for r in expired] == ["R"]
        assert kernel.side_drops("R", "expired") == 1
        assert kernel.side_drops("S", "expired") == 0

    def test_empty_expire_returns_nothing(self):
        kernel = _fifo_kernel()
        assert kernel.expire(10, 10) == []
        assert kernel.drops().total == 0


class TestShedSurplus:
    def test_shrunken_budget_evicts_down(self):
        kernel = _fifo_kernel(capacity=4)
        for t in range(2):
            kernel.insert(TupleRecord("R", t, t), t)
            kernel.insert(TupleRecord("S", t, t), t)
        kernel.memory.resize(2)  # one resident per side now
        victims = kernel.shed_surplus(5)
        assert len(victims) == 2
        assert {v.stream for v in victims} == {"R", "S"}
        assert kernel.drops().evicted == 2

    def test_departure_callback_sees_each_victim(self):
        kernel = _fifo_kernel(capacity=4)
        for t in range(2):
            kernel.insert(TupleRecord("R", t, t), t)
        kernel.memory.resize(2)
        seen = []
        kernel.shed_surplus(5, on_departure=seen.append)
        assert len(seen) == 1 and seen[0].stream == "R"


class TestArrivalObservers:
    def test_non_observing_policies_filtered(self):
        class Plain(EvictionPolicy):
            name = "PLAIN"

            def choose_victim(self, candidate, now):
                return None

            def weakest_resident(self, stream, now):
                return None

        class Watcher(Plain):
            name = "WATCH"

            def observe_arrival(self, stream, key, now):
                pass

        class MutedWatcher(Watcher):
            name = "MUTED"
            observes_arrivals = False

        plain, watcher, muted = Plain(), Watcher(), MutedWatcher()
        assert arrival_observers([plain, watcher, muted, None]) == (watcher,)

    def test_kernel_observe_reaches_observers(self):
        class Counting(EvictionPolicy):
            name = "COUNT"

            def __init__(self):
                super().__init__()
                self.seen = []

            def observe_arrival(self, stream, key, now):
                self.seen.append((stream, key, now))

            def choose_victim(self, candidate, now):
                return None

            def weakest_resident(self, stream, now):
                return None

        memory = JoinMemory(4)
        policy_r, policy_s = Counting(), Counting()
        policy_r.bind(memory)
        policy_s.bind(memory)
        kernel = JoinKernel(memory, policy_r, policy_s)
        kernel.observe("R", 7, 3)
        assert policy_r.seen == [("R", 7, 3)]
        assert policy_s.seen == [("R", 7, 3)]

    def test_shared_instance_observed_once(self):
        class Counting(EvictionPolicy):
            name = "COUNT"

            def __init__(self):
                super().__init__()
                self.calls = 0

            def observe_arrival(self, stream, key, now):
                self.calls += 1

            def choose_victim(self, candidate, now):
                return None

            def weakest_resident(self, stream, now):
                return None

        memory = JoinMemory(4, variable=True)
        shared = Counting()
        shared.bind(memory)
        kernel = JoinKernel(memory, shared, shared)
        kernel.observe("S", 1, 0)
        assert shared.calls == 1
