"""Tests for Bellman-Ford, DAG shortest paths, and flow validation."""

import pytest

from repro.flow import (
    FlowNetwork,
    FlowResult,
    NegativeCycleError,
    ResidualGraph,
    check_feasible,
    check_optimal,
    has_negative_cycle,
    recompute_cost,
    shortest_distances_from,
    shortest_paths,
    solve_min_cost_flow,
    topological_order,
)
from repro.flow.bellman_ford import extract_path


def _residual(network: FlowNetwork) -> ResidualGraph:
    return ResidualGraph(network)


class TestBellmanFord:
    def test_shortest_paths_with_negative_arcs(self):
        network = FlowNetwork()
        network.add_nodes(4)
        network.add_arc(0, 1, 1, 4)
        network.add_arc(0, 2, 1, 1)
        network.add_arc(2, 1, 1, -3)  # 0->2->1 is cheaper: cost -2
        network.add_arc(1, 3, 1, 2)
        dist, parents = shortest_paths(_residual(network), 0)
        assert dist[1] == -2
        assert dist[3] == 0
        path = extract_path(parents, _residual(network), 3)
        assert path is not None and len(path) == 3

    def test_unreachable_nodes_are_infinite(self):
        network = FlowNetwork()
        network.add_nodes(3)
        network.add_arc(0, 1, 1, 1)
        dist, _ = shortest_paths(_residual(network), 0)
        assert dist[2] == float("inf")

    def test_negative_cycle_raises(self):
        network = FlowNetwork()
        network.add_nodes(2)
        network.add_arc(0, 1, 1, -2)
        network.add_arc(1, 0, 1, 1)
        with pytest.raises(NegativeCycleError):
            shortest_paths(_residual(network), 0)

    def test_zero_capacity_arcs_ignored(self):
        network = FlowNetwork()
        network.add_nodes(2)
        network.add_arc(0, 1, 0, -100)
        dist, _ = shortest_paths(_residual(network), 0)
        assert dist[1] == float("inf")

    def test_has_negative_cycle_detects_disconnected_cycle(self):
        network = FlowNetwork()
        network.add_nodes(4)
        network.add_arc(0, 1, 1, 1)  # component without cycle
        network.add_arc(2, 3, 1, -5)
        network.add_arc(3, 2, 1, 2)
        assert has_negative_cycle(_residual(network))

    def test_no_negative_cycle(self):
        network = FlowNetwork()
        network.add_nodes(3)
        network.add_arc(0, 1, 1, -1)
        network.add_arc(1, 2, 1, -1)
        assert not has_negative_cycle(_residual(network))


class TestDagUtilities:
    def test_topological_order_valid(self):
        network = FlowNetwork()
        network.add_nodes(4)
        network.add_arc(0, 2, 1, 0)
        network.add_arc(2, 1, 1, 0)
        network.add_arc(1, 3, 1, 0)
        order = topological_order(network)
        position = {node: i for i, node in enumerate(order)}
        for arc in network.arcs:
            assert position[arc.tail] < position[arc.head]

    def test_cycle_detected(self):
        network = FlowNetwork()
        network.add_nodes(2)
        network.add_arc(0, 1, 1, 0)
        network.add_arc(1, 0, 1, 0)
        with pytest.raises(ValueError, match="cycle"):
            topological_order(network)

    def test_dag_distances_with_negative_costs(self):
        network = FlowNetwork()
        network.add_nodes(4)
        network.add_arc(0, 1, 1, 5)
        network.add_arc(0, 2, 1, 1)
        network.add_arc(2, 1, 1, -4)
        network.add_arc(1, 3, 1, 1)
        dist = shortest_distances_from(network, 0)
        assert dist == [0, -3, 1, -2]


class TestValidation:
    def _network(self) -> FlowNetwork:
        network = FlowNetwork()
        network.add_node(supply=2)
        network.add_node(supply=-2)
        network.add_arc(0, 1, 2, 3)
        return network

    def test_valid_flow_passes(self):
        network = self._network()
        result = solve_min_cost_flow(network)
        assert check_feasible(network, result) == []
        assert check_optimal(network, result)
        assert recompute_cost(network, result) == result.cost

    def test_overflow_detected(self):
        network = self._network()
        bad = FlowResult(flow=[5], cost=15, value=2, feasible=True)
        problems = check_feasible(network, bad)
        assert any("exceeds capacity" in p for p in problems)

    def test_conservation_violation_detected(self):
        network = self._network()
        bad = FlowResult(flow=[1], cost=3, value=2, feasible=True)
        problems = check_feasible(network, bad)
        assert any("net outflow" in p for p in problems)

    def test_negative_flow_detected(self):
        network = self._network()
        bad = FlowResult(flow=[-1], cost=-3, value=2, feasible=True)
        assert any("negative flow" in p for p in check_feasible(network, bad))

    def test_wrong_length_detected(self):
        network = self._network()
        bad = FlowResult(flow=[], cost=0, value=0, feasible=True)
        assert check_feasible(network, bad)

    def test_suboptimal_flow_flagged(self):
        """A feasible flow ignoring a profitable arc admits a cycle."""
        network = FlowNetwork()
        network.add_node(supply=1)
        network.add_nodes(1)
        network.add_node(supply=-1)
        direct = network.add_arc(0, 2, 1, 0)
        network.add_arc(0, 1, 1, 0)
        network.add_arc(1, 2, 1, -3)
        lazy = FlowResult(flow=[1, 0, 0], cost=0, value=1, feasible=True)
        assert check_feasible(network, lazy) == []
        assert not check_optimal(network, lazy)
        best = solve_min_cost_flow(network)
        assert best.cost == -3
        assert best.flow[direct] == 0
