"""Tests for Dinic max-flow and the cost-scaling min-cost flow solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import (
    FlowNetwork,
    InfeasibleFlowError,
    ResidualGraph,
    UnbalancedNetworkError,
    assert_valid,
    max_flow,
    solve_cost_scaling,
    solve_min_cost_flow,
)


class TestMaxFlow:
    def test_classic_diamond(self):
        network = FlowNetwork()
        network.add_nodes(4)
        network.add_arc(0, 1, 3, 0)
        network.add_arc(0, 2, 2, 0)
        network.add_arc(1, 3, 2, 0)
        network.add_arc(2, 3, 3, 0)
        network.add_arc(1, 2, 5, 0)
        graph = ResidualGraph(network)
        assert max_flow(graph, 0, 3) == 5

    def test_disconnected(self):
        network = FlowNetwork()
        network.add_nodes(3)
        network.add_arc(0, 1, 4, 0)
        graph = ResidualGraph(network)
        assert max_flow(graph, 0, 2) == 0

    def test_multiple_phases_needed(self):
        """A zig-zag graph where Dinic needs more than one level phase."""
        network = FlowNetwork()
        network.add_nodes(6)
        network.add_arc(0, 1, 1, 0)
        network.add_arc(0, 2, 1, 0)
        network.add_arc(1, 3, 1, 0)
        network.add_arc(2, 3, 1, 0)
        network.add_arc(3, 4, 1, 0)  # bottleneck
        network.add_arc(1, 4, 1, 0)
        network.add_arc(4, 5, 2, 0)
        graph = ResidualGraph(network)
        assert max_flow(graph, 0, 5) == 2

    def test_same_source_sink_rejected(self):
        network = FlowNetwork()
        network.add_nodes(1)
        graph = ResidualGraph(network)
        with pytest.raises(ValueError):
            max_flow(graph, 0, 0)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_matches_networkx(self, seed):
        networkx = pytest.importorskip("networkx")
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 9))
        network = FlowNetwork()
        network.add_nodes(n)
        graph_nx = networkx.DiGraph()
        graph_nx.add_nodes_from(range(n))
        for _ in range(2 * n):
            u, v = rng.choice(n, size=2, replace=False)
            capacity = int(rng.integers(1, 6))
            network.add_arc(int(u), int(v), capacity, 0)
            if graph_nx.has_edge(int(u), int(v)):
                graph_nx[int(u)][int(v)]["capacity"] += capacity
            else:
                graph_nx.add_edge(int(u), int(v), capacity=capacity)
        ours = max_flow(ResidualGraph(network), 0, n - 1)
        theirs = networkx.maximum_flow_value(graph_nx, 0, n - 1)
        assert ours == theirs


class TestCostScaling:
    def test_simple_transport(self):
        network = FlowNetwork()
        network.add_node(supply=3)
        network.add_node(supply=-3)
        network.add_arc(0, 1, 2, 1)
        network.add_arc(0, 1, 2, 5)
        result = solve_cost_scaling(network)
        assert result.cost == 2 * 1 + 1 * 5
        assert_valid(network, result)

    def test_negative_costs(self):
        network = FlowNetwork()
        network.add_node(supply=1)
        network.add_nodes(2)
        network.add_node(supply=-1)
        network.add_arc(0, 1, 1, 0)
        network.add_arc(1, 3, 1, 0)
        network.add_arc(0, 2, 1, 0)
        network.add_arc(2, 3, 1, -5)
        result = solve_cost_scaling(network)
        assert result.cost == -5

    def test_zero_supply(self):
        network = FlowNetwork()
        network.add_nodes(2)
        network.add_arc(0, 1, 1, -1)
        result = solve_cost_scaling(network)
        assert result.cost == 0 and result.feasible

    def test_infeasible_raises(self):
        network = FlowNetwork()
        network.add_node(supply=5)
        network.add_node(supply=-5)
        network.add_arc(0, 1, 3, 1)
        with pytest.raises(InfeasibleFlowError):
            solve_cost_scaling(network)

    def test_unbalanced_rejected(self):
        network = FlowNetwork()
        network.add_node(supply=1)
        network.add_node()
        network.add_arc(0, 1, 1, 0)
        with pytest.raises(UnbalancedNetworkError):
            solve_cost_scaling(network)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 20_000), dag=st.booleans())
    def test_matches_ssp(self, seed, dag):
        """The two exact solvers agree on random instances."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 10))
        network = FlowNetwork()
        network.add_nodes(n)
        for _ in range(int(rng.integers(n, 3 * n))):
            u, v = rng.choice(n, size=2, replace=False)
            u, v = int(u), int(v)
            if dag and u > v:
                u, v = v, u
            cost = int(rng.integers(-5, 6)) if dag else int(rng.integers(0, 8))
            network.add_arc(u, v, int(rng.integers(1, 6)), cost)
        u, v = rng.choice(n, size=2, replace=False)
        amount = int(rng.integers(1, 4))
        network.set_supply(int(u), amount)
        network.set_supply(int(v), -amount)

        ssp = solve_min_cost_flow(network)
        if not ssp.feasible:
            with pytest.raises(InfeasibleFlowError):
                solve_cost_scaling(network)
            return
        scaling = solve_cost_scaling(network)
        assert scaling.cost == ssp.cost
        assert_valid(network, scaling)


class TestOptWithCostScaling:
    def test_solver_parameter(self):
        from repro.core.offline import solve_opt
        from repro.streams import zipf_pair

        pair = zipf_pair(150, 6, 1.0, seed=3)
        ssp = solve_opt(pair, 12, 6, count_from=0)
        scaling = solve_opt(pair, 12, 6, count_from=0, solver="cost_scaling")
        assert ssp.output_count == scaling.output_count

        with pytest.raises(ValueError, match="solver"):
            solve_opt(pair, 12, 6, solver="magic")
