"""Tests for the ablation studies and online-estimator policy wiring."""

import pytest

from repro.core.engine import EngineConfig, JoinEngine
from repro.core.policies import ProbPolicy, SidePolicies
from repro.experiments.ablations import (
    drift_ablation,
    predictor_quality_ablation,
    solver_ablation,
    statistics_ablation,
)
from repro.stats import EwmaFrequencyEstimator, OnlineFrequencyCounter
from repro.streams import zipf_pair


@pytest.fixture(scope="module")
def tiny_scale():
    from repro.experiments.config import Scale

    return Scale(
        name="tiny",
        stream_length=400,
        window=30,
        weather_length=2000,
        weather_window=100,
        weather_warmup=200,
    )


class TestProbPolicyOnlineEstimators:
    def test_update_flag_feeds_estimators(self):
        estimators = {"R": OnlineFrequencyCounter(), "S": OnlineFrequencyCounter()}
        policy = ProbPolicy(estimators, update_estimators=True)
        policy.observe_arrival("R", 5, 0)
        policy.observe_arrival("S", 7, 0)
        assert estimators["R"].count(5) == 1
        assert estimators["S"].count(7) == 1

    def test_default_does_not_feed(self):
        estimators = {"R": OnlineFrequencyCounter(), "S": OnlineFrequencyCounter()}
        policy = ProbPolicy(estimators)
        policy.observe_arrival("R", 5, 0)
        assert estimators["R"].total == 0

    def test_engine_run_with_online_estimators(self, small_zipf_pair):
        estimators = {"R": EwmaFrequencyEstimator(0.05), "S": EwmaFrequencyEstimator(0.05)}
        config = EngineConfig(window=20, memory=10)
        engine = JoinEngine(
            config,
            policy=SidePolicies(
                r=ProbPolicy(estimators, update_estimators=True),
                s=ProbPolicy(estimators, update_estimators=True),
            ),
        )
        result = engine.run(small_zipf_pair)
        assert result.output_count > 0
        assert estimators["R"].steps == 2 * len(small_zipf_pair)  # fed by both policies


class TestStatisticsAblation:
    def test_every_estimator_beats_random(self, tiny_scale):
        table = statistics_ablation(tiny_scale, seed=0)
        ratios = table.column("x RAND")
        # All PROB variants (every row but the RAND baseline) beat RAND.
        assert all(ratio > 1.3 for ratio in ratios[:-1])

    def test_exact_table_is_best(self, tiny_scale):
        table = statistics_ablation(tiny_scale, seed=0)
        outputs = table.column("PROB output")
        assert outputs[0] == max(outputs[:-1])


class TestPredictorQualityAblation:
    def test_degrades_towards_random(self, tiny_scale):
        table = predictor_quality_ablation(tiny_scale, seed=0)
        outputs = table.column("PROB output")
        clean, corrupted, rand = outputs[0], outputs[-2], outputs[-1]
        assert clean > corrupted
        # Fully corrupted PROB lands in RAND territory (within 50%).
        assert corrupted < 1.5 * rand

    def test_fractions_bounded_by_one(self, tiny_scale):
        table = predictor_quality_ablation(tiny_scale, seed=0)
        assert all(f <= 1.0 for f in table.column("fraction of OPT"))


class TestDriftAblation:
    def test_adaptive_beats_stale(self, tiny_scale):
        table = drift_ablation(tiny_scale, seed=0)
        outputs = dict(zip(table.column("statistics module"), table.column("PROB output")))
        assert outputs["EWMA (alpha=0.02)"] > outputs["static table (first phase)"]
        assert outputs["static table (first phase)"] > outputs["RAND"]


class TestSolverAblation:
    def test_solvers_agree(self, tiny_scale):
        table = solver_ablation(tiny_scale, seed=0)
        outputs = table.column("OPT output")
        assert outputs[0] == outputs[1]
        assert set(table.column("solver")) == {"ssp", "cost_scaling"}
