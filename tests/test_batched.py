"""Tests for the columnar micro-batch fast path.

Covers the batch encoder (``repro.streams.batches``), the count-only
EXACT lanes (``repro.core.batched``), the kernel/memory batch
operations, and — most importantly — the identity guarantee: a batched
run must be bit-identical to the per-tuple run (output, drop ledger,
metrics totals) for every policy, batch size, and shard count.
"""

import pytest

from repro.api import RunSpec, run
from repro.core.async_engine import AsyncEngineConfig, AsyncJoinEngine
from repro.core.batched import exact_chunk_counts, exact_tick_counts
from repro.core.engine import EngineConfig
from repro.core.kernel import JoinKernel
from repro.core.memory import JoinMemory, TupleRecord
from repro.obs import MetricsRegistry
from repro.streams import zipf_pair
from repro.streams.batches import (
    DEFAULT_BATCH_SIZE,
    StreamChunk,
    encode_chunks,
    encode_columns,
    resolve_batch_size,
)
from repro.streams.tuples import StreamPair

SMALL = dict(window=20, memory=10, length=400, seed=3)


def small_spec(algorithm: str, **overrides) -> RunSpec:
    return RunSpec(algorithm=algorithm, **{**SMALL, **overrides})


def comparable_metrics(snapshot):
    """Metrics snapshot minus wall-clock phases (timing is not identity)."""
    if snapshot is None:
        return None
    return {k: v for k, v in snapshot.items() if k != "phases"}


# ----------------------------------------------------------------------
# encoder
# ----------------------------------------------------------------------

class TestEncoder:
    def test_chunking_covers_stream_with_remainder(self):
        pair = zipf_pair(10, 5, 1.0, seed=1)
        chunks = list(encode_chunks(pair, 4))
        assert [(c.start, c.length) for c in chunks] == [(0, 4), (4, 4), (8, 2)]
        assert [len(c) for c in chunks] == [4, 4, 2]
        r_flat = [k for c in chunks for k in c.r_list()]
        s_flat = [k for c in chunks for k in c.s_list()]
        assert r_flat == list(pair.r)
        assert s_flat == list(pair.s)

    def test_lists_contain_native_ints(self):
        pair = zipf_pair(8, 5, 1.0, seed=1)
        (chunk,) = encode_chunks(pair, 100)
        assert all(type(k) is int for k in chunk.r_list())
        assert all(type(k) is int for k in chunk.s_list())

    def test_default_batch_size(self):
        assert resolve_batch_size(5000) == DEFAULT_BATCH_SIZE
        assert resolve_batch_size(10) == 10  # clamped to stream length

    def test_resolve_clamps_and_validates(self):
        assert resolve_batch_size(10, 64) == 10
        assert resolve_batch_size(10, 3) == 3
        assert resolve_batch_size(0, 7) == 1  # empty stream stays well-formed
        with pytest.raises(ValueError, match="batch_size"):
            resolve_batch_size(10, 0)

    def test_non_integer_keys_fall_back_to_tuple_columns(self):
        pair = StreamPair(r=["a", "b", "a"], s=["b", "b", "c"])
        r_col, s_col = encode_columns(pair)
        assert isinstance(r_col, tuple) and isinstance(s_col, tuple)
        (chunk,) = encode_chunks(pair, 3)
        assert chunk.r_list() == ["a", "b", "a"]
        assert chunk.s_list() == ["b", "b", "c"]

    def test_numpy_and_fallback_lanes_agree(self, monkeypatch):
        import repro.streams.batches as batches

        pair = zipf_pair(50, 5, 1.0, seed=2)
        with_numpy = [c.r_list() for c in encode_chunks(pair, 16)]
        monkeypatch.setattr(batches, "HAVE_NUMPY", False)
        without = [c.r_list() for c in encode_chunks(pair, 16)]
        assert with_numpy == without


# ----------------------------------------------------------------------
# count lanes
# ----------------------------------------------------------------------

class TestExactChunkCounts:
    def test_empty_stream(self):
        assert exact_chunk_counts([], 10, 0) == (0, 0, 0, 0)

    def test_matches_reference_counts(self):
        # Hand-checked tiny example: window 2, R=[1,2,1], S=[1,1,2].
        pair = StreamPair(r=[1, 2, 1], s=[1, 1, 2])
        chunks = encode_chunks(pair, 2)
        output, total, simultaneous, length = exact_chunk_counts(chunks, 2, 0)
        # t=0: simultaneous (1,1) -> 1
        # t=1: r=2 vs s={1}: 0; s=1 vs r={1}: 1 -> 1
        # t=2: expire t=0; r=1 vs s={1}: 1; s=2 vs r={2}: 1 -> 2
        assert (output, total, simultaneous, length) == (4, 4, 1, 3)

    def test_warmup_gates_output_but_not_total(self):
        pair = zipf_pair(60, 5, 1.0, seed=4)
        full = exact_chunk_counts(encode_chunks(pair, 16), 10, 0)
        gated = exact_chunk_counts(encode_chunks(pair, 16), 10, 30)
        assert gated[1] == full[1]  # total unaffected
        assert gated[0] <= full[0]

    def test_chunk_boundaries_are_invisible(self):
        pair = zipf_pair(120, 5, 1.0, seed=5)
        results = {
            exact_chunk_counts(encode_chunks(pair, size), 15, 10)
            for size in (1, 7, 64, 120, 500)
        }
        assert len(results) == 1


class TestExactTickCounts:
    def test_empty_ticks_and_bursts(self):
        r = [[1, 2], [], [2, 2, 3], []]
        s = [[2], [1, 1], [], [3]]
        output, total, arrivals, exp_r, exp_s = exact_tick_counts(
            r, s, 100, 0, capacity=1000, variable=True
        )
        assert arrivals == 9
        # t=0: R 1,2 probe S={} -> 0; S 2 probes R={1,2} -> 1
        # t=1: S 1,1 probe R={1,2} -> 2
        # t=2: R 2 probes S={2,1,1} -> 1 (twice: 2 arrivals of key 2),
        #      R 3 -> 0
        # t=3: S 3 probes R={..3} -> 1
        assert total == output == 1 + 2 + 2 + 1
        assert exp_r == exp_s == 0  # window never advanced past arrivals

    def test_expiry_counts(self):
        r = [[1], [1], [1], [1]]
        s = [[], [], [], []]
        _, _, _, exp_r, exp_s = exact_tick_counts(
            r, s, 2, 0, capacity=1000, variable=True
        )
        # horizon at t=2 is 0 (expires arrival 0), at t=3 is 1.
        assert exp_r == 2
        assert exp_s == 0

    def test_overflow_matches_kernel_message_and_type(self):
        r = [[1, 2, 3]]
        s = [[]]
        with pytest.raises(RuntimeError, match=r"memory overflow at t=0.*capacity 4"):
            exact_tick_counts(r, s, 10, 0, capacity=4, variable=False)

    def test_agrees_with_kernel_path(self):
        # The async engine only takes the count lane when completely
        # uninstrumented; attaching a metrics registry forces the kernel
        # path — both must agree on every counter and the ledger.
        pair = zipf_pair(90, 5, 1.0, seed=7)
        r_keys, s_keys = list(pair.r), list(pair.s)
        r_batches, s_batches = [], []
        while r_keys or s_keys:
            r_batches.append(r_keys[:3])
            s_batches.append(s_keys[:2])
            del r_keys[:3], s_keys[:2]
        config = AsyncEngineConfig(window=12, memory=200, variable=True, warmup=5)

        lane = AsyncJoinEngine(config).run(r_batches, s_batches)
        kernel = AsyncJoinEngine(config, metrics=MetricsRegistry()).run(
            r_batches, s_batches
        )
        assert lane.output_count == kernel.output_count
        assert lane.total_output_count == kernel.total_output_count
        assert lane.arrivals == kernel.arrivals
        assert lane.ticks == kernel.ticks
        assert lane.drop_counts == kernel.drop_counts

    def test_overflow_parity_with_kernel_path(self):
        r_batches, s_batches = [[1, 2, 3, 4]], [[5]]
        config = AsyncEngineConfig(window=10, memory=4, variable=True, warmup=0)
        with pytest.raises(RuntimeError) as lane_err:
            AsyncJoinEngine(config).run(r_batches, s_batches)
        with pytest.raises(RuntimeError) as kernel_err:
            AsyncJoinEngine(config, metrics=MetricsRegistry()).run(
                r_batches, s_batches
            )
        assert str(lane_err.value) == str(kernel_err.value)
        assert type(lane_err.value) is type(kernel_err.value)


# ----------------------------------------------------------------------
# expire_until boundaries
# ----------------------------------------------------------------------

class TestExpireUntilBoundaries:
    def _memory_with(self, arrivals):
        memory = JoinMemory(100)
        records = [TupleRecord("R", t, key) for t, key in arrivals]
        for record in records:
            memory.r.add(record)
        return memory, records

    def test_empty_window(self):
        memory = JoinMemory(10)
        assert memory.expire_until(50) == []

    def test_horizon_equals_arrival_expires_it(self):
        memory, records = self._memory_with([(5, 1), (6, 2)])
        expired = memory.r.expire_until(5)
        assert expired == [records[0]]
        assert memory.r.size == 1
        assert not records[0].alive

    def test_horizon_before_first_arrival_is_noop(self):
        memory, _ = self._memory_with([(5, 1), (6, 2)])
        assert memory.r.expire_until(4) == []
        assert memory.r.size == 2

    def test_all_expired_chunk(self):
        memory, records = self._memory_with([(0, 1), (1, 2), (2, 1)])
        expired = memory.r.expire_until(10)
        assert expired == records
        assert memory.r.size == 0
        assert memory.r.match_count(1) == 0


# ----------------------------------------------------------------------
# kernel / memory batch operations
# ----------------------------------------------------------------------

class TestKernelBatchOps:
    def test_match_total_is_sum_of_match_counts(self):
        memory = JoinMemory(100)
        for t, key in enumerate([1, 1, 2, 3]):
            memory.s.add(TupleRecord("S", t, key))
        keys = [1, 2, 2, 4]
        assert memory.s.match_total(keys) == sum(
            memory.s.match_count(k) for k in keys
        )

    def test_probe_batch_equals_sum_of_probes(self):
        memory = JoinMemory(100)
        kernel = JoinKernel(memory, None, None)
        for offered in ([1, 2, 1], [2, 2, 3]):
            kernel.insert_batch("S", offered, 0)
        keys = [1, 2, 9, 2]
        assert kernel.probe_batch("R", keys, 1) == sum(
            kernel.probe("R", k, 1) for k in keys
        )

    def test_insert_batch_bulk_lane(self):
        memory = JoinMemory(10)
        kernel = JoinKernel(memory, None, None)
        outcomes = kernel.insert_batch("R", [1, 2, 3], 5)
        assert outcomes == [(True, None)] * 3
        assert memory.r.size == 3
        assert memory.r.match_count(1) == 1

    def test_insert_batch_overflow_admits_prefix_then_raises(self):
        memory = JoinMemory(4)  # fixed halves: 2 per side
        kernel = JoinKernel(memory, None, None)
        with pytest.raises(
            RuntimeError, match=r"memory overflow at t=7.*capacity 4"
        ):
            kernel.insert_batch("R", [1, 2, 3], 7)
        # The two that fit were admitted before the raise — exactly the
        # state the per-tuple path leaves behind.
        assert memory.r.size == 2

    def test_insert_batch_matches_per_tuple_inserts(self):
        bulk_memory = JoinMemory(20)
        loop_memory = JoinMemory(20)
        bulk = JoinKernel(bulk_memory, None, None)
        loop = JoinKernel(loop_memory, None, None)
        keys = [3, 1, 4, 1, 5]
        bulk.insert_batch("S", keys, 2)
        for key in keys:
            loop.insert(TupleRecord("S", 2, key), 2)
        assert bulk_memory.s.size == loop_memory.s.size
        for key in set(keys):
            assert bulk_memory.s.match_count(key) == loop_memory.s.match_count(key)

    def test_add_batch_rejects_resident_record(self):
        memory = JoinMemory(20)
        record = TupleRecord("R", 0, 1)
        memory.r.add(record)
        with pytest.raises(ValueError, match="already resident"):
            memory.r.add_batch([record])


# ----------------------------------------------------------------------
# config validation
# ----------------------------------------------------------------------

class TestBatchSizeValidation:
    def test_engine_config_rejects_non_positive(self):
        with pytest.raises(ValueError, match="batch_size"):
            EngineConfig(window=10, memory=20, batch_size=0)

    def test_run_spec_rejects_non_positive(self):
        with pytest.raises(ValueError, match="batch_size"):
            RunSpec(algorithm="EXACT", batch_size=0)

    def test_run_spec_rejects_non_fast_engines(self):
        with pytest.raises(ValueError, match="fast"):
            RunSpec(algorithm="EXACT", engine="async", batch_size=8)


# ----------------------------------------------------------------------
# the identity guarantee
# ----------------------------------------------------------------------

BATCH_SIZES = (1, 7, 64, SMALL["length"])  # whole-stream last
POLICIES = ("EXACT", "RAND", "RANDV", "PROB", "PROBV", "LIFE", "LIFEV", "ARM")


class TestBatchedIdentity:
    """Batched output is bit-identical to per-tuple for every policy."""

    @pytest.mark.parametrize("algorithm", POLICIES)
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_unsharded_identity(self, algorithm, batch_size):
        baseline = run(small_spec(algorithm, metrics=True))
        batched = run(small_spec(algorithm, metrics=True, batch_size=batch_size))
        assert batched.output_count == baseline.output_count
        assert batched.total_output_count == baseline.total_output_count
        assert batched.drop_counts == baseline.drop_counts
        assert batched.r_departures == baseline.r_departures
        assert batched.s_departures == baseline.s_departures
        assert comparable_metrics(batched.metrics) == comparable_metrics(
            baseline.metrics
        )

    @pytest.mark.parametrize("algorithm", ("EXACT", "PROB", "LIFE"))
    @pytest.mark.parametrize("batch_size", (7, SMALL["length"]))
    def test_sharded_identity(self, algorithm, batch_size):
        baseline = run(small_spec(algorithm, shards=4))
        batched = run(small_spec(algorithm, shards=4, batch_size=batch_size))
        assert batched.output_count == baseline.output_count
        assert batched.drop_counts == baseline.drop_counts

    def test_exact_departures_and_survival_identity(self):
        baseline = run(small_spec("EXACT"))
        batched = run(small_spec("EXACT", batch_size=32))
        assert batched.r_departures == baseline.r_departures
        assert batched.s_departures == baseline.s_departures

    @pytest.mark.parametrize("seed", (0, 1, 2, 11, 42))
    def test_exact_seed_sweep(self, seed):
        baseline = run(small_spec("EXACT", seed=seed))
        for batch_size in BATCH_SIZES:
            batched = run(small_spec("EXACT", seed=seed, batch_size=batch_size))
            assert batched.output_count == baseline.output_count
            assert batched.total_output_count == baseline.total_output_count
            assert batched.drop_counts == baseline.drop_counts
