"""Regression tests: zero-length streams are legal everywhere.

A run over zero ticks used to crash in two places — the statistics
module (``StaticFrequencyTable.from_stream([])`` raising through
``estimators_for``) and the unified result surface (``OptResult`` had no
``summary()``).  These tests pin the fix across every engine, the
sharded runtime, the offline bound, the batched lane, and the source
path: an empty input is a boring run with ``output_count == 0``, never
an exception.
"""

import pytest

from repro.api import RunSpec, run
from repro.core.batched import exact_stream_counts
from repro.experiments.runner import ALL_ALGORITHMS, estimators_for, run_algorithm
from repro.stats.frequency import OnlineFrequencyCounter
from repro.streams.sources import PairSource, ZipfSource, take_pair
from repro.streams.tuples import StreamPair

EMPTY = StreamPair(r=[], s=[], name="empty")


class TestEmptyPairRuns:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_every_algorithm_handles_an_empty_pair(self, algorithm):
        result = run_algorithm(algorithm, EMPTY, window=10, memory=4)
        assert result.output_count == 0
        summary = result.summary()
        assert summary.output_count == 0
        assert summary.to_dict()["output_count"] == 0

    @pytest.mark.parametrize("engine", ["fast", "async", "slowcpu"])
    def test_every_engine_handles_an_empty_pair(self, engine):
        spec = RunSpec(algorithm="PROB", window=10, memory=4, engine=engine)
        result = run(spec, pair=EMPTY)
        assert result.output_count == 0

    def test_zero_length_generated_workload(self):
        spec = RunSpec(algorithm="RAND", window=10, memory=4, length=0)
        assert run(spec).output_count == 0

    def test_sharded_empty_run(self):
        spec = RunSpec(algorithm="EXACT", window=10, memory=4, shards=3)
        assert run(spec, pair=EMPTY).output_count == 0

    def test_batched_empty_run(self):
        spec = RunSpec(algorithm="EXACT", window=10, memory=4, batch_size=64)
        assert run(spec, pair=EMPTY).output_count == 0


class TestEmptyEstimators:
    def test_estimators_for_empty_pair_builds_zero_knowledge_counters(self):
        estimators = estimators_for(EMPTY)
        assert isinstance(estimators["R"], OnlineFrequencyCounter)
        assert estimators["R"].probability(7) == 0.0
        assert estimators["S"].probability(0) == 0.0

    def test_empty_pair_still_runs_the_estimator_algorithms(self):
        estimators = estimators_for(EMPTY)
        result = run(
            RunSpec(algorithm="LIFE", window=10, memory=4),
            pair=EMPTY, estimators=estimators,
        )
        assert result.output_count == 0


class TestEmptySources:
    def test_zero_length_generator_source(self):
        source = ZipfSource(10, 1.0, seed=0, length=0)
        assert source.length == 0
        assert list(source) == []
        spec = RunSpec(algorithm="EXACT", window=10, memory=4, source=source)
        assert run(spec).output_count == 0

    def test_empty_pair_source(self):
        source = PairSource(EMPTY)
        assert source.length == 0
        assert list(source) == []
        assert len(take_pair(source)) == 0

    def test_exact_stream_counts_over_no_events(self):
        output, total, arrivals, exp_r, exp_s, ticks = exact_stream_counts(
            iter(()), 10, 0, capacity=20, variable=False
        )
        assert (output, total, arrivals, ticks) == (0, 0, 0, 0)

    def test_until_zero_is_an_empty_run(self):
        spec = RunSpec(
            algorithm="PROB", window=10, memory=4,
            source=ZipfSource(10, 1.0, seed=1), duration=1,
        )
        assert run(spec).length == 1
        result = run(
            RunSpec(algorithm="PROB", window=10, memory=4),
            pair=EMPTY, on_summary=lambda s: None,
        )
        assert result.output_count == 0
