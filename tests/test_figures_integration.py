"""End-to-end figure/table generation at a miniature scale.

These tests run the full experiment pipelines and assert the *shape*
claims of the paper's evaluation (who wins, where curves sit), at a scale
small enough for CI.  The benchmark suite re-runs them at larger scales.
"""

import pytest

from repro.experiments.figures import (
    arm_study,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure_domain_size,
    multiway_join_study,
    slow_cpu_study,
    static_join_study,
    variable_memory_study,
)


@pytest.fixture(scope="module")
def scale():
    from repro.experiments.config import Scale

    return Scale(
        name="tiny",
        stream_length=500,
        window=40,
        weather_length=3000,
        weather_window=200,
        weather_warmup=400,
    )


class TestFigure3Shape:
    @pytest.fixture(scope="class")
    def figure(self, scale):
        return figure3(scale, seed=0)

    def test_ordering_prob_beats_rand(self, figure):
        rand = figure.series_by_label("RAND").y
        prob = figure.series_by_label("PROB").y
        assert all(p > r for p, r in zip(prob, rand))

    def test_everything_bounded_by_opt_and_exact(self, figure):
        opt = figure.series_by_label("OPT").y
        exact = figure.series_by_label("EXACT").y
        for label in ("RAND", "LIFE", "PROB"):
            ys = figure.series_by_label(label).y
            assert all(y <= o for y, o in zip(ys, opt))
        assert all(o <= e for o, e in zip(opt, exact))

    def test_rand_grows_with_memory(self, figure):
        rand = figure.series_by_label("RAND").y
        assert rand == sorted(rand)

    def test_prob_tracks_opt_closely_at_m_equals_w(self, figure):
        memories = figure.params["memories"]
        index = memories.index(figure.params["window"])
        prob = figure.series_by_label("PROB").y[index]
        opt = figure.series_by_label("OPT").y[index]
        assert prob / opt > 0.75


class TestFigure5Shape:
    def test_uniform_gives_no_semantic_edge(self, scale):
        figure = figure5(scale, seed=0)
        rand = figure.series_by_label("RAND").y
        prob = figure.series_by_label("PROB").y
        # Within 15% of each other at every memory size.
        for r, p in zip(rand, prob):
            assert abs(p - r) / max(r, 1) < 0.15


class TestFigure6Shape:
    def test_gap_widens_with_skew(self, scale):
        figure = figure6(scale, seed=0, skews=(0.0, 1.0, 2.0))
        rand = figure.series_by_label("RAND/OPT").y
        prob = figure.series_by_label("PROB/OPT").y
        assert abs(prob[0] - rand[0]) < 0.15  # coincide at skew 0
        assert prob[2] - rand[2] > 0.25  # clear gap at skew 2
        assert prob[2] > 0.7  # (the paper's ~96% emerges at larger scales)


class TestDomainSizeShape:
    def test_exact_over_opt_falls_with_domain(self, scale):
        small = figure_domain_size(5, "figure9", scale, seed=0)
        large = figure_domain_size(100, "figure11", scale, seed=0)
        # EXACT/OPT at the largest memory: closer to 1 for larger domains.
        small_ratio = small.series_by_label("EXACT/OPT").y[-1]
        large_ratio = large.series_by_label("EXACT/OPT").y[-1]
        assert large_ratio <= small_ratio
        assert large_ratio >= 1.0


class TestWeatherFigures:
    def test_figure7_prob_close_to_probv(self, scale):
        figure = figure7(scale, seed=0)
        prob = figure.series_by_label("PROB").y
        probv = figure.series_by_label("PROBV").y
        for a, b in zip(prob, probv):
            assert abs(a - b) / max(a, 1) < 0.1
        rand = figure.series_by_label("RAND").y
        assert all(p > r for p, r in zip(prob, rand))

    def test_figure8_share_stays_near_half(self, scale):
        figure = figure8(scale, seed=0)
        shares = figure.series[0].y
        post_warmup = shares[len(shares) // 3:]
        assert all(0.35 < s < 0.65 for s in post_warmup)


class TestTables:
    def test_variable_memory_study(self, scale):
        table = variable_memory_study(scale, seed=0)
        assert table.columns[0] == "z_R"
        for row in table.rows:
            optv = row[table.columns.index("OPTV")]
            opt = row[table.columns.index("OPT")]
            assert optv >= opt
        # Larger skew difference => more memory to the skewed stream.
        shares = table.column("R mem share")
        assert shares[-1] > shares[0]

    def test_static_join_study(self, scale):
        table = static_join_study(scale, seed=0)
        for row in table.rows:
            k, full, optimal, greedy, random_drop = row
            assert random_drop <= optimal <= full
            assert greedy <= optimal

    def test_multiway_study(self):
        table = multiway_join_study(seed=0)
        for row in table.rows:
            optimal_loss = row[table.columns.index("optimal loss")]
            approx_loss = row[table.columns.index("approx loss")]
            assert approx_loss <= 3 * optimal_loss or optimal_loss == approx_loss == 0

    def test_arm_study(self, scale):
        table = arm_study(scale, seed=0)
        arm_cols = {name: table.columns.index(f"{name} ArM") for name in
                    ("RAND", "PROB", "LIFE", "ARM")}
        # ArM decreases with memory for every policy.
        for name, col in arm_cols.items():
            arms = [row[col] for row in table.rows]
            assert arms[0] >= arms[-1]
        # Semantic policies leave fewer incomplete tuples than RAND at the
        # mid-range memory sizes.
        mid = len(table.rows) // 2
        assert table.rows[mid][arm_cols["PROB"]] < table.rows[mid][arm_cols["RAND"]]

    def test_slow_cpu_study(self, scale):
        table = slow_cpu_study(scale, seed=0)
        outputs = {row[0]: row[1] for row in table.rows}
        assert outputs["prob"] > outputs["random"]
        assert outputs["prob"] > outputs["tail"]
