"""Tests for the asynchronous-arrival engine and count-based windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.async_engine import (
    AsyncEngineConfig,
    AsyncJoinEngine,
    batches_from_pair,
)
from repro.core.policies import (
    LifePolicy,
    ProbPolicy,
    RandomEvictionPolicy,
    SidePolicies,
)
from repro.experiments import estimators_for
from repro.streams import exact_join_size, zipf_pair


def _policies(pair, kind="PROB", window=10):
    estimators = estimators_for(pair)
    if kind == "PROB":
        return SidePolicies(r=ProbPolicy(estimators), s=ProbPolicy(estimators))
    if kind == "LIFE":
        return SidePolicies(
            r=LifePolicy(estimators, window), s=LifePolicy(estimators, window)
        )
    return SidePolicies(
        r=RandomEvictionPolicy(seed=0), s=RandomEvictionPolicy(seed=1)
    )


class TestConfig:
    def test_defaults(self):
        config = AsyncEngineConfig(window=10, memory=4)
        assert config.warmup == 20
        assert config.window_mode == "time"

    def test_validation(self):
        for kwargs in (
            dict(window=0, memory=4),
            dict(window=5, memory=0),
            dict(window=5, memory=4, warmup=-1),
            dict(window=5, memory=4, window_mode="sideways"),
        ):
            with pytest.raises(ValueError):
                AsyncEngineConfig(**kwargs)

    def test_count_mode_rejects_time_based_policies(self):
        pair = zipf_pair(50, 5, 1.0, seed=0)
        config = AsyncEngineConfig(window=5, memory=4, window_mode="count")
        with pytest.raises(ValueError, match="LIFE"):
            AsyncJoinEngine(config, policy=_policies(pair, "LIFE", 5))


class TestSynchronousEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500), window=st.integers(2, 12))
    def test_ample_memory_equals_exact_join(self, seed, window):
        """With no shedding, one-per-tick batches give the exact join."""
        pair = zipf_pair(120, 6, 1.0, seed=seed)
        config = AsyncEngineConfig(window=window, memory=4 * window, validate=True)
        engine = AsyncJoinEngine(config)
        result = engine.run(*batches_from_pair(pair))
        assert result.output_count == exact_join_size(
            pair, window, count_from=config.warmup
        )

    def test_shedding_bounded_by_exact(self):
        pair = zipf_pair(300, 8, 1.0, seed=7)
        window = 20
        exact = exact_join_size(pair, window, count_from=2 * window)
        config = AsyncEngineConfig(window=window, memory=10)
        engine = AsyncJoinEngine(config, policy=_policies(pair, "PROB", window))
        result = engine.run(*batches_from_pair(pair))
        assert 0 < result.output_count <= exact


class TestBurstyArrivals:
    def _bursty_batches(self, pair, burst=3):
        """Deliver the same tuples in bursts with idle ticks between."""
        r_batches, s_batches = [], []
        r_keys, s_keys = list(pair.r), list(pair.s)
        while r_keys or s_keys:
            r_batches.append(r_keys[:burst])
            s_batches.append(s_keys[:burst])
            del r_keys[:burst], s_keys[:burst]
            r_batches.append([])  # idle tick
            s_batches.append([])
        return r_batches, s_batches

    def test_bursts_with_ample_memory(self):
        pair = zipf_pair(120, 6, 1.0, seed=3)
        config = AsyncEngineConfig(window=8, memory=200, warmup=0, validate=True)
        engine = AsyncJoinEngine(config)
        result = engine.run(*self._bursty_batches(pair))
        assert result.arrivals == 2 * len(pair)
        assert result.output_count == result.total_output_count > 0

    def test_bursts_under_pressure_shed(self):
        pair = zipf_pair(300, 8, 1.0, seed=4)
        config = AsyncEngineConfig(window=10, memory=8, warmup=0, validate=True)
        engine = AsyncJoinEngine(config, policy=_policies(pair, "RAND"))
        result = engine.run(*self._bursty_batches(pair, burst=5))
        shed = sum(
            result.drop_counts[s]["rejected"] + result.drop_counts[s]["evicted"]
            for s in ("R", "S")
        )
        assert shed > 0

    def test_prob_beats_rand_on_bursts(self):
        pair = zipf_pair(600, 20, 1.2, seed=5)
        batches = self._bursty_batches(pair, burst=4)
        outputs = {}
        for kind in ("PROB", "RAND"):
            config = AsyncEngineConfig(window=20, memory=12, warmup=40)
            engine = AsyncJoinEngine(config, policy=_policies(pair, kind, 20))
            outputs[kind] = engine.run(*batches).output_count
        assert outputs["PROB"] > outputs["RAND"]

    def test_mismatched_tick_counts_rejected(self):
        config = AsyncEngineConfig(window=5, memory=4)
        with pytest.raises(ValueError, match="same number"):
            AsyncJoinEngine(config).run([[1]], [[1], [2]])

    def test_overflow_without_policy(self):
        pair = zipf_pair(100, 5, 1.0, seed=6)
        config = AsyncEngineConfig(window=20, memory=4)
        with pytest.raises(RuntimeError, match="overflow"):
            AsyncJoinEngine(config).run(*batches_from_pair(pair))


class TestAsyncFuzzAgainstReference:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2000),
        window=st.integers(2, 12),
        half=st.integers(1, 6),
        burst=st.integers(1, 4),
    )
    def test_prob_matches_naive_async(self, seed, window, half, burst):
        from tests.reference_engine import naive_async_run

        pair = zipf_pair(90, 5, 1.0, seed=seed)
        memory = 2 * half
        r_keys, s_keys = list(pair.r), list(pair.s)
        r_batches, s_batches = [], []
        while r_keys or s_keys:
            r_batches.append(r_keys[:burst])
            s_batches.append(s_keys[:burst])
            del r_keys[:burst], s_keys[:burst]

        estimators = estimators_for(pair)
        config = AsyncEngineConfig(window=window, memory=memory, warmup=0)
        engine = AsyncJoinEngine(
            config,
            policy=SidePolicies(r=ProbPolicy(estimators), s=ProbPolicy(estimators)),
        )
        ours = engine.run(r_batches, s_batches).output_count
        reference = naive_async_run(
            r_batches, s_batches, window, memory, estimators, warmup=0
        )
        assert ours == reference

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2000), memory=st.integers(1, 10))
    def test_probv_matches_naive_async_variable(self, seed, memory):
        from tests.reference_engine import naive_async_run

        pair = zipf_pair(80, 5, 1.0, seed=seed)
        batches = batches_from_pair(pair)
        estimators = estimators_for(pair)
        config = AsyncEngineConfig(window=8, memory=memory, variable=True, warmup=0)
        engine = AsyncJoinEngine(config, policy=ProbPolicy(estimators))
        ours = engine.run(*batches).output_count
        reference = naive_async_run(
            *batches, 8, memory, estimators, variable=True, warmup=0
        )
        assert ours == reference


class TestCountWindows:
    def test_count_window_keeps_last_w_tuples(self):
        # R tuples arrive in one burst; S probes afterwards: only the
        # last w R-tuples can match.
        r_batches = [[1, 1, 1, 1, 1], [], []]
        s_batches = [[], [1], [1]]
        config = AsyncEngineConfig(
            window=2, memory=40, warmup=0, window_mode="count", validate=True
        )
        result = AsyncJoinEngine(config).run(r_batches, s_batches)
        # Each s(1) matches the last 2 resident R-tuples.
        assert result.output_count == 4

    def test_count_window_expires_own_stream_only(self):
        # S-tuples never expire while no further S-tuples arrive, however
        # many ticks pass (unlike a time window).
        r_batches = [[], [], [], [7]]
        s_batches = [[7], [], [], []]
        config = AsyncEngineConfig(
            window=1, memory=20, warmup=0, window_mode="count"
        )
        result = AsyncJoinEngine(config).run(r_batches, s_batches)
        assert result.output_count == 1

    def test_time_window_would_expire_instead(self):
        r_batches = [[], [], [], [7]]
        s_batches = [[7], [], [], []]
        config = AsyncEngineConfig(window=1, memory=20, warmup=0, window_mode="time")
        result = AsyncJoinEngine(config).run(r_batches, s_batches)
        assert result.output_count == 0

    def test_count_mode_with_prob_policy(self):
        pair = zipf_pair(300, 8, 1.0, seed=8)
        config = AsyncEngineConfig(
            window=10, memory=8, warmup=20, window_mode="count", validate=True
        )
        engine = AsyncJoinEngine(config, policy=_policies(pair, "PROB"))
        result = engine.run(*batches_from_pair(pair))
        assert result.output_count > 0
