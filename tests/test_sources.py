"""Tests for the pull-based source protocol (``repro.streams.sources``).

Sources are the ingestion contract of the incremental engine path: every
source must be *restartable* (each ``__iter__`` yields the same
deterministic event sequence) and *picklable* (configuration, not
iterator state), and the JSONL replay format must round-trip recorded
traffic exactly.
"""

import itertools
import json
import pickle

import pytest

from repro.streams.generators import zipf_pair
from repro.streams.replay import (
    JSONL_FORMAT,
    JSONL_VERSION,
    load_pair_jsonl,
    save_pair,
    save_pair_jsonl,
)
from repro.streams.sources import (
    DriftingZipfSource,
    PairSource,
    PoissonSource,
    ReplaySource,
    Source,
    ZipfSource,
    as_source,
    take_pair,
)
from repro.streams.tuples import StreamPair


def events_of(source, ticks=None):
    it = iter(source)
    if ticks is not None:
        it = itertools.islice(it, ticks)
    return list(it)


# ----------------------------------------------------------------------
# PairSource
# ----------------------------------------------------------------------

class TestPairSource:
    def test_adapts_pair_one_arrival_per_side_per_tick(self):
        pair = zipf_pair(50, 10, 1.0, seed=7)
        source = PairSource(pair)
        assert source.length == 50
        events = events_of(source)
        assert len(events) == 50
        assert all(len(r) == 1 and len(s) == 1 for r, s in events)
        assert [r[0] for r, _ in events] == list(pair.r)
        assert [s[0] for _, s in events] == list(pair.s)

    def test_rejects_non_pair(self):
        with pytest.raises(TypeError, match="StreamPair"):
            PairSource([1, 2, 3])

    def test_restartable(self):
        source = PairSource(zipf_pair(20, 5, 1.0, seed=1))
        assert events_of(source) == events_of(source)

    def test_satisfies_protocol(self):
        source = PairSource(zipf_pair(5, 5, 1.0, seed=1))
        assert isinstance(source, Source)


# ----------------------------------------------------------------------
# generator sources
# ----------------------------------------------------------------------

class TestZipfSource:
    def test_deterministic_and_restartable(self):
        source = ZipfSource(20, 1.0, seed=3, length=500)
        first = events_of(source)
        assert len(first) == 500
        assert first == events_of(source)
        assert first == events_of(ZipfSource(20, 1.0, seed=3, length=500))

    def test_synchronous_by_default(self):
        for r_batch, s_batch in events_of(ZipfSource(10, 0.5, seed=1), ticks=100):
            assert len(r_batch) == 1
            assert len(s_batch) == 1

    def test_unbounded_without_length(self):
        source = ZipfSource(10, 1.0, seed=0)
        assert source.length is None
        # islice over an unbounded source terminates — no materialization.
        assert len(events_of(source, ticks=10_000)) == 10_000

    def test_bounded_prefix_matches_unbounded(self):
        bounded = events_of(ZipfSource(10, 1.0, seed=5, length=300))
        unbounded = events_of(ZipfSource(10, 1.0, seed=5), ticks=300)
        assert bounded == unbounded

    def test_seed_changes_sequence(self):
        a = events_of(ZipfSource(10, 1.0, seed=1, length=200))
        b = events_of(ZipfSource(10, 1.0, seed=2, length=200))
        assert a != b

    def test_keys_within_domain(self):
        for r_batch, s_batch in events_of(ZipfSource(8, 1.5, seed=2, length=400)):
            assert all(0 <= k < 8 for k in r_batch + s_batch)

    def test_pickle_round_trip(self):
        source = ZipfSource(
            16, 1.2, skew_s=0.6, correlation="anticorrelated", seed=9, length=250
        )
        clone = pickle.loads(pickle.dumps(source))
        assert events_of(clone) == events_of(source)
        assert clone.length == source.length

    def test_distributions_exposed_for_oracle(self):
        source = ZipfSource(10, 1.0, seed=4)
        dist_r, dist_s = source.distributions()
        probs_r = dist_r.probabilities()
        assert len(probs_r) == 10
        assert probs_r.sum() == pytest.approx(1.0)
        assert dist_s.probabilities().sum() == pytest.approx(1.0)

    def test_rejects_negative_length(self):
        with pytest.raises(ValueError, match="length"):
            ZipfSource(10, 1.0, length=-1)


class TestPoissonSource:
    def test_bursty_batches(self):
        events = events_of(PoissonSource(10, 1.0, rate=2.0, seed=3, length=500))
        sizes = {len(r) for r, _ in events} | {len(s) for _, s in events}
        assert len(sizes) > 1  # genuinely bursty: varying batch sizes
        assert 0 in sizes  # some ticks are quiet
        total = sum(len(r) for r, _ in events)
        assert 0.5 * 2.0 * 500 < total < 1.5 * 2.0 * 500  # mass near rate*ticks

    def test_deterministic_and_picklable(self):
        source = PoissonSource(10, 1.0, rate=0.7, seed=11, length=300)
        first = events_of(source)
        assert first == events_of(source)
        assert first == events_of(pickle.loads(pickle.dumps(source)))

    def test_requires_rate(self):
        with pytest.raises((TypeError, ValueError)):
            PoissonSource(10, 1.0, rate=None)


class TestDriftingZipfSource:
    def test_deterministic_and_restartable(self):
        source = DriftingZipfSource(20, 1.0, phase_length=100, seed=6, length=350)
        first = events_of(source)
        assert len(first) == 350
        assert first == events_of(source)
        assert first == events_of(pickle.loads(pickle.dumps(source)))

    def test_phases_have_distinct_distributions(self):
        source = DriftingZipfSource(50, 1.5, phase_length=200, seed=0)
        dist0_r, _ = source.phase_distributions(0)
        dist1_r, _ = source.phase_distributions(1)
        assert list(dist0_r.probabilities()) != list(dist1_r.probabilities())

    def test_phase_distributions_deterministic(self):
        source = DriftingZipfSource(30, 1.0, phase_length=50, seed=2)
        a_r, a_s = source.phase_distributions(3)
        b_r, b_s = source.phase_distributions(3)
        assert list(a_r.probabilities()) == list(b_r.probabilities())
        assert list(a_s.probabilities()) == list(b_s.probabilities())

    def test_rejects_bad_phase_length(self):
        with pytest.raises(ValueError, match="phase_length"):
            DriftingZipfSource(10, 1.0, phase_length=0)


# ----------------------------------------------------------------------
# JSONL replay format (satellite: versioned, round-trips)
# ----------------------------------------------------------------------

class TestReplayJsonl:
    def test_round_trips_through_load_pair_jsonl(self, tmp_path):
        pair = zipf_pair(80, 12, 1.0, seed=13)
        path = tmp_path / "rec.jsonl"
        save_pair_jsonl(pair, path)
        loaded = load_pair_jsonl(path)
        assert list(loaded.r) == list(pair.r)
        assert list(loaded.s) == list(pair.s)
        assert loaded.name == pair.name

    def test_header_is_versioned(self, tmp_path):
        pair = zipf_pair(10, 5, 1.0, seed=1)
        path = tmp_path / "rec.jsonl"
        save_pair_jsonl(pair, path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == JSONL_FORMAT
        assert header["version"] == JSONL_VERSION
        assert header["length"] == 10

    def test_replay_source_streams_identical_events(self, tmp_path):
        pair = zipf_pair(60, 8, 1.0, seed=21)
        path = tmp_path / "rec.jsonl"
        save_pair_jsonl(pair, path)
        source = ReplaySource(path)
        assert source.length == 60
        assert events_of(source) == events_of(PairSource(pair))
        # restartable: a second pass re-reads the file
        assert events_of(source) == events_of(PairSource(pair))

    def test_replay_source_is_picklable(self, tmp_path):
        pair = zipf_pair(15, 5, 1.0, seed=2)
        path = tmp_path / "rec.jsonl"
        save_pair_jsonl(pair, path)
        source = pickle.loads(pickle.dumps(ReplaySource(path)))
        assert events_of(source) == events_of(PairSource(pair))

    def test_replay_source_carries_bursty_ticks(self, tmp_path):
        path = tmp_path / "bursty.jsonl"
        lines = [
            {"format": JSONL_FORMAT, "version": JSONL_VERSION, "name": "b", "length": 3},
            {"t": 0, "r": [1, 2], "s": []},
            {"t": 1, "r": [], "s": [3]},
            {"t": 2, "r": [4], "s": [5, 6]},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        assert events_of(ReplaySource(path)) == [
            ((1, 2), ()), ((), (3,)), ((4,), (5, 6)),
        ]
        # …but a bursty recording cannot collapse to a synchronous pair
        with pytest.raises(ValueError, match="one"):
            load_pair_jsonl(path)

    def test_rejects_foreign_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "other", "version": 1}) + "\n")
        with pytest.raises(ValueError, match="format"):
            ReplaySource(path)
        with pytest.raises(ValueError, match="format"):
            load_pair_jsonl(path)

    def test_rejects_future_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"format": JSONL_FORMAT, "version": JSONL_VERSION + 1}) + "\n"
        )
        with pytest.raises(ValueError, match="version"):
            ReplaySource(path)
        with pytest.raises(ValueError, match="version"):
            load_pair_jsonl(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            ReplaySource(path)

    def test_rejects_non_contiguous_ticks(self, tmp_path):
        path = tmp_path / "gap.jsonl"
        lines = [
            {"format": JSONL_FORMAT, "version": JSONL_VERSION, "length": 2},
            {"t": 0, "r": [1], "s": [1]},
            {"t": 5, "r": [2], "s": [2]},
        ]
        path.write_text("\n".join(json.dumps(line) for line in lines) + "\n")
        with pytest.raises(ValueError, match="contiguous"):
            events_of(ReplaySource(path))

    def test_csv_recordings_replay_too(self, tmp_path):
        pair = zipf_pair(25, 6, 1.0, seed=4)
        path = tmp_path / "rec.csv"
        save_pair(pair, path)
        assert events_of(ReplaySource(path)) == events_of(PairSource(pair))


# ----------------------------------------------------------------------
# coercion helpers
# ----------------------------------------------------------------------

class TestHelpers:
    def test_as_source_wraps_pairs_and_passes_sources(self):
        pair = zipf_pair(10, 5, 1.0, seed=1)
        wrapped = as_source(pair)
        assert isinstance(wrapped, PairSource)
        source = ZipfSource(5, 1.0, length=10)
        assert as_source(source) is source
        with pytest.raises(TypeError, match="Source"):
            as_source(42)

    def test_take_pair_materializes_prefix(self):
        source = ZipfSource(10, 1.0, seed=8, length=1000)
        pair = take_pair(source, 50)
        assert len(pair) == 50
        assert list(pair.r) == [r[0] for r, _ in events_of(source, ticks=50)]

    def test_take_pair_whole_bounded_source(self):
        source = ZipfSource(10, 1.0, seed=8, length=40)
        assert len(take_pair(source)) == 40

    def test_take_pair_rejects_bursty_sources(self):
        source = PoissonSource(10, 1.0, rate=3.0, seed=1, length=50)
        with pytest.raises(ValueError, match="one arrival"):
            take_pair(source, 50)
