"""Tests for the command-line interface."""

import json
import os
import sys

import pytest

from repro.cli import build_parser, main
from repro.obs.spans import load_spans


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "PROB"
        assert args.window == 100

    def test_algorithm_upper_cased(self):
        args = build_parser().parse_args(["run", "--algorithm", "prob"])
        assert args.algorithm == "PROB"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for token in ("PROB", "figure3", "static_join", "ablation_drift", "ci"):
            assert token in out

    def test_run(self, capsys):
        code = main(
            ["run", "--algorithm", "RAND", "--length", "300",
             "--window", "20", "--memory", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RAND:" in out
        assert "% of exact" in out

    def test_run_uniform_workload(self, capsys):
        code = main(
            ["run", "--workload", "uniform", "--length", "200",
             "--window", "15", "--memory", "8", "--algorithm", "PROBV"]
        )
        assert code == 0
        assert "uniform" in capsys.readouterr().out

    def test_run_weather_workload(self, capsys):
        code = main(
            ["run", "--workload", "weather", "--length", "1500",
             "--window", "100", "--memory", "50"]
        )
        assert code == 0
        assert "weather" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            ["compare", "--algorithms", "RAND,PROB", "--length", "300",
             "--window", "20", "--memory", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RAND" in out and "PROB" in out and "EXACT" in out

    def test_compare_unknown_algorithm(self, capsys):
        assert main(["compare", "--algorithms", "RAND,NOPE"]) == 2
        assert "unknown algorithms" in capsys.readouterr().err

    def test_compare_with_workers(self, capsys):
        serial = main(
            ["compare", "--algorithms", "RAND,PROB", "--length", "300",
             "--window", "20", "--memory", "10", "--workers", "1"]
        )
        serial_out = capsys.readouterr().out
        parallel = main(
            ["compare", "--algorithms", "RAND,PROB", "--length", "300",
             "--window", "20", "--memory", "10", "--workers", "2"]
        )
        parallel_out = capsys.readouterr().out
        assert serial == parallel == 0
        assert serial_out == parallel_out  # determinism contract

    def test_sweep(self, capsys):
        code = main(
            ["sweep", "--algorithms", "RAND,PROB", "--seeds", "0,1",
             "--length", "300", "--window", "20", "--memory", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RAND" in out and "PROB" in out
        assert "mean" in out and "seeds=0,1" in out

    def test_sweep_bad_seeds(self, capsys):
        assert main(["sweep", "--seeds", "0,abc"]) == 2
        assert "seeds" in capsys.readouterr().err

    def test_sweep_unknown_algorithm(self, capsys):
        assert main(["sweep", "--algorithms", "RAND,NOPE"]) == 2
        assert "unknown algorithms" in capsys.readouterr().err

    def test_figure(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        assert main(["figure", "figure8"]) == 0
        out = capsys.readouterr().out
        assert "figure8" in out
        assert "R share of memory" in out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "figure99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_table(self, capsys):
        assert main(["table", "multiway_join"]) == 0
        assert "multiway_join" in capsys.readouterr().out

    def test_table_with_scale(self, capsys):
        assert main(["table", "static_join", "--scale", "ci"]) == 0
        assert "static_join" in capsys.readouterr().out

    def test_table_unknown(self, capsys):
        assert main(["table", "bogus"]) == 2
        assert "unknown table" in capsys.readouterr().err


class TestFaultToleranceFlags:
    """The FT knobs are uniform across run / compare / sweep."""

    FLAGS = ["--shards", "3", "--max-retries", "2", "--timeout-s", "30",
             "--checkpoint-every", "16", "--degrade"]

    @pytest.mark.parametrize("command", ["run", "compare", "sweep"])
    def test_flags_parse_uniformly(self, command):
        args = build_parser().parse_args([command] + self.FLAGS)
        assert args.shards == 3
        assert args.max_retries == 2
        assert args.timeout_s == 30.0
        assert args.checkpoint_every == 16
        assert args.degrade is True

    def test_run_rejects_knobs_without_shards(self, capsys):
        code = main(["run", "--algorithm", "PROB", "--length", "300",
                     "--window", "20", "--memory", "10",
                     "--max-retries", "2"])
        assert code == 2
        assert "requires sharded execution" in capsys.readouterr().err

    def test_compare_rejects_knobs_without_shards(self, capsys):
        code = main(["compare", "--algorithms", "RAND,PROB",
                     "--length", "300", "--window", "20", "--memory", "10",
                     "--degrade"])
        assert code == 2
        assert "requires sharded execution" in capsys.readouterr().err

    def test_sweep_rejects_knobs_without_shards(self, capsys):
        code = main(["sweep", "--algorithms", "RAND", "--seeds", "0,1",
                     "--length", "300", "--window", "20", "--memory", "10",
                     "--checkpoint-every", "8"])
        assert code == 2
        assert "requires sharded execution" in capsys.readouterr().err

    def test_run_with_retries_and_checkpoints(self, capsys, tmp_path):
        code = main(["run", "--algorithm", "EXACT", "--length", "300",
                     "--window", "20", "--memory", "10", "--shards", "2",
                     "--max-retries", "1", "--checkpoint-every", "16",
                     "--checkpoint-dir", str(tmp_path)])
        assert code == 0
        assert "EXACT:" in capsys.readouterr().out

    def test_sweep_accepts_shards(self, capsys):
        code = main(["sweep", "--algorithms", "RAND,PROB", "--seeds", "0,1",
                     "--length", "300", "--window", "20", "--memory", "10",
                     "--shards", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "RAND" in out and "PROB" in out and "mean" in out


class TestVersionedJsonExport:
    def test_run_json_carries_schema_and_run_document(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "m.json"
        code = main(["run", "--algorithm", "PROB", "--length", "300",
                     "--window", "20", "--memory", "10",
                     "--metrics", "json", "--metrics-out", str(out_path)])
        assert code == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["schema_version"] == 2
        assert payload["run"]["policy"] == "PROB"
        assert payload["run"]["drops"]["schema_version"] == 2
        assert payload["run"]["output_count"] >= 0

    def test_json_round_trips_through_loader(self, tmp_path, capsys):
        from repro.obs import load_metrics_json

        out_path = tmp_path / "m.json"
        main(["run", "--algorithm", "PROB", "--length", "300",
              "--window", "20", "--memory", "10",
              "--metrics", "json", "--metrics-out", str(out_path)])
        capsys.readouterr()
        registry = load_metrics_json(out_path)
        assert registry.counter_value("engine.output") >= 0


class TestMetricsEmission:
    def test_compare_csv_has_policy_column(self, capsys):
        """Format lock: multi-policy CSV is one table with a policy column."""
        import csv
        import io

        code = main(
            ["compare", "--algorithms", "RAND,PROB", "--length", "300",
             "--window", "20", "--memory", "10", "--metrics", "csv"]
        )
        assert code == 0
        out = capsys.readouterr().out
        csv_start = out.index("policy,kind,name,labels,x,value")
        rows = list(csv.reader(io.StringIO(out[csv_start:])))
        assert rows[0] == ["policy", "kind", "name", "labels", "x", "value"]
        assert {row[0] for row in rows[1:]} == {"RAND", "PROB"}
        # the old format concatenated per-policy blocks under comments
        assert "# RAND" not in out
        assert "# PROB" not in out

    def test_single_run_csv_keeps_plain_header(self, capsys):
        code = main(
            ["run", "--algorithm", "RAND", "--length", "300",
             "--window", "20", "--memory", "10", "--metrics", "csv"]
        )
        assert code == 0
        assert "kind,name,labels,x,value" in capsys.readouterr().out


class TestTraceCommands:
    def test_record_writes_jsonl(self, capsys, tmp_path):
        out_path = tmp_path / "prob.trace.jsonl"
        code = main(
            ["trace", "record", "--algorithm", "PROB", "--length", "300",
             "--window", "20", "--memory", "10", "--out", str(out_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace events" in out
        assert out_path.exists()
        assert out_path.read_text().count("\n") > 0

    def test_record_without_out_prints_summary(self, capsys):
        code = main(
            ["trace", "record", "--length", "300", "--window", "20",
             "--memory", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "arrive" in out
        assert "admit" in out

    def test_inspect_round_trip(self, capsys, tmp_path):
        out_path = tmp_path / "t.jsonl"
        main(["trace", "record", "--length", "300", "--window", "20",
              "--memory", "10", "--out", str(out_path)])
        capsys.readouterr()
        code = main(["trace", "inspect", str(out_path), "--events", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "kinds" in out
        assert "arrive" in out

    def test_inspect_missing_file(self, capsys):
        code = main(["trace", "inspect", "/nonexistent/trace.jsonl"])
        assert code == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_attribute_prints_reconciling_table(self, capsys):
        code = main(
            ["trace", "attribute", "--algorithms", "PROB,RAND",
             "--scale", "ci", "--top", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PROB" in out
        assert "RAND" in out
        assert "yes" in out
        assert "NO" not in out  # every ledger reconciles
        assert "costliest" in out

    def test_attribute_rejects_opt(self, capsys):
        code = main(["trace", "attribute", "--algorithms", "OPT"])
        assert code == 2
        assert "cannot attribute" in capsys.readouterr().err


class TestDashCommand:
    def test_dash_once(self, capsys):
        code = main(
            ["dash", "--algorithm", "PROB", "--length", "300", "--window", "20",
             "--memory", "10", "--once", "--no-color"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "arrive" in out
        assert "produced" in out
        assert "\x1b[" not in out

    def test_dash_from_trace(self, capsys, tmp_path):
        out_path = tmp_path / "t.jsonl"
        main(["trace", "record", "--length", "300", "--window", "20",
              "--memory", "10", "--out", str(out_path)])
        capsys.readouterr()
        code = main(
            ["dash", "--from-trace", str(out_path), "--bucket", "30",
             "--once", "--no-color"]
        )
        assert code == 0
        assert "memory" in capsys.readouterr().out

    def test_dash_missing_trace(self, capsys):
        code = main(["dash", "--from-trace", "/nonexistent.jsonl", "--once"])
        assert code == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestTraceTimelineCommand:
    ARGS = ["trace", "timeline", "--length", "300", "--window", "20",
            "--memory", "10", "--domain", "30", "--shards", "2"]

    def test_prints_summary_and_stage_table(self, capsys):
        code = main(self.ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "timeline :" in out
        assert "span events" in out
        assert "heartbeat" in out
        assert "queue" in out  # the stage-latency table

    def test_writes_chrome_trace_json(self, capsys, tmp_path):
        out_path = tmp_path / "timeline.json"
        code = main(self.ARGS + ["--out", str(out_path)])
        assert code == 0
        capsys.readouterr()
        trace = json.loads(out_path.read_text())
        assert trace["traceEvents"]
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert phases >= {"M", "X"}

    def test_spans_out_round_trips(self, capsys, tmp_path):
        spans_path = tmp_path / "spans.jsonl"
        code = main(self.ARGS + ["--spans-out", str(spans_path)])
        assert code == 0
        capsys.readouterr()
        events = load_spans(spans_path)
        assert any(event.kind == "heartbeat" for event in events)
        assert any(event.kind == "merge" for event in events)

    def test_rejects_unsharded_runs(self, capsys):
        code = main(["trace", "timeline", "--length", "300", "--window",
                     "20", "--memory", "10"])
        assert code == 2
        assert "shards > 1" in capsys.readouterr().err


class TestFleetDashCommand:
    def test_fleet_once(self, capsys):
        code = main(
            ["dash", "--fleet", "--length", "300", "--window", "20",
             "--memory", "10", "--domain", "30", "--shards", "2",
             "--once", "--no-color"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 shards" in out
        assert "done" in out
        assert "\x1b[" not in out

    def test_fleet_from_saved_spans(self, capsys, tmp_path):
        spans_path = tmp_path / "spans.jsonl"
        main(["trace", "timeline", "--length", "300", "--window", "20",
              "--memory", "10", "--domain", "30", "--shards", "2",
              "--spans-out", str(spans_path)])
        capsys.readouterr()
        code = main(["dash", "--fleet", "--from-trace", str(spans_path),
                     "--once", "--no-color"])
        assert code == 0
        assert "shards" in capsys.readouterr().out

    def test_fleet_missing_trace(self, capsys):
        code = main(["dash", "--fleet", "--from-trace", "/nonexistent.jsonl",
                     "--once"])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err


class TestServeCommand:
    def test_bounded_generator_run(self, capsys):
        code = main(
            ["serve", "--source", "zipf", "--algorithm", "PROB",
             "--length", "3000", "--window", "20", "--memory", "10",
             "--domain", "30", "--summary-every", "1000"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "PROB" in err
        assert "output tuples" in err
        assert err.count("t=") >= 3  # rolling summaries every 1000 ticks

    def test_duration_bounds_an_unbounded_generator(self, capsys):
        code = main(
            ["serve", "--source", "drifting-zipf", "--phase-length", "500",
             "--duration", "2000", "--window", "20", "--memory", "10",
             "--estimator", "ewma", "--summary-every", "1000"]
        )
        assert code == 0
        assert "2000 ticks" in capsys.readouterr().err

    def test_emit_jsonl_streams_output_pairs(self, capsys):
        code = main(
            ["serve", "--source", "zipf", "--length", "800",
             "--window", "15", "--memory", "30", "--domain", "10",
             "--algorithm", "EXACT", "--emit", "jsonl",
             "--summary-every", "1000"]
        )
        assert code == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.splitlines() if line]
        assert lines
        assert all(set(rec) == {"r", "s", "key"} for rec in lines)
        # the sink sees exactly what the run counted
        assert f"{len(lines)} output tuples" in captured.err

    def test_emit_broken_pipe_is_clean_shutdown(self, monkeypatch):
        # A downstream consumer closing stdout (`repro serve ... | head`)
        # is a normal way to end a streaming run: exit 0, no traceback.
        class ClosedPipe:
            def __init__(self):
                self._fd = os.open(os.devnull, os.O_WRONLY)
                self.writes = 0

            def write(self, text):
                self.writes += 1
                if self.writes > 3:
                    raise BrokenPipeError
                return len(text)

            def flush(self):
                pass

            def fileno(self):
                return self._fd

        fake = ClosedPipe()
        monkeypatch.setattr(sys, "stdout", fake)
        code = main(
            ["serve", "--source", "zipf", "--length", "800",
             "--window", "15", "--memory", "30", "--domain", "10",
             "--algorithm", "EXACT", "--emit", "jsonl",
             "--summary-every", "1000"]
        )
        assert code == 0
        assert fake.writes > 3  # the pipe actually broke mid-stream

    def test_replay_source_round_trip(self, capsys, tmp_path):
        from repro.streams.generators import zipf_pair
        from repro.streams.replay import save_pair_jsonl

        path = tmp_path / "traffic.jsonl"
        save_pair_jsonl(zipf_pair(500, 10, 1.0, seed=3), path)
        code = main(
            ["serve", "--source", "replay", "--replay", str(path),
             "--window", "20", "--memory", "10", "--summary-every", "200",
             "--estimator", "countmin"]
        )
        assert code == 0
        assert "500 ticks" in capsys.readouterr().err

    def test_replay_has_no_oracle(self, capsys, tmp_path):
        from repro.streams.generators import zipf_pair
        from repro.streams.replay import save_pair_jsonl

        path = tmp_path / "traffic.jsonl"
        save_pair_jsonl(zipf_pair(100, 10, 1.0, seed=3), path)
        code = main(
            ["serve", "--source", "replay", "--replay", str(path),
             "--window", "20", "--memory", "10"]
        )
        assert code == 2
        assert "online" in capsys.readouterr().err

    def test_replay_requires_a_path(self, capsys):
        code = main(["serve", "--source", "replay"])
        assert code == 2
        assert "--replay" in capsys.readouterr().err

    def test_estimator_needs_a_semantic_policy(self, capsys):
        code = main(
            ["serve", "--source", "zipf", "--length", "100",
             "--algorithm", "RAND", "--estimator", "ewma"]
        )
        assert code == 2
        assert "estimator" in capsys.readouterr().err
