"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "PROB"
        assert args.window == 100

    def test_algorithm_upper_cased(self):
        args = build_parser().parse_args(["run", "--algorithm", "prob"])
        assert args.algorithm == "PROB"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for token in ("PROB", "figure3", "static_join", "ablation_drift", "ci"):
            assert token in out

    def test_run(self, capsys):
        code = main(
            ["run", "--algorithm", "RAND", "--length", "300",
             "--window", "20", "--memory", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RAND:" in out
        assert "% of exact" in out

    def test_run_uniform_workload(self, capsys):
        code = main(
            ["run", "--workload", "uniform", "--length", "200",
             "--window", "15", "--memory", "8", "--algorithm", "PROBV"]
        )
        assert code == 0
        assert "uniform" in capsys.readouterr().out

    def test_run_weather_workload(self, capsys):
        code = main(
            ["run", "--workload", "weather", "--length", "1500",
             "--window", "100", "--memory", "50"]
        )
        assert code == 0
        assert "weather" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(
            ["compare", "--algorithms", "RAND,PROB", "--length", "300",
             "--window", "20", "--memory", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RAND" in out and "PROB" in out and "EXACT" in out

    def test_compare_unknown_algorithm(self, capsys):
        assert main(["compare", "--algorithms", "RAND,NOPE"]) == 2
        assert "unknown algorithms" in capsys.readouterr().err

    def test_figure(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ci")
        assert main(["figure", "figure8"]) == 0
        out = capsys.readouterr().out
        assert "figure8" in out
        assert "R share of memory" in out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "figure99"]) == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_table(self, capsys):
        assert main(["table", "multiway_join"]) == 0
        assert "multiway_join" in capsys.readouterr().out

    def test_table_with_scale(self, capsys):
        assert main(["table", "static_join", "--scale", "ci"]) == 0
        assert "static_join" in capsys.readouterr().out

    def test_table_unknown(self, capsys):
        assert main(["table", "bogus"]) == 2
        assert "unknown table" in capsys.readouterr().err
