"""Tests for hash-partitioned sharded execution (repro.core.partition).

The invariants pinned here are the partition layer's contract:

* sharded EXACT equals unsharded EXACT tuple for tuple (per-shard
  outputs match the exact pairs whose key hashes to that shard);
* for a fixed ``shards=N`` every policy's result is bit-identical
  whether the shards run serially or across worker processes;
* the merged totals equal the sums of the per-shard results.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import RunSpec, build_pair, run, run_sharded
from repro.core import run_exact
from repro.core.async_engine import AsyncEngineConfig, AsyncJoinEngine
from repro.core.partition import (
    MIN_SHARD_BUDGET,
    ShardPlan,
    merge_shard_results,
    plan_shards,
    shard_batches,
    shard_exact_output,
    shard_input_counts,
    shard_of,
    shard_seed,
    shard_weights,
)
from repro.streams import exact_join_size, zipf_pair


class TestShardOf:
    def test_int_keys_partition_by_residue(self):
        assert shard_of(17, 4) == 1
        assert all(0 <= shard_of(k, 3) < 3 for k in range(50))

    def test_string_keys_stable_and_in_range(self):
        keys = [f"key-{i}" for i in range(100)]
        first = [shard_of(k, 5) for k in keys]
        assert first == [shard_of(k, 5) for k in keys]
        assert all(0 <= s < 5 for s in first)
        assert len(set(first)) > 1  # crc32 actually spreads

    def test_bool_keys_do_not_use_int_residue(self):
        # bool is an int subclass; it must take the hashed path so True
        # and 1 (distinct dict keys? no — but distinct semantics) still
        # land deterministically.
        assert shard_of(True, 2) == shard_of(True, 2)

    def test_shard_seed_is_injective_enough(self):
        seeds = {shard_seed(seed, shard) for seed in range(3) for shard in range(8)}
        assert len(seeds) == 24


class TestShardBatches:
    def test_shards_partition_every_tick(self):
        pair = zipf_pair(200, 10, 1.0, seed=1)
        shards = 3
        views = [shard_batches(pair, s, shards) for s in range(shards)]
        for t in range(len(pair)):
            r_owners = [s for s, (r, _) in enumerate(views) if r[t]]
            s_owners = [s for s, (_, sb) in enumerate(views) if sb[t]]
            assert len(r_owners) == 1 and len(s_owners) == 1
            assert list(views[r_owners[0]][0][t]) == [pair.r[t]]
            assert list(views[s_owners[0]][1][t]) == [pair.s[t]]

    def test_weights_cover_all_arrivals(self):
        pair = zipf_pair(150, 8, 1.0, seed=2)
        weights = shard_weights(pair, 4)
        assert sum(weights) == 2 * len(pair)
        assert all(w >= 0 for w in weights)


class TestPlanShards:
    def test_even_split_rounds_to_even(self):
        plan = plan_shards(50, 4)
        assert plan.budgets == (12, 12, 12, 12)
        assert not plan.weighted

    def test_minimum_budget_floor(self):
        plan = plan_shards(6, 5)
        assert all(b == MIN_SHARD_BUDGET for b in plan.budgets)

    def test_lossless_budget_ignores_memory(self):
        plan = plan_shards(10, 3, lossless_budget=80)
        assert plan.budgets == (80, 80, 80)

    def test_weighted_split_follows_weights(self):
        plan = plan_shards(40, 2, weights=[30, 10])
        assert plan.weighted
        assert plan.budgets[0] > plan.budgets[1]
        assert all(b >= MIN_SHARD_BUDGET and b % 2 == 0 for b in plan.budgets)

    def test_zero_weights_fall_back_to_even(self):
        plan = plan_shards(20, 2, weights=[0, 0])
        assert plan.budgets == (10, 10)
        assert not plan.weighted

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shards(10, 0)
        with pytest.raises(ValueError):
            plan_shards(10, 2, weights=[1])
        with pytest.raises(ValueError):
            ShardPlan(2, (4,))
        with pytest.raises(ValueError):
            ShardPlan(1, (1,))


class TestRunSpecValidation:
    def test_shards_must_be_positive(self):
        with pytest.raises(ValueError, match="shards"):
            RunSpec(shards=0)

    def test_opt_cannot_shard(self):
        with pytest.raises(ValueError, match="OPT"):
            RunSpec(algorithm="OPT", shards=2)

    def test_only_fast_engine_shards(self):
        with pytest.raises(ValueError, match="fast"):
            RunSpec(engine="slowcpu", shards=2)

    def test_trace_incompatible(self):
        with pytest.raises(ValueError, match="trac"):
            RunSpec(shards=2, trace=True)

    def test_run_sharded_needs_two_shards(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="shards"):
                run_sharded(RunSpec(shards=1))


def _spec(algorithm, shards=1, **kwargs):
    base = dict(window=25, memory=12, length=500, domain=15, seed=4)
    base.update(kwargs)
    return RunSpec(algorithm=algorithm, shards=shards, **base)


class TestExactIdentity:
    def test_matches_unsharded_engine_and_ledger(self):
        spec = _spec("EXACT")
        pair = build_pair(spec)
        base = run(spec, pair=pair)
        for shards in (2, 5):
            sharded = run(_spec("EXACT", shards=shards), pair=pair)
            assert sharded.output_count == base.output_count
            assert sharded.total_output_count == base.total_output_count
            assert sharded.drop_breakdown() == base.drop_breakdown()

    def test_tuple_for_tuple_per_shard(self):
        """Each shard produces exactly the exact-join pairs of its keys."""
        spec = _spec("EXACT", shards=4)
        pair = build_pair(spec)
        exact = run_exact(pair, spec.window, materialize=True)
        per_shard_expected = [0] * spec.shards
        for out in exact.pairs:
            per_shard_expected[shard_of(out.key, spec.shards)] += 1
        sharded = run(spec, pair=pair)
        assert [s.output_count for s in sharded.per_shard] == per_shard_expected
        assert sharded.output_count == exact.output_count

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 200),
        window=st.integers(2, 15),
        shards=st.integers(2, 5),
    )
    def test_exact_identity_for_any_input(self, seed, window, shards):
        pair = zipf_pair(120, 6, 1.0, seed=seed)
        spec = RunSpec(
            algorithm="EXACT",
            window=window,
            memory=2 * window,
            length=len(pair),
            shards=shards,
        )
        sharded = run(spec, pair=pair)
        assert sharded.output_count == exact_join_size(
            pair, window, count_from=2 * window
        )


class TestWorkerDeterminism:
    POLICIES = ("RAND", "PROB", "LIFE", "PROBV", "FIFO")

    @pytest.mark.parametrize("algorithm", POLICIES)
    def test_bit_identical_across_worker_counts(self, algorithm, monkeypatch):
        spec = _spec(algorithm, shards=3, length=400)
        pair = build_pair(spec)

        monkeypatch.setenv("REPRO_WORKERS", "0")  # kill switch: forced serial
        disabled = run(spec, pair=pair)
        monkeypatch.delenv("REPRO_WORKERS")
        serial = run(spec, pair=pair, workers=1)
        parallel = run(spec, pair=pair, workers=4)

        for other in (serial, parallel):
            assert disabled.output_count == other.output_count
            assert disabled.total_output_count == other.total_output_count
            assert disabled.drop_counts == other.drop_counts
            assert disabled.per_shard == other.per_shard

    def test_changing_shard_count_is_a_different_variant(self):
        # Not an identity — documented approximation semantics: the
        # budget split changes with N, so outputs legitimately differ.
        spec2 = _spec("PROB", shards=2)
        spec4 = _spec("PROB", shards=4)
        pair = build_pair(spec2)
        assert run(spec2, pair=pair).output_count != pytest.approx(0)
        assert run(spec4, pair=pair).output_count >= 0


class TestMergeTotals:
    @pytest.mark.parametrize("algorithm", ("EXACT", "RAND", "PROB"))
    def test_totals_equal_sum_of_shards(self, algorithm):
        spec = _spec(algorithm, shards=4)
        result = run(spec)
        assert result.output_count == sum(
            s.output_count for s in result.per_shard
        )
        merged = result.drop_breakdown()
        assert merged.rejected == sum(s.drops.rejected for s in result.per_shard)
        assert merged.evicted == sum(s.drops.evicted for s in result.per_shard)
        assert merged.expired == sum(s.drops.expired for s in result.per_shard)
        assert result.shards == 4 and len(result.per_shard) == 4

    def test_metrics_snapshots_merge(self):
        spec = _spec("PROB", shards=3, metrics=True)
        result = run(spec)
        assert result.metrics is not None
        output_total = sum(
            c["value"]
            for c in result.metrics["counters"]
            if c["name"] == "engine.output"
        )
        arrivals = sum(
            c["value"]
            for c in result.metrics["counters"]
            if c["name"] == "async.arrivals"
        )
        assert output_total == result.output_count
        assert arrivals == 2 * spec.length

    def test_summary_surface(self):
        result = run(_spec("PROB", shards=2))
        summary = result.summary()
        assert summary.engine == "sharded"
        assert summary.output_count == result.output_count


class TestLostShards:
    """Degraded merges: attributed loss, exact reconciliation."""

    WINDOW = 25
    SHARDS = 3

    @classmethod
    def _shard_results(cls, pair):
        plan = plan_shards(
            4 * cls.WINDOW, cls.SHARDS, lossless_budget=2 * cls.WINDOW
        )
        results = []
        for shard in range(cls.SHARDS):
            r_batches, s_batches = shard_batches(pair, shard, cls.SHARDS)
            config = AsyncEngineConfig(
                window=cls.WINDOW,
                memory=plan.budgets[shard],
                warmup=2 * cls.WINDOW,
            )
            results.append(AsyncJoinEngine(config).run(r_batches, s_batches))
        return plan, results

    def test_input_counts_partition_the_pair(self):
        pair = zipf_pair(300, 12, 1.0, seed=6)
        totals = [shard_input_counts(pair, s, 4) for s in range(4)]
        assert sum(r for r, _ in totals) == len(pair)
        assert sum(s for _, s in totals) == len(pair)

    def test_exact_output_partitions_the_total(self):
        pair = zipf_pair(300, 12, 1.0, seed=6)
        per_shard = [
            shard_exact_output(pair, s, 4, self.WINDOW, count_from=50)
            for s in range(4)
        ]
        assert sum(per_shard) == exact_join_size(
            pair, self.WINDOW, count_from=50
        )

    def test_degraded_merge_attributes_and_reconciles(self):
        pair = zipf_pair(400, 10, 1.0, seed=7)
        plan, results = self._shard_results(pair)
        lost_shard = 1
        warmup = 2 * self.WINDOW
        lost_output = shard_exact_output(
            pair, lost_shard, self.SHARDS, self.WINDOW, count_from=warmup
        )
        merged = merge_shard_results(
            results,
            plan,
            length=len(pair),
            window=self.WINDOW,
            memory=4 * self.WINDOW,
            warmup=warmup,
            lost=(lost_shard,),
            lost_inputs=[shard_input_counts(pair, lost_shard, self.SHARDS)],
            lost_output=lost_output,
        )
        assert merged.lost_shards == (lost_shard,)
        assert merged.per_shard[lost_shard] is None
        survivors = [s for s in range(self.SHARDS) if s != lost_shard]
        assert merged.output_count == sum(
            results[s].output_count for s in survivors
        )
        # the lost shard's inputs are booked, not silently vanished
        lost_r, lost_s = shard_input_counts(pair, lost_shard, self.SHARDS)
        assert merged.drop_breakdown().lost == lost_r + lost_s
        # EXACT reconciliation: merged output + attributed loss = total
        assert merged.output_count + merged.lost_output == exact_join_size(
            pair, self.WINDOW, count_from=warmup
        )

    def test_merge_without_losses_has_empty_ledger_entry(self):
        pair = zipf_pair(200, 10, 1.0, seed=8)
        plan, results = self._shard_results(pair)
        merged = merge_shard_results(
            results,
            plan,
            length=len(pair),
            window=self.WINDOW,
            memory=4 * self.WINDOW,
            warmup=2 * self.WINDOW,
        )
        assert merged.lost_shards == ()
        assert merged.lost_output is None
        assert merged.drop_breakdown().lost == 0

    def test_all_shards_lost_refuses_to_merge(self):
        pair = zipf_pair(200, 10, 1.0, seed=8)
        plan, results = self._shard_results(pair)
        with pytest.raises(ValueError, match="all shards were lost"):
            merge_shard_results(
                results,
                plan,
                length=len(pair),
                window=self.WINDOW,
                memory=4 * self.WINDOW,
                warmup=2 * self.WINDOW,
                lost=tuple(range(self.SHARDS)),
            )

    def test_lost_validation(self):
        pair = zipf_pair(200, 10, 1.0, seed=8)
        plan, results = self._shard_results(pair)
        common = dict(
            length=len(pair),
            window=self.WINDOW,
            memory=4 * self.WINDOW,
            warmup=2 * self.WINDOW,
        )
        with pytest.raises(ValueError, match="out of range"):
            merge_shard_results(results, plan, lost=(9,), **common)
        with pytest.raises(ValueError, match="lost_inputs"):
            merge_shard_results(
                results, plan, lost=(0,), lost_inputs=[(1, 1), (2, 2)],
                **common,
            )
