"""Tests for the Greenwald-Khanna quantile summary."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import GKQuantileSummary

QUANTILES = (0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99)


def worst_rank_error(summary: GKQuantileSummary, data: np.ndarray) -> float:
    data_sorted = np.sort(data)
    worst = 0.0
    for quantile in QUANTILES:
        estimate = summary.query(quantile)
        rank = float(np.searchsorted(data_sorted, estimate, side="right"))
        worst = max(worst, abs(rank - quantile * len(data)) / len(data))
    return worst


class TestAccuracy:
    @pytest.mark.parametrize("epsilon", [0.05, 0.01])
    def test_uniform_stream(self, epsilon):
        rng = np.random.default_rng(1)
        data = rng.random(10_000)
        summary = GKQuantileSummary(epsilon)
        for value in data:
            summary.observe(float(value))
        # A small slack accommodates the +1 rounding in query().
        assert worst_rank_error(summary, data) <= epsilon + 2.0 / len(data)

    def test_adversarial_orders(self):
        for data in (np.arange(5000.0), np.arange(5000.0)[::-1]):
            summary = GKQuantileSummary(0.02)
            for value in data:
                summary.observe(float(value))
            assert worst_rank_error(summary, data) <= 0.021

    def test_duplicates(self):
        summary = GKQuantileSummary(0.05)
        data = np.array([3.0] * 500 + [7.0] * 500)
        rng = np.random.default_rng(2)
        rng.shuffle(data)
        for value in data:
            summary.observe(float(value))
        assert summary.query(0.25) == 3.0
        assert summary.query(0.9) == 7.0

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), size=st.integers(50, 800))
    def test_random_streams_within_bound(self, seed, size):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=size)
        summary = GKQuantileSummary(0.05)
        for value in data:
            summary.observe(float(value))
        assert worst_rank_error(summary, data) <= 0.05 + 2.0 / size


class TestSpace:
    def test_sublinear_state(self):
        summary = GKQuantileSummary(0.01)
        rng = np.random.default_rng(3)
        for value in rng.random(20_000):
            summary.observe(float(value))
        assert len(summary) < 200  # vs 20 000 raw observations
        assert summary.count == 20_000

    def test_extremes_are_exact(self):
        summary = GKQuantileSummary(0.1)
        data = [5.0, 1.0, 9.0, 3.0]
        for value in data:
            summary.observe(value)
        assert summary.query(0.0) == 1.0
        assert summary.query(1.0) == 9.0


class TestApi:
    def test_validation(self):
        with pytest.raises(ValueError):
            GKQuantileSummary(0.0)
        with pytest.raises(ValueError):
            GKQuantileSummary(1.0)
        summary = GKQuantileSummary(0.1)
        with pytest.raises(ValueError, match="empty"):
            summary.query(0.5)
        summary.observe(1.0)
        with pytest.raises(ValueError):
            summary.query(1.5)

    def test_rank_bounds_bracket_truth(self):
        summary = GKQuantileSummary(0.05)
        data = list(range(1000))
        for value in data:
            summary.observe(float(value))
        low, high = summary.rank_bounds(500.0)
        assert low <= 501 <= high + 0.05 * 1000 + 1

    def test_space_bound_reported(self):
        summary = GKQuantileSummary(0.05)
        for value in range(1000):
            summary.observe(float(value))
        assert summary.space_bound() >= 1
