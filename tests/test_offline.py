"""Tests for OPT-offline: job extraction, flow construction, optimality.

The central claims verified here:

* the compact flow formulation's optimum equals the exhaustive optimum of
  the engine's decision space (fixed and variable allocation), across
  many random tiny instances — this validates the DESIGN.md section 3
  equivalence argument end-to-end;
* OPT dominates every online policy and is dominated by EXACT;
* OPT is monotone in memory, and OPTV >= OPT.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import run_exact
from repro.core.offline import (
    TupleJob,
    brute_force_opt,
    build_schedule_network,
    decode_departures,
    extract_jobs,
    solve_opt,
    total_exact_output,
)
from repro.experiments.runner import run_algorithm
from repro.streams import StreamPair, exact_join_size, zipf_pair


class TestJobExtraction:
    def test_paper_example(self):
        # R = 1,1,1,3,2; S = 2,3,1,1,3; w = 3 (the paper's Figure 2 input).
        pair = StreamPair(r=[1, 1, 1, 3, 2], s=[2, 3, 1, 1, 3])
        r_jobs, s_jobs, simultaneous = extract_jobs(pair, window=3)
        by_arrival = {job.arrival: job for job in r_jobs}
        # r(0)=1 matches s(2); r(1)=1 matches s(2),s(3); r(2)=1 matches s(3).
        assert by_arrival[0].match_times == (2,)
        assert by_arrival[1].match_times == (2, 3)
        assert by_arrival[2].match_times == (3,)
        # r(3)=3 matches s(4); r(4) has no future matches -> no job.
        assert by_arrival[3].match_times == (4,)
        assert 4 not in by_arrival
        # s(1)=3 matches r(3); no other S-tuple has a future partner within
        # the window (s(0)=2 would need r(4), which arrives 4 > w-1 later).
        s_by_arrival = {job.arrival: job for job in s_jobs}
        assert set(s_by_arrival) == {1}
        assert s_by_arrival[1].match_times == (3,)
        # (r(2), s(2)) both 1: one simultaneous pair.
        assert simultaneous == 1

    def test_total_exact_output_matches_direct(self):
        for seed in range(5):
            pair = zipf_pair(100, 5, 1.0, seed=seed)
            for count_from in (0, 20):
                jobs = extract_jobs(pair, window=9, count_from=count_from)
                assert total_exact_output(*jobs) == exact_join_size(
                    pair, 9, count_from=count_from
                )

    def test_count_from_drops_early_matches(self):
        pair = StreamPair(r=[1, 5, 6], s=[7, 1, 1])
        r_jobs, _, _ = extract_jobs(pair, window=3, count_from=2)
        (job,) = r_jobs
        assert job.match_times == (2,)  # the match at t=1 is not counted

    def test_validation(self):
        pair = StreamPair(r=[1], s=[1])
        with pytest.raises(ValueError):
            extract_jobs(pair, window=0)
        with pytest.raises(ValueError):
            extract_jobs(pair, window=2, count_from=-1)


class TestFlowGraphConstruction:
    def test_sizes(self):
        jobs = [TupleJob("R", 0, (2, 4)), TupleJob("R", 3, (4,))]
        schedule = build_schedule_network(jobs, length=6, capacity=2)
        # time nodes 0..6 (7) + 2 entry nodes.
        assert schedule.network.num_nodes == 9
        # 6 chain arcs + 2 entry arcs + 3 departure arcs.
        assert schedule.network.num_arcs == 11
        assert schedule.network.is_topologically_ordered()

    def test_profits_are_cumulative(self):
        jobs = [TupleJob("R", 0, (1, 3, 4))]
        schedule = build_schedule_network(jobs, length=5, capacity=1)
        costs = sorted(
            schedule.network.arc(arc_id).cost for arc_id in schedule.departure_arcs
        )
        assert costs == [-3, -2, -1]

    def test_empty_stream(self):
        schedule = build_schedule_network([], length=0, capacity=3)
        assert schedule.network.num_nodes == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            build_schedule_network([], length=-1, capacity=1)
        with pytest.raises(ValueError):
            build_schedule_network([], length=1, capacity=-1)
        with pytest.raises(ValueError):
            build_schedule_network([TupleJob("R", 9, (10,))], length=5, capacity=1)
        with pytest.raises(ValueError):
            build_schedule_network([TupleJob("R", 0, (9,))], length=5, capacity=1)

    def test_decode_rejects_double_selection(self):
        jobs = [TupleJob("R", 0, (1, 2))]
        schedule = build_schedule_network(jobs, length=3, capacity=2)
        flow = [0] * schedule.network.num_arcs
        for arc_id in schedule.departure_arcs:
            flow[arc_id] = 1  # both departures selected: invalid
        with pytest.raises(ValueError, match="two departures"):
            decode_departures(schedule, flow)


class TestOptAgainstBruteForce:
    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        window=st.integers(2, 5),
        half=st.integers(1, 2),
        length=st.integers(4, 14),
        domain=st.integers(2, 4),
    )
    def test_fixed_allocation_matches_exhaustive(self, seed, window, half, length, domain):
        pair = zipf_pair(length, domain, 1.0, seed=seed)
        memory = 2 * half
        flow_result = solve_opt(pair, window, memory, count_from=0)
        brute = brute_force_opt(pair, window, memory, count_from=0)
        assert flow_result.output_count == brute

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        window=st.integers(2, 4),
        memory=st.integers(1, 3),
        length=st.integers(4, 10),
    )
    def test_variable_allocation_matches_exhaustive(self, seed, window, memory, length):
        pair = zipf_pair(length, 3, 1.0, seed=seed)
        flow_result = solve_opt(pair, window, memory, variable=True, count_from=0)
        brute = brute_force_opt(pair, window, memory, variable=True, count_from=0)
        assert flow_result.output_count == brute

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), count_from=st.integers(0, 8))
    def test_warmup_variant_matches_exhaustive(self, seed, count_from):
        pair = zipf_pair(12, 3, 1.0, seed=seed)
        flow_result = solve_opt(pair, 3, 2, count_from=count_from)
        brute = brute_force_opt(pair, 3, 2, count_from=count_from)
        assert flow_result.output_count == brute


class TestOptProperties:
    def test_dominates_online_and_below_exact(self):
        pair = zipf_pair(300, 8, 1.0, seed=21)
        window, memory = 20, 10
        opt = solve_opt(pair, window, memory).output_count
        exact = run_exact(pair, window).output_count
        assert opt <= exact
        for name in ("RAND", "PROB", "LIFE"):
            online = run_algorithm(name, pair, window, memory, seed=4).output_count
            assert online <= opt

    def test_optv_dominates_online_variable(self):
        pair = zipf_pair(300, 8, 1.0, seed=22)
        window, memory = 20, 10
        optv = solve_opt(pair, window, memory, variable=True).output_count
        for name in ("RANDV", "PROBV", "LIFEV"):
            online = run_algorithm(name, pair, window, memory, seed=4).output_count
            assert online <= optv

    def test_monotone_in_memory(self):
        pair = zipf_pair(300, 8, 1.0, seed=23)
        outputs = [solve_opt(pair, 20, m).output_count for m in (2, 6, 12, 20, 40)]
        assert outputs == sorted(outputs)

    def test_variable_at_least_fixed(self):
        for seed in range(5):
            pair = zipf_pair(200, 6, 1.2, seed=seed)
            fixed = solve_opt(pair, 15, 8).output_count
            pooled = solve_opt(pair, 15, 8, variable=True).output_count
            assert pooled >= fixed

    def test_full_memory_reaches_exact(self):
        pair = zipf_pair(250, 8, 1.0, seed=24)
        window = 15
        opt = solve_opt(pair, window, 2 * window).output_count
        exact = run_exact(pair, window).output_count
        assert opt == exact

    def test_departures_within_lifetimes(self):
        pair = zipf_pair(200, 6, 1.0, seed=25)
        window = 12
        result = solve_opt(pair, window, 6)
        for i, departure in enumerate(result.r_departures):
            assert i <= departure <= i + window - 1

    def test_validation_errors(self):
        pair = zipf_pair(20, 4, 1.0, seed=0)
        with pytest.raises(ValueError, match="positive"):
            solve_opt(pair, 0, 2)
        with pytest.raises(ValueError, match="positive"):
            solve_opt(pair, 4, 0)
        with pytest.raises(ValueError, match="even"):
            solve_opt(pair, 4, 3)

    def test_opt_result_metadata(self):
        pair = zipf_pair(60, 4, 1.0, seed=1)
        result = solve_opt(pair, 5, 4)
        assert result.policy_name == "OPT"
        assert result.output_count == result.held_profit + result.simultaneous
        pooled = solve_opt(pair, 5, 4, variable=True)
        assert pooled.policy_name == "OPTV"
