"""Tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.obs import (
    NULL_RECORDER,
    MetricsRegistry,
    NullRecorder,
    Timer,
    active_or_none,
    format_metrics,
    load_metrics_json,
    metrics_to_csv,
    metrics_to_json,
    save_metrics_json,
)


class TestInstruments:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.counter("events", side="R")
        b = registry.counter("events", side="R")
        assert a is b
        a.inc()
        b.inc(4)
        assert registry.counter_value("events", side="R") == 5

    def test_labels_distinguish_instruments(self):
        registry = MetricsRegistry()
        registry.counter("events", side="R").inc(2)
        registry.counter("events", side="S").inc(3)
        registry.counter("events").inc(1)
        assert registry.counter_value("events", side="R") == 2
        assert registry.counter_value("events", side="S") == 3
        assert registry.counter_value("events") == 1
        assert registry.counter_total("events") == 6

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("drops", side="R", reason="evicted")
        b = registry.counter("drops", reason="evicted", side="R")
        assert a is b

    def test_missing_counter_reads_zero(self):
        registry = MetricsRegistry()
        assert registry.counter_value("never") == 0
        assert registry.counter_total("never") == 0

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(7)
        gauge.set(3)
        assert gauge.value == 3

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lengths")
        for value in (4, 1, 7):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == 12
        assert histogram.min == 1
        assert histogram.max == 7
        assert histogram.mean == 4

    def test_empty_histogram_mean(self):
        assert MetricsRegistry().histogram("empty").mean == 0.0

    def test_series_appends_points(self):
        registry = MetricsRegistry()
        series = registry.series("occupancy", side="R")
        series.append(0, 5)
        series.append(1, 6)
        assert series.points == [(0, 5), (1, 6)]


class TestPhases:
    def test_record_phase_aggregates(self):
        registry = MetricsRegistry()
        registry.record_phase("engine/probe", 0.5)
        registry.record_phase("engine/probe", 0.25, count=2)
        (stat,) = registry.phases()
        assert stat.path == "engine/probe"
        assert stat.count == 3
        assert stat.seconds == pytest.approx(0.75)

    def test_nested_spans_build_paths(self):
        registry = MetricsRegistry()
        with registry.span("run"):
            with registry.span("solve"):
                pass
            with registry.span("solve"):
                pass
        paths = {stat.path: stat for stat in registry.phases()}
        assert set(paths) == {"run", "run/solve"}
        assert paths["run/solve"].count == 2
        assert paths["run"].seconds >= paths["run/solve"].seconds

    def test_timer_accumulates_and_flushes(self):
        timer = Timer()
        for _ in range(3):
            with timer:
                pass
        assert timer.count == 3
        assert timer.seconds >= 0.0
        registry = MetricsRegistry()
        timer.flush(registry, "engine/probe")
        (stat,) = registry.phases()
        assert stat.count == 3
        assert stat.seconds == pytest.approx(timer.seconds)

    def test_unused_timer_flushes_nothing(self):
        registry = MetricsRegistry()
        Timer().flush(registry, "never")
        assert list(registry.phases()) == []


class TestNullRecorder:
    def test_disabled_flag(self):
        assert NullRecorder.enabled is False
        assert MetricsRegistry.enabled is True

    def test_all_operations_are_noops(self):
        recorder = NullRecorder()
        recorder.counter("a", side="R").inc(5)
        recorder.gauge("b").set(1.0)
        recorder.histogram("c").observe(2)
        recorder.series("d").append(0, 1)
        recorder.record_phase("e", 1.0)
        with recorder.span("f"):
            pass
        snapshot = recorder.snapshot()
        assert snapshot == {
            "counters": [], "gauges": [], "histograms": [],
            "series": [], "phases": [],
        }

    def test_active_or_none(self):
        registry = MetricsRegistry()
        assert active_or_none(None) is None
        assert active_or_none(NULL_RECORDER) is None
        assert active_or_none(registry) is registry


class TestSnapshotRoundTrip:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("engine.probes").inc(10)
        registry.counter("engine.drops", side="R", reason="evicted").inc(3)
        registry.gauge("engine.final_occupancy", side="S").set(17)
        histogram = registry.histogram("flow.ssp.path_length")
        histogram.observe(3)
        histogram.observe(9)
        series = registry.series("engine.occupancy", side="R")
        series.append(0, 1)
        series.append(5, 4)
        registry.record_phase("engine/run", 0.125, count=1)
        return registry

    def test_snapshot_round_trips(self):
        original = self._populated()
        rebuilt = MetricsRegistry.from_snapshot(original.snapshot())
        assert rebuilt.snapshot() == original.snapshot()

    def test_snapshot_is_json_serialisable(self):
        snapshot = self._populated().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_snapshot_is_deterministically_ordered(self):
        a = MetricsRegistry()
        a.counter("z").inc()
        a.counter("a").inc()
        names = [entry["name"] for entry in a.snapshot()["counters"]]
        assert names == ["a", "z"]

    def test_json_file_round_trip(self, tmp_path):
        original = self._populated()
        path = save_metrics_json(original, tmp_path / "metrics.json")
        rebuilt = load_metrics_json(path)
        assert rebuilt.snapshot() == original.snapshot()

    def test_json_text_matches_snapshot(self):
        registry = self._populated()
        assert json.loads(metrics_to_json(registry)) == registry.snapshot()

    def test_csv_flattens_every_instrument(self):
        text = metrics_to_csv(self._populated())
        lines = text.strip().splitlines()
        assert lines[0] == "kind,name,labels,x,value"
        kinds = {line.split(",")[0] for line in lines[1:]}
        assert kinds == {"counter", "gauge", "histogram", "series", "phase"}

    def test_format_metrics_mentions_instruments(self):
        text = format_metrics(self._populated())
        for token in ("engine.probes", "flow.ssp.path_length", "engine/run"):
            assert token in text
        assert format_metrics(MetricsRegistry()) == "(no metrics recorded)"


class TestExportEdgeCases:
    def test_empty_registry_exports(self):
        registry = MetricsRegistry()
        text = metrics_to_csv(registry)
        assert text.strip() == "kind,name,labels,x,value"
        snapshot = json.loads(metrics_to_json(registry))
        assert snapshot["counters"] == []
        rebuilt = MetricsRegistry.from_snapshot(snapshot)
        assert rebuilt.snapshot() == registry.snapshot()

    def test_csv_quotes_labels_with_commas_and_quotes(self):
        import csv
        import io

        registry = MetricsRegistry()
        registry.counter("events", where='queue,"R" side').inc(3)
        text = metrics_to_csv(registry)
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["kind", "name", "labels", "x", "value"]
        # the label cell survives the round trip verbatim
        assert rows[1][2] == 'where=queue,"R" side'
        assert rows[1][4] == "3"

    def test_csv_multi_leads_with_policy_column(self):
        import csv
        import io

        from repro.obs import metrics_to_csv_multi

        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("engine.probes").inc(5)
        b.counter("engine.probes").inc(7)
        text = metrics_to_csv_multi({"PROB": a, "RAND": b})
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["policy", "kind", "name", "labels", "x", "value"]
        assert {row[0] for row in rows[1:]} == {"PROB", "RAND"}

    def test_load_metrics_json_on_csv_raises_clear_error(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("engine.probes").inc()
        path = tmp_path / "metrics.csv"
        path.write_text(metrics_to_csv(registry))
        with pytest.raises(ValueError) as excinfo:
            load_metrics_json(path)
        message = str(excinfo.value)
        assert "metrics.csv" in message
        assert "CSV" in message

    def test_load_metrics_json_on_non_dict_raises(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="snapshot object"):
            load_metrics_json(path)
