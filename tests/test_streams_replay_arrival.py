"""Tests for stream persistence and arrival schedules."""

import pytest

from repro.streams import (
    StreamPair,
    clip_schedule,
    day_night_schedule,
    is_day,
    load_pair,
    poisson_schedule,
    save_pair,
    synchronous_schedule,
    total_arrivals,
    zipf_pair,
)


class TestReplay:
    def test_roundtrip(self, tmp_path):
        pair = zipf_pair(50, 8, 1.0, seed=1)
        path = tmp_path / "streams.csv"
        save_pair(pair, path)
        loaded = load_pair(path)
        assert list(loaded.r) == list(pair.r)
        assert list(loaded.s) == list(pair.s)
        assert loaded.name == "streams"

    def test_string_keys(self, tmp_path):
        pair = StreamPair(r=["a", "b"], s=["b", "a"])
        path = tmp_path / "strings.csv"
        save_pair(pair, path)
        loaded = load_pair(path, key_type=str)
        assert list(loaded.r) == ["a", "b"]

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n0,1,2\n")
        with pytest.raises(ValueError, match="header"):
            load_pair(path)

    def test_non_contiguous_time_rejected(self, tmp_path):
        path = tmp_path / "gap.csv"
        path.write_text("time,r_key,s_key\n0,1,1\n2,2,2\n")
        with pytest.raises(ValueError, match="contiguous"):
            load_pair(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("time,r_key,s_key\n0,1\n")
        with pytest.raises(ValueError, match="malformed"):
            load_pair(path)


class TestSchedules:
    def test_synchronous(self):
        assert synchronous_schedule(4) == [1, 1, 1, 1]
        with pytest.raises(ValueError):
            synchronous_schedule(-1)

    def test_poisson_mean(self):
        schedule = poisson_schedule(20_000, 2.0, seed=1)
        assert total_arrivals(schedule) == pytest.approx(40_000, rel=0.05)
        with pytest.raises(ValueError):
            poisson_schedule(10, -1.0)

    def test_day_night_contrast(self):
        schedule = day_night_schedule(
            2000, day_rate=4.0, night_rate=0.2, period=100, seed=2
        )
        day_total = sum(c for t, c in enumerate(schedule) if is_day(t, period=100))
        night_total = sum(c for t, c in enumerate(schedule) if not is_day(t, period=100))
        assert day_total > 5 * night_total

    def test_day_night_validation(self):
        with pytest.raises(ValueError):
            day_night_schedule(10, day_rate=1, night_rate=1, period=0)
        with pytest.raises(ValueError):
            day_night_schedule(10, day_rate=1, night_rate=1, period=10, day_fraction=2)

    def test_clip_schedule(self):
        assert clip_schedule([3, 3, 3], 5) == [3, 2, 0]
        assert clip_schedule([1, 1], 5) == [1, 1]
        assert clip_schedule([], 5) == []
        with pytest.raises(ValueError):
            clip_schedule([1], -1)
