"""Tests for the Archive-metric and archive-backed refinement."""

import pytest

from repro.core.archive import ArchiveStore, refine_from_archive
from repro.core.exact import run_exact
from repro.core.metrics.archive import archive_metric
from repro.experiments.runner import run_algorithm
from repro.streams import StreamPair, zipf_pair


class TestArchiveMetric:
    def test_exact_run_has_zero_arm(self):
        pair = zipf_pair(200, 6, 1.0, seed=1)
        window = 15
        result = run_algorithm("EXACT", pair, window, 0, track_survival=True)
        report = archive_metric(
            pair, result.r_departures, result.s_departures, window
        )
        assert report.arm == 0
        assert report.incomplete_fraction == 0.0

    def test_shed_run_has_positive_arm(self):
        pair = zipf_pair(200, 6, 1.0, seed=2)
        window = 15
        result = run_algorithm("RAND", pair, window, 4, track_survival=True)
        report = archive_metric(
            pair, result.r_departures, result.s_departures, window
        )
        assert report.arm > 0
        assert report.arm == report.incomplete_r + report.incomplete_s
        assert 0.0 < report.incomplete_fraction <= 1.0

    def test_hand_built_scenario(self):
        # R = [9, 1]; S = [1, 1]; w = 2.
        # Partners: s(0)=1 is an earlier partner of r(1)=1; s(1)=1 is the
        # simultaneous partner of r(1).
        pair = StreamPair(r=[9, 1], s=[1, 1])
        window = 2
        # Case 1: everything survives -> all complete.
        report = archive_metric(pair, [1, 1], [2, 2], window)
        assert report.arm == 0
        # Case 2: s(0) was shed immediately (departure 0): r(1) misses its
        # earlier partner -> r(1) incomplete; s(0) itself had a future
        # partner (r(1) at t=1) it no longer sees -> s(0) incomplete.
        report = archive_metric(pair, [1, 1], [0, 2], window)
        assert report.incomplete_r == 1
        assert report.incomplete_s == 1

    def test_tuples_without_partners_are_complete(self):
        pair = StreamPair(r=[1, 2], s=[3, 4])
        report = archive_metric(pair, [0, 1], [0, 1], window=2)
        assert report.arm == 0

    def test_count_from_skips_warmup(self):
        pair = StreamPair(r=[1, 1, 1], s=[1, 1, 1])
        # All shed instantly: every tuple is incomplete...
        full = archive_metric(pair, [0, 1, 2], [0, 1, 2], window=3)
        # ...but only arrivals >= 2 are assessed with count_from=2.
        late = archive_metric(pair, [0, 1, 2], [0, 1, 2], window=3, count_from=2)
        assert late.arm < full.arm
        assert late.considered == 2

    def test_validation(self):
        pair = StreamPair(r=[1], s=[1])
        with pytest.raises(ValueError, match="cover"):
            archive_metric(pair, [], [0], window=1)
        with pytest.raises(ValueError, match="positive"):
            archive_metric(pair, [0], [0], window=0)

    def test_semantic_policies_beat_random(self):
        # On skewed data with a realistic domain, keeping probable tuples
        # also keeps them (and their partners) complete.  (On tiny domains
        # where most tuples have many partners the ordering can flip.)
        pair = zipf_pair(400, 50, 1.2, seed=3)
        window, memory = 40, 20

        def arm_of(name):
            result = run_algorithm(name, pair, window, memory, track_survival=True)
            return archive_metric(
                pair, result.r_departures, result.s_departures, window,
                count_from=2 * window,
            ).arm

        assert arm_of("PROB") < arm_of("RAND")


class TestArchiveStore:
    def test_append_and_lookup(self):
        store = ArchiveStore()
        store.append("R", 0, "a")
        store.append("R", 1, "b")
        store.append("R", 2, "a")
        assert store.size("R") == 3
        assert list(store.partners_in_range("R", "a", 0, 2)) == [0, 2]
        assert store.reads == 2

    def test_out_of_order_append_rejected(self):
        store = ArchiveStore()
        with pytest.raises(ValueError, match="order"):
            store.append("R", 5, "a")

    def test_read_counting(self):
        store = ArchiveStore()
        store.append("S", 0, "x")
        store.key_at("S", 0)
        assert store.reads == 1
        store.reset_reads()
        assert store.reads == 0

    def test_from_pair(self):
        pair = StreamPair(r=[1, 2], s=[3, 4])
        store = ArchiveStore.from_pair(pair)
        assert store.size("R") == store.size("S") == 2


class TestRefinement:
    def test_day_plus_night_equals_exact(self):
        """The load-smoothing guarantee: refinement completes the join."""
        pair = zipf_pair(300, 6, 1.0, seed=4)
        window, memory = 15, 6
        day = run_algorithm(
            "PROB", pair, window, memory, materialize=True, track_survival=True
        )
        night = refine_from_archive(pair, day)
        exact = run_exact(pair, window, materialize=True)

        produced = {(p.r_arrival, p.s_arrival) for p in day.pairs}
        missing = {(p.r_arrival, p.s_arrival) for p in night.missing_pairs}
        expected = {(p.r_arrival, p.s_arrival) for p in exact.pairs}
        assert produced.isdisjoint(missing)
        assert produced | missing == expected
        assert len(day.pairs) + night.missing_count == exact.output_count

    def test_exact_day_needs_no_refinement(self):
        pair = zipf_pair(200, 6, 1.0, seed=5)
        window = 12
        day = run_algorithm(
            "EXACT", pair, window, 0, materialize=True, track_survival=True
        )
        night = refine_from_archive(pair, day)
        assert night.missing_count == 0
        assert night.incomplete_tuples == 0

    def test_work_scales_with_arm(self):
        """More shedding => more incomplete tuples => more archive reads."""
        pair = zipf_pair(300, 6, 1.0, seed=6)
        window = 15
        tight = refine_from_archive(
            pair,
            run_algorithm("RAND", pair, window, 4, track_survival=True, seed=1),
        )
        roomy = refine_from_archive(
            pair,
            run_algorithm("RAND", pair, window, 20, track_survival=True, seed=1),
        )
        assert tight.incomplete_tuples > roomy.incomplete_tuples
        assert tight.missing_count > roomy.missing_count

    def test_requires_survival_tracking(self):
        pair = zipf_pair(50, 4, 1.0, seed=7)
        day = run_algorithm("RAND", pair, 5, 4, track_survival=False)
        with pytest.raises(ValueError, match="track_survival"):
            refine_from_archive(pair, day)
