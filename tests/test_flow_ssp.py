"""Correctness of the successive-shortest-paths min-cost flow solver.

Cross-checks against hand-solved instances, networkx's network simplex,
the LP reference solver, and property-based random instances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow import (
    FlowNetwork,
    UnbalancedNetworkError,
    assert_valid,
    solve_min_cost_flow,
)
from repro.flow.simple import solve_lp


def _simple_transport() -> FlowNetwork:
    """2 sources, 2 sinks, obvious optimum."""
    network = FlowNetwork()
    network.add_node(supply=3)  # 0
    network.add_node(supply=2)  # 1
    network.add_node(supply=-4)  # 2
    network.add_node(supply=-1)  # 3
    network.add_arc(0, 2, 3, 1)
    network.add_arc(0, 3, 3, 5)
    network.add_arc(1, 2, 2, 2)
    network.add_arc(1, 3, 2, 1)
    return network


class TestHandInstances:
    def test_transportation_optimum(self):
        network = _simple_transport()
        result = solve_min_cost_flow(network)
        assert result.feasible
        # 3 units 0->2 (cost 3), 1 unit 1->2 (2), 1 unit 1->3 (1) = 6.
        assert result.cost == 6
        assert_valid(network, result)

    def test_single_arc(self):
        network = FlowNetwork()
        network.add_node(supply=2)
        network.add_node(supply=-2)
        network.add_arc(0, 1, 5, 7)
        result = solve_min_cost_flow(network)
        assert result.cost == 14
        assert result.flow == [2]

    def test_negative_cost_dag(self):
        """Profit arcs on a DAG (the OPT-offline shape)."""
        network = FlowNetwork()
        network.add_node(supply=1)  # 0
        network.add_nodes(2)  # 1, 2
        network.add_node(supply=-1)  # 3
        network.add_arc(0, 1, 1, 0)
        network.add_arc(1, 3, 1, 0)  # cheap but profit-free
        network.add_arc(0, 2, 1, 0)
        network.add_arc(2, 3, 1, -5)  # profitable path
        result = solve_min_cost_flow(network)
        assert result.cost == -5
        assert result.flow[3] == 1
        assert_valid(network, result)

    def test_zero_supply(self):
        network = FlowNetwork()
        network.add_nodes(2)
        network.add_arc(0, 1, 1, -1)
        result = solve_min_cost_flow(network)
        assert result.feasible
        assert result.cost == 0
        assert result.flow == [0]

    def test_capacity_infeasible_routes_partially(self):
        network = FlowNetwork()
        network.add_node(supply=5)
        network.add_node(supply=-5)
        network.add_arc(0, 1, 3, 1)
        result = solve_min_cost_flow(network)
        assert not result.feasible
        assert result.value == 3
        assert result.cost == 3

    def test_unbalanced_rejected(self):
        network = FlowNetwork()
        network.add_node(supply=1)
        network.add_node()
        network.add_arc(0, 1, 1, 0)
        with pytest.raises(UnbalancedNetworkError):
            solve_min_cost_flow(network)

    def test_multiple_shortest_path_updates(self):
        """Successive augmentations must keep potentials consistent."""
        network = FlowNetwork()
        network.add_node(supply=2)  # 0
        network.add_nodes(2)  # 1, 2
        network.add_node(supply=-2)  # 3
        network.add_arc(0, 1, 1, 1)
        network.add_arc(1, 3, 1, 1)
        network.add_arc(0, 2, 1, 2)
        network.add_arc(2, 3, 1, 2)
        result = solve_min_cost_flow(network)
        assert result.cost == 2 + 4
        assert_valid(network, result)


class TestCrossValidation:
    def _random_network(self, rng: np.random.Generator, *, dag: bool) -> FlowNetwork:
        n = int(rng.integers(4, 9))
        network = FlowNetwork()
        network.add_nodes(n)
        arcs = int(rng.integers(n, 3 * n))
        for _ in range(arcs):
            u, v = rng.choice(n, size=2, replace=False)
            u, v = int(u), int(v)
            if dag and u > v:
                u, v = v, u
            capacity = int(rng.integers(1, 6))
            if dag:
                cost = int(rng.integers(-5, 6))
            else:
                cost = int(rng.integers(0, 8))  # avoid negative cycles
            network.add_arc(u, v, capacity, cost)
        return network

    def _balance(self, network: FlowNetwork, rng: np.random.Generator) -> bool:
        """Set a random feasible-ish supply; returns True if non-trivial."""
        # Route supply between a random source/sink pair; amount small so
        # feasibility is likely (the LP reference detects infeasibility).
        u, v = rng.choice(network.num_nodes, size=2, replace=False)
        amount = int(rng.integers(1, 4))
        network.set_supply(int(u), amount)
        network.set_supply(int(v), -amount)
        return True

    @pytest.mark.parametrize("dag", [True, False])
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_lp_reference(self, seed, dag):
        rng = np.random.default_rng(seed + (1000 if dag else 0))
        network = self._random_network(rng, dag=dag)
        self._balance(network, rng)
        result = solve_min_cost_flow(network)
        if not result.feasible:
            with pytest.raises(RuntimeError):
                solve_lp(network)
            return
        reference = solve_lp(network)
        assert result.cost == reference.cost
        assert_valid(network, result)

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_networkx(self, seed):
        networkx = pytest.importorskip("networkx")
        rng = np.random.default_rng(seed)
        network = self._random_network(rng, dag=True)
        self._balance(network, rng)
        ours = solve_min_cost_flow(network)
        if not ours.feasible:
            return

        graph = networkx.MultiDiGraph()
        for node in range(network.num_nodes):
            graph.add_node(node, demand=-network.supply(node))
        for arc in network.arcs:
            graph.add_edge(arc.tail, arc.head, capacity=arc.capacity, weight=arc.cost)
        cost = networkx.min_cost_flow_cost(graph)
        assert ours.cost == cost


class TestPropertyBased:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        supply=st.integers(1, 4),
    )
    def test_more_supply_never_cheaper_per_unit_structure(self, seed, supply):
        """Feasible solves satisfy conservation & optimality certificates."""
        rng = np.random.default_rng(seed)
        n = 6
        network = FlowNetwork()
        network.add_nodes(n)
        for u in range(n - 1):
            network.add_arc(u, u + 1, int(rng.integers(1, supply + 3)), 0)
        for _ in range(6):
            u, v = sorted(rng.choice(n, size=2, replace=False).tolist())
            network.add_arc(int(u), int(v), 1, int(rng.integers(-4, 1)))
        network.set_supply(0, supply)
        network.set_supply(n - 1, -supply)
        result = solve_min_cost_flow(network)
        if result.feasible:
            assert_valid(network, result)
            assert result.cost <= 0  # chain is free; profits only help
