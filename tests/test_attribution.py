"""Tests for repro.obs.attribution: lost-output ledgers that reconcile."""

import pytest

from repro.api import RunSpec, attribute_run
from repro.core.engine import EngineConfig, JoinEngine
from repro.core.policies import make_policy_spec
from repro.experiments.config import SCALES, even_memory
from repro.experiments.runner import estimators_for
from repro.obs import (
    RingBufferSink,
    Tracer,
    attribute_trace,
    format_regret_table,
    partner_index,
    regret_by_policy,
)
from repro.obs.trace import (
    EVENT_DROP,
    EVENT_EVICT,
    REASON_BUDGET,
    REASON_DISPLACED,
    REASON_QUEUE,
    REASON_REJECTED,
    TraceEvent,
)
from repro.streams import zipf_pair
from repro.streams.tuples import StreamPair, exact_join_size


class TestPartnerIndex:
    def test_indexes_both_streams(self):
        pair = StreamPair(r=[1, 2, 1], s=[2, 1, 1])
        index = partner_index(pair)
        assert index[("R", 1)] == [0, 2]
        assert index[("S", 1)] == [1, 2]
        assert index[("R", 2)] == [1]

    def test_ticks_are_sorted(self):
        pair = zipf_pair(300, 10, 1.0, seed=4)
        index = partner_index(pair)
        for ticks in index.values():
            assert ticks == sorted(ticks)


class TestAttributeTraceHandcrafted:
    """Tiny traces with losses countable by hand."""

    def test_rejected_tuple_loses_window_partners(self):
        # R tuple key=7 rejected at its arrival tick 10; S stream has
        # key 7 at ticks 11, 12, and 30 — only 11 and 12 are inside
        # the window of 5.
        s = [0] * 40
        s[11] = s[12] = s[30] = 7
        pair = StreamPair(r=[7 if t == 10 else 1 for t in range(40)], s=s)
        events = [TraceEvent(10, "R", 7, EVENT_DROP, 10, None, REASON_REJECTED)]
        report = attribute_trace(events, pair, 5, warmup=0)
        assert report.total_lost == 2
        assert report.total_lost_counted == 2

    def test_displaced_eviction_starts_after_its_tick(self):
        # victim arrived at 10, evicted at 12: it already probed against
        # tick 12's arrivals, so only ticks 13..14 (window 5) count.
        s = [0] * 40
        s[12] = s[13] = s[14] = 7
        pair = StreamPair(r=[1] * 40, s=s)
        events = [TraceEvent(12, "R", 7, EVENT_EVICT, 10, 0.1, REASON_DISPLACED)]
        report = attribute_trace(events, pair, 5, warmup=0)
        assert report.total_lost == 2

    def test_budget_shed_includes_its_own_tick(self):
        # budget sheds fire before the tick's probes, so tick 12 counts.
        s = [0] * 40
        s[12] = s[13] = 7
        pair = StreamPair(r=[1] * 40, s=s)
        events = [TraceEvent(12, "R", 7, EVENT_EVICT, 10, 0.1, REASON_BUDGET)]
        report = attribute_trace(events, pair, 5, warmup=0)
        assert report.total_lost == 2

    def test_warmup_filters_counted_losses(self):
        s = [0] * 40
        s[11] = s[12] = 7
        pair = StreamPair(r=[1] * 40, s=s)
        events = [TraceEvent(10, "R", 7, EVENT_DROP, 10, None, REASON_REJECTED)]
        report = attribute_trace(events, pair, 5, warmup=12)
        assert report.events[0].lost == 2
        assert report.events[0].lost_counted == 1

    def test_unknown_reasons_go_to_unattributed(self):
        pair = StreamPair(r=[1] * 10, s=[1] * 10)
        events = [TraceEvent(3, "R", 1, EVENT_DROP, 3, None, REASON_QUEUE)]
        report = attribute_trace(events, pair, 5, warmup=0)
        assert report.events == []
        assert report.unattributed == {REASON_QUEUE: 1}
        assert not report.reconciles()

    def test_non_shedding_events_are_ignored(self):
        pair = StreamPair(r=[1] * 10, s=[1] * 10)
        events = [TraceEvent(3, "R", 1, "arrive", 3)]
        report = attribute_trace(events, pair, 5, warmup=0)
        assert report.events == []
        assert report.unattributed == {}


class TestReconciliation:
    """EXACT − policy == attributed loss, exactly (acceptance criterion)."""

    def test_default_scale_prob_vs_rand(self):
        scale = SCALES["default"]
        window = scale.window
        reports = regret_by_policy(
            ["PROB", "RAND"],
            window=window,
            memory=even_memory(window, 0.5),
            length=scale.stream_length,
            seed=0,
        )
        assert set(reports) == {"PROB", "RAND"}
        for name, report in reports.items():
            assert report.exact_output is not None
            assert report.unattributed == {}
            assert (
                report.exact_output - report.observed_output
                == report.total_lost_counted
            ), name
            assert report.reconciles(), name
        # PROB's semantic shedding should waste fewer outputs than RAND
        assert (
            reports["PROB"].total_lost_counted
            < reports["RAND"].total_lost_counted
        )

    @pytest.mark.parametrize("algorithm", ["LIFE", "ARM", "FIFO", "PROBV"])
    def test_other_policies_reconcile(self, algorithm):
        reports = regret_by_policy(
            [algorithm], window=60, memory=30 if algorithm == "PROBV" else 28,
            length=900, seed=1,
        )
        report = next(iter(reports.values()))
        assert report.reconciles()

    def test_exact_run_has_zero_regret(self):
        reports = regret_by_policy(["EXACT"], window=60, memory=28, length=900)
        report = reports["EXACT"]
        assert report.total_lost_counted == 0
        assert report.exact_output == report.observed_output
        assert report.reconciles()

    def test_budget_schedule_reconciles(self):
        pair = zipf_pair(1200, 40, 1.0, seed=3)
        window, warmup = 80, 160
        schedule = [60 if t < 600 else 24 for t in range(1200)]
        estimators = estimators_for(pair)
        policy = make_policy_spec("PROB", estimators=estimators, window=window, seed=3)
        config = EngineConfig(
            window=window, memory=60, warmup=warmup, memory_schedule=schedule,
        )
        tracer = Tracer(RingBufferSink(1 << 20))
        result = JoinEngine(config, policy=policy, trace=tracer).run(pair)
        report = attribute_trace(
            result.trace, pair, window, warmup=warmup, policy="PROB",
            exact_output=exact_join_size(pair, window, count_from=warmup),
            observed_output=result.output_count,
        )
        assert report.lost_by_reason().get(REASON_BUDGET, 0) > 0
        assert report.reconciles()

    def test_attribute_run_helper(self):
        report = attribute_run(
            RunSpec(algorithm="PROB", length=1500, window=90, memory=44, seed=2)
        )
        assert report.reconciles()
        assert report.policy == "PROB"

    def test_attribute_run_rejects_queue_engines(self):
        with pytest.raises(ValueError, match="fast-CPU"):
            attribute_run(RunSpec(algorithm="PROB", engine="slowcpu"))

    def test_attribute_run_rejects_opt(self):
        with pytest.raises(ValueError, match="OPT"):
            attribute_run(RunSpec(algorithm="OPT"))


class TestReportSurface:
    def test_top_regrets_sorted_desc(self):
        reports = regret_by_policy(["RAND"], window=60, memory=28, length=900)
        top = reports["RAND"].top_regrets(5)
        losses = [entry.lost_counted for entry in top]
        assert losses == sorted(losses, reverse=True)

    def test_lost_by_reason_partitions_total(self):
        reports = regret_by_policy(["PROB"], window=60, memory=28, length=900)
        report = reports["PROB"]
        assert sum(report.lost_by_reason().values()) == report.total_lost_counted

    def test_format_regret_table_mentions_policies(self):
        reports = regret_by_policy(["PROB", "RAND"], window=60, memory=28, length=900)
        table = format_regret_table(reports)
        assert "PROB" in table
        assert "RAND" in table
        assert "recon" in table
        assert "NO" not in table  # everything reconciles
