"""Tests for repro.runtime: process-pool fan-out of independent run cells.

The headline property is the determinism contract — ``workers=N`` must
return exactly what ``workers=1`` returns, result for result — plus the
failure surface (a worker exception names its cell) and the
``resolve_workers`` precedence rules.
"""

import pytest

from repro.api import RunSpec, compare
from repro.experiments.runner import run_suite
from repro.experiments.sweep import sweep_seeds
from repro.obs import MetricsRegistry
from repro.runtime import (
    AlgorithmCell,
    CellError,
    Fault,
    FaultPlan,
    RetryPolicy,
    parallel_map,
    resolve_workers,
    run_algorithm_cell,
)
from repro.streams import zipf_pair

ALGORITHMS = ("PROB", "LIFE", "RAND", "PROBV")
SEEDS = (0, 1, 2)


def _square(x):
    return x * x


def _boom_on_three(x):
    if x == 3:
        raise ValueError(f"bad cell {x}")
    return x


def _pair(seed, length=800):
    return zipf_pair(length, 50, 1.0, seed=seed)


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_explicit_argument(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(4) == 4

    def test_env_default_when_no_argument(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(2) == 2

    def test_env_zero_is_global_kill_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert resolve_workers(8) == 1
        assert resolve_workers(None) == 1

    def test_bad_argument_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)


class TestParallelMap:
    def test_preserves_input_order(self):
        assert parallel_map(_square, range(9), workers=2) == [
            x * x for x in range(9)
        ]

    def test_serial_path_raises_raw(self):
        with pytest.raises(ValueError, match="bad cell 3"):
            parallel_map(_boom_on_three, [1, 2, 3], workers=1)

    def test_worker_failure_names_the_cell(self):
        with pytest.raises(CellError) as excinfo:
            parallel_map(
                _boom_on_three,
                [1, 2, 3, 4],
                workers=2,
                labels=["a", "b", "c", "d"],
            )
        error = excinfo.value
        assert error.label == "c"
        assert error.exc_type == "ValueError"
        assert "run cell 'c' failed" in str(error)
        assert "bad cell 3" in str(error)
        assert "worker traceback" in str(error)

    def test_label_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="labels"):
            parallel_map(_square, [1, 2], workers=1, labels=["only-one"])

    def test_algorithm_cell_failure_mid_grid(self):
        """A bad cell surfaces its own label, not an opaque pool error."""
        pair = _pair(0, length=400)
        cells = [
            AlgorithmCell("RAND", pair, 40, 20, seed=0),
            AlgorithmCell("NOPE", pair, 40, 20, seed=0),
            AlgorithmCell("PROB", pair, 40, 20, seed=0),
        ]
        with pytest.raises(CellError) as excinfo:
            parallel_map(
                run_algorithm_cell,
                cells,
                workers=2,
                labels=[cell.label for cell in cells],
            )
        assert "NOPE" in excinfo.value.label
        assert excinfo.value.exc_type == "ValueError"


class TestParallelEqualsSerial:
    """The determinism contract: workers=4 is exactly workers=1."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_compare_identical_across_policies(self, seed):
        specs = [
            RunSpec(algorithm=name, length=800, window=50, memory=24, seed=seed)
            for name in ALGORITHMS
        ]
        serial = compare(specs, workers=1)
        parallel = compare(specs, workers=4)
        assert list(serial) == list(parallel)
        for label in serial:
            one, many = serial[label], parallel[label]
            assert one.output_count == many.output_count
            assert one.drop_breakdown() == many.drop_breakdown()
            assert one.r_departures == many.r_departures
            assert one.s_departures == many.s_departures

    def test_sweep_aggregates_identical(self):
        serial = sweep_seeds(
            ("RAND", "PROB"), _pair, 50, 24, seeds=SEEDS, workers=1
        )
        parallel = sweep_seeds(
            ("RAND", "PROB"), _pair, 50, 24, seeds=SEEDS, workers=4
        )
        assert serial == parallel

    def test_run_suite_results_and_merged_metrics(self):
        pair = _pair(1)
        serial_metrics = MetricsRegistry()
        serial = run_suite(
            ALGORITHMS, pair, 50, 24, seed=1, metrics=serial_metrics, workers=1
        )
        parallel_metrics = MetricsRegistry()
        parallel = run_suite(
            ALGORITHMS, pair, 50, 24, seed=1, metrics=parallel_metrics, workers=4
        )
        for name in ALGORITHMS:
            assert serial[name].output_count == parallel[name].output_count
            assert (
                serial[name].drop_breakdown() == parallel[name].drop_breakdown()
            )
        # Worker snapshots merge back into the parent registry: the
        # accumulated engine counters must match the serial registry.
        for counter in ("engine.output", "engine.probes", "engine.matches"):
            assert parallel_metrics.counter_total(
                counter
            ) == serial_metrics.counter_total(counter)

    def test_env_variable_reaches_nested_calls(self, monkeypatch):
        """REPRO_WORKERS steers call sites that were not passed workers."""
        monkeypatch.setenv("REPRO_WORKERS", "2")
        parallel = compare(["RAND", "PROB"], workers=None)
        monkeypatch.setenv("REPRO_WORKERS", "0")
        serial = compare(["RAND", "PROB"], workers=None)
        for label in serial:
            assert serial[label].output_count == parallel[label].output_count


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(max_retries=-1), "max_retries"),
            (dict(timeout_s=0), "timeout_s"),
            (dict(backoff_s=-0.1), "backoff_s"),
            (dict(backoff_factor=0.5), "backoff_factor"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            RetryPolicy(**kwargs)

    def test_delay_before_is_exponential(self):
        policy = RetryPolicy(max_retries=3, backoff_s=0.1, backoff_factor=2.0)
        assert policy.delay_before(1) == 0.0  # first attempt never waits
        assert policy.delay_before(2) == pytest.approx(0.1)
        assert policy.delay_before(3) == pytest.approx(0.2)
        assert policy.delay_before(4) == pytest.approx(0.4)

    def test_zero_backoff_never_waits(self):
        policy = RetryPolicy(max_retries=3, backoff_s=0.0)
        assert all(policy.delay_before(k) == 0.0 for k in (1, 2, 3, 4))


class TestSupervisedExecution:
    """Retry, fault injection, attempt accounting, degradation in-band."""

    RETRY = RetryPolicy(max_retries=1, backoff_s=0.0)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_supervision_without_faults_matches_plain(self, workers):
        expected = [x * x for x in range(6)]
        attempts = []
        results = parallel_map(
            _square,
            range(6),
            workers=workers,
            retry=RetryPolicy(max_retries=2),
            attempts_out=attempts,
        )
        assert results == expected
        assert attempts == [1] * 6  # every cell succeeded first try

    @pytest.mark.parametrize("workers", [1, 2])
    def test_retry_heals_a_transient_kill(self, workers):
        plan = FaultPlan((Fault("kill", cell=1),))  # attempt 1 only
        attempts = []
        results = parallel_map(
            _square,
            [1, 2, 3],
            workers=workers,
            retry=self.RETRY,
            fault_plan=plan,
            attempts_out=attempts,
        )
        assert results == [1, 4, 9]
        assert attempts == [1, 2, 1]  # only the afflicted cell retried

    @pytest.mark.parametrize("workers", [1, 2])
    def test_exhausted_retries_raise_with_history(self, workers):
        plan = FaultPlan((Fault("kill", cell=0, attempts=99),))
        with pytest.raises(CellError) as excinfo:
            parallel_map(
                _square,
                [1, 2],
                workers=workers,
                labels=["doomed", "fine"],
                retry=RetryPolicy(max_retries=2, backoff_s=0.0),
                fault_plan=plan,
            )
        error = excinfo.value
        assert error.label == "doomed"
        assert error.exc_type == "InjectedFault"
        assert "(after 3 attempts)" in str(error)
        assert [entry["attempt"] for entry in error.attempts] == [1, 2, 3]
        assert all(e["error"] == "InjectedFault" for e in error.attempts)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_return_errors_degrades_in_band(self, workers):
        plan = FaultPlan((Fault("kill", cell=1, attempts=99),))
        attempts = []
        results = parallel_map(
            _square,
            [1, 2, 3],
            workers=workers,
            retry=self.RETRY,
            fault_plan=plan,
            return_errors=True,
            attempts_out=attempts,
        )
        assert results[0] == 1 and results[2] == 9
        assert isinstance(results[1], CellError)
        assert attempts == [1, 2, 1]
        # survivors are untouched by the neighbour's failure
        assert results[1].attempts[-1]["error"] == "InjectedFault"

    def test_timeout_abandons_a_hung_worker(self):
        # Hangs on every attempt; the deadline must cut both short.
        plan = FaultPlan((Fault("hang", cell=0, delay_s=0.5, attempts=99),))
        results = parallel_map(
            _square,
            [1, 2],
            workers=2,
            retry=RetryPolicy(max_retries=1, timeout_s=0.05, backoff_s=0.0),
            fault_plan=plan,
            return_errors=True,
        )
        assert isinstance(results[0], CellError)
        assert results[0].exc_type == "TimeoutError"
        assert "exceeded" in results[0].exc_message
        assert results[1] == 4

    def test_timeout_then_clean_retry_recovers(self):
        # The hang afflicts attempt 1 only: abandoned, then healed.
        plan = FaultPlan((Fault("hang", cell=0, delay_s=0.4),))
        attempts = []
        results = parallel_map(
            _square,
            [3, 4],
            workers=2,
            retry=RetryPolicy(max_retries=1, timeout_s=0.1, backoff_s=0.0),
            fault_plan=plan,
            attempts_out=attempts,
        )
        assert results == [9, 16]
        assert attempts[0] == 2

    def test_serial_mode_does_not_enforce_timeouts(self):
        """Documented: a serial attempt cannot be preempted mid-flight."""
        plan = FaultPlan((Fault("hang", cell=0, delay_s=0.05),))
        results = parallel_map(
            _square,
            [5],
            workers=1,
            retry=RetryPolicy(timeout_s=0.01),
            fault_plan=plan,
        )
        assert results == [25]  # the hang outlived the deadline yet landed

    @pytest.mark.parametrize("workers", [1, 2])
    def test_tick_scoped_faults_need_an_engine(self, workers):
        """A tick fault never fires in a cell that has no tick loop."""
        plan = FaultPlan((Fault("kill", cell=0, tick=5),))
        assert parallel_map(
            _square, [2, 3], workers=workers, fault_plan=plan
        ) == [4, 9]


class TestMergeSnapshot:
    def test_counters_and_gauges(self):
        source = MetricsRegistry()
        source.counter("a").inc(3)
        source.gauge("g").set(7.5)
        target = MetricsRegistry()
        target.counter("a").inc(1)
        target.merge_snapshot(source.snapshot())
        assert target.counter_value("a") == 4
        assert target.gauge("g").value == 7.5

    def test_merge_twice_accumulates(self):
        source = MetricsRegistry()
        source.counter("a").inc(5)
        snapshot = source.snapshot()
        target = MetricsRegistry()
        target.merge_snapshot(snapshot)
        target.merge_snapshot(snapshot)
        assert target.counter_value("a") == 10
