"""Tests for static join load shedding (components, closed form, DPs)."""

from itertools import combinations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.static_join import (
    KurotowskiComponent,
    extract_components,
    greedy_min_degree_deletion,
    max_edges_retaining,
    max_edges_retaining_per_relation,
    min_edges_lost_deleting,
    random_deletion,
    retention_benefit,
    retention_split,
    total_edges,
    total_nodes,
)


def brute_force_retention(components, k) -> int:
    """Enumerate every way to retain k nodes; return max edges."""
    # Node = (component index, side); edges = product of retained counts.
    nodes = []
    for i, component in enumerate(components):
        nodes.extend([(i, 0)] * component.m)
        nodes.extend([(i, 1)] * component.n)
    best = 0
    for kept in combinations(range(len(nodes)), k):
        counts = {}
        for index in kept:
            key = nodes[index]
            counts[key] = counts.get(key, 0) + 1
        edges = sum(
            counts.get((i, 0), 0) * counts.get((i, 1), 0)
            for i in range(len(components))
        )
        best = max(best, edges)
    return best


class TestComponents:
    def test_extraction(self):
        components = extract_components([1, 1, 2, 3], [1, 2, 2, 4])
        by_key = {c.key: c for c in components}
        assert (by_key[1].m, by_key[1].n) == (2, 1)
        assert (by_key[2].m, by_key[2].n) == (1, 2)
        assert (by_key[3].m, by_key[3].n) == (1, 0)  # only in A
        assert (by_key[4].m, by_key[4].n) == (0, 1)  # only in B

    def test_totals(self):
        components = extract_components([1, 1, 2], [1, 2, 2])
        assert total_nodes(components) == 6
        assert total_edges(components) == 2 * 1 + 1 * 2

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            KurotowskiComponent("x", -1, 2)


class TestRetentionClosedForm:
    @pytest.mark.parametrize("m,n", [(1, 1), (3, 2), (5, 5), (4, 0), (7, 3)])
    def test_matches_enumeration(self, m, n):
        """C_{m,n}(p) equals the best over all explicit (m', n') splits."""
        for p in range(m + n + 1):
            best = max(
                a * (p - a)
                for a in range(max(0, p - n), min(m, p) + 1)
            )
            assert retention_benefit(m, n, p) == best

    def test_split_consistency(self):
        for m in range(6):
            for n in range(6):
                for p in range(m + n + 1):
                    keep_a, keep_b = retention_split(m, n, p)
                    assert 0 <= keep_a <= m
                    assert 0 <= keep_b <= n
                    assert keep_a + keep_b == p
                    assert keep_a * keep_b == retention_benefit(m, n, p)

    def test_paper_cases(self):
        assert retention_benefit(5, 5, 6) == 9  # even: (6/2)^2
        assert retention_benefit(5, 5, 7) == 12  # odd: (49-1)/4
        assert retention_benefit(10, 2, 8) == 2 * 6  # p > 2n: n(p-n)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            retention_benefit(2, 2, 5)
        with pytest.raises(ValueError):
            retention_benefit(-1, 2, 0)
        with pytest.raises(ValueError):
            retention_split(2, 2, -1)


class TestOptimalDP:
    def _components(self, pairs):
        return [KurotowskiComponent(i, m, n) for i, (m, n) in enumerate(pairs)]

    @settings(max_examples=40, deadline=None)
    @given(
        shape=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=4
        ),
        k=st.integers(0, 8),
    )
    def test_matches_brute_force(self, shape, k):
        components = self._components(shape)
        k = min(k, total_nodes(components))
        plan = max_edges_retaining(components, k)
        assert plan.retained_edges == brute_force_retention(components, k)
        assert plan.retained_nodes() == k

    def test_primal_dual_duality(self):
        components = self._components([(3, 2), (1, 4), (2, 2)])
        n = total_nodes(components)
        for k in range(n + 1):
            primal = min_edges_lost_deleting(components, k)
            dual = max_edges_retaining(components, n - k)
            assert primal.retained_edges == dual.retained_edges

    def test_plan_is_materialisable(self):
        components = self._components([(3, 2), (2, 5)])
        plan = max_edges_retaining(components, 7)
        assert sum(a * b for a, b in plan.per_component) == plan.retained_edges
        for (a, b), component in zip(plan.per_component, components):
            assert 0 <= a <= component.m
            assert 0 <= b <= component.n

    def test_retain_all_keeps_everything(self):
        components = self._components([(2, 2), (1, 3)])
        plan = max_edges_retaining(components, total_nodes(components))
        assert plan.retained_edges == total_edges(components)
        assert plan.lost_edges(components) == 0

    def test_invalid_budget(self):
        components = self._components([(1, 1)])
        with pytest.raises(ValueError):
            max_edges_retaining(components, 3)
        with pytest.raises(ValueError):
            min_edges_lost_deleting(components, -1)


class TestPerRelationDP:
    def _brute(self, components, k_a, k_b) -> int:
        best = 0

        def rec(index, left_a, left_b, edges):
            nonlocal best
            if index == len(components):
                if left_a == 0 and left_b == 0:
                    best = max(best, edges)
                return
            component = components[index]
            for a in range(min(component.m, left_a) + 1):
                for b in range(min(component.n, left_b) + 1):
                    rec(index + 1, left_a - a, left_b - b, edges + a * b)

        rec(0, k_a, k_b, 0)
        return best

    @settings(max_examples=30, deadline=None)
    @given(
        shape=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=3
        ),
        k_a=st.integers(0, 5),
        k_b=st.integers(0, 5),
    )
    def test_matches_brute_force(self, shape, k_a, k_b):
        components = [KurotowskiComponent(i, m, n) for i, (m, n) in enumerate(shape)]
        k_a = min(k_a, sum(c.m for c in components))
        k_b = min(k_b, sum(c.n for c in components))
        plan = max_edges_retaining_per_relation(components, k_a, k_b)
        assert plan.retained_edges == self._brute(components, k_a, k_b)
        assert sum(a for a, _ in plan.per_component) == k_a
        assert sum(b for _, b in plan.per_component) == k_b

    def test_budget_validation(self):
        components = [KurotowskiComponent(0, 2, 2)]
        with pytest.raises(ValueError):
            max_edges_retaining_per_relation(components, 3, 0)
        with pytest.raises(ValueError):
            max_edges_retaining_per_relation(components, 0, 3)


class TestBaselines:
    def _components(self):
        return [
            KurotowskiComponent(0, 5, 4),
            KurotowskiComponent(1, 3, 1),
            KurotowskiComponent(2, 2, 0),
        ]

    def test_greedy_never_beats_optimal(self):
        components = self._components()
        for k in range(total_nodes(components) + 1):
            optimal = min_edges_lost_deleting(components, k).retained_edges
            greedy = greedy_min_degree_deletion(components, k).retained_edges
            assert greedy <= optimal

    def test_greedy_deletes_free_nodes_first(self):
        components = self._components()
        plan = greedy_min_degree_deletion(components, 2)
        # Component 2 has n=0: its A-nodes have degree 0 and go first.
        assert plan.per_component[2] == (0, 0)
        assert plan.retained_edges == total_edges(components)

    def test_random_deletion_valid_and_deterministic(self):
        components = self._components()
        a = random_deletion(components, 5, seed=3)
        b = random_deletion(components, 5, seed=3)
        assert a.retained_edges == b.retained_edges
        assert a.retained_nodes() == total_nodes(components) - 5
        for k in range(total_nodes(components) + 1):
            plan = random_deletion(components, k, seed=1)
            optimal = min_edges_lost_deleting(components, k).retained_edges
            assert plan.retained_edges <= optimal

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            greedy_min_degree_deletion(self._components(), 99)
        with pytest.raises(ValueError):
            random_deletion(self._components(), -1)
