"""Online-estimation parity: PROB/LIFE fed by live sketches vs the oracle.

The paper runs PROB/LIFE from a *static* statistics module (the true
generating distribution, or an offline scan) and remarks that any online
histogram or sketch could substitute.  These tests pin that substitution
quantitatively:

* On a **stationary** Zipf workload the online estimators converge to
  the true frequencies, so estimated-PROB lands within a documented band
  of oracle-PROB — EWMA within 15% (it keeps adapting, so it never quite
  stops jittering), the counter sketches within 3%.
* On a **drifting** workload the oracle is deliberately *stale* (the
  phase-0 distribution, which is all a static table can be), and the
  online estimators — which track the shift — beat it by a wide margin.

The bands are deliberately loose relative to measured behaviour
(stationary EWMA measures ~0.89, sketches ~0.99; drifting EWMA measures
~1.4-1.5x stale, count-min ~1.2-1.3x across seeds) so they fail on real
regressions, not on RNG noise.
"""

import pytest

from repro.api import RunSpec, run
from repro.streams.sources import DriftingZipfSource, ZipfSource

WINDOW = 100
MEMORY = 50


def output_of(source, *, algorithm="PROB", estimator="oracle", seed=0, **kw):
    spec = RunSpec(
        algorithm=algorithm,
        window=WINDOW,
        memory=MEMORY,
        source=source,
        estimator=estimator,
        seed=seed,
        **kw,
    )
    return run(spec).output_count


@pytest.fixture(scope="module")
def stationary():
    return ZipfSource(50, 1.0, seed=0, length=20_000)


@pytest.fixture(scope="module")
def drifting():
    return DriftingZipfSource(100, 1.5, phase_length=2_000, seed=0, length=12_000)


class TestStationaryParity:
    def test_ewma_tracks_the_oracle(self, stationary):
        oracle = output_of(stationary, estimator="oracle")
        ewma = output_of(stationary, estimator="ewma")
        assert ewma >= 0.85 * oracle
        assert ewma <= oracle * 1.02  # the oracle is (statistically) the ceiling

    @pytest.mark.parametrize("estimator", ["countmin", "spacesaving"])
    def test_counter_sketches_are_near_exact(self, stationary, estimator):
        oracle = output_of(stationary, estimator="oracle")
        sketched = output_of(stationary, estimator=estimator)
        assert sketched >= 0.97 * oracle
        assert sketched <= oracle * 1.02

    def test_estimated_prob_still_beats_rand(self, stationary):
        # the paper's headline claim — semantic beats random shedding —
        # must survive replacing the oracle with a live estimator
        rand = output_of(stationary, algorithm="RAND", estimator="oracle")
        ewma = output_of(stationary, estimator="ewma")
        assert ewma > rand

    def test_life_accepts_online_estimators_too(self, stationary):
        oracle = output_of(stationary, algorithm="LIFE", estimator="oracle")
        sketched = output_of(stationary, algorithm="LIFE", estimator="countmin")
        assert sketched >= 0.95 * oracle


class TestDriftingWorkloads:
    def test_online_ewma_beats_the_stale_oracle(self, drifting):
        stale = output_of(drifting, estimator="oracle")  # phase-0 table
        ewma = output_of(drifting, estimator="ewma")
        assert ewma >= 1.2 * stale

    def test_online_countmin_beats_the_stale_oracle(self, drifting):
        stale = output_of(drifting, estimator="oracle")
        sketched = output_of(drifting, estimator="countmin")
        assert sketched >= 1.1 * stale


class TestEstimatorKnobs:
    def test_estimator_alpha_changes_the_run(self):
        source = ZipfSource(30, 1.0, seed=3, length=5_000)
        fast_alpha = output_of(source, estimator="ewma", estimator_alpha=0.5)
        slow_alpha = output_of(source, estimator="ewma", estimator_alpha=0.001)
        default = output_of(source, estimator="ewma")
        assert len({fast_alpha, slow_alpha, default}) > 1

    def test_oracle_runs_are_deterministic(self):
        source = ZipfSource(30, 1.0, seed=4, length=5_000)
        assert output_of(source) == output_of(source)

    def test_online_runs_are_deterministic(self):
        source = ZipfSource(30, 1.0, seed=4, length=5_000)
        assert output_of(source, estimator="countmin") == output_of(
            source, estimator="countmin"
        )
