"""Unit tests for the eviction policies."""

import pytest

from repro.core import EngineConfig, JoinEngine, JoinMemory, TupleRecord
from repro.core.policies import (
    ArmAwarePolicy,
    KeyArrivalTracker,
    LifePolicy,
    ProbPolicy,
    RandomEvictionPolicy,
    later_arrival_wins,
)
from repro.stats import StaticFrequencyTable
from repro.streams import StreamPair


def _estimators(r_probabilities: dict, s_probabilities: dict) -> dict:
    return {
        "R": StaticFrequencyTable(r_probabilities),
        "S": StaticFrequencyTable(s_probabilities),
    }


def _admit(memory: JoinMemory, policy, stream, arrival, key):
    record = TupleRecord(stream, arrival, key)
    memory.admit(record)
    policy.on_admit(record, arrival)
    return record


class TestTieRule:
    def test_strictly_worse_resident_loses(self):
        assert later_arrival_wins(0.1, 0, 0.5, 3)

    def test_equal_priority_earlier_resident_loses(self):
        assert later_arrival_wins(0.5, 0, 0.5, 3)

    def test_better_resident_survives(self):
        assert not later_arrival_wins(0.9, 0, 0.5, 3)

    def test_full_tie_keeps_resident(self):
        assert not later_arrival_wins(0.5, 3, 0.5, 3)


class TestProbPolicy:
    def _setup(self):
        estimators = _estimators({0: 0.7, 1: 0.3}, {0: 0.9, 1: 0.1})
        memory = JoinMemory(4)
        policy = ProbPolicy(estimators)
        policy.bind(memory)
        return memory, policy

    def test_r_tuples_scored_against_s_distribution(self):
        memory, policy = self._setup()
        record = TupleRecord("R", 0, 0)
        assert policy.partner_probability(record) == pytest.approx(0.9)
        s_record = TupleRecord("S", 0, 0)
        assert policy.partner_probability(s_record) == pytest.approx(0.7)

    def test_evicts_lowest_probability(self):
        memory, policy = self._setup()
        low = _admit(memory, policy, "R", 0, 1)  # p_S = 0.1
        _admit(memory, policy, "R", 1, 0)  # p_S = 0.9
        candidate = TupleRecord("R", 2, 0)
        assert policy.choose_victim(candidate, 2) is low

    def test_rejects_weak_candidate(self):
        memory, policy = self._setup()
        _admit(memory, policy, "R", 0, 0)
        _admit(memory, policy, "R", 1, 0)
        candidate = TupleRecord("R", 2, 1)  # p 0.1 < residents' 0.9
        assert policy.choose_victim(candidate, 2) is None

    def test_tie_evicts_earliest_arrival(self):
        memory, policy = self._setup()
        first = _admit(memory, policy, "R", 0, 0)
        _admit(memory, policy, "R", 1, 0)
        candidate = TupleRecord("R", 2, 0)  # same probability
        assert policy.choose_victim(candidate, 2) is first

    def test_heap_skips_dead_records(self):
        memory, policy = self._setup()
        low = _admit(memory, policy, "R", 0, 1)
        mid = _admit(memory, policy, "R", 1, 1)
        memory.remove(low)
        policy.on_remove(low, 1, expired=False)
        candidate = TupleRecord("R", 2, 0)
        assert policy.choose_victim(candidate, 2) is mid

    def test_missing_estimator_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            ProbPolicy({"R": StaticFrequencyTable({0: 1.0})})

    def test_unbound_policy_raises(self):
        policy = RandomEvictionPolicy(seed=0)
        with pytest.raises(RuntimeError, match="bind"):
            policy.choose_victim(TupleRecord("R", 0, 0), 0)

    def test_rebinding_other_memory_rejected(self):
        policy = ProbPolicy(_estimators({0: 1.0}, {0: 1.0}))
        policy.bind(JoinMemory(2))
        with pytest.raises(RuntimeError, match="bound"):
            policy.bind(JoinMemory(2))


class TestLifePolicy:
    def _setup(self, window=10):
        estimators = _estimators({0: 0.7, 1: 0.3}, {0: 0.9, 1: 0.1})
        memory = JoinMemory(4)
        policy = LifePolicy(estimators, window)
        policy.bind(memory)
        return memory, policy

    def test_priority_decays_with_age(self):
        memory, policy = self._setup(window=10)
        old_strong = _admit(memory, policy, "R", 0, 0)  # p 0.9
        _admit(memory, policy, "R", 8, 1)  # p 0.1, young
        # At t=9: old_strong priority (0+10-9)*0.9 = 0.9; young (8+10-9)*0.1=0.9
        # tie -> earlier arrival evicted (old_strong).
        candidate = TupleRecord("R", 9, 0)  # priority 10*0.9 = 9
        assert policy.choose_victim(candidate, 9) is old_strong

    def test_fresh_high_probability_survives(self):
        memory, policy = self._setup(window=10)
        strong = _admit(memory, policy, "R", 4, 0)  # at t=6: 8*0.9=7.2
        weak = _admit(memory, policy, "R", 5, 1)  # at t=6: 9*0.1=0.9
        candidate = TupleRecord("R", 6, 1)  # 10*0.1=1.0 > 0.9
        assert policy.choose_victim(candidate, 6) is weak

    def test_full_tie_rejects_candidate(self):
        memory, policy = self._setup(window=10)
        _admit(memory, policy, "R", 5, 1)
        candidate = TupleRecord("R", 5, 1)  # identical priority and arrival
        assert policy.choose_victim(candidate, 5) is None

    def test_weak_candidate_rejected(self):
        memory, policy = self._setup(window=10)
        _admit(memory, policy, "R", 0, 0)
        _admit(memory, policy, "R", 1, 0)
        candidate = TupleRecord("R", 1, 1)
        # candidate priority 10*0.1=1.0 < resident (9)*0.9
        assert policy.choose_victim(candidate, 1) is None

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            LifePolicy(_estimators({0: 1.0}, {0: 1.0}), 0)

    def test_victim_matches_bruteforce_scan(self):
        """Regression pin for the key-count scan in ``_weakest_on``.

        The scan only visits per-key oldest residents (the FIFO head per
        key) instead of rescanning every resident.  Pin its choice
        against a brute-force minimum over *all* residents with the same
        tie rule (lowest priority, then earliest arrival): both must
        name the same victim at every decision point of a mixed
        admission sequence.
        """
        estimators = _estimators(
            {0: 0.4, 1: 0.3, 2: 0.2, 3: 0.1},
            {0: 0.5, 1: 0.25, 2: 0.15, 3: 0.1},
        )
        window = 8
        memory = JoinMemory(12)
        policy = LifePolicy(estimators, window)
        policy.bind(memory)
        arrivals = [
            ("R", 0, 2), ("S", 1, 0), ("R", 2, 0), ("R", 3, 2),
            ("S", 4, 3), ("R", 5, 1), ("S", 6, 1), ("R", 7, 3),
        ]
        for stream, arrival, key in arrivals:
            _admit(memory, policy, stream, arrival, key)

        for now in range(8, 14):
            for stream in ("R", "S"):
                residents = [
                    record
                    for side in memory.eviction_candidates(stream)
                    for record in side.records()
                ]
                expected = min(
                    residents,
                    key=lambda r: (policy._priority(r, now), r.arrival),
                )
                assert policy.weakest_resident(stream, now) is expected

    def test_static_probability_cache_matches_estimator(self):
        """The static-table fast path returns estimator-exact values."""
        estimators = _estimators({0: 0.7, 1: 0.3}, {0: 0.9, 1: 0.1})
        policy = LifePolicy(estimators, 10)
        assert policy._partner_probs is not None
        for stream, other in (("R", "S"), ("S", "R")):
            for key in (0, 1, 99):
                assert policy.partner_probability(stream, key) == (
                    estimators[other].probability(key)
                )


class TestRandomPolicy:
    def test_uniform_over_residents_and_newcomer(self):
        estimators = None
        memory = JoinMemory(20)
        policy = RandomEvictionPolicy(seed=1)
        policy.bind(memory)
        residents = [_admit(memory, policy, "R", i, i) for i in range(10)]
        outcomes = {"reject": 0, "evict": 0}
        for trial in range(300):
            candidate = TupleRecord("R", 100 + trial, 0)
            victim = policy.choose_victim(candidate, 100 + trial)
            outcomes["reject" if victim is None else "evict"] += 1
        # Rejection probability should be about 1/11.
        assert 0.02 < outcomes["reject"] / 300 < 0.25

    def test_without_newcomer_always_evicts(self):
        memory = JoinMemory(4)
        policy = RandomEvictionPolicy(seed=2, include_newcomer=False)
        policy.bind(memory)
        _admit(memory, policy, "R", 0, 0)
        for trial in range(20):
            assert policy.choose_victim(TupleRecord("R", trial, 0), trial) is not None

    def test_empty_memory_rejects(self):
        memory = JoinMemory(4)
        policy = RandomEvictionPolicy(seed=0)
        policy.bind(memory)
        assert policy.choose_victim(TupleRecord("R", 0, 0), 0) is None

    def test_determinism_by_seed(self):
        def run(seed):
            memory = JoinMemory(8)
            policy = RandomEvictionPolicy(seed=seed)
            policy.bind(memory)
            residents = [_admit(memory, policy, "R", i, i) for i in range(4)]
            picks = []
            for t in range(10):
                victim = policy.choose_victim(TupleRecord("R", 10 + t, 0), 10 + t)
                picks.append(None if victim is None else victim.arrival)
            return picks

        assert run(5) == run(5)


class TestKeyArrivalTracker:
    def test_window_counting(self):
        tracker = KeyArrivalTracker(window=3)
        tracker.observe("a", 0)
        tracker.observe("a", 1)
        tracker.observe("b", 2)
        # At t=3: arrivals of "a" in (0, 3) -> only t=1.
        assert tracker.count_in_window("a", 3) == 1
        assert tracker.count_in_window("b", 3) == 1
        assert tracker.count_in_window("c", 3) == 0

    def test_excludes_current_tick(self):
        tracker = KeyArrivalTracker(window=5)
        tracker.observe("a", 2)
        assert tracker.count_in_window("a", 2) == 0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            KeyArrivalTracker(0)


class TestArmPolicy:
    def test_doom_detection(self):
        estimators = _estimators({0: 1.0}, {0: 1.0})
        memory = JoinMemory(4)
        policy = ArmAwarePolicy(estimators, window=5)
        policy.bind(memory)
        # An S partner arrived at t=1 but is NOT in memory (was shed).
        policy.observe_arrival("S", 0, 1)
        record = TupleRecord("R", 2, 0)
        policy.observe_arrival("R", 0, 2)
        memory.admit(record)
        policy.on_admit(record, 2)
        assert record.tag is True  # doomed: partner missing

    def test_not_doomed_when_partner_resident(self):
        estimators = _estimators({0: 1.0}, {0: 1.0})
        memory = JoinMemory(4)
        policy = ArmAwarePolicy(estimators, window=5)
        policy.bind(memory)
        partner = TupleRecord("S", 1, 0)
        policy.observe_arrival("S", 0, 1)
        memory.admit(partner)
        policy.on_admit(partner, 1)
        record = TupleRecord("R", 2, 0)
        policy.observe_arrival("R", 0, 2)
        memory.admit(record)
        policy.on_admit(record, 2)
        assert record.tag is False

    def test_prefers_low_damage_victim(self):
        estimators = _estimators({0: 0.5, 1: 0.5}, {0: 0.9, 1: 0.01})
        memory = JoinMemory(4)
        policy = ArmAwarePolicy(estimators, window=10)
        policy.bind(memory)
        strong = _admit(memory, policy, "R", 0, 0)  # p 0.9: huge damage
        weak = _admit(memory, policy, "R", 1, 1)  # p 0.01: tiny damage
        candidate = TupleRecord("R", 2, 0)
        assert policy.choose_victim(candidate, 2) is weak

    def test_end_to_end_run(self, small_zipf_pair):
        """ARM runs cleanly inside the engine at several memory sizes."""
        from repro.experiments import run_algorithm

        for memory in (4, 10, 20):
            result = run_algorithm("ARM", small_zipf_pair, 20, memory)
            assert 0 <= result.output_count
