"""Tests for the stream/tuple model and the direct exact-join computation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams import (
    JoinResultTuple,
    StreamPair,
    StreamTuple,
    exact_join_size,
    iterate_exact_join,
    zipf_pair,
)


def naive_exact_join(pair: StreamPair, window: int, count_from: int = 0) -> int:
    """O(n * w) reference: enumerate all pairs directly."""
    count = 0
    n = len(pair)
    for i in range(n):
        for j in range(n):
            if abs(i - j) < window and pair.r[i] == pair.s[j]:
                if max(i, j) >= count_from:
                    count += 1
    return count


class TestStreamTuple:
    def test_expiry_boundary(self):
        tup = StreamTuple("R", arrival=10, key=3)
        assert tup.expires_at(window=5) == 15

    def test_result_tuple_emission_time(self):
        pair = JoinResultTuple(r_arrival=3, s_arrival=7, key=1)
        assert pair.emitted_at == 7


class TestStreamPair:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            StreamPair(r=[1, 2], s=[1])

    def test_domain_and_prefix(self):
        pair = StreamPair(r=[1, 2, 3], s=[3, 4, 5])
        assert pair.domain() == {1, 2, 3, 4, 5}
        assert list(pair.prefix(2).r) == [1, 2]
        assert len(pair.prefix(2)) == 2

    def test_swapped(self):
        pair = StreamPair(r=[1, 2], s=[3, 4])
        swapped = pair.swapped()
        assert list(swapped.r) == [3, 4]
        assert list(swapped.s) == [1, 2]

    def test_tuples_iteration(self):
        pair = StreamPair(r=[5], s=[6])
        (r, s), = list(pair.tuples())
        assert (r.stream, r.arrival, r.key) == ("R", 0, 5)
        assert (s.stream, s.arrival, s.key) == ("S", 0, 6)


class TestExactJoin:
    def test_hand_example(self):
        # The paper's running example: R = 1,1,1,3,2; S = 2,3,1,1,3; w=3.
        pair = StreamPair(r=[1, 1, 1, 3, 2], s=[2, 3, 1, 1, 3])
        # Pairs (i, j) with |i-j| < 3 and r[i] == s[j]:
        # r0=1 with s2; r1=1 with s2, s3; r2=1 with s2(=same time), s3, s4? s4=3 no
        # -> (0,2),(1,2),(1,3),(2,2),(2,3); r3=3 with s1,s4 -> (3,1),(3,4);
        # r4=2 with s? s0=2 too far (|4-0|=4); others no. Total 7.
        assert exact_join_size(pair, window=3) == 7

    def test_simultaneous_only(self):
        pair = StreamPair(r=[1, 2, 3], s=[1, 2, 3])
        assert exact_join_size(pair, window=1) == 3

    def test_window_one_excludes_neighbours(self):
        pair = StreamPair(r=[1, 1], s=[9, 1])
        # (r0, s1): |0-1| = 1, not < 1 -> excluded; (r1, s1) included.
        assert exact_join_size(pair, window=1) == 1

    def test_count_from_skips_warmup(self):
        pair = StreamPair(r=[1, 1, 1], s=[1, 1, 1])
        total = exact_join_size(pair, window=3)
        late = exact_join_size(pair, window=3, count_from=2)
        assert total == 9
        assert late == naive_exact_join(pair, 3, count_from=2) == 5

    def test_invalid_window(self):
        pair = StreamPair(r=[1], s=[1])
        with pytest.raises(ValueError, match="positive"):
            exact_join_size(pair, window=0)

    def test_iterate_yields_valid_pairs(self):
        pair = zipf_pair(80, 5, 1.0, seed=3)
        window = 7
        for result in iterate_exact_join(pair, window):
            assert abs(result.r_arrival - result.s_arrival) < window
            assert pair.r[result.r_arrival] == pair.s[result.s_arrival] == result.key

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        window=st.integers(1, 12),
        count_from=st.integers(0, 20),
    )
    def test_matches_naive_reference(self, seed, window, count_from):
        pair = zipf_pair(60, 4, 0.8, seed=seed)
        assert exact_join_size(pair, window, count_from=count_from) == naive_exact_join(
            pair, window, count_from
        )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000), window=st.integers(1, 10))
    def test_symmetric_in_stream_swap(self, seed, window):
        pair = zipf_pair(50, 5, 1.0, seed=seed)
        assert exact_join_size(pair, window) == exact_join_size(pair.swapped(), window)
