"""Tests for workload calibration and OPT memory-sensitivity analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.offline.sensitivity import memory_value_curve
from repro.experiments.calibration import (
    expected_join_size,
    match_probability,
    pair_slots,
)
from repro.streams import (
    StreamPair,
    exact_join_size,
    uniform_pair,
    weather_pair,
    zipf_pair,
)


class TestMatchProbability:
    def test_uniform(self):
        pair = uniform_pair(10, 10, seed=0)
        assert match_probability(pair) == pytest.approx(0.1)

    def test_weather_pair_uses_probability_arrays(self):
        pair = weather_pair(100, seed=0)
        rho = match_probability(pair)
        assert 0.0 < rho < 1.0

    def test_empirical_fallback(self):
        pair = StreamPair(r=[1, 1, 2, 2], s=[1, 1, 1, 1])
        # p_R(1) = 0.5, p_S(1) = 1.0 -> rho = 0.5.
        assert match_probability(pair) == pytest.approx(0.5)


class TestPairSlots:
    def naive(self, length, window, count_from=0):
        return sum(
            1
            for i in range(length)
            for j in range(length)
            if abs(i - j) < window and max(i, j) >= count_from
        )

    @settings(max_examples=40, deadline=None)
    @given(
        length=st.integers(0, 40),
        window=st.integers(1, 12),
        count_from=st.integers(0, 20),
    )
    def test_matches_naive_enumeration(self, length, window, count_from):
        assert pair_slots(length, window, count_from=count_from) == self.naive(
            length, window, count_from
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            pair_slots(10, 0)
        with pytest.raises(ValueError):
            pair_slots(-1, 2)


class TestExpectedJoinSize:
    @pytest.mark.parametrize("skew,domain", [(0.0, 20), (1.0, 50), (2.0, 10)])
    def test_prediction_matches_measurement(self, skew, domain):
        """Measured join sizes track the closed form within noise."""
        window = 30
        measurements = []
        predictions = []
        for seed in range(5):
            pair = zipf_pair(3000, domain, skew, seed=seed)
            measurements.append(exact_join_size(pair, window))
            predictions.append(expected_join_size(pair, window))
        mean_measured = sum(measurements) / len(measurements)
        mean_predicted = sum(predictions) / len(predictions)
        assert mean_measured == pytest.approx(mean_predicted, rel=0.1)

    def test_bare_length_needs_rho(self):
        with pytest.raises(ValueError, match="rho"):
            expected_join_size(100, 10)
        assert expected_join_size(100, 10, rho=0.1) == pytest.approx(
            0.1 * pair_slots(100, 10)
        )


class TestMemoryValueCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        pair = zipf_pair(400, 8, 1.0, seed=3)
        return memory_value_curve(pair, 20, [2, 6, 10, 20, 40])

    def test_monotone_and_bounded(self, curve):
        outputs = [p.output for p in curve.points]
        assert outputs == sorted(outputs)
        assert all(p.output <= curve.exact for p in curve.points)
        assert curve.points[-1].memory == 2 * curve.window
        assert curve.points[-1].output == curve.exact

    def test_marginal_values_non_increasing(self, curve):
        """Concavity of the parametric flow optimum in the budget."""
        marginals = curve.marginal_values()
        for earlier, later in zip(marginals, marginals[1:]):
            assert later <= earlier + 1e-9

    def test_knee_query(self, curve):
        budget = curve.smallest_budget_reaching(0.5)
        assert budget is not None
        for point in curve.points:
            if point.memory < budget:
                assert point.fraction_of_exact < 0.5
        assert curve.smallest_budget_reaching(1.0) == 2 * curve.window
        with pytest.raises(ValueError):
            curve.smallest_budget_reaching(1.5)

    def test_validation(self):
        pair = zipf_pair(50, 4, 1.0, seed=0)
        with pytest.raises(ValueError):
            memory_value_curve(pair, 5, [])
        with pytest.raises(ValueError):
            memory_value_curve(pair, 5, [4, 2])

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_concavity_property(self, seed):
        pair = zipf_pair(120, 4, 1.0, seed=seed)
        curve = memory_value_curve(pair, 8, [2, 4, 6, 8, 10], count_from=0)
        marginals = curve.marginal_values()
        for earlier, later in zip(marginals, marginals[1:]):
            assert later <= earlier + 1e-9