"""Tests for repro.obs.trace: events, sinks, and engine integration."""

import json

import pytest

from repro.api import RunSpec, run
from repro.core.engine import EngineConfig, JoinEngine
from repro.core.policies import make_policy_spec
from repro.experiments.runner import estimators_for, run_algorithm
from repro.obs import (
    EVENT_KINDS,
    NULL_TRACER,
    JsonlSink,
    NullTracer,
    RingBufferSink,
    TraceEvent,
    Tracer,
    iter_trace,
    load_trace,
    save_trace,
    trace_summary,
    tracing_or_none,
)
from repro.obs.trace import (
    EVENT_ADMIT,
    EVENT_ARRIVE,
    EVENT_DROP,
    EVENT_EVICT,
    EVENT_EXPIRE,
    EVENT_JOIN_OUTPUT,
    REASON_DISPLACED,
    REASON_REJECTED,
    REASON_SIMULTANEOUS,
    REASON_WINDOW,
)
from repro.streams import zipf_pair


def traced_run(algorithm="PROB", length=600, window=60, memory=30, seed=0,
               **spec_kwargs):
    spec = RunSpec(
        algorithm=algorithm, length=length, window=window, memory=memory,
        seed=seed, trace=True, **spec_kwargs,
    )
    return run(spec)


class TestTraceEvent:
    def test_json_round_trip(self):
        event = TraceEvent(7, "R", 3, EVENT_EVICT, 5, 0.25, REASON_DISPLACED)
        assert TraceEvent.from_json(event.to_json()) == event

    def test_to_json_omits_none_fields(self):
        event = TraceEvent(0, "S", 1, EVENT_ARRIVE, 0)
        record = event.to_json()
        assert "priority" not in record
        assert "reason" not in record
        assert "query" not in record

    def test_kind_vocabulary(self):
        assert set(EVENT_KINDS) == {
            EVENT_ARRIVE, EVENT_ADMIT, EVENT_EVICT,
            EVENT_EXPIRE, EVENT_JOIN_OUTPUT, EVENT_DROP,
        }


class TestSinks:
    def test_ring_buffer_keeps_newest(self):
        sink = RingBufferSink(3)
        for tick in range(5):
            sink.emit(TraceEvent(tick, "R", 0, EVENT_ARRIVE, tick))
        assert sink.total == 5
        assert sink.dropped == 2
        assert [event.tick for event in sink.events()] == [2, 3, 4]

    def test_ring_buffer_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)

    def test_jsonl_sink_streams_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(TraceEvent(0, "R", 1, EVENT_ARRIVE, 0))
            sink.emit(TraceEvent(1, "S", 2, EVENT_ADMIT, 1))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["kind"] == EVENT_ARRIVE

    def test_save_load_round_trip(self, tmp_path):
        events = [
            TraceEvent(0, "R", 1, EVENT_ARRIVE, 0),
            TraceEvent(3, "S", 2, EVENT_EVICT, 1, 0.5, REASON_DISPLACED),
        ]
        path = save_trace(events, tmp_path / "t.jsonl")
        assert load_trace(path) == events
        assert list(iter_trace(path)) == events


class TestNullPath:
    def test_tracing_or_none_collapses_disabled(self):
        assert tracing_or_none(None) is None
        assert tracing_or_none(NULL_TRACER) is None
        assert tracing_or_none(NullTracer()) is None
        tracer = Tracer()
        assert tracing_or_none(tracer) is tracer

    def test_disabled_run_attaches_no_trace_and_no_sink(self):
        """Behavioural overhead guard: the null path must not allocate.

        With ``metrics=None, trace=None`` the engine must neither keep a
        tracer nor attach trace/metrics payloads to the result — the
        disabled path is the paper's timed configuration.
        """
        pair = zipf_pair(400, 20, 1.0, seed=0)
        estimators = estimators_for(pair)
        policy = make_policy_spec("PROB", estimators=estimators, window=40, seed=0)
        engine = JoinEngine(
            EngineConfig(window=40, memory=20), policy=policy,
            metrics=None, trace=None,
        )
        result = engine.run(pair)
        assert engine._kernel is None
        assert result.trace is None
        assert result.metrics is None

    def test_instrumented_run_differs_only_by_payload(self):
        pair = zipf_pair(400, 20, 1.0, seed=0)
        estimators = estimators_for(pair)
        plain = run_algorithm("PROB", pair, 40, 20, estimators=estimators)
        traced = run_algorithm(
            "PROB", pair, 40, 20, estimators=estimators,
            trace=Tracer(RingBufferSink(1 << 18)),
        )
        assert plain.output_count == traced.output_count
        assert plain.drop_breakdown() == traced.drop_breakdown()
        assert plain.trace is None
        assert traced.trace


class TestFastEngineTrace:
    def test_lifecycle_invariants(self):
        result = traced_run(length=800, window=60, memory=30)
        summary = trace_summary(result.trace)
        kinds = summary["kinds"]
        # every tick contributes one arrival per stream
        assert kinds[EVENT_ARRIVE] == 2 * 800
        # each arrival is either admitted or rejected at the gate
        reasons = summary["reasons"]
        assert kinds[EVENT_ADMIT] + reasons[f"{EVENT_DROP}/{REASON_REJECTED}"] \
            == kinds[EVENT_ARRIVE]
        # every join output event corresponds to one produced pair
        assert kinds[EVENT_JOIN_OUTPUT] == result.total_output_count

    def test_admitted_tuples_leave_exactly_once(self):
        result = traced_run(length=700, window=50, memory=24)
        summary = trace_summary(result.trace)
        kinds = summary["kinds"]
        departures = kinds.get(EVENT_EVICT, 0) + kinds.get(EVENT_EXPIRE, 0)
        # stream ends with some tuples still resident
        resident = kinds[EVENT_ADMIT] - departures
        assert 0 <= resident <= 2 * 50

    def test_evict_events_carry_decision_priority(self):
        result = traced_run(algorithm="PROB", length=600, window=60, memory=20)
        evictions = [e for e in result.trace if e.kind == EVENT_EVICT]
        assert evictions
        assert all(e.reason == REASON_DISPLACED for e in evictions)
        assert all(e.priority is not None for e in evictions)

    def test_simultaneous_outputs_are_flagged(self):
        result = traced_run(length=500, window=40, memory=20)
        simultaneous = [
            e for e in result.trace
            if e.kind == EVENT_JOIN_OUTPUT and e.reason == REASON_SIMULTANEOUS
        ]
        for event in simultaneous:
            assert event.tick == event.arrival

    def test_expiry_reason_is_window(self):
        result = traced_run(length=500, window=40, memory=20)
        expiries = [e for e in result.trace if e.kind == EVENT_EXPIRE]
        assert expiries
        assert all(e.reason == REASON_WINDOW for e in expiries)


class TestOtherEngines:
    @pytest.mark.parametrize("engine", ["async", "slowcpu"])
    def test_engines_emit_full_lifecycle(self, engine):
        result = traced_run(engine=engine, length=600, window=60, memory=30)
        kinds = trace_summary(result.trace)["kinds"]
        assert kinds[EVENT_ARRIVE] == 2 * 600
        assert kinds[EVENT_ADMIT] > 0
        assert kinds[EVENT_JOIN_OUTPUT] > 0

    def test_multiquery_events_carry_query_names(self):
        from repro.core.multiquery import QuerySpec, SharedQueueSystem
        from repro.streams import multi_attribute_pair

        pair = multi_attribute_pair(400, [20, 10], [1.0, 0.5], seed=1)
        queries = [
            QuerySpec(name="q0", attribute=0, window=40, memory=20),
            QuerySpec(name="q1", attribute=1, window=20, memory=10),
        ]
        tracer = Tracer(RingBufferSink(1 << 18))
        system = SharedQueueSystem(
            pair, queries, service_per_tick=4, queue_capacity=32, trace=tracer,
        )
        result = system.run()
        assert result.trace
        queries_seen = {e.query for e in result.trace if e.query is not None}
        assert {"q0", "q1"} <= queries_seen


class TestTraceSummary:
    def test_empty_trace(self):
        summary = trace_summary([])
        assert summary["events"] == 0

    def test_counts_and_span(self):
        events = [
            TraceEvent(2, "R", 1, EVENT_ARRIVE, 2),
            TraceEvent(9, "S", 1, EVENT_EVICT, 5, None, REASON_DISPLACED),
        ]
        summary = trace_summary(events)
        assert summary["events"] == 2
        assert summary["tick_span"] == (2, 9)
        assert summary["kinds"][EVENT_EVICT] == 1
