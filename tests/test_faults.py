"""Deterministic fault injection: repro.runtime.faults."""

import time

import pytest

from repro.runtime import Fault, FaultPlan, InjectedFault
from repro.runtime import faults as faults_mod


@pytest.fixture(autouse=True)
def _clean_context():
    """Every test starts and ends with no armed fault context."""
    faults_mod.deactivate()
    yield
    faults_mod.deactivate()


class TestFault:
    def test_defaults(self):
        fault = Fault("kill", cell=2)
        assert fault.tick is None
        assert fault.attempts == 1

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            (dict(kind="explode", cell=0), "kind"),
            (dict(kind="kill", cell=-1), "cell"),
            (dict(kind="kill", cell=0, tick=-3), "tick"),
            (dict(kind="kill", cell=0, attempts=0), "attempts"),
            (dict(kind="slow", cell=0, delay_s=-0.1), "delay_s"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            Fault(**kwargs)


class TestFaultPlan:
    def test_coerces_iterables_and_rejects_non_faults(self):
        plan = FaultPlan([Fault("kill", cell=0)])
        assert isinstance(plan.faults, tuple)
        with pytest.raises(TypeError, match="not a Fault"):
            FaultPlan(("kill",))

    def test_for_cell_and_bool(self):
        a = Fault("kill", cell=0, tick=3)
        b = Fault("slow", cell=1)
        plan = FaultPlan((a, b))
        assert plan.for_cell(0) == (a,)
        assert plan.for_cell(1) == (b,)
        assert plan.for_cell(9) == ()
        assert plan
        assert not FaultPlan()

    def test_seeded_is_deterministic_and_in_bounds(self):
        one = FaultPlan.seeded(13, cells=4, ticks=100, kills=3)
        two = FaultPlan.seeded(13, cells=4, ticks=100, kills=3)
        other = FaultPlan.seeded(14, cells=4, ticks=100, kills=3)
        assert one == two
        assert one != other
        assert len(one.faults) == 3
        for fault in one.faults:
            assert fault.kind == "kill"
            assert 0 <= fault.cell < 4
            assert 0 <= fault.tick < 100

    def test_seeded_validates_dimensions(self):
        with pytest.raises(ValueError, match="cells"):
            FaultPlan.seeded(0, cells=0, ticks=10)
        with pytest.raises(ValueError, match="ticks"):
            FaultPlan.seeded(0, cells=1, ticks=0)


class TestWorkerContext:
    def test_inactive_by_default(self):
        assert not faults_mod.is_active()
        # no context: injection points are free no-ops
        faults_mod.inject_dispatch()
        faults_mod.maybe_inject(0)

    def test_activate_with_no_faults_stays_inactive(self):
        faults_mod.activate((), attempt=1)
        assert not faults_mod.is_active()

    def test_dispatch_kill_fires_only_at_dispatch(self):
        faults_mod.activate((Fault("kill", cell=0),), attempt=1)
        assert faults_mod.is_active()
        with pytest.raises(InjectedFault, match="cell 0"):
            faults_mod.inject_dispatch()
        # a tick-scoped probe never sees a dispatch fault
        faults_mod.maybe_inject(0)

    def test_tick_kill_fires_at_its_tick_only(self):
        faults_mod.activate((Fault("kill", cell=3, tick=7),), attempt=1)
        faults_mod.inject_dispatch()
        faults_mod.maybe_inject(6)
        with pytest.raises(InjectedFault, match="tick 7"):
            faults_mod.maybe_inject(7)

    def test_attempts_scope_the_fault(self):
        fault = Fault("kill", cell=0, tick=5, attempts=2)
        for attempt in (1, 2):
            faults_mod.activate((fault,), attempt=attempt)
            with pytest.raises(InjectedFault):
                faults_mod.maybe_inject(5)
        faults_mod.activate((fault,), attempt=3)
        faults_mod.maybe_inject(5)  # healed: attempt 3 > attempts=2

    def test_slow_and_hang_sleep_then_continue(self):
        faults_mod.activate(
            (Fault("slow", cell=0, tick=1, delay_s=0.0),
             Fault("hang", cell=0, tick=2, delay_s=0.01)),
            attempt=1,
        )
        faults_mod.maybe_inject(1)  # zero-delay: returns immediately
        start = time.perf_counter()
        faults_mod.maybe_inject(2)
        assert time.perf_counter() - start >= 0.01

    def test_deactivate_disarms(self):
        faults_mod.activate((Fault("kill", cell=0, tick=1),), attempt=1)
        faults_mod.deactivate()
        assert not faults_mod.is_active()
        faults_mod.maybe_inject(1)
