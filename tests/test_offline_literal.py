"""Cross-validation of the paper's literal flow graph (Section 3.2.1).

The literal Θ(wN) construction, the compact Θ(N) formulation, and the
exhaustive scheduler must all agree — this validates the compaction
argument of DESIGN.md §3 from a third, independently-built direction.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.offline import brute_force_opt, solve_opt
from repro.core.offline.literal import build_literal_graph, solve_opt_literal
from repro.streams import StreamPair, zipf_pair


class TestConstruction:
    def test_node_count_is_theta_wn(self):
        pair = zipf_pair(12, 3, 1.0, seed=0)
        graph = build_literal_graph(pair, window=4, memory=2)
        # Every tuple gets one node per residence tick: about 2 * N * w,
        # truncated at the stream end; plus source and sink.
        expected_tuple_nodes = sum(
            min(window_left, 12 - arrival)
            for arrival in range(12)
            for window_left in (4,)
        ) * 2
        assert graph.network.num_nodes == expected_tuple_nodes + 2

    def test_source_feeds_first_half_memory_tuples(self):
        pair = zipf_pair(10, 3, 1.0, seed=1)
        graph = build_literal_graph(pair, window=3, memory=4)
        source_arcs = [arc for arc in graph.network.arcs if arc.tail == 0]
        assert len(source_arcs) == 4  # M/2 per stream

    def test_variable_adds_cross_arcs(self):
        pair = zipf_pair(10, 3, 1.0, seed=1)
        fixed = build_literal_graph(pair, window=3, memory=4)
        pooled = build_literal_graph(pair, window=3, memory=4, variable=True)
        assert pooled.network.num_arcs > fixed.network.num_arcs

    def test_topologically_ordered(self):
        pair = zipf_pair(10, 3, 1.0, seed=2)
        graph = build_literal_graph(pair, window=3, memory=2)
        # Source is node 0 and tuple-time nodes are created time-major, so
        # all arcs except those into the sink go forward in id order.
        sink = graph.network.num_nodes - 1
        for arc in graph.network.arcs:
            assert arc.tail < arc.head or arc.head == sink

    def test_validation(self):
        pair = zipf_pair(10, 3, 1.0, seed=0)
        with pytest.raises(ValueError):
            build_literal_graph(pair, window=0, memory=2)
        with pytest.raises(ValueError):
            build_literal_graph(pair, window=3, memory=0)
        with pytest.raises(ValueError):
            build_literal_graph(pair, window=3, memory=3)


class TestEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 5000),
        window=st.integers(2, 5),
        half=st.integers(1, 2),
        length=st.integers(4, 14),
    )
    def test_literal_equals_compact_fixed(self, seed, window, half, length):
        pair = zipf_pair(length, 3, 1.0, seed=seed)
        memory = 2 * half
        literal = solve_opt_literal(pair, window, memory, count_from=0)
        compact = solve_opt(pair, window, memory, count_from=0).output_count
        assert literal == compact

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 5000),
        window=st.integers(2, 4),
        length=st.integers(4, 12),
    )
    def test_literal_equals_brute_force_variable(self, seed, window, length):
        pair = zipf_pair(length, 3, 1.0, seed=seed)
        memory = 2
        literal = solve_opt_literal(pair, window, memory, variable=True, count_from=0)
        brute = brute_force_opt(pair, window, memory, variable=True, count_from=0)
        assert literal == brute

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000), count_from=st.integers(0, 6))
    def test_warmup_respected(self, seed, count_from):
        pair = zipf_pair(10, 3, 1.0, seed=seed)
        literal = solve_opt_literal(pair, 3, 2, count_from=count_from)
        compact = solve_opt(pair, 3, 2, count_from=count_from).output_count
        assert literal == compact

    def test_paper_example_misses_two_tuples(self):
        """Figure 2's instance: M=2, w=3 misses exactly two output pairs."""
        pair = StreamPair(r=[1, 1, 1, 3, 2], s=[2, 3, 1, 1, 3])
        exact = brute_force_opt(pair, 3, 14, count_from=0)  # ample memory
        constrained = solve_opt_literal(pair, 3, 2, count_from=0)
        # The paper's text: "because of insufficient memory two output
        # tuples are missed ((r(1), s(2)) and (r(1), s(3)))".
        assert exact - constrained == 2
