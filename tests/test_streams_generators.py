"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.streams import (
    drifting_zipf_pair,
    empirical_probabilities,
    uniform_pair,
    zipf_pair,
)


class TestZipfPair:
    def test_basic_shape_and_metadata(self):
        pair = zipf_pair(500, 20, 1.0, seed=1)
        assert len(pair) == 500
        assert pair.metadata["domain_size"] == 20
        assert set(pair.r) <= set(range(20))
        assert set(pair.s) <= set(range(20))

    def test_seed_determinism(self):
        a = zipf_pair(200, 10, 1.0, seed=5)
        b = zipf_pair(200, 10, 1.0, seed=5)
        assert list(a.r) == list(b.r)
        assert list(a.s) == list(b.s)

    def test_different_seeds_differ(self):
        a = zipf_pair(200, 10, 1.0, seed=5)
        b = zipf_pair(200, 10, 1.0, seed=6)
        assert list(a.r) != list(b.r)

    def test_correlated_streams_share_frequent_values(self):
        pair = zipf_pair(6000, 20, 1.5, correlation="correlated", seed=2)
        top_r = max(set(pair.r), key=list(pair.r).count)
        top_s = max(set(pair.s), key=list(pair.s).count)
        assert top_r == top_s

    def test_anticorrelated_streams_disagree_on_frequent_values(self):
        pair = zipf_pair(6000, 20, 1.5, correlation="anticorrelated", seed=2)
        dist_r = pair.metadata["r_distribution"].probabilities()
        dist_s = pair.metadata["s_distribution"].probabilities()
        assert np.argmax(dist_r) != np.argmax(dist_s)
        # The most frequent value on one side is the least frequent on the other.
        assert np.argmax(dist_r) == np.argmin(dist_s)

    def test_unknown_correlation_rejected(self):
        with pytest.raises(ValueError, match="correlation"):
            zipf_pair(10, 5, 1.0, correlation="sideways")

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            zipf_pair(-1, 5, 1.0)

    def test_differing_skews(self):
        pair = zipf_pair(100, 10, 2.0, skew_s=0.0, seed=0)
        assert pair.metadata["r_distribution"].skew == 2.0
        assert pair.metadata["s_distribution"].skew == 0.0


class TestUniformPair:
    def test_uniformity(self):
        pair = uniform_pair(20_000, 10, seed=3)
        counts = np.bincount(np.asarray(pair.r), minlength=10) / len(pair)
        assert np.allclose(counts, 0.1, atol=0.02)

    def test_is_zipf_zero(self):
        pair = uniform_pair(10, 5, seed=0)
        assert pair.metadata["r_distribution"].skew == 0.0


class TestDriftingPair:
    def test_phases_partition_stream(self):
        pair = drifting_zipf_pair(100, 10, 1.0, phases=4, seed=1)
        assert len(pair) == 100
        assert len(pair.metadata["phase_distributions"]) == 4

    def test_invalid_phases(self):
        with pytest.raises(ValueError, match="positive"):
            drifting_zipf_pair(100, 10, 1.0, phases=0)

    def test_distribution_changes_between_phases(self):
        pair = drifting_zipf_pair(20_000, 10, 2.0, phases=2, seed=5)
        half = len(pair) // 2
        first = max(set(pair.r[:half]), key=list(pair.r[:half]).count)
        second = max(set(pair.r[half:]), key=list(pair.r[half:]).count)
        assert first != second  # seeds chosen so permutations differ


class TestEmpiricalProbabilities:
    def test_frequencies(self):
        freq = empirical_probabilities([1, 1, 2, 3])
        assert freq == {1: 0.5, 2: 0.25, 3: 0.25}

    def test_domain_padding(self):
        freq = empirical_probabilities([0, 0], domain_size=3)
        assert freq[1] == 0.0 and freq[2] == 0.0

    def test_empty_stream(self):
        assert empirical_probabilities([]) == {}
