"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.experiments.config import Scale
from repro.streams.generators import uniform_pair, zipf_pair


@pytest.fixture
def small_zipf_pair():
    """A short, skewed stream pair used across engine/policy tests."""
    return zipf_pair(length=300, domain_size=10, skew=1.0, seed=42)


@pytest.fixture
def small_uniform_pair():
    return uniform_pair(length=300, domain_size=10, seed=42)


@pytest.fixture
def tiny_scale():
    """A miniature experiment scale for end-to-end figure tests."""
    return Scale(
        name="tiny",
        stream_length=400,
        window=30,
        weather_length=2500,
        weather_window=150,
        weather_warmup=300,
    )
