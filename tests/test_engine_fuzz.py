"""Fuzzing the production engine against the naive reference.

The production engine uses heaps, per-key buckets, lazy deletion, and
slot arrays; the reference (`tests/reference_engine.py`) uses plain
lists and linear scans.  Agreement across random workloads validates all
of that bookkeeping end-to-end, including the paper's tie rules.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.runner import estimators_for, run_algorithm
from repro.streams import zipf_pair
from tests.reference_engine import naive_run


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2000),
    window=st.integers(2, 15),
    half=st.integers(1, 8),
    skew=st.sampled_from([0.0, 0.5, 1.0, 2.0]),
)
def test_prob_matches_reference_fixed(seed, window, half, skew):
    pair = zipf_pair(150, 6, skew, seed=seed)
    memory = 2 * half
    estimators = estimators_for(pair)
    engine = run_algorithm("PROB", pair, window, memory, estimators=estimators)
    reference = naive_run(pair, window, memory, "PROB", estimators)
    assert engine.output_count == reference


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2000),
    window=st.integers(2, 12),
    memory=st.integers(1, 15),
)
def test_probv_matches_reference_variable(seed, window, memory):
    pair = zipf_pair(120, 5, 1.0, seed=seed)
    estimators = estimators_for(pair)
    engine = run_algorithm("PROBV", pair, window, memory, estimators=estimators)
    reference = naive_run(pair, window, memory, "PROB", estimators, variable=True)
    assert engine.output_count == reference


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2000),
    window=st.integers(2, 15),
    half=st.integers(1, 8),
)
def test_life_matches_reference_fixed(seed, window, half):
    pair = zipf_pair(150, 6, 1.0, seed=seed)
    memory = 2 * half
    estimators = estimators_for(pair)
    engine = run_algorithm("LIFE", pair, window, memory, estimators=estimators)
    reference = naive_run(pair, window, memory, "LIFE", estimators)
    assert engine.output_count == reference


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2000),
    window=st.integers(2, 10),
    memory=st.integers(1, 12),
)
def test_lifev_matches_reference_variable(seed, window, memory):
    pair = zipf_pair(100, 5, 1.0, seed=seed)
    estimators = estimators_for(pair)
    engine = run_algorithm("LIFEV", pair, window, memory, estimators=estimators)
    reference = naive_run(pair, window, memory, "LIFE", estimators, variable=True)
    assert engine.output_count == reference


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2000), window=st.integers(2, 12))
def test_exact_matches_reference(seed, window):
    pair = zipf_pair(120, 5, 1.0, seed=seed)
    engine = run_algorithm("EXACT", pair, window, 0)
    reference = naive_run(pair, window, 2 * window, "EXACT")
    assert engine.output_count == reference
