"""Tests for the incremental ``run_stream`` path and its api wiring.

The refactor's core guarantee: the incremental source path produces
*identical* results to the historical materialized-pair path for the
same traffic — for every policy, both engines, fixed and variable
allocation — while holding only window/budget-bounded state.  Plus the
streaming surface itself: emit sinks, rolling summaries, cooperative
stop, duration bounds, spec validation, and sharded source runs.
"""

import pickle

import pytest

from repro.api import ESTIMATORS, RunSpec, run
from repro.core.async_engine import AsyncEngineConfig, AsyncJoinEngine
from repro.core.engine import EngineConfig, JoinEngine
from repro.core.partition import ShardedSource, shard_source
from repro.core.policies import make_policy_spec
from repro.experiments.runner import estimators_for
from repro.stats.frequency import StaticFrequencyTable
from repro.streams import zipf_pair
from repro.streams.sources import PairSource, PoissonSource, ZipfSource, take_pair

POLICIES = ["EXACT", "RAND", "PROB", "LIFE", "FIFO", "RANDV", "PROBV", "LIFEV"]

SMALL = dict(window=20, memory=10, length=400, seed=3)


def small_spec(algorithm: str, **overrides) -> RunSpec:
    return RunSpec(algorithm=algorithm, **{**SMALL, **overrides})


def result_fingerprint(result):
    return (
        result.output_count,
        getattr(result, "total_output_count", None),
        result.policy_name,
        dict(result.drop_counts),
    )


# ----------------------------------------------------------------------
# identity: incremental source path == materialized pair path
# ----------------------------------------------------------------------

class TestIncrementalIdentity:
    @pytest.mark.parametrize("algorithm", POLICIES)
    @pytest.mark.parametrize("engine", ["fast", "async"])
    def test_api_streaming_matches_pair_path(self, algorithm, engine):
        spec = small_spec(algorithm, engine=engine)
        pair = zipf_pair(SMALL["length"], 10, 1.0, seed=7)
        baseline = run(spec, pair=pair)
        summaries = []
        streamed = run(spec, pair=pair, on_summary=summaries.append,
                       on_summary_every=100)
        assert result_fingerprint(streamed) == result_fingerprint(baseline)
        assert summaries  # the streaming path actually ran incrementally

    @pytest.mark.parametrize("variable", [False, True])
    def test_engine_level_identity_fast(self, variable):
        pair = zipf_pair(500, 12, 1.0, seed=11)
        estimators = estimators_for(pair)

        def policy():
            return make_policy_spec("PROBV" if variable else "PROB",
                                    estimators=estimators, window=25, seed=0)

        config = EngineConfig(window=25, memory=12, variable=variable)
        baseline = JoinEngine(config, policy=policy()).run(pair)
        incremental = JoinEngine(config, policy=policy()).run_stream(
            PairSource(pair), until=len(pair)
        )
        assert result_fingerprint(incremental) == result_fingerprint(baseline)

    def test_engine_level_identity_async_bursty(self):
        # the async engine's incremental path on genuinely bursty traffic
        # rate kept well under capacity/window so EXACT's lossless 2w
        # budget cannot overflow under Poisson bursts
        source = PoissonSource(10, 1.0, rate=0.4, seed=5, length=600)
        config = AsyncEngineConfig(window=30, memory=2 * 30)
        once = AsyncJoinEngine(config).run_stream(source)
        again = AsyncJoinEngine(config).run_stream(source, until=600)
        assert result_fingerprint(again) == result_fingerprint(once)

    def test_source_run_equals_materialized_prefix(self):
        # consuming a generator source incrementally == materializing the
        # same prefix and running the pair path
        source = ZipfSource(15, 1.0, seed=9, length=700)
        pair = take_pair(source)
        dist_r, dist_s = source.distributions()
        oracle = {
            "R": StaticFrequencyTable.from_array(dist_r.probabilities()),
            "S": StaticFrequencyTable.from_array(dist_s.probabilities()),
        }
        for algorithm in ("EXACT", "PROB"):
            spec = small_spec(algorithm, window=25, memory=12)
            via_source = run(
                RunSpec(**{**spec.__dict__, "source": source, "length": 700})
            )
            via_pair = run(spec, pair=pair, estimators=oracle)
            assert via_source.output_count == via_pair.output_count

    def test_duration_truncates_like_a_prefix(self):
        source = ZipfSource(12, 1.0, seed=2, length=1000)
        spec = small_spec("EXACT", window=20)
        truncated = run(RunSpec(**{**spec.__dict__, "source": source,
                                   "duration": 250}))
        prefix = run(spec, pair=take_pair(source, 250))
        assert truncated.output_count == prefix.output_count
        assert truncated.length == 250


# ----------------------------------------------------------------------
# streaming surface: emit, summaries, stop
# ----------------------------------------------------------------------

class TestStreamingSurface:
    def test_emit_matches_materialized_output(self):
        pair = zipf_pair(400, 10, 1.0, seed=13)
        config = EngineConfig(window=20, memory=2 * 20, materialize=True)
        materialized = JoinEngine(config).run(pair)
        emitted = []
        streamed = JoinEngine(EngineConfig(window=20, memory=2 * 20)).run_stream(
            PairSource(pair), emit=emitted.append
        )
        assert streamed.output_count == materialized.output_count
        assert len(emitted) == materialized.output_count
        assert sorted((p.r_arrival, p.s_arrival, p.key) for p in emitted) == \
            sorted((p.r_arrival, p.s_arrival, p.key) for p in materialized.pairs)

    @pytest.mark.parametrize("engine", ["fast", "async"])
    def test_rolling_summaries(self, engine):
        spec = small_spec("PROB", engine=engine)
        pair = zipf_pair(SMALL["length"], 10, 1.0, seed=7)
        summaries = []
        result = run(spec, pair=pair, on_summary=summaries.append,
                     on_summary_every=100)
        assert len(summaries) == SMALL["length"] // 100
        counts = [s.output_count for s in summaries]
        assert counts == sorted(counts)  # monotone progress
        assert counts[-1] <= result.output_count
        assert all(s.policy_name == result.policy_name for s in summaries)
        assert all(s.engine in ("fast", "async") for s in summaries)

    def test_stop_ends_run_cleanly(self):
        source = ZipfSource(10, 1.0, seed=1)  # unbounded
        config = EngineConfig(window=20, memory=2 * 20)
        ticks = {"n": 0}

        def stop():
            ticks["n"] += 1
            return ticks["n"] > 300

        result = JoinEngine(config).run_stream(source, stop=stop)
        assert result.length <= 301
        full = JoinEngine(config).run_stream(
            ZipfSource(10, 1.0, seed=1, length=result.length)
        )
        assert result.output_count == full.output_count

    def test_immediate_stop_is_a_zero_tick_run(self):
        config = EngineConfig(window=20, memory=2 * 20)
        result = JoinEngine(config).run_stream(
            ZipfSource(10, 1.0, seed=1), stop=lambda: True
        )
        assert result.output_count == 0
        assert result.length == 0


# ----------------------------------------------------------------------
# guards and validation
# ----------------------------------------------------------------------

class TestValidation:
    @pytest.mark.parametrize("engine_cls,config_cls", [
        (JoinEngine, EngineConfig), (AsyncJoinEngine, AsyncEngineConfig),
    ])
    def test_unbounded_source_needs_a_bound(self, engine_cls, config_cls):
        engine = engine_cls(config_cls(window=10, memory=20))
        with pytest.raises(ValueError, match="unbounded"):
            engine.run_stream(ZipfSource(10, 1.0, seed=0))

    def test_api_unbounded_source_needs_duration_or_stop(self):
        spec = small_spec("EXACT", source=ZipfSource(10, 1.0, seed=0))
        with pytest.raises(ValueError, match="unbounded"):
            run(spec)
        # either bound suffices
        assert run(RunSpec(**{**spec.__dict__, "duration": 50})).length == 50
        assert run(spec, stop=lambda: True).output_count == 0

    def test_source_and_pair_are_mutually_exclusive(self):
        spec = small_spec("EXACT", source=ZipfSource(10, 1.0, seed=0, length=50))
        with pytest.raises(ValueError, match="not both"):
            run(spec, pair=zipf_pair(50, 10, 1.0, seed=0))

    def test_streaming_hooks_rejected_for_sharded_runs(self):
        spec = small_spec("EXACT", shards=2)
        with pytest.raises(ValueError, match="sharded"):
            run(spec, emit=lambda _: None)

    def test_streaming_hooks_rejected_for_slowcpu(self):
        spec = small_spec("EXACT", engine="slowcpu")
        with pytest.raises(ValueError, match="fast or async"):
            run(spec, on_summary=lambda _: None)

    @pytest.mark.parametrize("bad", [
        dict(estimator="histogram"),
        dict(estimator="ewma", algorithm="RAND"),
        dict(estimator="countmin", estimator_alpha=0.5),
        dict(estimator="ewma", estimator_alpha=1.5),
        dict(duration=100),  # duration without a source
        dict(source=ZipfSource(5, 1.0, length=10), duration=0),
        dict(source=ZipfSource(5, 1.0, length=10), algorithm="OPT"),
        dict(source=ZipfSource(5, 1.0, length=10), engine="slowcpu"),
        dict(source=ZipfSource(5, 1.0, length=10), checkpoint_every=16),
    ])
    def test_spec_validation_rejects_incompatible_combos(self, bad):
        params = {**SMALL, "algorithm": "PROB"}
        params.update(bad)
        with pytest.raises(ValueError):
            run(RunSpec(**params))

    def test_estimators_constant_lists_online_names(self):
        assert ESTIMATORS == ("oracle", "ewma", "countmin", "spacesaving")


# ----------------------------------------------------------------------
# sharded source runs
# ----------------------------------------------------------------------

class TestShardedSources:
    def test_shard_source_partitions_events(self):
        source = ZipfSource(16, 1.0, seed=4, length=200)
        shards = [shard_source(source, i, 4) for i in range(4)]
        merged = [
            tuple(sorted(k for s in shards for k in list(s)[t][0]))
            for t in range(200)
        ]
        original = [tuple(sorted(r)) for r, _ in list(source)]
        assert merged == original

    def test_sharded_source_is_picklable_and_restartable(self):
        sharded = shard_source(ZipfSource(16, 1.0, seed=4, length=100), 1, 3)
        assert isinstance(sharded, ShardedSource)
        clone = pickle.loads(pickle.dumps(sharded))
        assert list(clone) == list(sharded)
        assert "shard 1/3" in sharded.name

    def test_shard_source_validates_range(self):
        source = ZipfSource(8, 1.0, seed=0, length=10)
        with pytest.raises(ValueError):
            shard_source(source, 3, 3)
        with pytest.raises(ValueError):
            shard_source(source, -1, 3)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_sharded_exact_over_source_matches_unsharded(self, workers):
        source = ZipfSource(24, 1.0, seed=6, length=600)
        base = small_spec("EXACT", window=25)
        unsharded = run(RunSpec(**{**base.__dict__, "source": source}))
        sharded = run(
            RunSpec(**{**base.__dict__, "source": source, "shards": 3}),
            workers=workers,
        )
        assert sharded.output_count == unsharded.output_count
        assert sharded.length == unsharded.length

    def test_sharded_unbounded_source_needs_duration(self):
        spec = small_spec("EXACT", source=ZipfSource(10, 1.0, seed=0), shards=2)
        with pytest.raises(ValueError, match="duration"):
            run(spec)
        bounded = run(RunSpec(**{**spec.__dict__, "duration": 120}))
        assert bounded.length == 120
