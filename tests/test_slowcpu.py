"""Tests for the slow-CPU modular model (queue + load shedding)."""

import pytest

from repro.core.slowcpu import SlowCpuConfig, SlowCpuEngine
from repro.experiments.runner import estimators_for
from repro.streams import exact_join_size, synchronous_schedule, zipf_pair


def _pair(length=300, seed=1):
    return zipf_pair(length, 8, 1.0, seed=seed)


def _prob_policies(pair, window):
    from repro.core.policies import ProbPolicy, SidePolicies

    estimators = estimators_for(pair)
    return (
        SidePolicies(r=ProbPolicy(estimators), s=ProbPolicy(estimators)),
        estimators,
    )


class TestConfigValidation:
    def test_defaults_and_bounds(self):
        config = SlowCpuConfig(window=10, memory=4, service_per_tick=1, queue_capacity=5)
        assert config.warmup == 20
        for kwargs in (
            dict(window=0, memory=4, service_per_tick=1, queue_capacity=5),
            dict(window=10, memory=0, service_per_tick=1, queue_capacity=5),
            dict(window=10, memory=4, service_per_tick=0, queue_capacity=5),
            dict(window=10, memory=4, service_per_tick=1, queue_capacity=0),
            dict(window=10, memory=4, service_per_tick=1, queue_capacity=5,
                 queue_policy="bogus"),
        ):
            with pytest.raises(ValueError):
                SlowCpuConfig(**kwargs)

    def test_prob_queue_policy_needs_estimators(self):
        config = SlowCpuConfig(
            window=10, memory=4, service_per_tick=1, queue_capacity=5,
            queue_policy="prob",
        )
        with pytest.raises(ValueError, match="estimators"):
            SlowCpuEngine(config)


class TestFastEnoughCpuRecoversExactJoin:
    def test_ample_resources_give_exact_output(self):
        """With service >= arrivals and no memory pressure, the modular
        pipeline produces the exact sliding-window join (R processed
        before S each tick, so same-tick pairs are found via memory)."""
        pair = _pair()
        window = 12
        config = SlowCpuConfig(
            window=window,
            memory=4 * window,
            service_per_tick=2,
            queue_capacity=10,
        )
        engine = SlowCpuEngine(config)
        schedule = synchronous_schedule(len(pair))
        result = engine.run(pair.r, pair.s, schedule, schedule)
        assert result.output_count == exact_join_size(
            pair, window, count_from=config.warmup
        )
        assert result.shed_from_queue == 0
        assert result.expired_in_queue == 0
        assert result.processed == 2 * len(pair)


class TestOverload:
    def _run(self, queue_policy, seed=2):
        pair = _pair(seed=seed)
        window = 12
        policies, estimators = _prob_policies(pair, window)
        config = SlowCpuConfig(
            window=window,
            memory=window,
            service_per_tick=1,  # half the arrival rate
            queue_capacity=6,
            queue_policy=queue_policy,
            seed=seed,
        )
        engine = SlowCpuEngine(config, policy=policies, estimators=estimators)
        schedule = synchronous_schedule(len(pair))
        return engine.run(pair.r, pair.s, schedule, schedule)

    @pytest.mark.parametrize("queue_policy", ["tail", "random", "prob"])
    def test_overload_sheds_and_bounds_queue(self, queue_policy):
        result = self._run(queue_policy)
        assert result.shed_from_queue > 0
        assert result.max_queue_length <= 12  # 2 x queue_capacity
        assert result.processed + result.shed_from_queue + result.expired_in_queue \
            <= result.arrived

    def test_semantic_shedding_beats_random(self):
        prob = self._run("prob").output_count
        random_drop = self._run("random").output_count
        assert prob > random_drop

    def test_determinism(self):
        a = self._run("random", seed=5)
        b = self._run("random", seed=5)
        assert a.output_count == b.output_count
        assert a.drop_counts == b.drop_counts

    def test_opt_offline_upper_bounds_slow_cpu(self):
        """Paper §3.2: 'in the slow CPU case even more tuples have to be
        dropped, [so] OPT-offline also constitutes an upper bound for any
        technique for the slow CPU case'."""
        from repro.core.offline import solve_opt

        for queue_policy in ("tail", "random", "prob"):
            result = self._run(queue_policy)
            pair = _pair(seed=2)
            bound = solve_opt(pair, 12, 12, count_from=24).output_count
            assert result.output_count <= bound

    def test_delay_accounting(self):
        """Overload builds queueing delay; ample service does not."""
        overloaded = self._run("tail")
        assert overloaded.total_delay > 0
        assert overloaded.mean_delay > 0.5

        pair = _pair()
        config = SlowCpuConfig(
            window=12, memory=48, service_per_tick=2, queue_capacity=10
        )
        engine = SlowCpuEngine(config)
        schedule = synchronous_schedule(len(pair))
        fast = engine.run(pair.r, pair.s, schedule, schedule)
        assert fast.total_delay == 0
        assert fast.mean_delay == 0.0


class TestInputValidation:
    def test_schedule_overrun_rejected(self):
        pair = _pair(length=10)
        config = SlowCpuConfig(window=5, memory=4, service_per_tick=1, queue_capacity=3)
        engine = SlowCpuEngine(config)
        with pytest.raises(ValueError, match="more tuples"):
            engine.run(pair.r, pair.s, [2] * 10, [1] * 10)

    def test_mismatched_schedules_rejected(self):
        pair = _pair(length=10)
        config = SlowCpuConfig(window=5, memory=4, service_per_tick=1, queue_capacity=3)
        engine = SlowCpuEngine(config)
        with pytest.raises(ValueError, match="same number"):
            engine.run(pair.r, pair.s, [1] * 10, [1] * 9)

    def test_memory_overflow_without_policy(self):
        pair = _pair(length=100)
        config = SlowCpuConfig(window=20, memory=4, service_per_tick=2, queue_capacity=5)
        engine = SlowCpuEngine(config)
        schedule = synchronous_schedule(len(pair))
        with pytest.raises(RuntimeError, match="overflow"):
            engine.run(pair.r, pair.s, schedule, schedule)
