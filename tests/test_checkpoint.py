"""Checkpoint/restore: store semantics and bit-identical resumption."""

import pickle

import pytest

from repro.core.async_engine import (
    AsyncEngineConfig,
    AsyncJoinEngine,
    batches_from_pair,
)
from repro.core.memory import JoinMemory, StreamMemory, TupleRecord
from repro.core.policies import (
    LifePolicy,
    ProbPolicy,
    RandomEvictionPolicy,
    SidePolicies,
)
from repro.core.results import SCHEMA_VERSION
from repro.experiments.runner import estimators_for
from repro.obs import MetricsRegistry
from repro.runtime import CheckpointStore
from repro.streams import zipf_pair


# ----------------------------------------------------------------------
# CheckpointStore
# ----------------------------------------------------------------------

class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        state = {"tick": 12, "payload": [1, 2, 3]}
        store.save("shard-0", state, fingerprint="fp")
        assert store.load("shard-0", fingerprint="fp") == state

    def test_missing_key_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load("nope", fingerprint="fp") is None

    def test_fingerprint_mismatch_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("shard-0", {"tick": 1}, fingerprint="spec-a")
        assert store.load("shard-0", fingerprint="spec-b") is None

    def test_corrupt_file_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path_for("shard-0").write_bytes(b"not a pickle")
        assert store.load("shard-0", fingerprint="fp") is None

    def test_schema_mismatch_is_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        payload = {
            "schema_version": SCHEMA_VERSION + 1,
            "fingerprint": "fp",
            "state": {"tick": 1},
        }
        store.path_for("shard-0").write_bytes(pickle.dumps(payload))
        assert store.load("shard-0", fingerprint="fp") is None

    def test_save_overwrites_atomically(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("k", {"tick": 1}, fingerprint="fp")
        store.save("k", {"tick": 2}, fingerprint="fp")
        assert store.load("k", fingerprint="fp") == {"tick": 2}
        # no stray temp files left behind
        assert list(tmp_path.iterdir()) == [store.path_for("k")]

    def test_clear_is_idempotent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("k", {"tick": 1}, fingerprint="fp")
        store.clear("k")
        store.clear("k")
        assert store.load("k", fingerprint="fp") is None

    def test_keys_are_sanitised_to_filenames(self, tmp_path):
        store = CheckpointStore(tmp_path)
        path = store.path_for("shard 0/of:4")
        assert path.parent == store.root
        assert "/" not in path.name and " " not in path.name


# ----------------------------------------------------------------------
# memory snapshot/restore
# ----------------------------------------------------------------------

def _admit(memory: JoinMemory, stream: str, arrival: int, key) -> TupleRecord:
    record = TupleRecord(stream, arrival, key)
    memory.admit(record)
    return record


class TestMemorySnapshot:
    def test_round_trip_preserves_both_orders(self):
        memory = JoinMemory(8)
        records = [
            _admit(memory, "R", 0, "a"),
            _admit(memory, "R", 1, "b"),
            _admit(memory, "R", 2, "a"),
            _admit(memory, "S", 1, "b"),
        ]
        # swap-remove makes slot order diverge from admission order
        memory.remove(records[0])
        state = memory.snapshot()

        rebuilt = JoinMemory(8)
        r_records, s_records = rebuilt.restore(state)
        assert [(r.arrival, r.key) for r in r_records] == [(1, "b"), (2, "a")]
        assert [(r.arrival, r.key) for r in s_records] == [(1, "b")]
        assert rebuilt.snapshot() == state

    def test_restore_rejects_wrong_stream(self):
        snap = StreamMemory("R").snapshot()
        with pytest.raises(ValueError, match="stream"):
            StreamMemory("S").restore(snap)

    def test_restore_rejects_incomplete_order(self):
        memory = StreamMemory("R")
        memory.add(TupleRecord("R", 0, "a"))
        state = memory.snapshot()
        state["order"] = []
        with pytest.raises(ValueError, match="order"):
            StreamMemory("R").restore(state)

    def test_restore_rejects_allocation_mode_mismatch(self):
        state = JoinMemory(8).snapshot()
        with pytest.raises(ValueError, match="variable"):
            JoinMemory(8, variable=True).restore(state)


# ----------------------------------------------------------------------
# engine checkpoint -> resume identity
# ----------------------------------------------------------------------

PAIR = zipf_pair(400, 10, 1.0, seed=5)
ESTIMATORS = estimators_for(PAIR)
WINDOW = 30


def _policies(name):
    if name == "EXACT":
        return None
    if name == "RAND":
        return SidePolicies(
            r=RandomEvictionPolicy(seed=3), s=RandomEvictionPolicy(seed=4)
        )
    if name == "PROB":
        return SidePolicies(
            r=ProbPolicy(ESTIMATORS), s=ProbPolicy(ESTIMATORS)
        )
    if name == "LIFE":
        return SidePolicies(
            r=LifePolicy(ESTIMATORS, WINDOW), s=LifePolicy(ESTIMATORS, WINDOW)
        )
    raise AssertionError(name)


def _config(name, **overrides):
    memory = 2 * WINDOW if name == "EXACT" else 20
    defaults = dict(window=WINDOW, memory=memory, warmup=2 * WINDOW)
    defaults.update(overrides)
    return AsyncEngineConfig(**defaults)


def _fingerprint(result):
    return (
        result.output_count,
        result.total_output_count,
        result.drop_breakdown(),
    )


class TestEngineResumeIdentity:
    @pytest.mark.parametrize("name", ["EXACT", "RAND", "PROB", "LIFE"])
    @pytest.mark.parametrize("checkpoint_tick", [0, 57, 211])
    def test_resume_matches_uninterrupted(self, name, checkpoint_tick):
        batches = batches_from_pair(PAIR)
        baseline = AsyncJoinEngine(
            _config(name), policy=_policies(name)
        ).run(*batches)

        saved = {}

        def on_tick(engine, t):
            if t == checkpoint_tick:
                saved["state"] = engine.checkpoint()

        AsyncJoinEngine(_config(name), policy=_policies(name)).run(
            *batches, on_tick=on_tick
        )

        resumed = AsyncJoinEngine(_config(name), policy=_policies(name)).run(
            *batches, resume=saved["state"]
        )
        assert _fingerprint(resumed) == _fingerprint(baseline)

    def test_resume_restores_metrics_totals(self):
        batches = batches_from_pair(PAIR)
        baseline_registry = MetricsRegistry()
        AsyncJoinEngine(
            _config("PROB"), policy=_policies("PROB"),
            metrics=baseline_registry,
        ).run(*batches)

        saved = {}

        def on_tick(engine, t):
            if t == 101:
                saved["state"] = engine.checkpoint()

        AsyncJoinEngine(
            _config("PROB"), policy=_policies("PROB"),
            metrics=MetricsRegistry(),
        ).run(*batches, on_tick=on_tick)

        resumed_registry = MetricsRegistry()
        AsyncJoinEngine(
            _config("PROB"), policy=_policies("PROB"),
            metrics=resumed_registry,
        ).run(*batches, resume=saved["state"])

        base = baseline_registry.snapshot()
        resumed = resumed_registry.snapshot()
        # wall-clock phase timings are inherently non-deterministic
        for snapshot in (base, resumed):
            for phase in snapshot.get("phases", []):
                phase["seconds"] = 0.0
        assert resumed == base

    def test_checkpoint_requires_tick_context(self):
        engine = AsyncJoinEngine(_config("EXACT"))
        with pytest.raises(RuntimeError, match="checkpoint"):
            engine.checkpoint()

    def test_checkpoint_rejects_count_windows(self):
        config = _config("EXACT", window_mode="count")
        captured = {}

        def on_tick(engine, t):
            if t == 10:
                with pytest.raises(ValueError, match="count"):
                    engine.checkpoint()
                captured["checked"] = True

        AsyncJoinEngine(config).run(*batches_from_pair(PAIR), on_tick=on_tick)
        assert captured.get("checked")

    def test_resume_skips_already_processed_ticks(self):
        """A resumed run must not double-count pre-checkpoint arrivals."""
        batches = batches_from_pair(PAIR)
        baseline = AsyncJoinEngine(_config("EXACT")).run(*batches)

        saved = {}

        def on_tick(engine, t):
            if t == 150:
                saved["state"] = engine.checkpoint()

        AsyncJoinEngine(_config("EXACT")).run(*batches, on_tick=on_tick)
        resumed = AsyncJoinEngine(_config("EXACT")).run(
            *batches, resume=saved["state"]
        )
        assert resumed.arrivals == baseline.arrivals
        assert _fingerprint(resumed) == _fingerprint(baseline)
