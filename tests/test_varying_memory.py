"""Tests for time-varying memory budgets (paper Section 3.3)."""

import pytest

from repro.core import CapacityExceededError, EngineConfig, JoinEngine
from repro.core.memory import JoinMemory, TupleRecord
from repro.core.policies import LifePolicy, ProbPolicy, RandomEvictionPolicy
from repro.experiments import estimators_for, run_algorithm, varying_memory_study
from repro.streams import zipf_pair


class TestJoinMemoryResize:
    def test_resize_and_surplus(self):
        memory = JoinMemory(4)
        for i in range(2):
            memory.admit(TupleRecord("R", i, i))
        memory.resize(2)
        assert memory.surplus("R") == 1
        assert memory.surplus("S") == 0

    def test_resize_validation(self):
        memory = JoinMemory(4)
        with pytest.raises(ValueError):
            memory.resize(0)
        with pytest.raises(ValueError, match="even"):
            memory.resize(3)

    def test_variable_pool_surplus(self):
        memory = JoinMemory(3, variable=True)
        memory.admit(TupleRecord("R", 0, 0))
        memory.admit(TupleRecord("S", 0, 0))
        memory.admit(TupleRecord("S", 1, 1))
        memory.resize(1)
        assert memory.surplus("R") == memory.surplus("S") == 2


class TestWeakestResident:
    def _bind(self, policy, capacity=10):
        memory = JoinMemory(capacity)
        policy.bind(memory)
        return memory

    def test_prob_sheds_lowest_probability(self):
        from repro.stats import StaticFrequencyTable

        estimators = {
            "R": StaticFrequencyTable({0: 0.9, 1: 0.1}),
            "S": StaticFrequencyTable({0: 0.9, 1: 0.1}),
        }
        policy = ProbPolicy(estimators)
        memory = self._bind(policy)
        weak = TupleRecord("R", 0, 1)
        strong = TupleRecord("R", 1, 0)
        for record in (weak, strong):
            memory.admit(record)
            policy.on_admit(record, record.arrival)
        assert policy.weakest_resident("R", 2) is weak

    def test_random_returns_some_resident(self):
        policy = RandomEvictionPolicy(seed=1)
        memory = self._bind(policy)
        records = [TupleRecord("R", i, i) for i in range(3)]
        for record in records:
            memory.admit(record)
        assert policy.weakest_resident("R", 5) in records

    def test_empty_pool_returns_none(self):
        policy = RandomEvictionPolicy(seed=1)
        self._bind(policy)
        assert policy.weakest_resident("R", 0) is None

    def test_base_class_default_raises(self):
        from repro.core.policies.base import EvictionPolicy

        class Stub(EvictionPolicy):
            name = "STUB"

            def choose_victim(self, candidate, now):
                return None

        stub = Stub()
        stub.bind(JoinMemory(2))
        with pytest.raises(NotImplementedError):
            stub.weakest_resident("R", 0)


class TestEngineWithSchedule:
    def _run(self, pair, schedule, policy_name="PROB", window=20, memory=20):
        estimators = estimators_for(pair)
        from repro.experiments.runner import _policy_for

        config = EngineConfig(
            window=window, memory=memory, memory_schedule=schedule, validate=True
        )
        policy = _policy_for(policy_name, estimators, window, 0)
        return JoinEngine(config, policy=policy).run(pair)

    def test_constant_schedule_matches_plain_run(self, small_zipf_pair):
        plain = run_algorithm("PROB", small_zipf_pair, 20, 10)
        scheduled = self._run(small_zipf_pair, lambda t: 10, memory=10)
        assert scheduled.output_count == plain.output_count

    def test_square_wave_between_constant_budgets(self, small_zipf_pair):
        low = self._run(small_zipf_pair, lambda t: 4, memory=4)
        high = self._run(small_zipf_pair, lambda t: 20, memory=20)
        wave = self._run(
            small_zipf_pair, lambda t: 20 if (t // 20) % 2 == 0 else 4, memory=20
        )
        assert low.output_count <= wave.output_count <= high.output_count

    def test_sequence_schedule(self, small_zipf_pair):
        schedule = [10] * len(small_zipf_pair)
        scheduled = self._run(small_zipf_pair, schedule, memory=10)
        plain = run_algorithm("PROB", small_zipf_pair, 20, 10)
        assert scheduled.output_count == plain.output_count

    def test_shrink_evicts_immediately(self):
        pair = zipf_pair(60, 5, 1.0, seed=1)
        result = self._run(
            pair, lambda t: 20 if t < 30 else 2, window=10, memory=20,
            policy_name="RAND",
        )
        # After the cliff the pool holds at most 2 tuples; validate=True
        # in _run would have raised on any violation.
        assert result.output_count >= 0
        evictions = sum(result.drop_counts[s]["evicted"] for s in ("R", "S"))
        assert evictions >= 18  # the cliff sheds most of the pool at once

    def test_variable_pool_schedule(self):
        pair = zipf_pair(80, 5, 1.0, seed=2)
        estimators = estimators_for(pair)
        config = EngineConfig(
            window=10,
            memory=9,
            variable=True,
            memory_schedule=lambda t: 9 if t % 20 < 10 else 3,
            validate=True,
        )
        engine = JoinEngine(config, policy=ProbPolicy(estimators))
        result = engine.run(pair)
        assert result.output_count >= 0

    def test_shrink_without_policy_raises(self):
        pair = zipf_pair(60, 5, 1.0, seed=3)
        config = EngineConfig(
            window=10, memory=20, memory_schedule=lambda t: 20 if t < 15 else 2
        )
        with pytest.raises(CapacityExceededError):
            JoinEngine(config, policy=None).run(pair)

    def test_survival_records_still_consistent(self):
        from tests.test_engine import recount_from_departures

        pair = zipf_pair(150, 6, 1.0, seed=4)
        estimators = estimators_for(pair)
        from repro.experiments.runner import _policy_for

        config = EngineConfig(
            window=12,
            memory=12,
            memory_schedule=lambda t: 12 if (t // 12) % 2 == 0 else 4,
            track_survival=True,
        )
        policy = _policy_for("PROB", estimators, 12, 0)
        result = JoinEngine(config, policy=policy).run(pair)
        assert recount_from_departures(pair, result) == result.output_count


class TestVaryingMemoryStudy:
    def test_adaptation_is_graceful(self, tiny_scale):
        table = varying_memory_study(tiny_scale, seed=0)
        for row in table.rows:
            _name, low, varying, _mean, high = row
            assert low <= varying <= high
        outputs = {row[0]: row[2] for row in table.rows}
        assert outputs["PROB"] > outputs["RAND"]
