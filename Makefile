# Convenience targets for the reproduction workflow.

PYTHON ?= python
SCALE ?= default

.PHONY: install test bench bench-ci bench-smoke bench-parallel bench-shard bench-chaos bench-obs bench-batch bench-policy bench-all soak bench-gate check figures clean

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	REPRO_SCALE=$(SCALE) $(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-ci:
	REPRO_SCALE=ci $(PYTHON) -m pytest benchmarks/ --benchmark-only

# Throughput snapshot at ci scale -> BENCH_engine.json (committed).
bench-smoke:
	$(PYTHON) benchmarks/snapshot.py --scale ci

# Parallel-runtime snapshot -> BENCH_runtime.json (committed): the same
# algorithm x seed grid timed serially and with workers=2, with a strict
# outputs-identical check.  Speedup is advisory (CI may be single-core).
bench-parallel:
	$(PYTHON) benchmarks/bench_runtime.py

# Sharded-execution snapshot -> BENCH_shard.json (committed): the same
# EXACT workload unsharded, sharded serial, and sharded over worker
# processes, with a strict identity check (output, total, drop ledger)
# plus serial==parallel determinism for the PROB approximation variant.
bench-shard:
	$(PYTHON) benchmarks/bench_shard.py

# Chaos-recovery snapshot -> BENCH_chaos.json (committed): sharded runs
# under a seeded worker kill with checkpoint/retry must reproduce the
# fault-free result bit-identically, and a degraded run must report a
# lost_output that exactly reconciles the deficit.
bench-chaos:
	$(PYTHON) benchmarks/bench_chaos.py

# Telemetry-plane snapshot -> BENCH_obs.json (committed): telemetry-on
# must reproduce telemetry-off bit-identically with a deterministic
# heartbeat count and stay within a 5% CPU-overhead budget; a faulted
# pooled leg writes its merged timeline (kill, retry, checkpoint
# restore) to benchmarks/results/timeline.json as Chrome trace JSON.
bench-obs:
	$(PYTHON) benchmarks/bench_telemetry.py

# Columnar-batch snapshot -> BENCH_batch.json (committed): per-tuple vs
# batched EXACT throughput (interleaved rounds) with a strict identity
# sweep — batched output/ledger/metrics must be bit-identical to
# per-tuple across policies, chunk sizes, and shards, and the batched
# lane must clear a 1.5x speedup floor.
bench-batch:
	$(PYTHON) benchmarks/bench_batch.py

# Policy-lane snapshot -> BENCH_policy.json (committed): per-tuple vs
# batched RAND/PROB/LIFE throughput (interleaved rounds) with a strict
# identity sweep — batched output/ledger/survival/metrics must be
# bit-identical to per-tuple across both allocation modes, chunk sizes
# {1, 7, 64, whole}, and shards, and batched PROB and LIFE must clear a
# 2.0x speedup floor.
bench-policy:
	$(PYTHON) benchmarks/bench_policy_batch.py

# Aggregate: run every bench-* gate (soak excluded; run `make soak`)
# against a temp output and print one consolidated table of current vs
# committed-baseline throughput and overhead columns.  Fails if any
# gate fails; never overwrites the committed baselines.
bench-all:
	$(PYTHON) benchmarks/bench_all.py

# Bounded-memory soak -> BENCH_soak.json (committed): 2M+ ticks from an
# unbounded zipf source through the streaming EXACT lane plus 200k
# through the full PROB+EWMA engine path, with tracemalloc asserting
# that live memory stays flat — bounded by the window/budget, never by
# stream length.  Override the tick budgets with SOAK_TICKS /
# SOAK_POLICY_TICKS for a quicker local run.
SOAK_TICKS ?= 2000000
SOAK_POLICY_TICKS ?= 200000
soak:
	$(PYTHON) benchmarks/bench_soak.py --ticks $(SOAK_TICKS) --policy-ticks $(SOAK_POLICY_TICKS)

# Perf-regression gate: fresh snapshots vs the committed BENCH_engine.json
# (and BENCH_runtime.json / BENCH_shard.json / BENCH_chaos.json /
# BENCH_batch.json / BENCH_policy.json / BENCH_soak.json when present).
# Fails on >20% throughput drops, output-count drift, instrumentation
# overhead growth, parallel/serial divergence, sharded-EXACT identity
# violations, fault-recovery drift, policy-lane identity/speedup-floor
# violations, or unbounded-stream memory growth; see
# benchmarks/regression.py for the tolerance knobs.
bench-gate:
	$(PYTHON) benchmarks/regression.py

# Tier-1 gate: the full test-suite plus the benchmark snapshot.
check:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	$(MAKE) bench-smoke

# Regenerate every figure/table via the CLI at the chosen scale.
figures:
	@for fig in figure3 figure4 figure5 figure6 figure7 figure8 figure9 figure10 figure11; do \
		REPRO_SCALE=$(SCALE) $(PYTHON) -m repro figure $$fig; echo; \
	done
	@for tbl in variable_memory varying_memory static_join multiway_join arm_study slow_cpu multi_query; do \
		REPRO_SCALE=$(SCALE) $(PYTHON) -m repro table $$tbl; echo; \
	done

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
