"""Process-pool execution of independent run cells.

The paper's figures are grids of independent (policy × memory × window ×
seed) runs; nothing in one cell depends on another.  This module fans
such grids over :class:`concurrent.futures.ProcessPoolExecutor` workers.

Determinism contract
--------------------
Every cell carries its own seed and all randomness inside a cell derives
from it (workload generation in the parent, policy RNGs from the cell's
seed), so the *results* of a grid are a pure function of its cells —
``workers=4`` returns exactly what ``workers=1`` returns, in the same
order.  The serial path (resolved worker count 1, or a single task) does
not touch the pool machinery at all and propagates exceptions raw, so it
is bit-identical to the pre-runtime code.

Worker selection
----------------
``resolve_workers`` combines the explicit ``workers`` argument with the
``REPRO_WORKERS`` environment variable:

* ``REPRO_WORKERS=0`` — global kill switch; everything runs serially no
  matter what the call site asked for (useful under debuggers, coverage,
  or platforms without working ``fork``/``spawn``);
* explicit ``workers`` — wins otherwise;
* ``REPRO_WORKERS=N`` (N > 0) — the default when the call site passed
  ``None``;
* neither — serial.

Failure surface
---------------
A cell that raises inside a worker does not bubble up as an opaque
``BrokenProcessPool``/pickled traceback: the worker shim captures the
exception and the parent re-raises a :class:`CellError` naming the
failed cell's label plus the worker-side traceback text.

Fault tolerance
---------------
``parallel_map(..., retry=RetryPolicy(...))`` turns one-shot dispatch
into supervised attempts: a failed cell is retried up to ``max_retries``
times with exponential backoff, an attempt exceeding ``timeout_s`` is
abandoned and counts as a failure (pooled mode only — a serial attempt
cannot be preempted), and the final :class:`CellError` carries the whole
attempt history.  ``fault_plan`` arms deterministic fault injection (see
:mod:`repro.runtime.faults`) around every attempt.  ``return_errors``
turns terminal failures into in-band :class:`CellError` results instead
of raising, which is how the shard layer degrades gracefully (merge the
survivors, attribute the loss).  None of this machinery is touched when
the three knobs are at their defaults — the plain path is byte-for-byte
the old one.

Supervised attempts dispatch one task per future (no chunking): retries
and timeouts are per-cell decisions, and the grids that want them are
shard fan-outs of a handful of cells, not thousand-cell sweeps.  An
abandoned (timed-out) attempt's worker is not killed — Python pools
cannot kill one member — so its slot stays busy until the attempt
returns on its own; its late result is discarded unless the cell is
still unresolved, in which case it is accepted (attempts are
deterministic, so any attempt's success is *the* result).
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..obs import telemetry as _telemetry
from ..obs.spans import SPAN_FINISH, SPAN_RETRY, SPAN_SUBMIT, SPAN_TIMEOUT
from . import faults as _faults

#: Environment variable steering the default worker count (see above).
ENV_WORKERS = "REPRO_WORKERS"


class CellError(RuntimeError):
    """One grid cell failed; names the cell and carries the traceback.

    ``attempts`` is the per-attempt history (oldest first) when the cell
    ran under a :class:`RetryPolicy`: one dict per failed attempt with
    ``attempt`` (1-based), ``error`` (exception type name), and
    ``message``.  Unsupervised failures leave it empty.
    """

    def __init__(
        self,
        label: str,
        exc_type: str,
        message: str,
        details: str = "",
        attempts: tuple = (),
    ) -> None:
        self.label = label
        self.exc_type = exc_type
        self.exc_message = message
        self.details = details
        self.attempts = tuple(attempts)
        text = f"run cell {label!r} failed: {exc_type}: {message}"
        if len(self.attempts) > 1:
            text += f" (after {len(self.attempts)} attempts)"
        if details:
            text += f"\n--- worker traceback ---\n{details.rstrip()}"
        super().__init__(text)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard :func:`parallel_map` fights for each cell.

    ``max_retries`` is the number of *re*-tries — every cell always gets
    one attempt, so 0 means fail-fast with attempt accounting.
    ``timeout_s`` bounds one attempt's wall clock, measured from dispatch
    (queue time included); ``None`` waits forever.  The delay before
    retry attempt ``k+1`` is ``backoff_s * backoff_factor ** (k - 1)``.
    """

    max_retries: int = 0
    timeout_s: Optional[float] = None
    backoff_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay_before(self, attempt: int) -> float:
        """Backoff before ``attempt`` (2-based; attempt 1 never waits)."""
        if attempt <= 1 or self.backoff_s == 0:
            return 0.0
        return self.backoff_s * self.backoff_factor ** (attempt - 2)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count for a grid (see module docstring)."""
    env = os.environ.get(ENV_WORKERS)
    env_value: Optional[int] = None
    if env is not None and env.strip():
        try:
            env_value = int(env)
        except ValueError as exc:
            raise ValueError(
                f"{ENV_WORKERS} must be an integer, got {env!r}"
            ) from exc
        if env_value < 0:
            raise ValueError(f"{ENV_WORKERS} must be >= 0, got {env_value}")
        if env_value == 0:
            return 1
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return workers
    if env_value is not None:
        return env_value
    return 1


def autotune_chunksize(task_count: int, workers: int) -> int:
    """Map chunk size for ``task_count`` cells over ``workers`` processes.

    Small grids get one task per dispatch so every worker stays busy;
    large grids get ~4 chunks per worker, enough slack for uneven cell
    runtimes while amortising the per-dispatch pickling.
    """
    return max(1, task_count // (workers * 4))


def _guarded(packed):
    """Top-level worker shim: never raises, returns a tagged outcome."""
    fn, task, label = packed
    try:
        return ("ok", fn(task))
    except Exception as exc:  # noqa: BLE001 - re-raised as CellError
        return ("err", label, type(exc).__name__, str(exc), traceback.format_exc())


def _guarded_attempt(packed):
    """Worker shim for one supervised attempt, with fault context armed.

    When the dispatch carries a :class:`~repro.obs.telemetry.TelemetryConfig`
    the telemetry context is armed too: the attempt's ``start`` span and
    heartbeats stream to its spool file, and a terminal exception is
    recorded (and the spool made durable) before the outcome returns.
    """
    fn, task, label, cell_faults, attempt, telemetry_cfg, cell = packed
    _faults.activate(cell_faults, attempt)
    if telemetry_cfg is not None:
        _telemetry.activate(
            telemetry_cfg, cell=cell, attempt=attempt, label=label
        )
    try:
        _faults.inject_dispatch()
        return ("ok", fn(task))
    except Exception as exc:  # noqa: BLE001 - recorded in attempt history
        _telemetry.record_failure(exc)
        return ("err", label, type(exc).__name__, str(exc), traceback.format_exc())
    finally:
        _telemetry.deactivate()
        _faults.deactivate()


def parallel_map(
    fn: Callable,
    tasks: Sequence,
    *,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan=None,
    return_errors: bool = False,
    attempts_out: Optional[list] = None,
    telemetry=None,
) -> list:
    """Map a picklable ``fn`` over ``tasks``, preserving input order.

    ``fn`` must be a module-level function and every task picklable (the
    cell types in :mod:`repro.runtime.cells` are).  ``labels`` name the
    cells for error reports; they default to ``cell[i]``.

    With a resolved worker count of 1 (or fewer than two tasks) this is
    a plain loop — no pool, no pickling, raw exceptions — so serial
    callers pay nothing and see exactly the pre-runtime behaviour.

    ``retry`` / ``fault_plan`` / ``return_errors`` switch to the
    supervised executor described in the module docstring; results (and
    their order) are unchanged for cells that succeed.  ``attempts_out``,
    when given a list, is filled with the per-cell attempt counts (1 for
    a first-try success), aligned with the results.

    ``telemetry`` takes a :class:`~repro.obs.telemetry.TelemetrySession`:
    the supervisor records submit/retry/timeout/finish spans on it and
    its worker config rides to every attempt, which spools start spans,
    heartbeats, and failures back (also a supervised mode — the plain
    path never sees it).
    """
    tasks = list(tasks)
    if labels is None:
        labels = [f"cell[{i}]" for i in range(len(tasks))]
    else:
        labels = [str(label) for label in labels]
        if len(labels) != len(tasks):
            raise ValueError(
                f"got {len(labels)} labels for {len(tasks)} tasks"
            )

    count = resolve_workers(workers)
    supervised = (
        retry is not None
        or fault_plan is not None
        or return_errors
        or telemetry is not None
    )
    if not supervised:
        # Undersubscribed grids (fewer cells than workers) run serially
        # too: the pool could not be saturated anyway, and spinning up
        # processes costs more than the lost overlap on tiny grids.
        if count <= 1 or len(tasks) <= 1 or len(tasks) < count:
            return [fn(task) for task in tasks]

        if chunksize is None:
            chunksize = autotune_chunksize(len(tasks), count)
        packed = [(fn, task, label) for task, label in zip(tasks, labels)]
        with ProcessPoolExecutor(max_workers=min(count, len(tasks))) as pool:
            outcomes = list(pool.map(_guarded, packed, chunksize=chunksize))

        results = []
        for outcome in outcomes:
            if outcome[0] == "err":
                _, label, exc_type, message, details = outcome
                raise CellError(label, exc_type, message, details)
            results.append(outcome[1])
        return results

    policy = retry if retry is not None else RetryPolicy()
    spans = telemetry.spans if telemetry is not None else None
    telemetry_cfg = telemetry.config if telemetry is not None else None
    if count <= 1 or len(tasks) <= 1:
        return _supervised_serial(
            fn, tasks, labels, policy, fault_plan, return_errors, attempts_out,
            spans, telemetry_cfg,
        )
    return _supervised_pooled(
        fn, tasks, labels, policy, fault_plan, return_errors, attempts_out,
        count, spans, telemetry_cfg,
    )


def _cell_faults(fault_plan, index: int) -> tuple:
    return fault_plan.for_cell(index) if fault_plan is not None else ()


def _supervised_serial(
    fn, tasks, labels, policy, fault_plan, return_errors, attempts_out,
    spans=None, telemetry_cfg=None,
):
    """In-process supervised attempts.

    Timeouts are not enforced here — a serial attempt cannot be
    preempted — but injection, retry, backoff, and accounting behave
    exactly as in pooled mode, so results stay worker-count-invariant.
    """
    results = []
    attempt_counts = []
    for index, (task, label) in enumerate(zip(tasks, labels)):
        cell_faults = _cell_faults(fault_plan, index)
        history: list[dict] = []
        last_details = ""
        final: object = None
        for attempt in range(1, policy.max_retries + 2):
            delay = policy.delay_before(attempt)
            if delay > 0:
                time.sleep(delay)
            if spans is not None:
                spans.emit(SPAN_SUBMIT, cell=index, attempt=attempt, label=label)
            outcome = _guarded_attempt(
                (fn, task, label, cell_faults, attempt, telemetry_cfg, index)
            )
            if outcome[0] == "ok":
                if spans is not None:
                    spans.emit(
                        SPAN_FINISH, cell=index, attempt=attempt, label=label
                    )
                final = outcome[1]
                attempt_counts.append(attempt)
                break
            history.append(
                {"attempt": attempt, "error": outcome[2], "message": outcome[3]}
            )
            last_details = outcome[4]
            if spans is not None and attempt <= policy.max_retries:
                spans.emit(
                    SPAN_RETRY, cell=index, attempt=attempt, label=label,
                    data={
                        "next_attempt": attempt + 1,
                        "delay_s": policy.delay_before(attempt + 1),
                    },
                )
        else:
            error = CellError(
                label,
                history[-1]["error"],
                history[-1]["message"],
                last_details,
                attempts=tuple(history),
            )
            if not return_errors:
                raise error
            final = error
            attempt_counts.append(len(history))
        results.append(final)
    if attempts_out is not None:
        attempts_out[:] = attempt_counts
    return results


def _supervised_pooled(
    fn, tasks, labels, policy, fault_plan, return_errors, attempts_out, count,
    spans=None, telemetry_cfg=None,
):
    """Submit-based executor with per-attempt timeout, backoff, retry."""
    n = len(tasks)
    results: list = [None] * n
    resolved = [False] * n
    histories: list[list[dict]] = [[] for _ in range(n)]
    last_details = [""] * n
    attempt_counts = [0] * n
    failures: dict[int, CellError] = {}
    pending: dict = {}  # future -> (index, attempt, deadline)
    delayed: list[tuple] = []  # (ready_time, index, attempt)

    pool = ProcessPoolExecutor(max_workers=min(count, n))

    def submit(index: int, attempt: int) -> None:
        if spans is not None:
            spans.emit(
                SPAN_SUBMIT, cell=index, attempt=attempt, label=labels[index]
            )
        future = pool.submit(
            _guarded_attempt,
            (fn, tasks[index], labels[index], _cell_faults(fault_plan, index),
             attempt, telemetry_cfg, index),
        )
        deadline = (
            time.monotonic() + policy.timeout_s
            if policy.timeout_s is not None
            else None
        )
        pending[future] = (index, attempt, deadline)

    def attempt_failed(index, attempt, exc_type, message, details) -> None:
        histories[index].append(
            {"attempt": attempt, "error": exc_type, "message": message}
        )
        last_details[index] = details
        if attempt <= policy.max_retries:
            delay = policy.delay_before(attempt + 1)
            if spans is not None:
                spans.emit(
                    SPAN_RETRY, cell=index, attempt=attempt,
                    label=labels[index],
                    data={"next_attempt": attempt + 1, "delay_s": delay},
                )
            ready = time.monotonic() + delay
            delayed.append((ready, index, attempt + 1))
        else:
            resolved[index] = True
            attempt_counts[index] = attempt
            failures[index] = CellError(
                labels[index],
                exc_type,
                message,
                last_details[index],
                attempts=tuple(histories[index]),
            )

    try:
        for index in range(n):
            submit(index, 1)

        while pending or delayed:
            now = time.monotonic()
            due = [entry for entry in delayed if entry[0] <= now]
            if due:
                delayed = [entry for entry in delayed if entry[0] > now]
                for _, index, attempt in sorted(due):
                    if not resolved[index]:
                        submit(index, attempt)
            if not pending:
                if delayed:
                    time.sleep(max(0.0, min(e[0] for e in delayed) - now))
                continue

            wait_timeout: Optional[float] = None
            horizons = [d for (_, _, d) in pending.values() if d is not None]
            horizons.extend(entry[0] for entry in delayed)
            if horizons:
                wait_timeout = max(0.0, min(horizons) - now)
            done, _ = wait(
                list(pending), timeout=wait_timeout, return_when=FIRST_COMPLETED
            )

            for future in done:
                index, attempt, _ = pending.pop(future)
                try:
                    outcome = future.result()
                except Exception as exc:  # noqa: BLE001 - pool-level failure
                    outcome = (
                        "err", labels[index], type(exc).__name__, str(exc),
                        traceback.format_exc(),
                    )
                if resolved[index]:
                    continue  # stale result of an abandoned attempt
                if outcome[0] == "ok":
                    if spans is not None:
                        spans.emit(
                            SPAN_FINISH, cell=index, attempt=attempt,
                            label=labels[index],
                        )
                    results[index] = outcome[1]
                    resolved[index] = True
                    attempt_counts[index] = attempt
                else:
                    attempt_failed(
                        index, attempt, outcome[2], outcome[3], outcome[4]
                    )

            now = time.monotonic()
            for future, (index, attempt, deadline) in list(pending.items()):
                if deadline is None or deadline > now:
                    continue
                pending.pop(future)
                future.cancel()  # no-op once running; frees queued ones
                if resolved[index]:
                    continue
                if spans is not None:
                    spans.emit(
                        SPAN_TIMEOUT, cell=index, attempt=attempt,
                        label=labels[index],
                        data={"timeout_s": policy.timeout_s},
                    )
                attempt_failed(
                    index,
                    attempt,
                    "TimeoutError",
                    f"attempt {attempt} exceeded {policy.timeout_s}s",
                    "",
                )
    finally:
        # Don't block on abandoned workers; queued futures are dropped.
        pool.shutdown(wait=False, cancel_futures=True)

    if failures and not return_errors:
        raise failures[min(failures)]
    for index, error in failures.items():
        results[index] = error
    if attempts_out is not None:
        attempts_out[:] = attempt_counts
    return results
