"""Process-pool execution of independent run cells.

The paper's figures are grids of independent (policy × memory × window ×
seed) runs; nothing in one cell depends on another.  This module fans
such grids over :class:`concurrent.futures.ProcessPoolExecutor` workers.

Determinism contract
--------------------
Every cell carries its own seed and all randomness inside a cell derives
from it (workload generation in the parent, policy RNGs from the cell's
seed), so the *results* of a grid are a pure function of its cells —
``workers=4`` returns exactly what ``workers=1`` returns, in the same
order.  The serial path (resolved worker count 1, or a single task) does
not touch the pool machinery at all and propagates exceptions raw, so it
is bit-identical to the pre-runtime code.

Worker selection
----------------
``resolve_workers`` combines the explicit ``workers`` argument with the
``REPRO_WORKERS`` environment variable:

* ``REPRO_WORKERS=0`` — global kill switch; everything runs serially no
  matter what the call site asked for (useful under debuggers, coverage,
  or platforms without working ``fork``/``spawn``);
* explicit ``workers`` — wins otherwise;
* ``REPRO_WORKERS=N`` (N > 0) — the default when the call site passed
  ``None``;
* neither — serial.

Failure surface
---------------
A cell that raises inside a worker does not bubble up as an opaque
``BrokenProcessPool``/pickled traceback: the worker shim captures the
exception and the parent re-raises a :class:`CellError` naming the
failed cell's label plus the worker-side traceback text.
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Optional, Sequence

#: Environment variable steering the default worker count (see above).
ENV_WORKERS = "REPRO_WORKERS"


class CellError(RuntimeError):
    """One grid cell failed; names the cell and carries the traceback."""

    def __init__(
        self, label: str, exc_type: str, message: str, details: str = ""
    ) -> None:
        self.label = label
        self.exc_type = exc_type
        self.exc_message = message
        self.details = details
        text = f"run cell {label!r} failed: {exc_type}: {message}"
        if details:
            text += f"\n--- worker traceback ---\n{details.rstrip()}"
        super().__init__(text)


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count for a grid (see module docstring)."""
    env = os.environ.get(ENV_WORKERS)
    env_value: Optional[int] = None
    if env is not None and env.strip():
        try:
            env_value = int(env)
        except ValueError as exc:
            raise ValueError(
                f"{ENV_WORKERS} must be an integer, got {env!r}"
            ) from exc
        if env_value < 0:
            raise ValueError(f"{ENV_WORKERS} must be >= 0, got {env_value}")
        if env_value == 0:
            return 1
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return workers
    if env_value is not None:
        return env_value
    return 1


def _guarded(packed):
    """Top-level worker shim: never raises, returns a tagged outcome."""
    fn, task, label = packed
    try:
        return ("ok", fn(task))
    except Exception as exc:  # noqa: BLE001 - re-raised as CellError
        return ("err", label, type(exc).__name__, str(exc), traceback.format_exc())


def parallel_map(
    fn: Callable,
    tasks: Sequence,
    *,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
) -> list:
    """Map a picklable ``fn`` over ``tasks``, preserving input order.

    ``fn`` must be a module-level function and every task picklable (the
    cell types in :mod:`repro.runtime.cells` are).  ``labels`` name the
    cells for error reports; they default to ``cell[i]``.

    With a resolved worker count of 1 (or fewer than two tasks) this is
    a plain loop — no pool, no pickling, raw exceptions — so serial
    callers pay nothing and see exactly the pre-runtime behaviour.
    """
    tasks = list(tasks)
    if labels is None:
        labels = [f"cell[{i}]" for i in range(len(tasks))]
    else:
        labels = [str(label) for label in labels]
        if len(labels) != len(tasks):
            raise ValueError(
                f"got {len(labels)} labels for {len(tasks)} tasks"
            )

    count = resolve_workers(workers)
    if count <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]

    if chunksize is None:
        # Small grids: one task per dispatch keeps all workers busy;
        # large grids: chunking amortises the per-dispatch pickling.
        chunksize = max(1, len(tasks) // (count * 4))
    packed = [(fn, task, label) for task, label in zip(tasks, labels)]
    with ProcessPoolExecutor(max_workers=min(count, len(tasks))) as pool:
        outcomes = list(pool.map(_guarded, packed, chunksize=chunksize))

    results = []
    for outcome in outcomes:
        if outcome[0] == "err":
            _, label, exc_type, message, details = outcome
            raise CellError(label, exc_type, message, details)
        results.append(outcome[1])
    return results
