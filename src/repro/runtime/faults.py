"""Deterministic fault injection for the parallel runtime.

Distributed stream joins must survive worker failure; this module makes
failure *reproducible* so the recovery paths (retry, checkpoint resume,
graceful degradation — see :mod:`repro.runtime.pool` and
:mod:`repro.runtime.checkpoint`) can be exercised under test and in the
chaos benchmark with bit-for-bit expected outcomes.

A :class:`FaultPlan` is a set of :class:`Fault` records, each naming a
grid cell (task index), an optional tick, a kind, and how many attempts
it afflicts:

* ``kind="kill"`` — raise :class:`InjectedFault` (the worker dies with a
  deterministic exception);
* ``kind="hang"`` — sleep ``delay_s`` (pair with a
  :class:`~repro.runtime.pool.RetryPolicy` timeout shorter than the
  sleep to simulate a wedged worker);
* ``kind="slow"`` — sleep ``delay_s`` (a straggler; completes normally).

``tick=None`` fires at dispatch, before the cell function runs;
``tick=T`` fires inside the engine's per-tick hook (see
``AsyncJoinEngine.run(on_tick=...)``), i.e. mid-run with real join state
on the floor.  ``attempts=N`` afflicts attempts 1..N, so ``attempts=1``
(the default) models a transient fault healed by one retry, and a large
value models a hard failure that exhausts retries.

Worker-side wiring
------------------
The plan rides into the worker inside the dispatch tuple; the pool shim
calls :func:`activate` / :func:`deactivate` around the cell function and
run loops call :func:`maybe_inject` once per tick.  With no active
context, ``maybe_inject`` is one global read and a ``None`` check — the
normal path pays nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "activate",
    "deactivate",
    "inject_dispatch",
    "is_active",
    "maybe_inject",
]

FAULT_KINDS = ("kill", "hang", "slow")


class InjectedFault(RuntimeError):
    """The deterministic failure raised by a ``kill`` fault."""


@dataclass(frozen=True)
class Fault:
    """One injected failure: which cell, when, what, how persistent."""

    kind: str
    cell: int
    tick: Optional[int] = None  # None: at dispatch, before the cell runs
    attempts: int = 1  # afflicts attempts 1..attempts
    delay_s: float = 0.05  # sleep length for hang/slow

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.cell < 0:
            raise ValueError(f"cell must be >= 0, got {self.cell}")
        if self.tick is not None and self.tick < 0:
            raise ValueError(f"tick must be >= 0, got {self.tick}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible set of faults over one grid dispatch."""

    faults: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise TypeError(f"not a Fault: {fault!r}")

    def for_cell(self, index: int) -> tuple:
        """The faults afflicting grid cell ``index`` (possibly empty)."""
        return tuple(f for f in self.faults if f.cell == index)

    def __bool__(self) -> bool:
        return bool(self.faults)

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        cells: int,
        ticks: int,
        kills: int = 1,
        attempts: int = 1,
    ) -> "FaultPlan":
        """Draw ``kills`` kill faults at random (cell, tick) coordinates.

        Deterministic in ``seed`` — the chaos benchmark and tests use
        this to place failures without hand-picking coordinates.
        """
        if cells < 1:
            raise ValueError(f"cells must be >= 1, got {cells}")
        if ticks < 1:
            raise ValueError(f"ticks must be >= 1, got {ticks}")
        rng = np.random.default_rng(seed)
        faults = tuple(
            Fault(
                "kill",
                cell=int(rng.integers(cells)),
                tick=int(rng.integers(ticks)),
                attempts=attempts,
            )
            for _ in range(kills)
        )
        return cls(faults)


# ----------------------------------------------------------------------
# worker-side context
# ----------------------------------------------------------------------

#: (faults afflicting the running cell, current attempt number) or None.
_ACTIVE: Optional[tuple] = None


def activate(cell_faults: Iterable[Fault], attempt: int) -> None:
    """Arm the context for one attempt of one cell (pool shim only)."""
    global _ACTIVE
    faults = tuple(cell_faults)
    _ACTIVE = (faults, attempt) if faults else None


def deactivate() -> None:
    """Disarm after the attempt finishes (success or failure)."""
    global _ACTIVE
    _ACTIVE = None


def is_active() -> bool:
    """Whether any fault afflicts the attempt currently running here."""
    return _ACTIVE is not None


def _fire(fault: Fault) -> None:
    if fault.kind == "kill":
        raise InjectedFault(
            f"injected kill (cell {fault.cell}"
            + (f", tick {fault.tick}" if fault.tick is not None else "")
            + ")"
        )
    time.sleep(fault.delay_s)


def _due(faults: Sequence[Fault], attempt: int, tick: Optional[int]):
    for fault in faults:
        if fault.tick == tick and attempt <= fault.attempts:
            yield fault


def inject_dispatch() -> None:
    """Fire dispatch-time faults (``tick=None``) of the active context."""
    if _ACTIVE is None:
        return
    faults, attempt = _ACTIVE
    for fault in _due(faults, attempt, None):
        _fire(fault)


def maybe_inject(tick: int) -> None:
    """Fire tick-scoped faults of the active context; no-op otherwise.

    Called once per engine tick from the checkpoint hook — *before* the
    tick is checkpointed, so a kill at tick T resumes from a checkpoint
    strictly older than T.
    """
    if _ACTIVE is None:
        return
    faults, attempt = _ACTIVE
    for fault in _due(faults, attempt, tick):
        _fire(fault)
