"""Parallel runtime: fan independent run cells over worker processes.

See :mod:`repro.runtime.pool` for the execution layer (worker
resolution, the determinism contract, error surfacing) and
:mod:`repro.runtime.cells` for the picklable task descriptions the
experiment drivers build.

The public knob everywhere is ``workers``: ``None`` defers to the
``REPRO_WORKERS`` environment variable (default serial), ``1`` forces
serial, ``N`` fans out over ``N`` processes.  Serial execution is
bit-identical to parallel execution by construction.
"""

from .cells import (
    AlgorithmCell,
    ShardCell,
    SpecCell,
    SuiteCell,
    run_algorithm_cell,
    run_shard_cell,
    run_spec_cell,
    run_suite_cell,
)
from .pool import ENV_WORKERS, CellError, parallel_map, resolve_workers

__all__ = [
    "AlgorithmCell",
    "CellError",
    "ENV_WORKERS",
    "ShardCell",
    "SpecCell",
    "SuiteCell",
    "parallel_map",
    "resolve_workers",
    "run_algorithm_cell",
    "run_shard_cell",
    "run_spec_cell",
    "run_suite_cell",
]
