"""Parallel runtime: fan independent run cells over worker processes.

See :mod:`repro.runtime.pool` for the execution layer (worker
resolution, the determinism contract, error surfacing, supervised
retry/timeout), :mod:`repro.runtime.cells` for the picklable task
descriptions the experiment drivers build,
:mod:`repro.runtime.faults` for deterministic fault injection, and
:mod:`repro.runtime.checkpoint` for shard-level checkpoint persistence.

The public knob everywhere is ``workers``: ``None`` defers to the
``REPRO_WORKERS`` environment variable (default serial), ``1`` forces
serial, ``N`` fans out over ``N`` processes.  Serial execution is
bit-identical to parallel execution by construction — including under
retries and injected faults.
"""

from . import faults
from .cells import (
    AlgorithmCell,
    ShardCell,
    SpecCell,
    SuiteCell,
    run_algorithm_cell,
    run_shard_cell,
    run_spec_cell,
    run_suite_cell,
)
from .checkpoint import CheckpointStore
from .faults import Fault, FaultPlan, InjectedFault
from .pool import (
    ENV_WORKERS,
    CellError,
    RetryPolicy,
    autotune_chunksize,
    parallel_map,
    resolve_workers,
)

__all__ = [
    "AlgorithmCell",
    "CellError",
    "CheckpointStore",
    "ENV_WORKERS",
    "Fault",
    "FaultPlan",
    "InjectedFault",
    "RetryPolicy",
    "ShardCell",
    "SpecCell",
    "SuiteCell",
    "autotune_chunksize",
    "faults",
    "parallel_map",
    "resolve_workers",
    "run_algorithm_cell",
    "run_shard_cell",
    "run_spec_cell",
    "run_suite_cell",
]
