"""Picklable run-cell descriptions and their worker entry points.

A *cell* is one independent unit of a figure/sweep grid: everything a
worker process needs to reproduce one run, as plain picklable data.
Workloads are generated in the parent and shipped inside the cell (the
sweep APIs accept arbitrary — often non-picklable — pair factories, and
shipping the pair also guarantees every worker sees byte-identical
input).  Estimators are rebuilt inside the worker from the pair's
metadata; :func:`repro.experiments.runner.estimators_for` is a pure
function of the pair, so the rebuild is exact.

Each cell type has a module-level ``run_*_cell`` function (pool workers
cannot pickle lambdas or methods).  Metrics: a worker cannot mutate the
parent's :class:`~repro.obs.MetricsRegistry`, so cells carry a
``with_metrics`` flag instead; the worker runs against a fresh registry,
the engine attaches its snapshot to the result, and the caller merges
the snapshots back via
:meth:`~repro.obs.MetricsRegistry.merge_snapshot`.  One visible
difference from serial runs: each result's snapshot then covers only its
own run, not the accumulated suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..streams.tuples import StreamPair


@dataclass(frozen=True)
class SpecCell:
    """One :class:`~repro.api.RunSpec` against a shared workload."""

    spec: object  # RunSpec; typed loosely to avoid an api<->runtime cycle
    pair: StreamPair

    @property
    def label(self) -> str:
        spec = self.spec
        return (
            f"{spec.algorithm}(w={spec.window},M={spec.memory},seed={spec.seed})"
        )


def run_spec_cell(cell: SpecCell):
    """Worker entry: run one spec cell end to end.

    ``workers=1`` keeps a sharded spec serial inside this worker —
    the grid is already fanned out; nesting pools would oversubscribe.
    """
    from ..api import run
    from ..experiments.runner import estimators_for

    return run(
        cell.spec,
        pair=cell.pair,
        estimators=estimators_for(cell.pair),
        workers=1,
    )


@dataclass(frozen=True)
class ShardCell:
    """One hash shard of a sharded run (see :mod:`repro.core.partition`).

    The spec carries the fault-tolerance posture too: with
    ``spec.checkpoint_every`` set (the api layer fills in
    ``spec.checkpoint_dir``), the worker checkpoints the shard
    periodically and a retry of this same cell resumes from the last
    checkpoint instead of replaying from tick 0.

    A source-driven spec (``spec.source`` set) ships no pair — the
    source rides inside the spec (sources are picklable by contract)
    and the worker filters it incrementally via
    :func:`repro.core.partition.shard_source`.
    """

    spec: object  # RunSpec; typed loosely to avoid an api<->runtime cycle
    pair: Optional[StreamPair]
    shard: int
    budget: int

    @property
    def label(self) -> str:
        spec = self.spec
        return (
            f"shard[{self.shard}/{spec.shards}] "
            f"{spec.algorithm}(w={spec.window},m={self.budget},seed={spec.seed})"
        )


def run_shard_cell(cell: ShardCell):
    """Worker entry: run one shard of a sharded spec.

    Stamps the telemetry context (when armed) with the shard index —
    the dispatcher only knows the cell index, and fleet views key rows
    by shard.
    """
    from ..api import _run_join_shard
    from ..obs import telemetry

    telemetry.annotate(shard=cell.shard)
    return _run_join_shard(cell.spec, cell.pair, cell.shard, cell.budget)


@dataclass(frozen=True)
class AlgorithmCell:
    """One named algorithm of a suite run (grid axis: algorithm)."""

    name: str
    pair: StreamPair
    window: int
    memory: int
    seed: int
    warmup: Optional[int] = None
    with_metrics: bool = False
    kwargs: dict = field(default_factory=dict)

    @property
    def label(self) -> str:
        return f"{self.name}(w={self.window},M={self.memory},seed={self.seed})"


def run_algorithm_cell(cell: AlgorithmCell):
    """Worker entry: run one algorithm cell, metrics into a fresh registry."""
    from ..experiments.runner import estimators_for, run_algorithm
    from ..obs import MetricsRegistry

    metrics = MetricsRegistry() if cell.with_metrics else None
    return run_algorithm(
        cell.name,
        cell.pair,
        cell.window,
        cell.memory,
        seed=cell.seed,
        warmup=cell.warmup,
        estimators=estimators_for(cell.pair),
        metrics=metrics,
        **cell.kwargs,
    )


@dataclass(frozen=True)
class SuiteCell:
    """One whole algorithm suite on one workload (grid axis: seed)."""

    algorithms: tuple
    pair: StreamPair
    window: int
    memory: int
    seed: int
    warmup: Optional[int] = None

    @property
    def label(self) -> str:
        return f"suite(w={self.window},M={self.memory},seed={self.seed})"


def run_suite_cell(cell: SuiteCell) -> dict[str, int]:
    """Worker entry: run one suite cell, return per-algorithm outputs.

    Only the headline output counts cross the process boundary — the
    seed-sweep aggregates need nothing else, and full results would
    pickle survival arrays per run.
    """
    from ..experiments.runner import run_suite

    results = run_suite(
        cell.algorithms,
        cell.pair,
        cell.window,
        cell.memory,
        seed=cell.seed,
        warmup=cell.warmup,
    )
    return {name: results[name].output_count for name in cell.algorithms}
