"""Shard-level checkpoint persistence for resumable runs.

A :class:`CheckpointStore` holds one checkpoint file per key (one key
per shard) under a root directory.  The payload wraps an engine
checkpoint (``AsyncJoinEngine.checkpoint()``) with the result-schema
version and a *fingerprint* — a string derived from the spec and shard
coordinates — so a stale file from a different run can never be resumed
into this one: on any mismatch :meth:`load` returns ``None`` and the
shard replays from tick 0, which is always correct, just slower.

Writes are atomic (temp file + ``os.replace``) so a worker killed
mid-save leaves the previous checkpoint intact.  Payloads are pickled:
join keys are arbitrary hashable objects and RNG states are numpy
structures — JSON would need a parallel encoding for no benefit, and
checkpoints are private scratch, not an interchange format.
"""

from __future__ import annotations

import os
import pickle
import re
import tempfile
import time
from pathlib import Path
from typing import Optional

from ..core.results import SCHEMA_VERSION
from ..obs import telemetry as _telemetry

__all__ = ["CheckpointStore"]

_KEY_RE = re.compile(r"[^A-Za-z0-9._-]+")


class CheckpointStore:
    """Atomic save/load/clear of checkpoint payloads under one directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        safe = _KEY_RE.sub("_", key)
        return self.root / f"{safe}.ckpt"

    def save(self, key: str, state: dict, *, fingerprint: str) -> Path:
        """Atomically persist ``state`` for ``key``.

        Under an armed telemetry context (see
        :mod:`repro.obs.telemetry`) the save and its wall-clock cost are
        recorded as a ``checkpoint_save`` span.
        """
        started = time.perf_counter()
        payload = {
            "schema_version": SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "state": state,
        }
        path = self.path_for(key)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        _telemetry.checkpoint_saved(
            time.perf_counter() - started, tick=state.get("tick"), key=key
        )
        return path

    def load(self, key: str, *, fingerprint: str) -> Optional[dict]:
        """The saved state for ``key``, or ``None`` when absent/unusable.

        Corrupt files, schema mismatches, and fingerprint mismatches all
        collapse to ``None`` — resuming from nothing is always safe.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema_version") != SCHEMA_VERSION:
            return None
        if payload.get("fingerprint") != fingerprint:
            return None
        state = payload.get("state")
        if isinstance(state, dict):
            _telemetry.checkpoint_restored(tick=state.get("tick"), key=key)
        return state

    def clear(self, key: str) -> None:
        """Drop ``key``'s checkpoint (after a successful run)."""
        try:
            self.path_for(key).unlink()
        except FileNotFoundError:
            pass
