"""Reservoir-sampling frequency estimation.

Keeps a uniform random sample of the stream in O(k) memory (Vitter's
algorithm R) and estimates key probabilities from sample frequencies.
Unlike Count-Min / Space-Saving, the reservoir is a *unbiased* snapshot
of the whole history, making it the natural bounded-memory estimator
when the distribution is stationary but the key universe is unknown.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np


class ReservoirSample:
    """Uniform sample of a stream with frequency estimates.

    Parameters
    ----------
    capacity:
        Sample size ``k``; estimates have standard error about
        ``sqrt(p (1-p) / k)``.
    seed:
        RNG seed (reproducible runs).
    """

    def __init__(self, capacity: int, *, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._rng = np.random.default_rng(seed)
        self._sample: list[Hashable] = []
        self._counts: dict[Hashable, int] = {}
        self._seen = 0

    def _replace(self, index: int, key: Hashable) -> None:
        old = self._sample[index]
        remaining = self._counts[old] - 1
        if remaining:
            self._counts[old] = remaining
        else:
            del self._counts[old]
        self._sample[index] = key
        self._counts[key] = self._counts.get(key, 0) + 1

    def observe(self, key: Hashable) -> None:
        self._seen += 1
        if len(self._sample) < self.capacity:
            self._sample.append(key)
            self._counts[key] = self._counts.get(key, 0) + 1
            return
        # Algorithm R: the new item displaces a uniform slot w.p. k/seen.
        slot = int(self._rng.integers(self._seen))
        if slot < self.capacity:
            self._replace(slot, key)

    def probability(self, key: Hashable) -> float:
        if not self._sample:
            return 0.0
        return self._counts.get(key, 0) / len(self._sample)

    def sample_count(self, key: Hashable) -> int:
        return self._counts.get(key, 0)

    @property
    def seen(self) -> int:
        """Stream length observed so far."""
        return self._seen

    def __len__(self) -> int:
        return len(self._sample)
