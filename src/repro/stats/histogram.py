"""Histograms over numeric join-attribute domains.

The modular architecture of Figure 1 exchanges *compact* distribution
summaries between queue and join memory (e.g. "just a histogram about the
frequencies of join attribute values in memory").  Equi-width histograms
serve streaming maintenance; equi-depth histograms summarise a relation
offline (as a sensor would transmit to its proxy in the static-join
scenario of Section 3.1).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, Sequence


class EquiWidthHistogram:
    """Fixed-bucket histogram over ``[low, high)`` supporting removal.

    Removal support matters because the join memory's histogram must track
    evictions and expirations, not only insertions.
    """

    def __init__(self, low: float, high: float, buckets: int) -> None:
        if buckets <= 0:
            raise ValueError(f"buckets must be positive, got {buckets}")
        if not low < high:
            raise ValueError(f"need low < high, got [{low}, {high})")
        self.low = float(low)
        self.high = float(high)
        self.buckets = buckets
        self._width = (self.high - self.low) / buckets
        self._counts = [0] * buckets
        self._total = 0

    def bucket_of(self, value: float) -> int:
        """Bucket index of a value (values are clamped to the range)."""
        if value < self.low:
            return 0
        if value >= self.high:
            return self.buckets - 1
        return min(int((value - self.low) / self._width), self.buckets - 1)

    def add(self, value: float) -> None:
        self._counts[self.bucket_of(value)] += 1
        self._total += 1

    def remove(self, value: float) -> None:
        bucket = self.bucket_of(value)
        if self._counts[bucket] <= 0:
            raise ValueError(f"remove from empty bucket {bucket} (value {value})")
        self._counts[bucket] -= 1
        self._total -= 1

    def observe(self, value: float) -> None:
        """Estimator-protocol alias for :meth:`add`."""
        self.add(value)

    def probability(self, value: float) -> float:
        """Estimated probability of the value's bucket, spread uniformly."""
        if self._total == 0:
            return 0.0
        return self._counts[self.bucket_of(value)] / self._total

    def counts(self) -> list[int]:
        return list(self._counts)

    @property
    def total(self) -> int:
        return self._total


class EquiDepthHistogram:
    """Quantile histogram built offline from a data sample.

    Bucket boundaries are chosen so each bucket holds (approximately) the
    same number of sample points; frequency estimates within a bucket are
    uniform.  This is the compact summary a power-constrained sensor can
    ship to its proxy in the static-join scenario.
    """

    def __init__(self, sample: Iterable[float], buckets: int) -> None:
        data = sorted(sample)
        if not data:
            raise ValueError("cannot build a histogram from an empty sample")
        if buckets <= 0:
            raise ValueError(f"buckets must be positive, got {buckets}")
        self.buckets = min(buckets, len(data))
        self._size = len(data)

        # Right boundaries of each bucket (the last is +inf conceptually).
        self._boundaries: list[float] = []
        self._counts: list[int] = []
        per_bucket = self._size / self.buckets
        start = 0
        for b in range(self.buckets):
            end = self._size if b == self.buckets - 1 else int(round((b + 1) * per_bucket))
            end = max(end, start + 1)
            end = min(end, self._size)
            self._boundaries.append(data[end - 1])
            self._counts.append(end - start)
            start = end
        self._low = data[0]

    def bucket_of(self, value: float) -> int:
        index = bisect_right(self._boundaries, value)
        return min(index, self.buckets - 1)

    def probability(self, value: float) -> float:
        """Estimated probability mass of the value's bucket."""
        if value < self._low or value > self._boundaries[-1]:
            return 0.0
        return self._counts[self.bucket_of(value)] / self._size

    def boundaries(self) -> Sequence[float]:
        return list(self._boundaries)

    def counts(self) -> Sequence[int]:
        return list(self._counts)

    @property
    def size(self) -> int:
        return self._size
