"""Statistics module (Figure 1 of the paper).

Frequency estimators feeding the semantic load-shedding policies:

* :class:`StaticFrequencyTable` — the paper's estimator (offline table);
* :class:`OnlineFrequencyCounter` — exact incremental counts;
* :class:`EwmaFrequencyEstimator` — decayed counts for shifting data;
* :class:`CountMinSketch`, :class:`SpaceSaving` — bounded-memory sketches;
* histograms for numeric domains and compact summaries.
"""

from .countmin import CountMinSketch
from .ewma import EwmaFrequencyEstimator
from .frequency import FrequencyEstimator, OnlineFrequencyCounter, StaticFrequencyTable
from .histogram import EquiDepthHistogram, EquiWidthHistogram
from .quantiles import GKQuantileSummary
from .reservoir import ReservoirSample
from .spacesaving import SpaceSaving

__all__ = [
    "CountMinSketch",
    "EquiDepthHistogram",
    "EquiWidthHistogram",
    "EwmaFrequencyEstimator",
    "FrequencyEstimator",
    "GKQuantileSummary",
    "OnlineFrequencyCounter",
    "ReservoirSample",
    "SpaceSaving",
    "StaticFrequencyTable",
]
