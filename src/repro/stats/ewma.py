"""Exponentially decayed frequency estimation.

Tracks arrival probabilities under distribution shift: each observation
multiplies all existing weights by ``1 - alpha`` and adds ``alpha`` to the
observed key, so the estimate is an exponentially weighted moving average
of the key's indicator sequence.  Decay is applied lazily per key, making
``observe`` and ``probability`` O(1).
"""

from __future__ import annotations

from typing import Hashable


class EwmaFrequencyEstimator:
    """EWMA of per-key arrival indicators.

    Parameters
    ----------
    alpha:
        Smoothing factor in (0, 1]; larger adapts faster.  The effective
        history length is about ``1 / alpha`` arrivals.
    """

    def __init__(self, alpha: float) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self._alpha = alpha
        self._log_keep = None if alpha == 1.0 else (1.0 - alpha)
        # key -> (weight at time of last update, update step)
        self._weights: dict[Hashable, tuple[float, int]] = {}
        self._step = 0

    def _current_weight(self, key: Hashable) -> float:
        entry = self._weights.get(key)
        if entry is None:
            return 0.0
        weight, updated_at = entry
        if self._log_keep is None:
            return weight if updated_at == self._step else 0.0
        return weight * (self._log_keep ** (self._step - updated_at))

    def observe(self, key: Hashable) -> None:
        self._step += 1
        decayed = self._current_weight(key)
        self._weights[key] = (decayed + self._alpha, self._step)

    def probability(self, key: Hashable) -> float:
        """EWMA estimate of the key's arrival probability.

        Weights sum to ``1 - (1 - alpha)^step`` across all keys, so the
        estimate is normalised by that closed form instead of a scan.
        """
        if self._step == 0:
            return 0.0
        if self._log_keep is None:
            total = 1.0
        else:
            total = 1.0 - self._log_keep**self._step
        if total <= 0.0:
            return 0.0
        return self._current_weight(key) / total

    @property
    def steps(self) -> int:
        return self._step

    def __len__(self) -> int:
        return len(self._weights)
