"""Space-Saving heavy-hitter frequency estimation.

Keeps at most ``capacity`` counters; every key with true frequency above
``total / capacity`` is guaranteed to be tracked, and estimates overcount
by at most the smallest tracked count.  Because PROB only needs to *rank*
keys by frequency — and only frequent keys are worth retaining — a small
Space-Saving summary is an effective bounded-memory statistics module.
"""

from __future__ import annotations

from typing import Hashable


class SpaceSaving:
    """Metwally et al.'s Space-Saving algorithm (a Misra-Gries variant)."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._counts: dict[Hashable, int] = {}
        self._errors: dict[Hashable, int] = {}
        self._total = 0

    def observe(self, key: Hashable) -> None:
        self._total += 1
        if key in self._counts:
            self._counts[key] += 1
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = 1
            self._errors[key] = 0
            return
        # Evict the minimum counter and inherit its count as error bound.
        victim = min(self._counts, key=self._counts.__getitem__)
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + 1
        self._errors[key] = floor

    def estimate(self, key: Hashable) -> int:
        """Estimated count (an overcount by at most ``error(key)``)."""
        return self._counts.get(key, 0)

    def error(self, key: Hashable) -> int:
        """Upper bound on the overcount of ``estimate(key)``."""
        return self._errors.get(key, 0)

    def guaranteed_count(self, key: Hashable) -> int:
        """Lower bound on the true count."""
        return self.estimate(key) - self.error(key)

    def probability(self, key: Hashable) -> float:
        if self._total == 0:
            return 0.0
        return self.estimate(key) / self._total

    def heavy_hitters(self, threshold: float) -> dict[Hashable, int]:
        """Keys whose *guaranteed* frequency exceeds ``threshold``."""
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        floor = threshold * self._total
        return {
            key: count
            for key, count in self._counts.items()
            if count - self._errors[key] > floor
        }

    @property
    def total(self) -> int:
        return self._total

    def __len__(self) -> int:
        return len(self._counts)
