"""Greenwald-Khanna ε-approximate quantile summary.

The paper's related work (Section 5, [14] Greenwald & Khanna) lists
space-efficient online quantile computation among the stream statistics
a join-approximation system can maintain.  This structure answers any
quantile query over the stream seen so far with rank error at most
``epsilon * n`` using ``O((1/epsilon) log(epsilon n))`` tuples of state.

Within this library it backs equi-depth summaries of numeric join
attributes when the data cannot be buffered (the sensor scenario of
Section 3.1 with numeric keys).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass


@dataclass
class _Tuple:
    """One GK summary entry ``(v, g, delta)``.

    ``g`` is the gap in minimum rank to the previous entry; ``delta`` the
    uncertainty of this entry's rank.
    """

    value: float
    g: int
    delta: int


class GKQuantileSummary:
    """Greenwald-Khanna summary with ε rank guarantees.

    Parameters
    ----------
    epsilon:
        Target rank accuracy in (0, 1): a query for quantile ``q``
        returns a value whose rank is within ``epsilon * n`` of
        ``q * n``.
    """

    def __init__(self, epsilon: float) -> None:
        if not 0.0 < epsilon < 1.0:
            raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
        self.epsilon = epsilon
        self._entries: list[_Tuple] = []
        self._count = 0

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Insert one observation (O(log s) search + amortised compress)."""
        self._count += 1
        entries = self._entries
        threshold = self._threshold()

        index = bisect_right([e.value for e in entries], value)
        if index == 0 or index == len(entries):
            # New minimum or maximum is always exact.
            entries.insert(index, _Tuple(value, 1, 0))
        else:
            delta = max(0, int(threshold) - 1)
            entries.insert(index, _Tuple(value, 1, delta))

        # Compress periodically (every 1/(2 epsilon) inserts suffices).
        if self._count % max(int(1.0 / (2.0 * self.epsilon)), 1) == 0:
            self._compress()

    def _threshold(self) -> float:
        return 2.0 * self.epsilon * self._count

    def _compress(self) -> None:
        """Merge adjacent entries whose combined band fits the threshold."""
        entries = self._entries
        if len(entries) < 3:
            return
        threshold = self._threshold()
        merged: list[_Tuple] = [entries[0]]
        for entry in entries[1:-1]:
            last = merged[-1]
            if last is not entries[0] and last.g + entry.g + entry.delta <= threshold:
                # Absorb `last` into `entry` (standard GK merge direction).
                entry.g += last.g
                merged[-1] = entry
            else:
                merged.append(entry)
        merged.append(entries[-1])
        self._entries = merged

    # ------------------------------------------------------------------
    def query(self, quantile: float) -> float:
        """A value whose rank is within ``epsilon * n`` of the quantile.

        Raises
        ------
        ValueError
            For an empty summary or a quantile outside [0, 1].
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        if not self._entries:
            raise ValueError("summary is empty")

        target = max(1, math.ceil(quantile * self._count))
        allowed = self.epsilon * self._count
        min_rank = 0
        for entry in self._entries:
            min_rank += entry.g
            max_rank = min_rank + entry.delta
            if target - allowed <= min_rank and max_rank <= target + allowed:
                return entry.value
        return self._entries[-1].value  # pragma: no cover - invariant guard

    def rank_bounds(self, value: float) -> tuple[int, int]:
        """(lowest, highest) possible rank of ``value`` in the stream."""
        min_rank = 0
        low, high = 0, 0
        for entry in self._entries:
            min_rank += entry.g
            if entry.value <= value:
                low = min_rank
                high = min_rank + entry.delta
        return low, high

    @property
    def count(self) -> int:
        return self._count

    def __len__(self) -> int:
        """Entries held — the summary's space usage."""
        return len(self._entries)

    def space_bound(self) -> int:
        """The theoretical O((1/eps) log(eps n)) size, for monitoring."""
        if self._count == 0:
            return 1
        return max(
            1,
            math.ceil(
                (11.0 / (2.0 * self.epsilon))
                * math.log(max(2.0 * self.epsilon * self._count, math.e))
            ),
        )
