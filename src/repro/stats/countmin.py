"""Count-Min sketch frequency estimation.

The paper notes that when the history statistics cannot be kept exactly,
"any of the previously proposed data stream histograms or wavelets" can
feed the heuristics.  The Count-Min sketch is the standard bounded-memory
choice: estimates overcount by at most ``eps * N`` with probability
``1 - delta`` using ``ceil(e / eps) * ceil(ln(1 / delta))`` counters.
"""

from __future__ import annotations

import math
from typing import Hashable

_PRIME = (1 << 61) - 1  # Mersenne prime for universal hashing


class CountMinSketch:
    """Count-Min sketch with optional conservative update.

    Parameters
    ----------
    width:
        Counters per row (error scales as total/width).
    depth:
        Number of hash rows (failure probability scales as exp(-depth)).
    seed:
        Seeds the pairwise-independent hash functions.
    conservative:
        When True, uses conservative update (only raise the minimal
        counters), which tightens estimates at no asymptotic cost.
    """

    def __init__(
        self, width: int, depth: int, *, seed: int = 0, conservative: bool = False
    ) -> None:
        if width <= 0 or depth <= 0:
            raise ValueError(f"width and depth must be positive, got {width}, {depth}")
        self.width = width
        self.depth = depth
        self.conservative = conservative
        self._table = [[0] * width for _ in range(depth)]
        self._total = 0

        import random

        gen = random.Random(seed)
        self._hash_a = [gen.randrange(1, _PRIME) for _ in range(depth)]
        self._hash_b = [gen.randrange(0, _PRIME) for _ in range(depth)]

    @classmethod
    def from_error_bounds(
        cls, epsilon: float, delta: float, *, seed: int = 0, conservative: bool = False
    ) -> "CountMinSketch":
        """Size the sketch for additive error ``epsilon * N`` w.p. 1-delta."""
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise ValueError("epsilon and delta must be in (0, 1)")
        width = math.ceil(math.e / epsilon)
        depth = math.ceil(math.log(1.0 / delta))
        return cls(width, depth, seed=seed, conservative=conservative)

    def _buckets(self, key: Hashable) -> list[int]:
        h = hash(key) & ((1 << 61) - 1)
        return [
            ((a * h + b) % _PRIME) % self.width
            for a, b in zip(self._hash_a, self._hash_b)
        ]

    def observe(self, key: Hashable) -> None:
        buckets = self._buckets(key)
        self._total += 1
        if self.conservative:
            current = min(self._table[row][col] for row, col in enumerate(buckets))
            target = current + 1
            for row, col in enumerate(buckets):
                if self._table[row][col] < target:
                    self._table[row][col] = target
        else:
            for row, col in enumerate(buckets):
                self._table[row][col] += 1

    def estimate(self, key: Hashable) -> int:
        """Estimated count of ``key`` (never an undercount)."""
        if self._total == 0:
            return 0
        return min(self._table[row][col] for row, col in enumerate(self._buckets(key)))

    def probability(self, key: Hashable) -> float:
        if self._total == 0:
            return 0.0
        return self.estimate(key) / self._total

    @property
    def total(self) -> int:
        return self._total

    def memory_counters(self) -> int:
        """Number of counters held (the sketch's space budget)."""
        return self.width * self.depth
