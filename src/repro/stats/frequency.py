"""Frequency estimators driving the semantic shedding heuristics.

The PROB and LIFE policies rank tuples by the probability that a matching
partner arrives on the *other* stream.  The paper computes these
probabilities from a frequency table of the data values ("the frequency
tables were not updated as the relations were streaming by"), and notes
that any online histogram/sketch could substitute.  This module provides
the estimator interface plus the two exact estimators; sketch-based
implementations live in :mod:`repro.stats.countmin` and
:mod:`repro.stats.spacesaving`.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Protocol, runtime_checkable


@runtime_checkable
class FrequencyEstimator(Protocol):
    """Estimates the arrival probability of join-attribute values.

    ``observe`` feeds one arrival; ``probability`` returns the estimated
    chance that the *next* arrival carries the given key.  Estimators that
    are static (built offline, like the paper's) implement ``observe`` as
    a no-op.
    """

    def observe(self, key: Hashable) -> None:  # pragma: no cover - protocol
        ...

    def probability(self, key: Hashable) -> float:  # pragma: no cover - protocol
        ...


class StaticFrequencyTable:
    """Fixed value-probability table (the paper's estimator).

    Built from the true generating distribution (synthetic workloads) or
    from an offline frequency scan of the dataset (the weather workload);
    never updated *by the stream*, exactly as in Section 4.5.  A caller
    may still :meth:`update` the table wholesale (e.g. re-baselining
    from a drift detector); consumers that cache derived views — the
    PROB/LIFE partner-probability tables — :meth:`subscribe` to be
    rebuilt when that happens.
    """

    def __init__(self, probabilities: Mapping[Hashable, float]) -> None:
        self._listeners: list = []
        self._version = 0
        self._probabilities = self._normalized(probabilities)

    @staticmethod
    def _normalized(probabilities: Mapping[Hashable, float]) -> dict:
        total = float(sum(probabilities.values()))
        if total <= 0:
            raise ValueError("probability table must have positive total mass")
        bad = [k for k, p in probabilities.items() if p < 0]
        if bad:
            raise ValueError(f"negative probabilities for keys {bad[:5]}")
        return {k: p / total for k, p in probabilities.items()}

    @classmethod
    def from_stream(cls, keys: Iterable[Hashable]) -> "StaticFrequencyTable":
        """Build from a full pass over a finite stream."""
        counts: dict[Hashable, int] = {}
        for key in keys:
            counts[key] = counts.get(key, 0) + 1
        if not counts:
            raise ValueError("cannot build a frequency table from an empty stream")
        return cls(counts)

    @classmethod
    def from_array(cls, probabilities) -> "StaticFrequencyTable":
        """Build from a dense array where index = key."""
        return cls({key: float(p) for key, p in enumerate(probabilities)})

    def observe(self, key: Hashable) -> None:
        """No-op: the table is static by design."""

    def probability(self, key: Hashable) -> float:
        return self._probabilities.get(key, 0.0)

    def as_dict(self) -> dict[Hashable, float]:
        return dict(self._probabilities)

    @property
    def version(self) -> int:
        """Bumped by every :meth:`update`; lets caches detect staleness."""
        return self._version

    def subscribe(self, listener) -> None:
        """Call ``listener()`` after every wholesale :meth:`update`."""
        self._listeners.append(listener)

    def update(self, probabilities: Mapping[Hashable, float]) -> None:
        """Replace the table (same validation/normalization as __init__)
        and notify subscribers so derived caches rebuild."""
        self._probabilities = self._normalized(probabilities)
        self._version += 1
        for listener in self._listeners:
            listener()

    def __len__(self) -> int:
        return len(self._probabilities)


class OnlineFrequencyCounter:
    """Exact incremental frequency counter with Laplace smoothing.

    Suitable when the history fits in memory and the distribution is
    stationary; for shifting distributions prefer
    :class:`repro.stats.ewma.EwmaFrequencyEstimator`.

    ``smoothing`` adds a pseudo-count to every queried key so unseen keys
    get a small non-zero probability (relevant early in the stream).
    """

    def __init__(self, *, smoothing: float = 0.0) -> None:
        if smoothing < 0:
            raise ValueError(f"smoothing must be non-negative, got {smoothing}")
        self._counts: dict[Hashable, int] = {}
        self._total = 0
        self._smoothing = smoothing

    def observe(self, key: Hashable) -> None:
        self._counts[key] = self._counts.get(key, 0) + 1
        self._total += 1

    def probability(self, key: Hashable) -> float:
        if self._total == 0:
            return 0.0
        numerator = self._counts.get(key, 0) + self._smoothing
        denominator = self._total + self._smoothing * max(len(self._counts), 1)
        return numerator / denominator

    def count(self, key: Hashable) -> int:
        return self._counts.get(key, 0)

    @property
    def total(self) -> int:
        return self._total

    def __len__(self) -> int:
        return len(self._counts)
