"""Unified public run API.

One :class:`RunSpec` describes a complete experiment — workload, join
parameters, which engine simulates it, fault-tolerance posture, and
whether to collect metrics — and one entry point consumes it:

* :func:`run` — run the spec end to end: OPT/OPTV dispatch to the
  offline bound, ``shards > 1`` to the fault-tolerant sharded runtime,
  everything else to the selected engine.  All paths share the unified
  result surface (``output_count``,
  :meth:`~repro.core.results.BaseRunResult.drop_breakdown`,
  :meth:`~repro.core.results.BaseRunResult.summary`, an attached
  ``metrics`` snapshot when requested);
* :func:`compare` — run several specs on one shared workload;
* :func:`optimal_offline` — the OPT/OPTV offline bound for the spec.

:func:`run_join` and :func:`run_sharded` remain as thin deprecated
aliases of :func:`run` (see DESIGN.md for the deprecation policy).

Example::

    from repro.api import RunSpec, run, optimal_offline

    spec = RunSpec(algorithm="PROB", window=100, memory=50, length=2000)
    result = run(spec)
    bound = optimal_offline(spec)
    print(result.output_count / bound.output_count)

The CLI (``repro run`` / ``repro compare``) and the example scripts are
thin layers over these functions.
"""

from __future__ import annotations

import tempfile
import warnings
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Union

from .core.async_engine import AsyncEngineConfig, AsyncJoinEngine
from .core.engine import EngineConfig, JoinEngine
from .core.offline.opt import OptResult, solve_opt
from .core.policies import make_policy_spec
from .core.results import SCHEMA_VERSION
from .core.slowcpu import SlowCpuConfig, SlowCpuEngine
from .experiments.runner import ALL_ALGORITHMS, estimators_for
from .obs import MetricsRegistry, RingBufferSink, Tracer
from .stats.countmin import CountMinSketch
from .stats.ewma import EwmaFrequencyEstimator
from .stats.frequency import StaticFrequencyTable
from .stats.spacesaving import SpaceSaving
from .streams import StreamPair, uniform_pair, weather_pair, zipf_pair
from .streams.sources import PairSource

__all__ = [
    "ENGINES",
    "ESTIMATORS",
    "WORKLOADS",
    "RunSpec",
    "attribute_run",
    "build_pair",
    "compare",
    "optimal_offline",
    "run",
    "run_join",
    "run_sharded",
]

ENGINES = ("fast", "async", "slowcpu")
WORKLOADS = ("zipf", "uniform", "weather")
#: Statistics modules feeding PROB/LIFE: the paper's static oracle table
#: plus the online bounded-memory estimators (updated as streams flow).
ESTIMATORS = ("oracle", "ewma", "countmin", "spacesaving")
#: Algorithms whose policies consume a statistics module at all.
_ESTIMATOR_ALGORITHMS = ("PROB", "PROBV", "LIFE", "LIFEV", "ARM", "ARMV")


@dataclass(frozen=True)
class RunSpec:
    """Everything one run needs, in one place.

    Workload fields (``workload`` .. ``correlation``) describe the input
    streams; join fields (``window`` .. ``warmup``) the operator; the
    ``engine`` field selects the simulator (``"fast"`` — the paper's
    integrated fast-CPU model, ``"async"`` — bursty per-tick batches,
    ``"slowcpu"`` — the modular queue-fronted model, which also uses the
    ``service_per_tick`` / ``queue_capacity`` / ``queue_policy`` knobs).
    ``metrics=True`` collects an observability snapshot into the result;
    ``trace=True`` records the full tuple lifecycle (arrive / admit /
    evict / expire / join_output / drop) into ``result.trace`` via a
    bounded ring buffer of ``trace_capacity`` events.  Both default off
    and cost nothing when off (the engines collapse them to ``None``).

    ``batch_size=N`` (fast engine only) enables the columnar micro-batch
    fast path: the workload is encoded into struct-of-arrays chunks and
    eligible runs execute chunk-at-a-time — EXACT via count arithmetic,
    and RAND/PROB/LIFE with static probability tables via the vectorized
    policy lanes (``repro.core.batched_policies``).  The batcher is
    adaptive: any option that needs tuple granularity (``trace=True``,
    ARM/FIFO or estimator-updating policies, schedules) falls back to
    the per-tuple path, and results are bit-identical either way —
    output, drop ledger, survival, and metrics.  Sharded runs batch
    natively per tick regardless of this knob (see
    ``docs/architecture.md``, "Batched execution").

    ``shards=N`` (fast engine only) hash-partitions the key domain into
    ``N`` independent sub-joins executed via
    :mod:`repro.core.partition` and merged deterministically: EXACT is
    provably identical to the unsharded run, the shedding policies
    become a documented approximation variant whose result depends on
    ``N`` but never on the worker count.  ``shard_weighted=True`` splits
    the memory budget by per-shard arrival mass instead of evenly.

    Fault tolerance (sharded runs only — an unsharded run has no cells
    to supervise): ``max_retries`` re-runs a failed shard with
    exponential backoff; ``timeout_s`` bounds one attempt's wall clock
    (enforced when shards run in worker processes); ``checkpoint_every=k``
    checkpoints each shard's join state every ``k`` ticks so a retry
    resumes instead of replaying from tick 0 (``checkpoint_dir`` persists
    the checkpoints at a caller-chosen path, e.g. to resume across
    processes; the default is a run-private temp directory);
    ``degrade=True`` merges the surviving shards when a shard exhausts
    its retries and attributes the loss under the ``lost_shard`` drop
    reason instead of failing the run.

    ``source=`` replaces the workload fields with a pull-based
    :class:`~repro.streams.sources.Source` (generator, replay, or
    adapted pair): the run consumes it *incrementally* through the
    engines' ``run_stream`` path, so memory stays bounded by the
    window/budget — never by stream length.  ``duration=N`` bounds the
    run at ``N`` ticks (mandatory for unbounded sources).  Incompatible
    with the materialized-pair-only machinery: the slow-CPU engine, the
    OPT bound, and the checkpoint / degrade / weighted-shard fault knobs
    (plain sharding, retries, telemetry, and the columnar ``batch_size``
    lanes all work — unit-rate sources are chunked incrementally, so
    memory stays bounded even when batched).

    ``estimator=`` picks the statistics module feeding PROB/LIFE:
    ``"oracle"`` (default) is the paper's static table (true generating
    distribution, or an offline frequency scan); ``"ewma"``,
    ``"countmin"``, and ``"spacesaving"`` are *online* bounded-memory
    estimators updated from the live arrivals — the paper's "any online
    histogram or sketch could substitute" remark, realised.  For a
    drifting source the oracle is deliberately *stale* (phase-0
    distributions), which is exactly what the online estimators beat.
    ``estimator_alpha`` tunes the EWMA smoothing factor (default
    ``2 / (window + 1)``).

    ``telemetry=True`` (sharded runs only) arms the cross-process
    telemetry plane: the supervisor records task-lifecycle spans
    (submit / retry / timeout / finish / merge / degrade), every worker
    attempt spools start/heartbeat/checkpoint/fault events back through
    crash-safe JSONL files, and the merged global timeline lands on
    ``result.timeline`` (see :mod:`repro.obs.spans`).  ``heartbeat_every``
    sets the tick interval between worker heartbeats; ``telemetry_dir``
    keeps the spool files at a caller-chosen path (default: a
    run-private temp directory, deleted after the merge).
    """

    algorithm: str = "PROB"
    window: int = 100
    memory: int = 50
    warmup: Optional[int] = None
    variable: Optional[bool] = None  # default: inferred from a trailing "V"
    seed: int = 0

    workload: str = "zipf"
    length: int = 2000
    domain: int = 50
    skew: float = 1.0
    skew_s: Optional[float] = None
    correlation: str = "uncorrelated"

    source: Optional[object] = None
    duration: Optional[int] = None
    estimator: str = "oracle"
    estimator_alpha: Optional[float] = None

    engine: str = "fast"
    batch_size: Optional[int] = None
    service_per_tick: int = 2
    queue_capacity: int = 64
    queue_policy: str = "tail"

    metrics: bool = False
    trace: bool = False
    trace_capacity: int = 1 << 20

    shards: int = 1
    shard_weighted: bool = False

    max_retries: int = 0
    timeout_s: Optional[float] = None
    checkpoint_every: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    degrade: bool = False

    telemetry: bool = False
    telemetry_dir: Optional[str] = None
    heartbeat_every: int = 16

    def __post_init__(self) -> None:
        name = self.algorithm.upper()
        if name != self.algorithm:
            object.__setattr__(self, "algorithm", name)
        if name not in ALL_ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; choose from {ALL_ALGORITHMS}"
            )
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"workload must be one of {WORKLOADS}, got {self.workload!r}"
            )
        if self.variable is None:
            object.__setattr__(self, "variable", name.endswith("V") and name != "V")
        if self.batch_size is not None:
            if self.batch_size < 1:
                raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
            if self.engine != "fast":
                raise ValueError(
                    "batch_size applies to the fast-CPU engine (the async "
                    "engine batches natively per tick; the slow-CPU model "
                    f"sheds at the queue), got engine={self.engine!r}"
                )
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shards > 1:
            if name in ("OPT", "OPTV"):
                raise ValueError("the offline OPT bound cannot be sharded")
            if self.engine != "fast":
                raise ValueError(
                    "sharded execution only applies to the fast-CPU model "
                    f"(engine='fast'), got engine={self.engine!r}"
                )
            if self.trace:
                raise ValueError(
                    "tracing is not supported with sharded execution "
                    "(per-shard event streams have no global order)"
                )
        if self.estimator not in ESTIMATORS:
            raise ValueError(
                f"estimator must be one of {ESTIMATORS}, got {self.estimator!r}"
            )
        if self.estimator != "oracle" and name not in (
            "PROB", "PROBV", "LIFE", "LIFEV"
        ):
            raise ValueError(
                "online estimators drive the PROB/LIFE heuristics only; "
                f"got estimator={self.estimator!r} with algorithm={name!r}"
            )
        if self.estimator_alpha is not None:
            if self.estimator != "ewma":
                raise ValueError("estimator_alpha applies to estimator='ewma'")
            if not 0.0 < self.estimator_alpha <= 1.0:
                raise ValueError(
                    f"estimator_alpha must be in (0, 1], got {self.estimator_alpha}"
                )
        if self.duration is not None:
            if self.source is None:
                raise ValueError("duration requires a source")
            if self.duration < 1:
                raise ValueError(f"duration must be >= 1, got {self.duration}")
        if self.source is not None:
            if name in ("OPT", "OPTV"):
                raise ValueError(
                    "the offline OPT bound needs the materialized pair; "
                    "it cannot consume a source"
                )
            if self.engine == "slowcpu":
                raise ValueError(
                    "sources run on the fast/async engines "
                    "(the slow-CPU model replays materialized pairs)"
                )
            for knob, is_set in (
                ("shard_weighted", self.shard_weighted),
                ("checkpoint_every", self.checkpoint_every is not None),
                ("degrade", self.degrade),
            ):
                if is_set:
                    raise ValueError(
                        f"{knob} needs a full pass over the materialized "
                        "pair and cannot be combined with a source"
                    )
            # An unbounded source also needs duration=N *or* a stop()
            # callback; that check lives in run(), which sees both.
        # Fault-tolerance knobs: the one shared validator every surface
        # (API, CLI run/compare/sweep) funnels through.
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {self.timeout_s}")
        if self.checkpoint_every is not None and self.checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.checkpoint_every}"
            )
        if self.checkpoint_dir is not None and self.checkpoint_every is None:
            raise ValueError("checkpoint_dir requires checkpoint_every")
        if self.heartbeat_every < 1:
            raise ValueError(
                f"heartbeat_every must be >= 1, got {self.heartbeat_every}"
            )
        if self.telemetry_dir is not None and not self.telemetry:
            raise ValueError("telemetry_dir requires telemetry")
        if self.shards < 2:
            for knob, is_set in (
                ("max_retries", self.max_retries != 0),
                ("timeout_s", self.timeout_s is not None),
                ("checkpoint_every", self.checkpoint_every is not None),
                ("degrade", self.degrade),
                ("telemetry", self.telemetry),
            ):
                if is_set:
                    raise ValueError(
                        f"{knob} requires sharded execution (shards > 1); "
                        "an unsharded run has no cells to supervise"
                    )

    @property
    def effective_warmup(self) -> int:
        return self.warmup if self.warmup is not None else 2 * self.window

    @property
    def effective_memory(self) -> int:
        """EXACT always gets the lossless budget of ``2 * window``."""
        return 2 * self.window if self.algorithm == "EXACT" else self.memory


def build_pair(spec: RunSpec) -> StreamPair:
    """Generate the spec's input streams."""
    if spec.workload == "weather":
        return weather_pair(spec.length, seed=spec.seed)
    if spec.workload == "uniform":
        return uniform_pair(spec.length, spec.domain, seed=spec.seed)
    return zipf_pair(
        spec.length,
        spec.domain,
        spec.skew,
        skew_s=spec.skew_s,
        correlation=spec.correlation,
        seed=spec.seed,
    )


def _registry_for(spec: RunSpec) -> Optional[MetricsRegistry]:
    return MetricsRegistry() if spec.metrics else None


def _tracer_for(spec: RunSpec) -> Optional[Tracer]:
    return Tracer(RingBufferSink(spec.trace_capacity)) if spec.trace else None


def _online_estimators(spec: RunSpec) -> dict:
    """Fresh per-side online estimators for ``spec.estimator``.

    Sizing: the EWMA smoothing defaults to ``2 / (window + 1)`` (an
    effective history of about one window); the Count-Min sketch is
    sized for 1% additive error at 99% confidence; Space-Saving tracks
    enough counters to rank everything the memory budget could retain.
    """
    if spec.estimator == "ewma":
        alpha = (
            spec.estimator_alpha
            if spec.estimator_alpha is not None
            else 2.0 / (spec.window + 1)
        )
        make = lambda: EwmaFrequencyEstimator(alpha)
    elif spec.estimator == "countmin":
        make = lambda: CountMinSketch.from_error_bounds(
            0.01, 0.01, seed=spec.seed, conservative=True
        )
    else:  # spacesaving
        make = lambda: SpaceSaving(max(64, 2 * spec.memory))
    return {"R": make(), "S": make()}


def _source_estimators(source) -> dict:
    """The *oracle* statistics module for a source.

    A :class:`~repro.streams.sources.PairSource` defers to the pair's
    own metadata; generator sources expose their true generating
    distributions.  A drifting source yields its *phase-0* tables — a
    deliberately stale oracle, the baseline the online estimators beat.
    Sources with unknown statistics (replays, custom feeds) have no
    oracle; pick an online estimator for those.
    """
    if isinstance(source, PairSource):
        return estimators_for(source.pair)
    if hasattr(source, "phase_distributions"):
        dist_r, dist_s = source.phase_distributions(0)
    elif hasattr(source, "distributions"):
        dist_r, dist_s = source.distributions()
    else:
        raise ValueError(
            "estimator='oracle' needs a source with known distributions "
            "(a PairSource or a generator source); use an online "
            "estimator ('ewma', 'countmin', 'spacesaving') for replay "
            "or custom sources"
        )
    return {
        "R": StaticFrequencyTable.from_array(dist_r.probabilities()),
        "S": StaticFrequencyTable.from_array(dist_s.probabilities()),
    }


def _policy_for(spec: RunSpec, pair: Optional[StreamPair], estimators: Optional[dict]):
    if spec.algorithm == "EXACT":
        return None
    update = spec.estimator != "oracle"
    if update:
        estimators = _online_estimators(spec)
    elif estimators is None and spec.algorithm in _ESTIMATOR_ALGORITHMS:
        estimators = (
            estimators_for(pair) if pair is not None
            else _source_estimators(spec.source)
        )
    return make_policy_spec(
        spec.algorithm,
        variable=spec.variable,
        estimators=estimators,
        window=spec.window,
        seed=spec.seed,
        update_estimators=update,
    )


def run(
    spec: RunSpec,
    *,
    pair: Optional[StreamPair] = None,
    estimators: Optional[dict] = None,
    workers: Optional[int] = None,
    fault_plan=None,
    emit=None,
    on_summary=None,
    on_summary_every: Optional[int] = None,
    stop=None,
):
    """Run the spec end to end and return the engine's result.

    The one public entry point: dispatches on the spec itself.  OPT and
    OPTV delegate to :func:`optimal_offline` — the offline bound has no
    engine to speak of, but sharing the entry point keeps comparison
    loops uniform.  A spec with ``shards > 1`` runs on the fault-tolerant
    sharded runtime; ``workers`` then fans the shards over worker
    processes (ignored otherwise — a single unsharded run is serial) and
    ``fault_plan`` arms deterministic fault injection (see
    :mod:`repro.runtime.faults`; tests and the chaos benchmark only).

    ``pair`` overrides the generated workload (so several specs can share
    one input); ``estimators`` overrides the statistics module.

    Streaming hooks (``repro serve`` is a thin layer over these):
    ``emit(result_tuple)`` receives each join output as produced
    (bounded-memory alternative to materializing); ``on_summary`` gets a
    rolling :class:`~repro.core.results.RunSummary` every
    ``on_summary_every`` ticks; ``stop()`` is polled per tick for
    cooperative shutdown.  They apply to single-engine runs only — a
    sharded merge has no global event order.
    """
    if spec.algorithm in ("OPT", "OPTV"):
        return optimal_offline(spec, pair=pair)
    streaming = (emit, on_summary, on_summary_every, stop) != (None, None, None, None)
    if spec.shards > 1:
        if streaming:
            raise ValueError(
                "emit/on_summary/stop need a single engine run; a sharded "
                "merge has no global event order"
            )
        return _run_sharded(spec, pair=pair, workers=workers, fault_plan=fault_plan)

    source = spec.source
    if source is None:
        if pair is None:
            pair = build_pair(spec)
    elif pair is not None:
        raise ValueError("pass either spec.source or pair=, not both")
    elif (
        spec.duration is None
        and stop is None
        and getattr(source, "length", None) is None
    ):
        raise ValueError(
            "an unbounded source needs duration=N or a stop() callback "
            "to bound the run"
        )
    registry = _registry_for(spec)
    tracer = _tracer_for(spec)
    policy = _policy_for(spec, pair, estimators)
    stream_kwargs = dict(
        until=spec.duration,
        emit=emit,
        on_summary=on_summary,
        on_summary_every=on_summary_every,
        stop=stop,
    )

    if spec.engine == "fast":
        config = EngineConfig(
            window=spec.window,
            memory=spec.effective_memory,
            variable=spec.variable,
            warmup=spec.warmup,
            batch_size=spec.batch_size,
        )
        engine = JoinEngine(config, policy=policy, metrics=registry, trace=tracer)
        return engine.run_stream(
            source if source is not None else PairSource(pair), **stream_kwargs
        )

    if spec.engine == "async":
        config = AsyncEngineConfig(
            window=spec.window,
            memory=spec.effective_memory,
            variable=spec.variable,
            warmup=spec.warmup,
        )
        engine = AsyncJoinEngine(config, policy=policy, metrics=registry, trace=tracer)
        return engine.run_stream(
            source if source is not None else PairSource(pair), **stream_kwargs
        )

    if streaming:
        raise ValueError(
            "emit/on_summary/stop need the fast or async engine "
            f"(run_stream), got engine={spec.engine!r}"
        )
    config = SlowCpuConfig(
        window=spec.window,
        memory=spec.effective_memory,
        service_per_tick=spec.service_per_tick,
        queue_capacity=spec.queue_capacity,
        queue_policy=spec.queue_policy,
        variable=spec.variable,
        warmup=spec.warmup,
        seed=spec.seed,
    )
    if estimators is None and spec.queue_policy == "prob":
        estimators = estimators_for(pair)
    engine = SlowCpuEngine(
        config, policy=policy, estimators=estimators, metrics=registry, trace=tracer
    )
    ticks = len(pair)
    schedule = [1] * ticks
    return engine.run(pair.r, pair.s, schedule, list(schedule))


def run_join(
    spec: RunSpec,
    *,
    pair: Optional[StreamPair] = None,
    estimators: Optional[dict] = None,
    workers: Optional[int] = None,
):
    """Deprecated alias of :func:`run` (kept for one release cycle)."""
    warnings.warn(
        "run_join() is deprecated; use repro.api.run()",
        DeprecationWarning,
        stacklevel=2,
    )
    return run(spec, pair=pair, estimators=estimators, workers=workers)


def run_sharded(
    spec: RunSpec,
    *,
    pair: Optional[StreamPair] = None,
    workers: Optional[int] = None,
):
    """Deprecated alias of :func:`run` for ``shards > 1`` specs."""
    warnings.warn(
        "run_sharded() is deprecated; use repro.api.run()",
        DeprecationWarning,
        stacklevel=2,
    )
    if spec.shards < 2:
        raise ValueError(f"run_sharded needs shards >= 2, got {spec.shards}")
    return _run_sharded(spec, pair=pair, workers=workers)


def _shard_fingerprint(
    spec: RunSpec, pair: StreamPair, shard: int, budget: int
) -> str:
    """Identity of one shard's computation, for checkpoint validation.

    Everything that changes the shard's tick-by-tick evolution is in
    here; a checkpoint whose fingerprint mismatches is silently ignored
    (replaying from tick 0 is always correct).
    """
    return "|".join(
        (
            f"schema={SCHEMA_VERSION}",
            f"alg={spec.algorithm}",
            f"w={spec.window}",
            f"m={budget}",
            f"seed={spec.seed}",
            f"len={len(pair)}",
            f"shard={shard}/{spec.shards}",
            f"var={int(bool(spec.variable))}",
            f"warmup={spec.effective_warmup}",
            f"metrics={int(spec.metrics)}",
        )
    )


def _run_join_shard(spec: RunSpec, pair: StreamPair, shard: int, budget: int):
    """Run one shard of a sharded spec (worker entry helper).

    The shard sees only the arrivals whose key hashes to it, at their
    original global ticks (empty ticks elsewhere), executed on the
    asynchronous engine in time-window mode — which makes the shard's
    window, expiry, and warmup semantics identical to the synchronous
    fast-CPU engine's.  The statistics module is built from the *full*
    pair (the same tables the unsharded run would use); policy RNGs seed
    from ``(spec.seed, shard)`` so results never depend on worker
    scheduling.

    With ``checkpoint_every`` set, the engine state is checkpointed to
    ``checkpoint_dir`` every ``k`` ticks and a fresh invocation (a retry
    in a new worker, or a re-run after a crash) resumes from the last
    valid checkpoint.  Under an armed fault context (see
    :mod:`repro.runtime.faults`) the same per-tick hook fires injected
    faults, so a kill lands mid-run with real join state at stake.
    """
    from .core.partition import shard_batches, shard_seed, shard_source
    from .obs import telemetry
    from .runtime import faults

    shard_spec = replace(spec, seed=shard_seed(spec.seed, shard))
    policy = _policy_for(shard_spec, pair, None)
    config = AsyncEngineConfig(
        window=spec.window,
        memory=budget,
        variable=spec.variable,
        warmup=spec.warmup,
    )
    engine = AsyncJoinEngine(config, policy=policy, metrics=_registry_for(spec))

    store = None
    resume = None
    every = spec.checkpoint_every
    key = f"shard-{shard}"
    fingerprint = None
    if every is not None and spec.checkpoint_dir is not None:
        from .runtime.checkpoint import CheckpointStore

        fingerprint = _shard_fingerprint(spec, pair, shard, budget)
        store = CheckpointStore(spec.checkpoint_dir)
        resume = store.load(key, fingerprint=fingerprint)

    on_tick = None
    on_tick_every = 1
    if store is not None or faults.is_active() or telemetry.is_active():
        if store is None and not faults.is_active():
            # Pure-telemetry runs only need the hook on heartbeat ticks;
            # checkpoints and fault injection need every tick.
            on_tick_every = spec.heartbeat_every

        def on_tick(running_engine, t):
            # Faults fire first: a kill at tick T never checkpoints T,
            # so the retry resumes strictly before the failure point.
            try:
                faults.maybe_inject(t)
            except faults.InjectedFault:
                # Record the fault span (and harden the spool) before
                # the exception unwinds the attempt.
                telemetry.record_fault(t)
                raise
            telemetry.maybe_heartbeat(t, running_engine.progress)
            if store is not None and (t + 1) % every == 0:
                store.save(
                    key, running_engine.checkpoint(), fingerprint=fingerprint
                )

    if spec.source is not None:
        # Checkpoints are validated out with sources, so no store/resume
        # here; retries simply restart the (deterministic) shard source.
        return engine.run_stream(
            shard_source(spec.source, shard, spec.shards),
            until=spec.duration,
            on_tick=on_tick,
            on_tick_every=on_tick_every,
        )

    r_batches, s_batches = shard_batches(pair, shard, spec.shards)
    result = engine.run(
        r_batches, s_batches, resume=resume,
        on_tick=on_tick, on_tick_every=on_tick_every,
    )
    if store is not None:
        store.clear(key)
    return result


def _run_sharded(
    spec: RunSpec,
    *,
    pair: Optional[StreamPair] = None,
    workers: Optional[int] = None,
    fault_plan=None,
):
    """Run a ``shards > 1`` spec: plan, fan out (supervised), merge.

    Returns a :class:`~repro.core.partition.ShardedRunResult`; the merge
    is deterministic and the per-shard runs self-seeded, so the result
    is a pure function of the spec — ``workers=4`` returns exactly what
    the serial run returns, and a retried shard returns exactly what an
    undisturbed one would have.  On retry exhaustion with
    ``degrade=True`` the surviving shards merge and the lost shards'
    inputs (plus, for EXACT, their exactly-known forgone output) are
    attributed; without it the shard's :class:`~repro.runtime.CellError`
    propagates.
    """
    from .core.partition import (
        merge_shard_results,
        plan_shards,
        shard_exact_output,
        shard_input_counts,
        shard_weights,
    )
    from .runtime import CellError, RetryPolicy, ShardCell, parallel_map, run_shard_cell

    if spec.source is not None:
        if pair is not None:
            raise ValueError("pass either spec.source or pair=, not both")
        length = (
            spec.duration if spec.duration is not None else spec.source.length
        )
        if length is None:
            raise ValueError(
                "a sharded run over an unbounded source needs duration=N "
                "(the merge reports a definite length)"
            )
    else:
        if pair is None:
            pair = build_pair(spec)
        length = len(pair)
    lossless = 2 * spec.window if spec.algorithm == "EXACT" else None
    weights = (
        shard_weights(pair, spec.shards)
        if spec.shard_weighted and lossless is None
        else None
    )
    plan = plan_shards(
        spec.memory, spec.shards, lossless_budget=lossless, weights=weights
    )

    retry = None
    if spec.max_retries or spec.timeout_s is not None:
        retry = RetryPolicy(max_retries=spec.max_retries, timeout_s=spec.timeout_s)

    supervised = (
        retry is not None or fault_plan is not None or spec.degrade
        or spec.telemetry
    )
    session = None
    teldir = None
    tmpdir = None
    cell_spec = spec
    attempts: list = []
    try:
        if spec.telemetry:
            from .obs.telemetry import TelemetrySession

            if spec.telemetry_dir is None:
                # Spools are a run-private channel unless the caller
                # wants to keep them (same policy as checkpoints).
                teldir = tempfile.TemporaryDirectory(prefix="repro-tel-")
            session = TelemetrySession(
                spec.telemetry_dir if teldir is None else teldir.name,
                heartbeat_every=spec.heartbeat_every,
            )
        try:
            if spec.checkpoint_every is not None and spec.checkpoint_dir is None:
                # Retries run in fresh worker processes; a run-private temp
                # directory is the simplest state channel between attempts.
                tmpdir = tempfile.TemporaryDirectory(prefix="repro-ckpt-")
                cell_spec = replace(spec, checkpoint_dir=tmpdir.name)
            cells = [
                ShardCell(cell_spec, pair, shard, budget)
                for shard, budget in enumerate(plan.budgets)
            ]
            results = parallel_map(
                run_shard_cell,
                cells,
                workers=workers,
                labels=[cell.label for cell in cells],
                retry=retry,
                fault_plan=fault_plan,
                return_errors=spec.degrade,
                attempts_out=attempts,
                telemetry=session,
            )
        finally:
            if tmpdir is not None:
                tmpdir.cleanup()

        lost = tuple(
            index for index, result in enumerate(results)
            if isinstance(result, CellError)
        )
        merge_kwargs: dict = {}
        if supervised:
            merge_kwargs["attempts"] = attempts
        if lost:
            merge_kwargs["lost"] = lost
            merge_kwargs["lost_inputs"] = [
                shard_input_counts(pair, shard, spec.shards) for shard in lost
            ]
            if spec.algorithm == "EXACT":
                merge_kwargs["lost_output"] = sum(
                    shard_exact_output(
                        pair, shard, spec.shards, spec.window,
                        count_from=spec.effective_warmup,
                    )
                    for shard in lost
                )
        timeline = None
        if session is not None:
            from .obs.spans import SPAN_DEGRADE, SPAN_MERGE

            if lost:
                session.spans.emit(
                    SPAN_DEGRADE, data={"lost": [int(s) for s in lost]}
                )
            session.spans.emit(
                SPAN_MERGE,
                data={"shards": plan.shards, "survivors": plan.shards - len(lost)},
            )
            timeline = session.merged_timeline()
    finally:
        if teldir is not None:
            teldir.cleanup()

    merged = merge_shard_results(
        results,
        plan,
        length=length,
        window=spec.window,
        memory=spec.effective_memory,
        warmup=spec.effective_warmup,
        **merge_kwargs,
    )
    merged.timeline = timeline
    return merged


def optimal_offline(spec: RunSpec, *, pair: Optional[StreamPair] = None) -> OptResult:
    """The spec's OPT/OPTV offline bound (Section 3.2 min-cost flow).

    ``spec.algorithm`` need not be "OPT" — any spec can ask for its
    offline bound; ``spec.variable`` picks OPT vs OPTV.
    """
    if pair is None:
        pair = build_pair(spec)
    return solve_opt(
        pair,
        spec.window,
        spec.memory,
        variable=bool(spec.variable),
        count_from=spec.effective_warmup,
        metrics=_registry_for(spec),
    )


def compare(
    specs: Sequence[Union[RunSpec, str]],
    *,
    pair: Optional[StreamPair] = None,
    workers: Optional[int] = None,
) -> dict:
    """Run several specs against one shared workload.

    ``specs`` may mix :class:`RunSpec` instances and plain algorithm
    names; names inherit every other field from the first full spec in
    the sequence (or the defaults).  The shared input is ``pair`` if
    given, else the first spec's workload.  Returns ``{label: result}``
    in input order; duplicate algorithms get ``#2``, ``#3``, ... labels.

    ``workers`` fans the specs out over worker processes (see
    :mod:`repro.runtime`); results are identical to the serial run in
    value and order.
    """
    from .runtime import SpecCell, parallel_map, resolve_workers, run_spec_cell

    if not specs:
        raise ValueError("compare() needs at least one spec")
    template = next(
        (spec for spec in specs if isinstance(spec, RunSpec)), RunSpec()
    )
    resolved = [
        spec
        if isinstance(spec, RunSpec)
        else replace(template, algorithm=spec, variable=None)
        for spec in specs
    ]
    if pair is None:
        pair = build_pair(resolved[0])

    labels: list[str] = []
    for spec in resolved:
        label = spec.algorithm
        suffix = 2
        while label in labels:
            label = f"{spec.algorithm}#{suffix}"
            suffix += 1
        labels.append(label)

    if resolve_workers(workers) <= 1:
        estimators = estimators_for(pair)
        return {
            label: run(spec, pair=pair, estimators=estimators)
            for label, spec in zip(labels, resolved)
        }

    cells = [SpecCell(spec, pair) for spec in resolved]
    outputs = parallel_map(
        run_spec_cell,
        cells,
        workers=workers,
        labels=[cell.label for cell in cells],
    )
    return dict(zip(labels, outputs))


def attribute_run(spec: RunSpec, *, pair: Optional[StreamPair] = None):
    """Run the spec with tracing on and attribute every lost output.

    Returns an :class:`~repro.obs.AttributionReport` whose ledger
    reconciles exactly with ``EXACT − observed`` output counts — the
    fast-CPU engine's shedding semantics make the decomposition exact,
    so only ``engine="fast"`` specs are accepted (the queue-fronted
    engines shed at the queue, outside the exact-replay model).
    """
    from .obs import attribute_trace
    from .streams.tuples import exact_join_size

    if spec.engine != "fast":
        raise ValueError(
            "attribute_run needs the fast-CPU engine (exact attribution "
            f"semantics); got engine={spec.engine!r}"
        )
    if spec.algorithm in ("OPT", "OPTV"):
        raise ValueError("attribute_run cannot trace the offline OPT bound")
    if pair is None:
        pair = build_pair(spec)
    traced = replace(spec, trace=True) if not spec.trace else spec
    result = run(traced, pair=pair)
    exact = exact_join_size(pair, spec.window, count_from=spec.effective_warmup)
    return attribute_trace(
        result.trace,
        pair,
        spec.window,
        warmup=spec.effective_warmup,
        policy=spec.algorithm,
        exact_output=exact,
        observed_output=result.output_count,
    )
