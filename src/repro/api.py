"""Unified public run API.

One :class:`RunSpec` describes a complete experiment — workload, join
parameters, which engine simulates it, and whether to collect metrics —
and three functions consume it:

* :func:`run_join` — run the spec's algorithm on its workload and return
  the engine's result (all engines share the unified result surface:
  ``output_count``, :meth:`~repro.core.results.BaseRunResult.drop_breakdown`,
  :meth:`~repro.core.results.BaseRunResult.summary`, and an attached
  ``metrics`` snapshot when requested);
* :func:`compare` — run several specs on one shared workload;
* :func:`optimal_offline` — the OPT/OPTV offline bound for the spec.

Example::

    from repro.api import RunSpec, run_join, optimal_offline

    spec = RunSpec(algorithm="PROB", window=100, memory=50, length=2000)
    result = run_join(spec)
    bound = optimal_offline(spec)
    print(result.output_count / bound.output_count)

The CLI (``repro run`` / ``repro compare``) and the example scripts are
thin layers over these functions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Union

from .core.async_engine import AsyncEngineConfig, AsyncJoinEngine, batches_from_pair
from .core.engine import EngineConfig, JoinEngine
from .core.offline.opt import OptResult, solve_opt
from .core.policies import make_policy_spec
from .core.slowcpu import SlowCpuConfig, SlowCpuEngine
from .experiments.runner import ALL_ALGORITHMS, estimators_for
from .obs import MetricsRegistry, RingBufferSink, Tracer
from .streams import StreamPair, uniform_pair, weather_pair, zipf_pair

ENGINES = ("fast", "async", "slowcpu")
WORKLOADS = ("zipf", "uniform", "weather")


@dataclass(frozen=True)
class RunSpec:
    """Everything one run needs, in one place.

    Workload fields (``workload`` .. ``correlation``) describe the input
    streams; join fields (``window`` .. ``warmup``) the operator; the
    ``engine`` field selects the simulator (``"fast"`` — the paper's
    integrated fast-CPU model, ``"async"`` — bursty per-tick batches,
    ``"slowcpu"`` — the modular queue-fronted model, which also uses the
    ``service_per_tick`` / ``queue_capacity`` / ``queue_policy`` knobs).
    ``metrics=True`` collects an observability snapshot into the result;
    ``trace=True`` records the full tuple lifecycle (arrive / admit /
    evict / expire / join_output / drop) into ``result.trace`` via a
    bounded ring buffer of ``trace_capacity`` events.  Both default off
    and cost nothing when off (the engines collapse them to ``None``).

    ``shards=N`` (fast engine only) hash-partitions the key domain into
    ``N`` independent sub-joins executed via
    :mod:`repro.core.partition` and merged deterministically: EXACT is
    provably identical to the unsharded run, the shedding policies
    become a documented approximation variant whose result depends on
    ``N`` but never on the worker count.  ``shard_weighted=True`` splits
    the memory budget by per-shard arrival mass instead of evenly.
    """

    algorithm: str = "PROB"
    window: int = 100
    memory: int = 50
    warmup: Optional[int] = None
    variable: Optional[bool] = None  # default: inferred from a trailing "V"
    seed: int = 0

    workload: str = "zipf"
    length: int = 2000
    domain: int = 50
    skew: float = 1.0
    skew_s: Optional[float] = None
    correlation: str = "uncorrelated"

    engine: str = "fast"
    service_per_tick: int = 2
    queue_capacity: int = 64
    queue_policy: str = "tail"

    metrics: bool = False
    trace: bool = False
    trace_capacity: int = 1 << 20

    shards: int = 1
    shard_weighted: bool = False

    def __post_init__(self) -> None:
        name = self.algorithm.upper()
        if name != self.algorithm:
            object.__setattr__(self, "algorithm", name)
        if name not in ALL_ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; choose from {ALL_ALGORITHMS}"
            )
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")
        if self.workload not in WORKLOADS:
            raise ValueError(
                f"workload must be one of {WORKLOADS}, got {self.workload!r}"
            )
        if self.variable is None:
            object.__setattr__(self, "variable", name.endswith("V") and name != "V")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.shards > 1:
            if name in ("OPT", "OPTV"):
                raise ValueError("the offline OPT bound cannot be sharded")
            if self.engine != "fast":
                raise ValueError(
                    "sharded execution only applies to the fast-CPU model "
                    f"(engine='fast'), got engine={self.engine!r}"
                )
            if self.trace:
                raise ValueError(
                    "tracing is not supported with sharded execution "
                    "(per-shard event streams have no global order)"
                )

    @property
    def effective_warmup(self) -> int:
        return self.warmup if self.warmup is not None else 2 * self.window

    @property
    def effective_memory(self) -> int:
        """EXACT always gets the lossless budget of ``2 * window``."""
        return 2 * self.window if self.algorithm == "EXACT" else self.memory


def build_pair(spec: RunSpec) -> StreamPair:
    """Generate the spec's input streams."""
    if spec.workload == "weather":
        return weather_pair(spec.length, seed=spec.seed)
    if spec.workload == "uniform":
        return uniform_pair(spec.length, spec.domain, seed=spec.seed)
    return zipf_pair(
        spec.length,
        spec.domain,
        spec.skew,
        skew_s=spec.skew_s,
        correlation=spec.correlation,
        seed=spec.seed,
    )


def _registry_for(spec: RunSpec) -> Optional[MetricsRegistry]:
    return MetricsRegistry() if spec.metrics else None


def _tracer_for(spec: RunSpec) -> Optional[Tracer]:
    return Tracer(RingBufferSink(spec.trace_capacity)) if spec.trace else None


def _policy_for(spec: RunSpec, pair: StreamPair, estimators: Optional[dict]):
    if spec.algorithm == "EXACT":
        return None
    if estimators is None:
        estimators = estimators_for(pair)
    return make_policy_spec(
        spec.algorithm,
        variable=spec.variable,
        estimators=estimators,
        window=spec.window,
        seed=spec.seed,
    )


def run_join(
    spec: RunSpec,
    *,
    pair: Optional[StreamPair] = None,
    estimators: Optional[dict] = None,
    workers: Optional[int] = None,
):
    """Run the spec end to end and return the engine's result.

    ``pair`` overrides the generated workload (so several specs can share
    one input); ``estimators`` overrides the statistics module.  OPT and
    OPTV delegate to :func:`optimal_offline` — the offline bound has no
    engine to speak of, but sharing the entry point keeps comparison
    loops uniform.  A spec with ``shards > 1`` delegates to
    :func:`run_sharded`; ``workers`` then fans the shards over worker
    processes (ignored otherwise — a single unsharded run is serial).
    """
    if spec.algorithm in ("OPT", "OPTV"):
        return optimal_offline(spec, pair=pair)
    if spec.shards > 1:
        return run_sharded(spec, pair=pair, workers=workers)

    if pair is None:
        pair = build_pair(spec)
    registry = _registry_for(spec)
    tracer = _tracer_for(spec)
    policy = _policy_for(spec, pair, estimators)

    if spec.engine == "fast":
        config = EngineConfig(
            window=spec.window,
            memory=spec.effective_memory,
            variable=spec.variable,
            warmup=spec.warmup,
        )
        return JoinEngine(config, policy=policy, metrics=registry, trace=tracer).run(pair)

    if spec.engine == "async":
        config = AsyncEngineConfig(
            window=spec.window,
            memory=spec.effective_memory,
            variable=spec.variable,
            warmup=spec.warmup,
        )
        r_batches, s_batches = batches_from_pair(pair)
        return AsyncJoinEngine(config, policy=policy, metrics=registry, trace=tracer).run(
            r_batches, s_batches
        )

    config = SlowCpuConfig(
        window=spec.window,
        memory=spec.effective_memory,
        service_per_tick=spec.service_per_tick,
        queue_capacity=spec.queue_capacity,
        queue_policy=spec.queue_policy,
        variable=spec.variable,
        warmup=spec.warmup,
        seed=spec.seed,
    )
    if estimators is None and spec.queue_policy == "prob":
        estimators = estimators_for(pair)
    engine = SlowCpuEngine(
        config, policy=policy, estimators=estimators, metrics=registry, trace=tracer
    )
    ticks = len(pair)
    schedule = [1] * ticks
    return engine.run(pair.r, pair.s, schedule, list(schedule))


def run_join_shard(spec: RunSpec, pair: StreamPair, shard: int, budget: int):
    """Run one shard of a sharded spec (worker entry helper).

    The shard sees only the arrivals whose key hashes to it, at their
    original global ticks (empty ticks elsewhere), executed on the
    asynchronous engine in time-window mode — which makes the shard's
    window, expiry, and warmup semantics identical to the synchronous
    fast-CPU engine's.  The statistics module is built from the *full*
    pair (the same tables the unsharded run would use); policy RNGs seed
    from ``(spec.seed, shard)`` so results never depend on worker
    scheduling.
    """
    from .core.partition import shard_batches, shard_seed

    r_batches, s_batches = shard_batches(pair, shard, spec.shards)
    shard_spec = replace(spec, seed=shard_seed(spec.seed, shard))
    policy = _policy_for(shard_spec, pair, None)
    config = AsyncEngineConfig(
        window=spec.window,
        memory=budget,
        variable=spec.variable,
        warmup=spec.warmup,
    )
    engine = AsyncJoinEngine(config, policy=policy, metrics=_registry_for(spec))
    return engine.run(r_batches, s_batches)


def run_sharded(
    spec: RunSpec,
    *,
    pair: Optional[StreamPair] = None,
    workers: Optional[int] = None,
):
    """Run a ``shards > 1`` spec: plan, fan out, merge.

    Returns a :class:`~repro.core.partition.ShardedRunResult`; the merge
    is deterministic and the per-shard runs self-seeded, so the result
    is a pure function of the spec — ``workers=4`` returns exactly what
    the serial run returns.
    """
    if spec.shards < 2:
        raise ValueError(f"run_sharded needs shards >= 2, got {spec.shards}")
    from .core.partition import merge_shard_results, plan_shards, shard_weights
    from .runtime import ShardCell, parallel_map, run_shard_cell

    if pair is None:
        pair = build_pair(spec)
    lossless = 2 * spec.window if spec.algorithm == "EXACT" else None
    weights = (
        shard_weights(pair, spec.shards)
        if spec.shard_weighted and lossless is None
        else None
    )
    plan = plan_shards(
        spec.memory, spec.shards, lossless_budget=lossless, weights=weights
    )
    cells = [
        ShardCell(spec, pair, shard, budget)
        for shard, budget in enumerate(plan.budgets)
    ]
    results = parallel_map(
        run_shard_cell,
        cells,
        workers=workers,
        labels=[cell.label for cell in cells],
    )
    return merge_shard_results(
        results,
        plan,
        length=len(pair),
        window=spec.window,
        memory=spec.effective_memory,
        warmup=spec.effective_warmup,
    )


def optimal_offline(spec: RunSpec, *, pair: Optional[StreamPair] = None) -> OptResult:
    """The spec's OPT/OPTV offline bound (Section 3.2 min-cost flow).

    ``spec.algorithm`` need not be "OPT" — any spec can ask for its
    offline bound; ``spec.variable`` picks OPT vs OPTV.
    """
    if pair is None:
        pair = build_pair(spec)
    return solve_opt(
        pair,
        spec.window,
        spec.memory,
        variable=bool(spec.variable),
        count_from=spec.effective_warmup,
        metrics=_registry_for(spec),
    )


def compare(
    specs: Sequence[Union[RunSpec, str]],
    *,
    pair: Optional[StreamPair] = None,
    workers: Optional[int] = None,
) -> dict:
    """Run several specs against one shared workload.

    ``specs`` may mix :class:`RunSpec` instances and plain algorithm
    names; names inherit every other field from the first full spec in
    the sequence (or the defaults).  The shared input is ``pair`` if
    given, else the first spec's workload.  Returns ``{label: result}``
    in input order; duplicate algorithms get ``#2``, ``#3``, ... labels.

    ``workers`` fans the specs out over worker processes (see
    :mod:`repro.runtime`); results are identical to the serial run in
    value and order.
    """
    from .runtime import SpecCell, parallel_map, resolve_workers, run_spec_cell

    if not specs:
        raise ValueError("compare() needs at least one spec")
    template = next(
        (spec for spec in specs if isinstance(spec, RunSpec)), RunSpec()
    )
    resolved = [
        spec
        if isinstance(spec, RunSpec)
        else replace(template, algorithm=spec, variable=None)
        for spec in specs
    ]
    if pair is None:
        pair = build_pair(resolved[0])

    labels: list[str] = []
    for spec in resolved:
        label = spec.algorithm
        suffix = 2
        while label in labels:
            label = f"{spec.algorithm}#{suffix}"
            suffix += 1
        labels.append(label)

    if resolve_workers(workers) <= 1:
        estimators = estimators_for(pair)
        return {
            label: run_join(spec, pair=pair, estimators=estimators)
            for label, spec in zip(labels, resolved)
        }

    cells = [SpecCell(spec, pair) for spec in resolved]
    outputs = parallel_map(
        run_spec_cell,
        cells,
        workers=workers,
        labels=[cell.label for cell in cells],
    )
    return dict(zip(labels, outputs))


def attribute_run(spec: RunSpec, *, pair: Optional[StreamPair] = None):
    """Run the spec with tracing on and attribute every lost output.

    Returns an :class:`~repro.obs.AttributionReport` whose ledger
    reconciles exactly with ``EXACT − observed`` output counts — the
    fast-CPU engine's shedding semantics make the decomposition exact,
    so only ``engine="fast"`` specs are accepted (the queue-fronted
    engines shed at the queue, outside the exact-replay model).
    """
    from .obs import attribute_trace
    from .streams.tuples import exact_join_size

    if spec.engine != "fast":
        raise ValueError(
            "attribute_run needs the fast-CPU engine (exact attribution "
            f"semantics); got engine={spec.engine!r}"
        )
    if spec.algorithm in ("OPT", "OPTV"):
        raise ValueError("attribute_run cannot trace the offline OPT bound")
    if pair is None:
        pair = build_pair(spec)
    traced = replace(spec, trace=True) if not spec.trace else spec
    result = run_join(traced, pair=pair)
    exact = exact_join_size(pair, spec.window, count_from=spec.effective_warmup)
    return attribute_trace(
        result.trace,
        pair,
        spec.window,
        warmup=spec.effective_warmup,
        policy=spec.algorithm,
        exact_output=exact,
        observed_output=result.output_count,
    )
