"""Zipfian distributions over a finite domain.

The paper's synthetic workloads draw join-attribute values iid from
Zipf(z) distributions over domains of 10-200 values (Section 4).  This
module provides the exact pmf, moments used for analysis, and two exact
samplers (inverse-CDF via binary search, and Walker's alias method for
O(1) draws on large domains).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class ZipfDistribution:
    """Zipf distribution with pmf ``p(rank) ∝ 1 / rank^skew``.

    Ranks run ``1 .. domain_size``; the emitted *values* are
    ``0 .. domain_size - 1``, optionally shuffled through a value
    permutation so that two streams with the same skew can have
    uncorrelated (or anti-correlated) frequency assignments.

    ``skew = 0`` degenerates to the uniform distribution, matching the
    paper's usage ("Zipf with parameter 0").
    """

    def __init__(
        self,
        domain_size: int,
        skew: float,
        *,
        value_permutation: Optional[Sequence[int]] = None,
    ) -> None:
        if domain_size <= 0:
            raise ValueError(f"domain_size must be positive, got {domain_size}")
        if skew < 0:
            raise ValueError(f"skew must be non-negative, got {skew}")
        self.domain_size = domain_size
        self.skew = float(skew)

        ranks = np.arange(1, domain_size + 1, dtype=float)
        weights = ranks ** (-self.skew)
        self._rank_probabilities = weights / weights.sum()
        self._cdf = np.cumsum(self._rank_probabilities)
        self._cdf[-1] = 1.0  # guard against rounding drift

        if value_permutation is None:
            self._values = np.arange(domain_size)
        else:
            permutation = np.asarray(value_permutation)
            if sorted(permutation.tolist()) != list(range(domain_size)):
                raise ValueError("value_permutation must permute 0..domain_size-1")
            self._values = permutation

        self._probabilities = np.zeros(domain_size)
        self._probabilities[self._values] = self._rank_probabilities

    # ------------------------------------------------------------------
    # probabilities
    # ------------------------------------------------------------------
    def probabilities(self) -> np.ndarray:
        """``p[v]`` = probability of emitting value ``v`` (a copy)."""
        return self._probabilities.copy()

    def probability_of(self, value: int) -> float:
        """Probability of a single value (0 for out-of-domain values)."""
        if not 0 <= value < self.domain_size:
            return 0.0
        return float(self._probabilities[value])

    def match_probability(self, other: "ZipfDistribution") -> float:
        """Probability that one draw from each distribution is equal.

        ``sum_v p_self(v) * p_other(v)`` — the expected per-tick match
        rate of two independent streams, used for workload sizing.
        """
        if other.domain_size != self.domain_size:
            raise ValueError("distributions must share a domain")
        return float(np.dot(self._probabilities, other._probabilities))

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` iid values via inverse-CDF (exact)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        uniforms = rng.random(count)
        ranks = np.searchsorted(self._cdf, uniforms, side="right")
        return self._values[ranks]

    def alias_sampler(self, rng: np.random.Generator) -> "AliasSampler":
        """O(1)-per-draw sampler for this distribution."""
        return AliasSampler(self._probabilities, rng)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZipfDistribution(domain_size={self.domain_size}, skew={self.skew})"


class AliasSampler:
    """Walker's alias method for sampling a finite discrete distribution.

    Setup is O(n); each draw is O(1).  Used when the domain is large
    (e.g. the synthetic weather grid) and many samples are needed.
    """

    def __init__(self, probabilities: Sequence[float], rng: np.random.Generator) -> None:
        p = np.asarray(probabilities, dtype=float)
        if p.ndim != 1 or len(p) == 0:
            raise ValueError("probabilities must be a non-empty 1-D sequence")
        if np.any(p < 0):
            raise ValueError("probabilities must be non-negative")
        total = p.sum()
        if total <= 0:
            raise ValueError("probabilities must not all be zero")
        p = p / total

        n = len(p)
        self._n = n
        self._rng = rng
        self._prob = np.zeros(n)
        self._alias = np.zeros(n, dtype=np.int64)

        scaled = p * n
        small = [i for i in range(n) if scaled[i] < 1.0]
        large = [i for i in range(n) if scaled[i] >= 1.0]
        while small and large:
            s = small.pop()
            g = large.pop()
            self._prob[s] = scaled[s]
            self._alias[s] = g
            scaled[g] = scaled[g] + scaled[s] - 1.0
            (small if scaled[g] < 1.0 else large).append(g)
        for i in large + small:
            self._prob[i] = 1.0
            self._alias[i] = i

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` iid values (indices into the input pmf)."""
        columns = self._rng.integers(0, self._n, size=count)
        coins = self._rng.random(count)
        take_alias = coins >= self._prob[columns]
        out = columns.copy()
        out[take_alias] = self._alias[columns[take_alias]]
        return out


def zipf_probabilities(domain_size: int, skew: float) -> np.ndarray:
    """Convenience: the rank-ordered Zipf pmf as an array."""
    return ZipfDistribution(domain_size, skew).probabilities()
