"""Synthetic substitute for the paper's real-life weather dataset.

The paper's Section 4.5 joins two years (September 1985 vs. September
1986) of edited synoptic cloud reports [Hahn/Warren/London], keyed by the
sensor's location snapped to an 18 x 36 grid of 10-degree latitude /
longitude cells (~650 distinct keys, ~1M tuples per stream).  That dataset
is not redistributable here, so this module generates a synthetic
equivalent that preserves every property the join algorithms can observe:

* keys are cells of the same 18 x 36 grid;
* sensor activity is heavily spatially skewed: reports cluster around a
  few dozen "population centres" (dense observation regions), yielding a
  heavy-tailed key-frequency distribution like real station density;
* the two streams ("years") have nearly identical distributions (the
  paper observes PROBV ≈ PROB and a stable 50/50 memory split because of
  this), controlled by a small year-to-year perturbation.

Only the key distribution matters to the algorithms under test, so
matching these properties preserves the experiment's behaviour; payload
attributes (cloud cover, brightness, solar altitude) are generated for
example realism only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .tuples import StreamPair
from .zipf import AliasSampler

#: The paper's grid: 10-degree cells covering the globe.
GRID_ROWS = 18
GRID_COLS = 36
NUM_CELLS = GRID_ROWS * GRID_COLS


@dataclass(frozen=True)
class GridCell:
    """One 10-degree grid cell, identified by ``cell_id`` = row*36 + col."""

    cell_id: int

    @property
    def row(self) -> int:
        return self.cell_id // GRID_COLS

    @property
    def col(self) -> int:
        return self.cell_id % GRID_COLS

    @property
    def latitude(self) -> float:
        """Centre latitude in degrees (-85 .. +85)."""
        return -90.0 + 10.0 * self.row + 5.0

    @property
    def longitude(self) -> float:
        """Centre longitude in degrees (-175 .. +175)."""
        return -180.0 + 10.0 * self.col + 5.0


def cell_id_for(latitude: float, longitude: float) -> int:
    """Snap a coordinate to its grid cell id (the paper's key mapping)."""
    if not -90.0 <= latitude <= 90.0:
        raise ValueError(f"latitude out of range: {latitude}")
    if not -180.0 <= longitude <= 180.0:
        raise ValueError(f"longitude out of range: {longitude}")
    row = min(int((latitude + 90.0) // 10.0), GRID_ROWS - 1)
    col = min(int((longitude + 180.0) // 10.0), GRID_COLS - 1)
    return row * GRID_COLS + col


def _cell_weights(
    rng: np.random.Generator,
    centers: int,
    concentration: float,
    tail_weight: float,
) -> np.ndarray:
    """Spatially clustered sensor-activity weights over the grid.

    A mixture of Gaussian kernels around random "population centres",
    damped towards the poles, raised to ``concentration`` to reproduce the
    heavy concentration of real observation density (most reports come
    from a few dozen dense regions), plus a small tail so nearly every
    cell reports occasionally — the paper observed ~650 distinct cells.
    """
    rows, cols = np.meshgrid(np.arange(GRID_ROWS), np.arange(GRID_COLS), indexing="ij")
    weights = np.zeros((GRID_ROWS, GRID_COLS))
    for _ in range(centers):
        c_row = rng.uniform(2, GRID_ROWS - 2)
        c_col = rng.uniform(0, GRID_COLS)
        intensity = rng.lognormal(mean=0.0, sigma=1.0)
        spread = rng.uniform(0.8, 2.5)
        d_row = rows - c_row
        # Longitude wraps around the globe.
        d_col = np.minimum(np.abs(cols - c_col), GRID_COLS - np.abs(cols - c_col))
        weights += intensity * np.exp(-(d_row**2 + d_col**2) / (2 * spread**2))

    # Polar damping: observation density falls off towards the poles.
    latitude_factor = np.cos(np.deg2rad(np.abs(-85.0 + 10.0 * rows))) + 0.05
    weights *= latitude_factor

    sharpened = weights.ravel() ** concentration
    return sharpened + tail_weight * sharpened.mean()


def weather_pair(
    length: int,
    *,
    seed: int = 0,
    centers: int = 30,
    concentration: float = 2.0,
    tail_weight: float = 0.03,
    year_noise: float = 0.08,
    name: Optional[str] = None,
) -> StreamPair:
    """Two "years" of synthetic cloud reports keyed by grid cell.

    Parameters
    ----------
    length:
        Tuples per stream.  The paper uses ~1M; the figure-7/8 benches use
        a scaled-down default and accept ``REPRO_SCALE=full`` for the
        full-size run.
    seed:
        Reproducibility seed.
    centers, concentration, tail_weight:
        Shape of the spatial activity distribution; the defaults are
        calibrated so the top cells carry real-station-density-like mass
        (PROB reaches the high-80s percent of EXACT at M = w, echoing
        the paper's ">90% with 50% of the memory") while ~620+ distinct
        cells still appear in a 50k-report sample (paper: ~650).
    year_noise:
        Log-normal sigma of the year-over-year perturbation; small values
        keep the two streams' distributions nearly identical, which is
        what the paper's dataset exhibits.
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    rng = np.random.default_rng(seed)

    weights_year1 = _cell_weights(rng, centers, concentration, tail_weight)
    perturbation = rng.lognormal(mean=0.0, sigma=year_noise, size=NUM_CELLS)
    weights_year2 = weights_year1 * perturbation

    p1 = weights_year1 / weights_year1.sum()
    p2 = weights_year2 / weights_year2.sum()

    r_keys = AliasSampler(p1, rng).sample(length).tolist()
    s_keys = AliasSampler(p2, rng).sample(length).tolist()

    return StreamPair(
        r=r_keys,
        s=s_keys,
        name=name or f"weather(n={length}, seed={seed})",
        metadata={
            "r_probabilities": p1,
            "s_probabilities": p2,
            "domain_size": NUM_CELLS,
            "grid": (GRID_ROWS, GRID_COLS),
            "seed": seed,
        },
    )


def weather_records(keys, *, seed: int = 0):
    """Full synthetic cloud-report records for a key sequence.

    Yields dictionaries with the attributes the paper lists (brightness,
    cloud cover, solar altitude, position); used by the weather example to
    demonstrate payload-carrying joins.
    """
    rng = np.random.default_rng(seed)
    for t, key in enumerate(keys):
        cell = GridCell(int(key))
        yield {
            "time": t,
            "cell_id": int(key),
            "latitude": cell.latitude + rng.uniform(-5, 5),
            "longitude": cell.longitude + rng.uniform(-5, 5),
            "sky_brightness": float(rng.uniform(0, 1)),
            "cloud_cover_octas": int(rng.integers(0, 9)),
            "solar_altitude_deg": float(rng.uniform(-90, 90)),
        }
