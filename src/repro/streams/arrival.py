"""Arrival processes.

The paper's main model is synchronous: exactly one tuple per stream per
time unit.  The slow-CPU extension (Section 2.1, examined as future work
in Section 6) needs bursty arrivals so the input queue actually fills;
this module provides the schedules used there and by the archive
("day/night") load-smoothing example.

A *schedule* is a list of per-tick arrival counts for one stream.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def synchronous_schedule(length: int) -> list[int]:
    """One arrival per tick — the paper's default model."""
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    return [1] * length


def poisson_schedule(length: int, rate: float, *, seed: int = 0) -> list[int]:
    """Poisson(rate) arrivals per tick."""
    if rate < 0:
        raise ValueError(f"rate must be non-negative, got {rate}")
    rng = np.random.default_rng(seed)
    return rng.poisson(rate, size=length).astype(int).tolist()


def day_night_schedule(
    length: int,
    *,
    day_rate: float,
    night_rate: float,
    period: int,
    day_fraction: float = 0.5,
    seed: int = 0,
) -> list[int]:
    """Alternating peak/off-peak Poisson arrivals.

    Models the paper's retail scenario: high daytime activity, low
    nighttime activity during which the archive is consulted to refine
    earlier approximate answers ("semantic load smoothing").
    """
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    if not 0.0 <= day_fraction <= 1.0:
        raise ValueError(f"day_fraction must be in [0, 1], got {day_fraction}")
    rng = np.random.default_rng(seed)
    day_ticks = int(period * day_fraction)
    schedule: list[int] = []
    for tick in range(length):
        rate = day_rate if (tick % period) < day_ticks else night_rate
        schedule.append(int(rng.poisson(rate)))
    return schedule


def is_day(tick: int, *, period: int, day_fraction: float = 0.5) -> bool:
    """Whether ``tick`` falls in the peak-load phase of the cycle."""
    return (tick % period) < int(period * day_fraction)


def total_arrivals(schedule: Sequence[int]) -> int:
    """Total number of tuples delivered by a schedule."""
    return int(sum(schedule))


def clip_schedule(schedule: Sequence[int], max_total: int) -> list[int]:
    """Truncate a schedule so it delivers at most ``max_total`` tuples.

    Random schedules (Poisson) can overshoot the finite key sequence they
    are paired with; clipping keeps the pairing well-defined.
    """
    if max_total < 0:
        raise ValueError(f"max_total must be non-negative, got {max_total}")
    remaining = max_total
    clipped: list[int] = []
    for count in schedule:
        take = min(int(count), remaining)
        clipped.append(take)
        remaining -= take
    return clipped
