"""Persisting and replaying recorded stream pairs.

Experiments are reproducible from seeds alone, but saving the concrete
streams makes runs auditable and lets users replay external datasets
(e.g. the real weather data, if they obtain it) through the engine.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from .tuples import StreamPair

_HEADER = ("time", "r_key", "s_key")

#: Format tag and version of the JSONL recording format.  The first
#: line of a recording is a header object ``{"format": ..., "version":
#: ..., "name": ..., "length": ...}``; each following line is one tick,
#: ``{"t": <tick>, "r": [keys...], "s": [keys...]}``.  Unlike the CSV
#: format (exactly one arrival per side per tick), JSONL ticks carry
#: arrival *batches*, so bursty recorded traffic replays faithfully
#: through ``repro serve``.
JSONL_FORMAT = "repro.streams"
JSONL_VERSION = 1


def save_pair(pair: StreamPair, path: Union[str, Path]) -> None:
    """Write a stream pair to CSV with columns ``time, r_key, s_key``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for t, (r_key, s_key) in enumerate(zip(pair.r, pair.s)):
            writer.writerow((t, r_key, s_key))


def load_pair(path: Union[str, Path], *, key_type=int, name: str = "") -> StreamPair:
    """Read a stream pair previously written by :func:`save_pair`.

    Parameters
    ----------
    key_type:
        Constructor applied to each key column (``int`` by default; pass
        ``str`` for non-numeric join attributes).

    Raises
    ------
    ValueError
        On a malformed header or non-contiguous time column, which would
        silently corrupt window semantics if accepted.
    """
    path = Path(path)
    r_keys = []
    s_keys = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != _HEADER:
            raise ValueError(f"{path}: expected header {_HEADER}, got {header}")
        for expected_time, row in enumerate(reader):
            if len(row) != 3:
                raise ValueError(f"{path}: malformed row {row!r}")
            if int(row[0]) != expected_time:
                raise ValueError(
                    f"{path}: time column must be contiguous from 0, "
                    f"got {row[0]} at position {expected_time}"
                )
            r_keys.append(key_type(row[1]))
            s_keys.append(key_type(row[2]))
    return StreamPair(r=r_keys, s=s_keys, name=name or path.stem)


def save_pair_jsonl(pair: StreamPair, path: Union[str, Path]) -> None:
    """Write a stream pair to the versioned JSONL recording format.

    Round-trips with :func:`load_pair_jsonl`; the output also replays
    incrementally through :class:`repro.streams.sources.ReplaySource`
    without being materialized.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "format": JSONL_FORMAT,
        "version": JSONL_VERSION,
        "name": pair.name,
        "length": len(pair),
    }
    with path.open("w") as handle:
        handle.write(json.dumps(header) + "\n")
        for t, (r_key, s_key) in enumerate(zip(pair.r, pair.s)):
            handle.write(json.dumps({"t": t, "r": [r_key], "s": [s_key]}) + "\n")


def load_pair_jsonl(
    path: Union[str, Path], *, key_type=int, name: str = ""
) -> StreamPair:
    """Read a stream pair previously written by :func:`save_pair_jsonl`.

    Raises
    ------
    ValueError
        On a missing/foreign header, an unsupported version, a
        non-contiguous tick column, or ticks carrying anything other
        than one arrival per side (pairs are synchronous by definition;
        bursty recordings replay through ``ReplaySource`` instead).
    """
    path = Path(path)
    r_keys = []
    s_keys = []
    with path.open() as handle:
        first = handle.readline()
        if not first:
            raise ValueError(f"{path}: empty replay file")
        header = json.loads(first)
        if header.get("format") != JSONL_FORMAT:
            raise ValueError(
                f"{path}: expected format {JSONL_FORMAT!r}, got {header.get('format')!r}"
            )
        if header.get("version") != JSONL_VERSION:
            raise ValueError(
                f"{path}: unsupported replay version {header.get('version')!r} "
                f"(supported: {JSONL_VERSION})"
            )
        for expected_tick, line in enumerate(handle):
            if not line.strip():
                continue
            event = json.loads(line)
            if event.get("t") != expected_tick:
                raise ValueError(
                    f"{path}: tick column must be contiguous from 0, "
                    f"got {event.get('t')} at position {expected_tick}"
                )
            r_batch = event.get("r", ())
            s_batch = event.get("s", ())
            if len(r_batch) != 1 or len(s_batch) != 1:
                raise ValueError(
                    f"{path}: tick {expected_tick} carries {len(r_batch)}/"
                    f"{len(s_batch)} arrivals; a StreamPair needs exactly one "
                    f"per side — replay bursty recordings via ReplaySource"
                )
            r_keys.append(key_type(r_batch[0]))
            s_keys.append(key_type(s_batch[0]))
    declared = header.get("length")
    if declared is not None and declared != len(r_keys):
        raise ValueError(
            f"{path}: header declares length {declared} but file has "
            f"{len(r_keys)} ticks"
        )
    return StreamPair(r=r_keys, s=s_keys, name=name or str(header.get("name") or path.stem))
