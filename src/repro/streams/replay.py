"""Persisting and replaying recorded stream pairs.

Experiments are reproducible from seeds alone, but saving the concrete
streams makes runs auditable and lets users replay external datasets
(e.g. the real weather data, if they obtain it) through the engine.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from .tuples import StreamPair

_HEADER = ("time", "r_key", "s_key")


def save_pair(pair: StreamPair, path: Union[str, Path]) -> None:
    """Write a stream pair to CSV with columns ``time, r_key, s_key``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_HEADER)
        for t, (r_key, s_key) in enumerate(zip(pair.r, pair.s)):
            writer.writerow((t, r_key, s_key))


def load_pair(path: Union[str, Path], *, key_type=int, name: str = "") -> StreamPair:
    """Read a stream pair previously written by :func:`save_pair`.

    Parameters
    ----------
    key_type:
        Constructor applied to each key column (``int`` by default; pass
        ``str`` for non-numeric join attributes).

    Raises
    ------
    ValueError
        On a malformed header or non-contiguous time column, which would
        silently corrupt window semantics if accepted.
    """
    path = Path(path)
    r_keys = []
    s_keys = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != _HEADER:
            raise ValueError(f"{path}: expected header {_HEADER}, got {header}")
        for expected_time, row in enumerate(reader):
            if len(row) != 3:
                raise ValueError(f"{path}: malformed row {row!r}")
            if int(row[0]) != expected_time:
                raise ValueError(
                    f"{path}: time column must be contiguous from 0, "
                    f"got {row[0]} at position {expected_time}"
                )
            r_keys.append(key_type(row[1]))
            s_keys.append(key_type(row[2]))
    return StreamPair(r=r_keys, s=s_keys, name=name or path.stem)
