"""Columnar micro-batch encoding of a stream pair.

The engines historically pulled one tuple per iteration out of
``pair.r`` / ``pair.s`` — every tick paid Python-level indexing and loop
overhead.  This module re-encodes a :class:`~repro.streams.tuples.StreamPair`
as *struct-of-arrays chunks*: per-side key columns sliced into
fixed-size :class:`StreamChunk` windows, so a batched execution path can
amortise per-tuple costs over a whole chunk (see
``repro.core.batched`` and ``JoinEngine._run_exact_batched``).

Column representation
---------------------
Integer key streams (every synthetic workload) are packed into
``array('q')`` columns — contiguous C ``long long`` storage, cheap to
slice and to expand back into lists for the hot loop.  When numpy is
available the whole-stream column is built through ``numpy.asarray``
(the fast lane: one C conversion instead of a Python loop per element);
non-integer keys (e.g. string keys from user-supplied pairs) fall back
to plain tuples.  Either way :meth:`StreamChunk.r_list` /
:meth:`StreamChunk.s_list` hand the hot loop ordinary Python lists of
ordinary Python objects, so dictionary probes hash native ints, not
numpy scalars.

The encoding is pure layout — no semantics live here.  A batched run
must remain bit-identical to the per-tuple run; chunk boundaries are
invisible in every result field.
"""

from __future__ import annotations

from array import array
from typing import Iterator, Optional, Sequence

from .tuples import StreamPair

try:  # pragma: no cover - exercised via HAVE_NUMPY on both kinds of host
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "HAVE_NUMPY",
    "StreamChunk",
    "encode_columns",
    "encode_chunks",
    "resolve_batch_size",
]

#: Chunk size when the caller enables batching without picking one.
#: Large enough to amortise per-chunk overhead, small enough that the
#: expiry history stays cache-warm at the paper's window sizes.
DEFAULT_BATCH_SIZE = 1024


class StreamChunk:
    """One micro-batch of both streams, in struct-of-arrays layout.

    ``start`` is the global tick of the chunk's first element; the chunk
    covers ticks ``start .. start + length - 1``.  ``r_keys`` / ``s_keys``
    are column slices (``array('q')``, numpy array, or tuple — see module
    docstring); the ``*_list`` accessors expand them to plain lists for
    the hot loop.
    """

    __slots__ = ("start", "length", "r_keys", "s_keys")

    def __init__(self, start: int, r_keys, s_keys) -> None:
        self.start = start
        self.length = len(r_keys)
        self.r_keys = r_keys
        self.s_keys = s_keys

    def r_list(self) -> list:
        return _as_list(self.r_keys)

    def s_list(self) -> list:
        return _as_list(self.s_keys)

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StreamChunk(start={self.start}, length={self.length})"


def _as_list(column) -> list:
    """Expand a column slice to a plain Python list (native objects)."""
    tolist = getattr(column, "tolist", None)
    if tolist is not None:  # array('q') and numpy both convert in C
        return tolist()
    return list(column)


def _encode_column(keys: Sequence):
    """Pack one stream's keys into the densest column that fits.

    Integer keys become ``array('q')`` (via numpy when available — one
    vectorised conversion); anything else is kept as an opaque tuple.
    """
    if HAVE_NUMPY:
        try:
            column = _np.asarray(keys)
        except (ValueError, TypeError):
            return tuple(keys)
        if column.dtype.kind in ("i", "u") and column.ndim == 1:
            # Keep the numpy column: chunk slices are O(1) views and
            # tolist() expands to native ints in C.
            return column
        return tuple(keys)
    try:
        return array("q", keys)
    except (TypeError, OverflowError):
        return tuple(keys)


def encode_columns(pair: StreamPair) -> tuple:
    """Whole-stream ``(r_column, s_column)`` for a pair (no chunking)."""
    return _encode_column(pair.r), _encode_column(pair.s)


def resolve_batch_size(length: int, batch_size: Optional[int] = None) -> int:
    """Adapt the requested chunk size to the stream.

    ``None`` picks :data:`DEFAULT_BATCH_SIZE`; anything else is clamped
    to ``[1, length]`` (a zero-length stream resolves to 1 so slicing
    stays well-formed).
    """
    if batch_size is None:
        batch_size = DEFAULT_BATCH_SIZE
    elif batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    return max(1, min(batch_size, length)) if length else 1


def encode_chunks(
    pair: StreamPair, batch_size: Optional[int] = None
) -> Iterator[StreamChunk]:
    """Slice a pair into :class:`StreamChunk` micro-batches.

    The final chunk carries the remainder; chunk boundaries never affect
    results (only amortisation granularity).
    """
    length = len(pair)
    size = resolve_batch_size(length, batch_size)
    r_column, s_column = encode_columns(pair)
    for start in range(0, length, size):
        stop = start + size
        yield StreamChunk(start, r_column[start:stop], s_column[start:stop])
