"""Pull-based stream sources: the incremental ingestion contract.

The paper's setting is joins over *unbounded* streams, where the engine
can never hold the whole input.  A :class:`Source` models that contract:
it is an iterable of per-tick arrival events, where each event is a
``(r_keys, s_keys)`` pair of tuples — the join-attribute values arriving
on R and S during that tick (either side may be empty on a tick, and
bursty sources may deliver several arrivals per side per tick).

Sources are **restartable** (each ``__iter__`` call builds a fresh,
deterministic iterator from the stored configuration) and **picklable**
(they carry configuration, not iterator state), so the sharded runtime
can ship them to worker processes and the fault-tolerant retry path can
simply re-iterate after a failure.

:class:`PairSource` adapts a finite materialized
:class:`~repro.streams.tuples.StreamPair` to the protocol so every
existing caller keeps working; the generator sources
(:class:`ZipfSource`, :class:`DriftingZipfSource`, :class:`PoissonSource`)
are unbounded unless given an explicit ``length``, and
:class:`ReplaySource` streams recorded traffic from the JSONL format of
:mod:`repro.streams.replay` without materializing it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Hashable, Iterable, Iterator, Optional, Protocol, Union, runtime_checkable

import numpy as np

from .arrival import poisson_schedule
from .generators import _permutations_for
from .replay import JSONL_FORMAT, JSONL_VERSION, load_pair
from .tuples import StreamPair
from .zipf import ZipfDistribution

__all__ = [
    "DriftingZipfSource",
    "PairSource",
    "PoissonSource",
    "ReplaySource",
    "Source",
    "SourceEvent",
    "ZipfSource",
    "as_source",
    "take_pair",
]

#: One tick of arrivals: the R-side keys and the S-side keys.
SourceEvent = tuple[tuple, tuple]

#: Sampling block size for the generator sources.  Blocks bound the
#: working memory of an unbounded iteration while amortising the numpy
#: sampling cost; the value never affects the emitted key sequence
#: beyond block-boundary placement of the underlying RNG draws, which is
#: itself deterministic for a fixed block size.
_BLOCK = 4096

_EMPTY: tuple = ()


@runtime_checkable
class Source(Protocol):
    """Iterable of per-tick ``(r_keys, s_keys)`` arrival events.

    ``length`` is the number of ticks the source will emit, or ``None``
    for an unbounded source.  Iteration must be restartable: every
    ``__iter__`` call yields the same deterministic event sequence.
    """

    @property
    def length(self) -> Optional[int]:  # pragma: no cover - protocol
        ...

    def __iter__(self) -> Iterator[SourceEvent]:  # pragma: no cover - protocol
        ...


class PairSource:
    """Adapter presenting a finite :class:`StreamPair` as a source.

    Emits exactly one arrival per side per tick — the paper's
    synchronous model — so the engines' pair-based fast paths and the
    incremental path see identical traffic.
    """

    #: One arrival per side per tick, always (the synchronous model) —
    #: lets the engines' columnar policy lanes re-chunk the stream.
    unit_rate = True

    def __init__(self, pair: StreamPair) -> None:
        if not isinstance(pair, StreamPair):
            raise TypeError(f"PairSource expects a StreamPair, got {type(pair).__name__}")
        self.pair = pair

    @property
    def length(self) -> int:
        return len(self.pair)

    @property
    def name(self) -> str:
        return self.pair.name

    def __iter__(self) -> Iterator[SourceEvent]:
        for r_key, s_key in zip(self.pair.r, self.pair.s):
            yield ((r_key,), (s_key,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PairSource({self.pair.name!r}, length={len(self.pair)})"


def _block_counts(rate: Optional[float], seed: int, block_index: int) -> list[int]:
    """Per-tick arrival counts for one block of one stream.

    ``rate=None`` is the synchronous model (exactly one arrival per
    tick); otherwise counts come from the Poisson schedule of
    :mod:`repro.streams.arrival`, re-seeded per block so the sequence is
    restartable without carrying RNG state.
    """
    if rate is None:
        return [1] * _BLOCK
    return poisson_schedule(_BLOCK, rate, seed=seed + block_index)


def _iter_generator_events(
    dist_r: ZipfDistribution,
    dist_s: ZipfDistribution,
    *,
    seed: int,
    rate: Optional[float],
    length: Optional[int],
    start_tick: int = 0,
) -> Iterator[SourceEvent]:
    """Stream events from a pair of stationary distributions.

    Keys are sampled block-wise (bounded working memory) from
    deterministic per-side RNGs; when ``rate`` is set, per-tick arrival
    counts come from block-seeded Poisson schedules.
    """
    rng_r = np.random.default_rng([seed, 211, start_tick])
    rng_s = np.random.default_rng([seed, 613, start_tick])
    emitted = 0
    block_index = 0
    while length is None or emitted < length:
        counts_r = _block_counts(rate, seed + 5, block_index)
        counts_s = _block_counts(rate, seed + 11, block_index)
        keys_r = iter(dist_r.sample(int(sum(counts_r)), rng_r).tolist())
        keys_s = iter(dist_s.sample(int(sum(counts_s)), rng_s).tolist())
        for n_r, n_s in zip(counts_r, counts_s):
            r_batch = tuple(next(keys_r) for _ in range(n_r)) if n_r else _EMPTY
            s_batch = tuple(next(keys_s) for _ in range(n_s)) if n_s else _EMPTY
            yield (r_batch, s_batch)
            emitted += 1
            if length is not None and emitted >= length:
                return
        block_index += 1


class ZipfSource:
    """Unbounded iid Zipf arrivals — the streaming analogue of
    :func:`~repro.streams.generators.zipf_pair`.

    With ``rate=None`` (default) one tuple arrives per stream per tick,
    the paper's synchronous model.  ``length`` bounds the source for
    tests and finite runs; ``None`` streams forever.

    The true per-stream distributions are exposed via
    :meth:`distributions` so oracle estimators remain available without
    scanning the (unscannable) stream.
    """

    def __init__(
        self,
        domain_size: int,
        skew: float,
        *,
        skew_s: Optional[float] = None,
        correlation: str = "uncorrelated",
        rate: Optional[float] = None,
        seed: int = 0,
        length: Optional[int] = None,
    ) -> None:
        if length is not None and length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        if rate is not None and rate < 0:
            raise ValueError(f"rate must be non-negative, got {rate}")
        self.domain_size = domain_size
        self.skew = float(skew)
        self.skew_s = float(skew if skew_s is None else skew_s)
        self.correlation = correlation
        self.rate = rate
        self.seed = seed
        self._length = length
        # Permutations are drawn exactly as zipf_pair draws them so the
        # frequency assignments (though not the sampled sequences) line
        # up with the materialized generator for the same seed.
        rng = np.random.default_rng(seed)
        perm_r, perm_s = _permutations_for(correlation, domain_size, rng)
        self._dist_r = ZipfDistribution(domain_size, self.skew, value_permutation=perm_r)
        self._dist_s = ZipfDistribution(domain_size, self.skew_s, value_permutation=perm_s)

    @property
    def length(self) -> Optional[int]:
        return self._length

    @property
    def unit_rate(self) -> bool:
        """Exactly one arrival per side per tick (no Poisson schedule)."""
        return self.rate is None

    @property
    def name(self) -> str:
        bound = "unbounded" if self._length is None else f"length={self._length}"
        return (
            f"zipf-source(z_r={self.skew}, z_s={self.skew_s}, "
            f"d={self.domain_size}, {bound})"
        )

    def distributions(self) -> tuple[ZipfDistribution, ZipfDistribution]:
        """The true ``(R, S)`` generating distributions (oracle tables)."""
        return self._dist_r, self._dist_s

    def __iter__(self) -> Iterator[SourceEvent]:
        return _iter_generator_events(
            self._dist_r,
            self._dist_s,
            seed=self.seed,
            rate=self.rate,
            length=self._length,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZipfSource({self.name})"


class PoissonSource(ZipfSource):
    """Zipf-keyed arrivals with Poisson per-tick counts.

    The bursty analogue of pairing :func:`zipf_pair` with
    :func:`~repro.streams.arrival.poisson_schedule`: each tick delivers
    ``Poisson(rate)`` tuples on each side, keys iid Zipf.  Feeds the
    asynchronous engine, whose input queues only matter under bursts.
    """

    def __init__(
        self,
        domain_size: int,
        skew: float,
        rate: float,
        *,
        skew_s: Optional[float] = None,
        correlation: str = "uncorrelated",
        seed: int = 0,
        length: Optional[int] = None,
    ) -> None:
        if rate is None:
            raise ValueError("PoissonSource requires a rate")
        super().__init__(
            domain_size,
            skew,
            skew_s=skew_s,
            correlation=correlation,
            rate=rate,
            seed=seed,
            length=length,
        )

    @property
    def name(self) -> str:
        bound = "unbounded" if self._length is None else f"length={self._length}"
        return (
            f"poisson-source(rate={self.rate}, z={self.skew}, "
            f"d={self.domain_size}, {bound})"
        )


class DriftingZipfSource:
    """Zipf arrivals whose frequent values change every ``phase_length``
    ticks — the unbounded analogue of
    :func:`~repro.streams.generators.drifting_zipf_pair`.

    Each phase draws fresh uncorrelated value permutations, so a static
    frequency table built in one phase misranks tuples in the next; the
    online estimators are expected to track the shift.
    """

    #: Always the synchronous model: one arrival per side per tick.
    unit_rate = True

    def __init__(
        self,
        domain_size: int,
        skew: float,
        *,
        phase_length: int,
        seed: int = 0,
        length: Optional[int] = None,
    ) -> None:
        if phase_length <= 0:
            raise ValueError(f"phase_length must be positive, got {phase_length}")
        if length is not None and length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        self.domain_size = domain_size
        self.skew = float(skew)
        self.phase_length = phase_length
        self.seed = seed
        self._length = length

    @property
    def length(self) -> Optional[int]:
        return self._length

    @property
    def name(self) -> str:
        bound = "unbounded" if self._length is None else f"length={self._length}"
        return (
            f"drifting-zipf-source(z={self.skew}, d={self.domain_size}, "
            f"phase={self.phase_length}, {bound})"
        )

    def phase_distributions(self, phase: int) -> tuple[ZipfDistribution, ZipfDistribution]:
        """The true ``(R, S)`` distributions governing one phase."""
        rng = np.random.default_rng([self.seed, phase])
        perm_r, perm_s = _permutations_for("uncorrelated", self.domain_size, rng)
        return (
            ZipfDistribution(self.domain_size, self.skew, value_permutation=perm_r),
            ZipfDistribution(self.domain_size, self.skew, value_permutation=perm_s),
        )

    def __iter__(self) -> Iterator[SourceEvent]:
        emitted = 0
        phase = 0
        while self._length is None or emitted < self._length:
            dist_r, dist_s = self.phase_distributions(phase)
            span = self.phase_length
            if self._length is not None:
                span = min(span, self._length - emitted)
            yield from _iter_generator_events(
                dist_r,
                dist_s,
                seed=self.seed,
                rate=None,
                length=span,
                start_tick=phase,
            )
            emitted += span
            phase += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DriftingZipfSource({self.name})"


class ReplaySource:
    """Stream recorded traffic from a JSONL file without materializing it.

    Reads the versioned JSONL format of
    :func:`repro.streams.replay.save_pair_jsonl` line by line, so
    arbitrarily long recordings replay in bounded memory.  Plain CSV
    recordings (:func:`~repro.streams.replay.save_pair`) are loaded
    eagerly through :func:`~repro.streams.replay.load_pair` and adapted.
    """

    def __init__(self, path: Union[str, Path], *, key_type=int) -> None:
        self.path = Path(path)
        self.key_type = key_type
        self._header = self._read_header()

    def _read_header(self) -> dict:
        if self.path.suffix == ".csv":
            return {"format": "csv", "length": None}
        with self.path.open() as handle:
            first = handle.readline()
        if not first:
            raise ValueError(f"{self.path}: empty replay file")
        header = json.loads(first)
        if header.get("format") != JSONL_FORMAT:
            raise ValueError(
                f"{self.path}: expected format {JSONL_FORMAT!r}, "
                f"got {header.get('format')!r}"
            )
        if header.get("version") != JSONL_VERSION:
            raise ValueError(
                f"{self.path}: unsupported replay version {header.get('version')!r} "
                f"(supported: {JSONL_VERSION})"
            )
        return header

    @property
    def length(self) -> Optional[int]:
        return self._header.get("length")

    @property
    def name(self) -> str:
        return str(self._header.get("name") or self.path.stem)

    def __iter__(self) -> Iterator[SourceEvent]:
        if self._header.get("format") == "csv":
            yield from PairSource(load_pair(self.path, key_type=self.key_type))
            return
        key_type = self.key_type
        with self.path.open() as handle:
            handle.readline()  # header, validated at construction
            for expected_tick, line in enumerate(handle):
                if not line.strip():
                    continue
                event = json.loads(line)
                if event.get("t") != expected_tick:
                    raise ValueError(
                        f"{self.path}: tick column must be contiguous from 0, "
                        f"got {event.get('t')} at position {expected_tick}"
                    )
                yield (
                    tuple(key_type(k) for k in event.get("r", ())),
                    tuple(key_type(k) for k in event.get("s", ())),
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReplaySource({str(self.path)!r})"


def as_source(obj: Union[Source, StreamPair]) -> Source:
    """Coerce a :class:`StreamPair` or source to the source protocol."""
    if isinstance(obj, StreamPair):
        return PairSource(obj)
    if hasattr(obj, "__iter__") and hasattr(obj, "length"):
        return obj
    raise TypeError(
        f"expected a StreamPair or a Source (iterable with a length "
        f"attribute), got {type(obj).__name__}"
    )


def take_pair(
    source: Union[Source, Iterable[SourceEvent]],
    ticks: Optional[int] = None,
    *,
    name: str = "",
) -> StreamPair:
    """Materialize a synchronous source prefix into a :class:`StreamPair`.

    Only valid for sources emitting exactly one arrival per side per
    tick (the paper's model); bursty events raise.  Used by tests and by
    callers that need a finite, indexable view of a generator source.
    """
    r_keys: list[Hashable] = []
    s_keys: list[Hashable] = []
    for t, (r_batch, s_batch) in enumerate(iter(source)):
        if ticks is not None and t >= ticks:
            break
        if len(r_batch) != 1 or len(s_batch) != 1:
            raise ValueError(
                f"take_pair requires one arrival per side per tick, got "
                f"{len(r_batch)}/{len(s_batch)} at tick {t}"
            )
        r_keys.append(r_batch[0])
        s_keys.append(s_batch[0])
    return StreamPair(r=r_keys, s=s_keys, name=name or getattr(source, "name", "source"))
