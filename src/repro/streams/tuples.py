"""Stream tuple model.

The paper's simulation model is deliberately minimal: one tuple arrives on
each of the two streams R and S per time unit, and only the join attribute
value matters for the algorithms.  The engine therefore works on plain
key sequences (:class:`StreamPair`); :class:`StreamTuple` is the richer
record used by examples, the archive, and result materialisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Sequence

#: Canonical stream names used throughout the library.
STREAM_R = "R"
STREAM_S = "S"


@dataclass(frozen=True, slots=True)
class StreamTuple:
    """A single tuple of one input stream.

    Attributes
    ----------
    stream:
        ``"R"`` or ``"S"``.
    arrival:
        Discrete arrival time (one tuple per stream per time unit).
    key:
        Join attribute value.
    payload:
        Opaque extra attributes carried through the join.
    """

    stream: str
    arrival: int
    key: Hashable
    payload: tuple = ()

    def expires_at(self, window: int) -> int:
        """First time instant at which this tuple is outside the window.

        A tuple arriving at ``i`` is in the window at time ``t`` iff
        ``t - w < i <= t``, i.e. while ``t < i + w``.
        """
        return self.arrival + window


@dataclass(frozen=True)
class JoinResultTuple:
    """An output pair of the sliding-window equi-join.

    ``emitted_at`` is the arrival time of the later partner, which is the
    instant the pair is produced (the earlier tuple must still be in the
    join memory then).
    """

    r_arrival: int
    s_arrival: int
    key: Hashable

    @property
    def emitted_at(self) -> int:
        return max(self.r_arrival, self.s_arrival)


@dataclass
class StreamPair:
    """Two synchronised finite stream prefixes R and S.

    ``r[i]`` and ``s[i]`` are the join-attribute values of the tuples
    arriving at time ``i`` on R and S respectively (the paper's ``r(i)``
    and ``s(i)``).  Both sequences always have equal length.
    """

    r: Sequence[Hashable]
    s: Sequence[Hashable]
    name: str = "streams"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.r) != len(self.s):
            raise ValueError(
                f"R and S must have equal length, got {len(self.r)} and {len(self.s)}"
            )

    def __len__(self) -> int:
        return len(self.r)

    @property
    def length(self) -> int:
        return len(self.r)

    def domain(self) -> set:
        """All distinct join-attribute values appearing on either stream."""
        return set(self.r) | set(self.s)

    def tuples(self) -> Iterator[tuple[StreamTuple, StreamTuple]]:
        """Iterate arrival pairs as full :class:`StreamTuple` records."""
        for i, (rk, sk) in enumerate(zip(self.r, self.s)):
            yield (
                StreamTuple(STREAM_R, i, rk),
                StreamTuple(STREAM_S, i, sk),
            )

    def prefix(self, length: int) -> "StreamPair":
        """The first ``length`` arrivals of both streams."""
        return StreamPair(
            r=list(self.r[:length]),
            s=list(self.s[:length]),
            name=f"{self.name}[:{length}]",
            metadata=dict(self.metadata),
        )

    def swapped(self) -> "StreamPair":
        """The pair with the roles of R and S exchanged."""
        return StreamPair(
            r=list(self.s),
            s=list(self.r),
            name=f"{self.name}.swapped",
            metadata=dict(self.metadata),
        )


def exact_join_size(pair: StreamPair, window: int, *, count_from: int = 0) -> int:
    """Size of the exact sliding-window join of a stream pair.

    Counts pairs ``(r(i), s(j))`` with ``r(i) == s(j)`` and
    ``|i - j| < window`` whose emission time ``max(i, j)`` is at least
    ``count_from`` (used to skip the warmup phase, paper Section 4.1).

    This is the reference value the paper's EXACT curve plots; it is
    computed directly from the streams without simulating memory.
    """
    return sum(1 for _ in iterate_exact_join(pair, window, count_from=count_from))


def iterate_exact_join(
    pair: StreamPair, window: int, *, count_from: int = 0
) -> Iterator[JoinResultTuple]:
    """Yield every pair of the exact sliding-window join.

    Implemented with per-key indexes of recent arrivals so the cost is
    proportional to the output size rather than ``len(pair) * window``.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")

    from collections import deque

    r_recent: dict = {}
    s_recent: dict = {}
    for t, (rk, sk) in enumerate(zip(pair.r, pair.s)):
        horizon = t - window  # arrivals <= horizon have expired
        for bucket in (s_recent.get(rk), r_recent.get(sk)):
            if bucket is not None:
                while bucket and bucket[0] <= horizon:
                    bucket.popleft()
        if t >= count_from:
            # r(t) against earlier S tuples, s(t) against earlier R tuples.
            for j in s_recent.get(rk, ()):
                yield JoinResultTuple(r_arrival=t, s_arrival=j, key=rk)
            for i in r_recent.get(sk, ()):
                yield JoinResultTuple(r_arrival=i, s_arrival=t, key=sk)
            if rk == sk:
                yield JoinResultTuple(r_arrival=t, s_arrival=t, key=rk)
        r_recent.setdefault(rk, deque()).append(t)
        s_recent.setdefault(sk, deque()).append(t)
