"""Synthetic workload generators for the paper's experiments.

All of Section 4's synthetic workloads are iid draws from Zipfian (or
uniform) distributions over a small domain, with one tuple arriving per
stream per time unit.  "Correlation" between the streams refers to whether
the *same values* are frequent on both: the rank-to-value permutations are
shared (correlated), independent (uncorrelated, the paper's default), or
reversed (anti-correlated).

Every generator returns a :class:`~repro.streams.tuples.StreamPair` whose
``metadata`` carries the true per-stream value distributions, which the
experiments hand to the PROB/LIFE statistics module exactly as the paper
does ("the frequency table of the data values in the dataset was used to
estimate the probabilities").
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tuples import StreamPair
from .zipf import ZipfDistribution

#: Valid stream-correlation modes.
CORRELATION_MODES = ("correlated", "uncorrelated", "anticorrelated")


def _permutations_for(
    mode: str, domain_size: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Rank-to-value permutations for the two streams under ``mode``."""
    if mode not in CORRELATION_MODES:
        raise ValueError(f"correlation must be one of {CORRELATION_MODES}, got {mode!r}")
    base = rng.permutation(domain_size)
    if mode == "correlated":
        return base, base.copy()
    if mode == "anticorrelated":
        return base, base[::-1].copy()
    return base, rng.permutation(domain_size)


def zipf_pair(
    length: int,
    domain_size: int,
    skew: float,
    *,
    skew_s: Optional[float] = None,
    correlation: str = "uncorrelated",
    seed: int = 0,
    name: Optional[str] = None,
) -> StreamPair:
    """Two iid Zipf streams, the workload of Figures 3-6 and 9-11.

    Parameters
    ----------
    length:
        Number of arrivals per stream (the paper uses 5600 when comparing
        against OPT-offline).
    domain_size:
        Join-attribute domain size (paper: 10, 50, 200).
    skew:
        Zipf parameter of stream R; 0 means uniform.
    skew_s:
        Zipf parameter of stream S; defaults to ``skew`` (the paper's
        variable-memory study in Section 4.3 uses differing skews).
    correlation:
        ``"uncorrelated"`` (default, as in the paper's main experiments),
        ``"correlated"``, or ``"anticorrelated"``.
    seed:
        Seed for a dedicated :class:`numpy.random.Generator`; runs are
        fully reproducible.
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    if skew_s is None:
        skew_s = skew

    rng = np.random.default_rng(seed)
    perm_r, perm_s = _permutations_for(correlation, domain_size, rng)
    dist_r = ZipfDistribution(domain_size, skew, value_permutation=perm_r)
    dist_s = ZipfDistribution(domain_size, skew_s, value_permutation=perm_s)

    r_keys = dist_r.sample(length, rng).tolist()
    s_keys = dist_s.sample(length, rng).tolist()
    return StreamPair(
        r=r_keys,
        s=s_keys,
        name=name or f"zipf(z_r={skew}, z_s={skew_s}, d={domain_size}, {correlation})",
        metadata={
            "r_distribution": dist_r,
            "s_distribution": dist_s,
            "domain_size": domain_size,
            "correlation": correlation,
            "seed": seed,
        },
    )


def uniform_pair(
    length: int, domain_size: int, *, seed: int = 0, name: Optional[str] = None
) -> StreamPair:
    """Two uniform iid streams (Figure 5's workload)."""
    return zipf_pair(
        length,
        domain_size,
        skew=0.0,
        seed=seed,
        name=name or f"uniform(d={domain_size})",
    )


def drifting_zipf_pair(
    length: int,
    domain_size: int,
    skew: float,
    *,
    phases: int = 2,
    seed: int = 0,
) -> StreamPair:
    """Zipf streams whose frequent values change between phases.

    Not part of the paper's evaluation; used by robustness tests and the
    online-statistics example to show how decaying frequency estimators
    track distribution shift while the static frequency table does not.
    """
    if phases <= 0:
        raise ValueError(f"phases must be positive, got {phases}")
    rng = np.random.default_rng(seed)
    boundaries = np.linspace(0, length, phases + 1).astype(int)

    r_keys: list[int] = []
    s_keys: list[int] = []
    distributions = []
    for p in range(phases):
        span = int(boundaries[p + 1] - boundaries[p])
        perm_r, perm_s = _permutations_for("uncorrelated", domain_size, rng)
        dist_r = ZipfDistribution(domain_size, skew, value_permutation=perm_r)
        dist_s = ZipfDistribution(domain_size, skew, value_permutation=perm_s)
        distributions.append((dist_r, dist_s))
        r_keys.extend(dist_r.sample(span, rng).tolist())
        s_keys.extend(dist_s.sample(span, rng).tolist())

    return StreamPair(
        r=r_keys,
        s=s_keys,
        name=f"drifting-zipf(z={skew}, d={domain_size}, phases={phases})",
        metadata={
            "domain_size": domain_size,
            "phase_boundaries": boundaries.tolist(),
            "phase_distributions": distributions,
            "seed": seed,
        },
    )


def multi_attribute_pair(
    length: int,
    domain_sizes,
    skews,
    *,
    seed: int = 0,
    name: Optional[str] = None,
) -> StreamPair:
    """Streams whose tuples carry several join attributes.

    Used by the multi-query extension (several window joins over the
    same streams, each joining on a different attribute — the paper's
    Section 6 "multiple queries ... share resources").  Keys are tuples;
    attribute ``a`` of both streams is iid Zipf(``skews[a]``) over
    ``domain_sizes[a]`` values with uncorrelated value assignments.

    ``metadata['attribute_distributions']`` holds, per attribute, the
    ``(r_distribution, s_distribution)`` pair.
    """
    if len(domain_sizes) != len(skews) or not domain_sizes:
        raise ValueError("need matching, non-empty domain_sizes and skews")
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")

    rng = np.random.default_rng(seed)
    r_columns = []
    s_columns = []
    distributions = []
    for domain_size, skew in zip(domain_sizes, skews):
        perm_r, perm_s = _permutations_for("uncorrelated", domain_size, rng)
        dist_r = ZipfDistribution(domain_size, skew, value_permutation=perm_r)
        dist_s = ZipfDistribution(domain_size, skew, value_permutation=perm_s)
        distributions.append((dist_r, dist_s))
        r_columns.append(dist_r.sample(length, rng))
        s_columns.append(dist_s.sample(length, rng))

    r_keys = [tuple(int(col[i]) for col in r_columns) for i in range(length)]
    s_keys = [tuple(int(col[i]) for col in s_columns) for i in range(length)]
    return StreamPair(
        r=r_keys,
        s=s_keys,
        name=name or f"multi-attribute({len(domain_sizes)} attrs)",
        metadata={
            "attribute_distributions": distributions,
            "domain_sizes": list(domain_sizes),
            "skews": list(skews),
            "seed": seed,
        },
    )


def empirical_probabilities(keys, domain_size: Optional[int] = None) -> dict:
    """Relative frequency of every key in a finite stream.

    This is the "frequency table of the data values" the paper feeds to
    the online heuristics for the real-life dataset (Section 4.5); for
    synthetic data the true distribution is available instead.
    """
    counts: dict = {}
    for key in keys:
        counts[key] = counts.get(key, 0) + 1
    total = len(keys)
    if total == 0:
        return {}
    frequencies = {key: count / total for key, count in counts.items()}
    if domain_size is not None:
        for value in range(domain_size):
            frequencies.setdefault(value, 0.0)
    return frequencies
