"""Stream model and workload generators.

Provides the tuple/stream abstractions shared by the whole library plus
every workload of the paper's evaluation: Zipf/uniform synthetic pairs
(Figures 3-6, 9-11) and the synthetic weather-dataset substitute
(Figures 7-8, see DESIGN.md section 5 for the substitution rationale).
"""

from .arrival import (
    clip_schedule,
    day_night_schedule,
    is_day,
    poisson_schedule,
    synchronous_schedule,
    total_arrivals,
)
from .batches import (
    DEFAULT_BATCH_SIZE,
    HAVE_NUMPY,
    StreamChunk,
    encode_chunks,
    encode_columns,
    resolve_batch_size,
)
from .generators import (
    CORRELATION_MODES,
    drifting_zipf_pair,
    empirical_probabilities,
    multi_attribute_pair,
    uniform_pair,
    zipf_pair,
)
from .replay import (
    JSONL_FORMAT,
    JSONL_VERSION,
    load_pair,
    load_pair_jsonl,
    save_pair,
    save_pair_jsonl,
)
from .sources import (
    DriftingZipfSource,
    PairSource,
    PoissonSource,
    ReplaySource,
    Source,
    SourceEvent,
    ZipfSource,
    as_source,
    take_pair,
)
from .tuples import (
    STREAM_R,
    STREAM_S,
    JoinResultTuple,
    StreamPair,
    StreamTuple,
    exact_join_size,
    iterate_exact_join,
)
from .weather import (
    GRID_COLS,
    GRID_ROWS,
    NUM_CELLS,
    GridCell,
    cell_id_for,
    weather_pair,
    weather_records,
)
from .zipf import AliasSampler, ZipfDistribution, zipf_probabilities

__all__ = [
    "AliasSampler",
    "CORRELATION_MODES",
    "DEFAULT_BATCH_SIZE",
    "GRID_COLS",
    "GRID_ROWS",
    "DriftingZipfSource",
    "GridCell",
    "HAVE_NUMPY",
    "JSONL_FORMAT",
    "JSONL_VERSION",
    "JoinResultTuple",
    "NUM_CELLS",
    "PairSource",
    "PoissonSource",
    "ReplaySource",
    "STREAM_R",
    "STREAM_S",
    "Source",
    "SourceEvent",
    "StreamChunk",
    "StreamPair",
    "StreamTuple",
    "ZipfDistribution",
    "ZipfSource",
    "as_source",
    "cell_id_for",
    "clip_schedule",
    "day_night_schedule",
    "drifting_zipf_pair",
    "empirical_probabilities",
    "encode_chunks",
    "encode_columns",
    "exact_join_size",
    "is_day",
    "iterate_exact_join",
    "load_pair",
    "load_pair_jsonl",
    "multi_attribute_pair",
    "poisson_schedule",
    "resolve_batch_size",
    "save_pair",
    "save_pair_jsonl",
    "take_pair",
    "synchronous_schedule",
    "total_arrivals",
    "uniform_pair",
    "weather_pair",
    "weather_records",
    "zipf_pair",
    "zipf_probabilities",
]
