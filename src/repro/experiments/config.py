"""Experiment scales.

The paper's experiments use 5600-tuple streams when comparing against
OPT-offline (the CS2 solver's runtime bound) and ~1M-tuple streams for
the weather dataset.  The paper itself notes the curves are shape-stable
across stream lengths ("the graphs for larger stream lengths ... resemble
closely the graphs obtained on stream lengths of 5600"), so the harness
exposes three scales:

* ``paper`` — the paper's parameters (slow in pure Python: minutes);
* ``default`` — shape-preserving reduction, suitable for local runs;
* ``ci`` — smallest scale that still shows the qualitative ordering.

Select with the ``REPRO_SCALE`` environment variable or pass a
:class:`Scale` explicitly to the figure functions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: Memory sweep of the paper's figures, as fractions of the window size.
MEMORY_FRACTIONS = (0.1, 0.25, 0.5, 1.0, 1.5)

#: Zipf parameters of the Figure 6 skew sweep.
SKEW_SWEEP = (0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0)

#: Join-attribute domain sizes of Figures 9, 10, 11.
DOMAIN_SIZES = (10, 50, 200)

#: The paper's default synthetic domain size.
DEFAULT_DOMAIN = 50


@dataclass(frozen=True)
class Scale:
    """One coherent set of experiment sizes.

    Attributes
    ----------
    stream_length:
        Arrivals per stream for the OPT-comparison figures (paper: 5600,
        chosen so >= 4000 post-warmup tuples remain at every window).
    window:
        Figure 3 window size (paper: 400); Figure 4 doubles it.
    weather_length / weather_window / weather_warmup:
        Figure 7/8 parameters (paper: ~1M / 5000 / 10000).
    """

    name: str
    stream_length: int
    window: int
    weather_length: int
    weather_window: int
    weather_warmup: int

    @property
    def window_large(self) -> int:
        """Figure 4's window: twice Figure 3's."""
        return 2 * self.window


SCALES: dict[str, Scale] = {
    "paper": Scale(
        name="paper",
        stream_length=5600,
        window=400,
        weather_length=1_000_000,
        weather_window=5000,
        weather_warmup=10_000,
    ),
    "default": Scale(
        name="default",
        stream_length=2400,
        window=160,
        weather_length=60_000,
        weather_window=1000,
        weather_warmup=2000,
    ),
    "ci": Scale(
        name="ci",
        stream_length=900,
        window=60,
        weather_length=8000,
        weather_window=400,
        weather_warmup=800,
    ),
}


def even_memory(window: int, fraction: float) -> int:
    """Memory budget ``fraction * window`` rounded to a positive even int.

    Fixed allocation splits memory in half, so budgets are kept even
    (the paper's fractions of 400/800 are all even already).
    """
    memory = int(round(fraction * window))
    if memory % 2:
        memory -= 1
    return max(memory, 2)


def memory_sweep(window: int, fractions=MEMORY_FRACTIONS) -> list[int]:
    """The paper's memory sweep for a window size."""
    return [even_memory(window, fraction) for fraction in fractions]


def current_scale() -> Scale:
    """The scale selected by ``REPRO_SCALE`` (default: ``default``).

    ``REPRO_SCALE=full`` is accepted as an alias for ``paper``.
    """
    name = os.environ.get("REPRO_SCALE", "default").lower()
    if name == "full":
        name = "paper"
    if name not in SCALES:
        raise ValueError(
            f"REPRO_SCALE={name!r} unknown; choose one of {sorted(SCALES)} or 'full'"
        )
    return SCALES[name]
