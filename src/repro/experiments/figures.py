"""Generators for every figure and text-result of the paper's evaluation.

Each ``figure*`` function reproduces one figure of Section 4 (or a
result the paper reports in prose) and returns a structured
:class:`FigureData` / :class:`TableData` holding exactly the rows/series
the paper plots, plus the paper's qualitative expectation so benchmark
output is self-describing.  Rendering is in
:mod:`repro.experiments.reporting`; the benchmark suite prints every
figure and asserts the expected shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.metrics.archive import archive_metric
from ..core.slowcpu import SlowCpuConfig, SlowCpuEngine
from ..core.static_join import (
    extract_components,
    greedy_min_degree_deletion,
    max_edges_retaining,
    min_edges_lost_deleting,
    random_deletion,
    total_edges,
    total_nodes,
)
from ..core.static_join.multiway import (
    MultiwayInstance,
    brute_force_optimal,
    independent_selection,
)
from ..streams.arrival import clip_schedule, poisson_schedule
from ..streams.generators import uniform_pair, zipf_pair
from ..streams.tuples import StreamPair
from ..streams.weather import weather_pair
from .config import (
    DEFAULT_DOMAIN,
    DOMAIN_SIZES,
    MEMORY_FRACTIONS,
    SKEW_SWEEP,
    Scale,
    current_scale,
    even_memory,
    memory_sweep,
)
from .runner import estimators_for, run_algorithm, run_suite


@dataclass
class Series:
    """One plotted line: a label and its (x, y) points."""

    label: str
    points: list[tuple[float, float]]

    @property
    def x(self) -> list[float]:
        return [p[0] for p in self.points]

    @property
    def y(self) -> list[float]:
        return [p[1] for p in self.points]


@dataclass
class FigureData:
    """A reproduced figure: series over a common x-axis."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: list[Series]
    params: dict = field(default_factory=dict)
    expectation: str = ""

    def series_by_label(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"{self.figure_id} has no series {label!r}")


@dataclass
class TableData:
    """A reproduced table: named columns and value rows."""

    table_id: str
    title: str
    columns: list[str]
    rows: list[list]
    params: dict = field(default_factory=dict)
    expectation: str = ""

    def column(self, name: str) -> list:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]


# ----------------------------------------------------------------------
# Figures 3, 4, 5: output vs. memory for one workload
# ----------------------------------------------------------------------

def _grid_output_counts(
    grid: Sequence[tuple],
    pair: StreamPair,
    window: int,
    *,
    seed: int,
    warmup: Optional[int] = None,
    workers: Optional[int] = None,
) -> list[int]:
    """Output counts for ``(memory, algorithm)`` cells, optionally parallel.

    Serial execution shares one estimator build across the grid exactly
    as the original figure loops did; parallel workers rebuild them from
    the pair's metadata (a pure function, so the counts are identical).
    """
    from ..runtime import (
        AlgorithmCell,
        parallel_map,
        resolve_workers,
        run_algorithm_cell,
    )

    if resolve_workers(workers) <= 1 or len(grid) <= 1:
        estimators = estimators_for(pair)
        return [
            run_algorithm(
                name, pair, window, memory, seed=seed, warmup=warmup,
                estimators=estimators,
            ).output_count
            for memory, name in grid
        ]
    cells = [
        AlgorithmCell(name, pair, window, memory, seed=seed, warmup=warmup)
        for memory, name in grid
    ]
    results = parallel_map(
        run_algorithm_cell,
        cells,
        workers=workers,
        labels=[cell.label for cell in cells],
    )
    return [result.output_count for result in results]


def _memory_sweep_figure(
    figure_id: str,
    title: str,
    pair: StreamPair,
    window: int,
    *,
    algorithms: Sequence[str],
    include_exact: bool = True,
    seed: int = 0,
    expectation: str = "",
    workers: Optional[int] = None,
) -> FigureData:
    """Shared implementation of the output-vs-memory figures.

    ``workers`` fans the (memory × algorithm) grid out over worker
    processes (see :mod:`repro.runtime`); the figure is identical either
    way.
    """
    memories = memory_sweep(window)

    series: dict[str, Series] = {name: Series(name, []) for name in algorithms}
    grid = [(memory, name) for memory in memories for name in algorithms]
    for (memory, name), count in zip(
        grid, _grid_output_counts(grid, pair, window, seed=seed, workers=workers)
    ):
        series[name].points.append((memory, count))

    all_series = [series[name] for name in algorithms]
    if include_exact:
        exact = run_algorithm("EXACT", pair, window, 0)
        all_series.append(
            Series("EXACT", [(m, exact.output_count) for m in memories])
        )

    return FigureData(
        figure_id=figure_id,
        title=title,
        x_label="memory M (tuples)",
        y_label="output tuples (post-warmup)",
        series=all_series,
        params={
            "window": window,
            "stream_length": len(pair),
            "workload": pair.name,
            "memories": memories,
        },
        expectation=expectation,
    )


def figure3(scale: Optional[Scale] = None, *, seed: int = 0,
            workers: Optional[int] = None) -> FigureData:
    """Figure 3: Zipf(1) x Zipf(1) uncorrelated, domain 50, window w."""
    scale = scale or current_scale()
    window = scale.window
    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=seed)
    return _memory_sweep_figure(
        "figure3",
        f"Output vs. memory, Zipf(1.0), w={window}",
        pair,
        window,
        algorithms=("RAND", "LIFE", "PROB", "OPT"),
        seed=seed,
        workers=workers,
        expectation=(
            "PROB far outperforms RAND and LIFE and tracks OPT closely; "
            "RAND grows roughly linearly with memory; LIFE is only "
            "marginally better than RAND."
        ),
    )


def figure4(scale: Optional[Scale] = None, *, seed: int = 0,
            workers: Optional[int] = None) -> FigureData:
    """Figure 4: same workload as Figure 3 with the window doubled."""
    scale = scale or current_scale()
    window = scale.window_large
    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=seed)
    return _memory_sweep_figure(
        "figure4",
        f"Output vs. memory, Zipf(1.0), w={window}",
        pair,
        window,
        algorithms=("RAND", "LIFE", "PROB", "OPT"),
        seed=seed,
        workers=workers,
        expectation=(
            "Same ordering as Figure 3 — the window size does not change "
            "the relative behaviour of the algorithms."
        ),
    )


def figure5(scale: Optional[Scale] = None, *, seed: int = 0,
            workers: Optional[int] = None) -> FigureData:
    """Figure 5: uniform x uniform — no semantic signal to exploit."""
    scale = scale or current_scale()
    window = scale.window
    pair = uniform_pair(scale.stream_length, DEFAULT_DOMAIN, seed=seed)
    return _memory_sweep_figure(
        "figure5",
        f"Output vs. memory, uniform, w={window}",
        pair,
        window,
        algorithms=("RAND", "LIFE", "PROB", "OPT"),
        seed=seed,
        workers=workers,
        expectation=(
            "All online algorithms (RAND, PROB, LIFE) perform equally "
            "poorly; even OPT gains little from knowing the future."
        ),
    )


# ----------------------------------------------------------------------
# Figure 6: effect of skew
# ----------------------------------------------------------------------

def figure6(
    scale: Optional[Scale] = None,
    *,
    seed: int = 0,
    correlation: str = "uncorrelated",
    skews: Sequence[float] = SKEW_SWEEP,
    workers: Optional[int] = None,
) -> FigureData:
    """Figure 6: RAND and PROB as fractions of OPT vs. Zipf skew.

    Both streams share the skew parameter; window = memory = w.  The
    paper reports near-identical curves for correlated distributions
    (pass ``correlation="correlated"`` to check).
    """
    scale = scale or current_scale()
    window = scale.window
    memory = even_memory(window, 1.0)

    rand_series = Series("RAND/OPT", [])
    prob_series = Series("PROB/OPT", [])
    for skew in skews:
        pair = zipf_pair(
            scale.stream_length,
            DEFAULT_DOMAIN,
            skew,
            correlation=correlation,
            seed=seed,
        )
        results = run_suite(
            ("RAND", "PROB", "OPT"), pair, window, memory, seed=seed,
            workers=workers,
        )
        opt = max(results["OPT"].output_count, 1)
        rand_series.points.append((skew, results["RAND"].output_count / opt))
        prob_series.points.append((skew, results["PROB"].output_count / opt))

    return FigureData(
        figure_id="figure6",
        title=f"Fraction of OPT vs. Zipf skew, w=M={window} ({correlation})",
        x_label="Zipf parameter",
        y_label="fraction of OPT output",
        series=[rand_series, prob_series],
        params={
            "window": window,
            "memory": memory,
            "stream_length": scale.stream_length,
            "correlation": correlation,
        },
        expectation=(
            "At skew 0 RAND and PROB coincide; the gap widens rapidly "
            "with skew, PROB exceeding ~96% of OPT at moderate-to-high "
            "skew while RAND keeps falling."
        ),
    )


# ----------------------------------------------------------------------
# Figures 9-11: effect of domain size
# ----------------------------------------------------------------------

def figure_domain_size(
    domain_size: int,
    figure_id: str,
    scale: Optional[Scale] = None,
    *,
    seed: int = 0,
    workers: Optional[int] = None,
) -> FigureData:
    """Shared implementation of Figures 9 (d=10), 10 (d=50), 11 (d=200)."""
    scale = scale or current_scale()
    window = scale.window
    pair = zipf_pair(scale.stream_length, domain_size, 1.0, seed=seed)
    memories = memory_sweep(window)

    exact = run_algorithm("EXACT", pair, window, 0)
    series = {name: Series(f"{name}/OPT", []) for name in ("RAND", "PROB", "EXACT")}
    grid = [
        (memory, name) for memory in memories for name in ("OPT", "RAND", "PROB")
    ]
    counts = iter(_grid_output_counts(grid, pair, window, seed=seed, workers=workers))
    for memory in memories:
        opt = max(next(counts), 1)
        for name in ("RAND", "PROB"):
            series[name].points.append((memory, next(counts) / opt))
        series["EXACT"].points.append((memory, exact.output_count / opt))

    return FigureData(
        figure_id=figure_id,
        title=f"Fraction of OPT vs. memory, Zipf(1.0), domain {domain_size}, w={window}",
        x_label="memory M (tuples)",
        y_label="fraction of OPT output",
        series=[series["RAND"], series["PROB"], series["EXACT"]],
        params={
            "window": window,
            "domain_size": domain_size,
            "stream_length": scale.stream_length,
            "memories": memories,
        },
        expectation=(
            "Growing the domain separates PROB from OPT while pulling "
            "EXACT/OPT towards 1 (OPT approaches the exact result; at "
            "domain 200 they meet near M = w)."
        ),
    )


def figure9(scale: Optional[Scale] = None, *, seed: int = 0,
             workers: Optional[int] = None) -> FigureData:
    return figure_domain_size(DOMAIN_SIZES[0], "figure9", scale, seed=seed,
                              workers=workers)


def figure10(scale: Optional[Scale] = None, *, seed: int = 0,
             workers: Optional[int] = None) -> FigureData:
    return figure_domain_size(DOMAIN_SIZES[1], "figure10", scale, seed=seed,
                              workers=workers)


def figure11(scale: Optional[Scale] = None, *, seed: int = 0,
             workers: Optional[int] = None) -> FigureData:
    return figure_domain_size(DOMAIN_SIZES[2], "figure11", scale, seed=seed,
                              workers=workers)


# ----------------------------------------------------------------------
# Figures 7-8: the weather workload
# ----------------------------------------------------------------------

def figure7(scale: Optional[Scale] = None, *, seed: int = 0,
            workers: Optional[int] = None) -> FigureData:
    """Figure 7: output vs. memory on the (synthetic) weather dataset.

    The paper omits OPT here (the flow solver exceeded their resources);
    we follow suit at this scale and plot RAND, PROB, PROBV, EXACT.
    """
    scale = scale or current_scale()
    window = scale.weather_window
    warmup = scale.weather_warmup
    pair = weather_pair(scale.weather_length, seed=seed)
    memories = memory_sweep(window)

    names = ("RAND", "PROB", "PROBV")
    series = {name: Series(name, []) for name in names}
    grid = [(memory, name) for memory in memories for name in names]
    for (memory, name), count in zip(
        grid,
        _grid_output_counts(
            grid, pair, window, seed=seed, warmup=warmup, workers=workers
        ),
    ):
        series[name].points.append((memory, count))
    exact = run_algorithm("EXACT", pair, window, 0, warmup=warmup)
    exact_series = Series("EXACT", [(m, exact.output_count) for m in memories])

    return FigureData(
        figure_id="figure7",
        title=f"Weather data: output vs. memory, w={window}, warmup={warmup}",
        x_label="memory M (tuples)",
        y_label="output tuples (post-warmup)",
        series=[series["RAND"], series["PROB"], series["PROBV"], exact_series],
        params={
            "window": window,
            "warmup": warmup,
            "stream_length": scale.weather_length,
            "memories": memories,
        },
        expectation=(
            "Closely resembles the synthetic figures: PROB and PROBV are "
            "nearly identical (similar year-to-year distributions) and "
            "reach ~90% of EXACT with 50% of the memory; RAND trails."
        ),
    )


def figure8(scale: Optional[Scale] = None, *, seed: int = 0) -> FigureData:
    """Figure 8: PROBV's memory split between R and S over time."""
    scale = scale or current_scale()
    window = scale.weather_window
    warmup = scale.weather_warmup
    memory = even_memory(window, 1.0)
    pair = weather_pair(scale.weather_length, seed=seed)

    result = run_algorithm(
        "PROBV",
        pair,
        window,
        memory,
        seed=seed,
        warmup=warmup,
        track_shares=True,
        share_sample_every=max(1, len(pair) // 400),
    )
    assert result.shares is not None
    r_series = Series(
        "R share of memory",
        [(t, r / max(r + s, 1)) for t, r, s in result.shares],
    )

    return FigureData(
        figure_id="figure8",
        title=f"Weather data: PROBV memory allocation over time, M={memory}",
        x_label="time",
        y_label="fraction of memory holding R-tuples",
        series=[r_series],
        params={
            "window": window,
            "memory": memory,
            "stream_length": scale.weather_length,
        },
        expectation=(
            "The allocation stays near 50/50 for the whole run because "
            "the two years' distributions are almost identical."
        ),
    )


# ----------------------------------------------------------------------
# Section 4.3 (text): variable memory allocation under skew disparity
# ----------------------------------------------------------------------

def variable_memory_study(
    scale: Optional[Scale] = None,
    *,
    seed: int = 0,
    skew_pairs: Sequence[tuple[float, float]] = ((0.5, 0.5), (1.0, 0.5), (1.5, 0.5), (2.0, 0.5)),
) -> TableData:
    """PROB vs. PROBV (and OPT vs. OPTV) for streams of differing skew.

    Reproduces the prose of Section 4.3: the variable-allocation versions
    win when the skews differ, by at most ~10% output, with the more
    skewed stream receiving up to ~75% of the memory.
    """
    scale = scale or current_scale()
    window = scale.window
    memory = even_memory(window, 0.5)

    rows: list[list] = []
    for z_r, z_s in skew_pairs:
        pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, z_r, skew_s=z_s, seed=seed)
        estimators = estimators_for(pair)
        prob = run_algorithm(
            "PROB", pair, window, memory, seed=seed, estimators=estimators
        ).output_count
        probv_result = run_algorithm(
            "PROBV",
            pair,
            window,
            memory,
            seed=seed,
            estimators=estimators,
            track_shares=True,
            share_sample_every=max(1, len(pair) // 200),
        )
        probv = probv_result.output_count
        assert probv_result.shares is not None
        post_warmup = [
            (r, s) for t, r, s in probv_result.shares if t >= 2 * window
        ]
        r_share = (
            sum(r / max(r + s, 1) for r, s in post_warmup) / max(len(post_warmup), 1)
        )
        opt = run_algorithm("OPT", pair, window, memory).output_count
        optv = run_algorithm("OPTV", pair, window, memory).output_count
        gain = (probv - prob) / max(prob, 1)
        rows.append([z_r, z_s, prob, probv, round(gain * 100, 2), round(r_share, 3), opt, optv])

    return TableData(
        table_id="variable_memory",
        title=f"Fixed vs. variable allocation, w={window}, M={memory}",
        columns=["z_R", "z_S", "PROB", "PROBV", "PROBV gain %", "R mem share", "OPT", "OPTV"],
        rows=rows,
        params={"window": window, "memory": memory, "stream_length": scale.stream_length},
        expectation=(
            "OPTV >= OPT always; PROBV matches or beats PROB (up to small "
            "run-to-run noise), with gains bounded by ~10%; the skewed "
            "stream takes a clearly larger memory share (the paper "
            "observed up to ~75%)."
        ),
    )


# ----------------------------------------------------------------------
# Section 3.1: static join load shedding
# ----------------------------------------------------------------------

def static_join_study(
    scale: Optional[Scale] = None,
    *,
    seed: int = 0,
    delete_fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75, 0.9),
) -> TableData:
    """Optimal DP vs. greedy vs. random deletion on Zipf relations.

    The sensor-proxy scenario of Section 3.1: two relations are truncated
    by ``k`` tuples total; the DP is provably optimal, greedy and random
    deletion are baselines.
    """
    scale = scale or current_scale()
    size = max(scale.stream_length // 4, 50)
    pair = zipf_pair(size, DEFAULT_DOMAIN, 1.0, seed=seed)
    components = extract_components(pair.r, pair.s)
    nodes = total_nodes(components)
    full = total_edges(components)

    rows: list[list] = []
    for fraction in delete_fractions:
        k = int(round(fraction * nodes))
        optimal = min_edges_lost_deleting(components, k).retained_edges
        greedy = greedy_min_degree_deletion(components, k).retained_edges
        random_plan = random_deletion(components, k, seed=seed).retained_edges
        rows.append([k, full, optimal, greedy, random_plan])

    return TableData(
        table_id="static_join",
        title=f"k-truncated static join, |A|=|B|={size}, Zipf(1.0)",
        columns=["k deleted", "full join", "optimal DP", "greedy", "random"],
        rows=rows,
        params={"relation_size": size, "nodes": nodes},
        expectation=(
            "optimal DP >= greedy >= random at every k; random deletion "
            "degrades roughly quadratically (both join sides shrink)."
        ),
    )


def multiway_join_study(*, seed: int = 0) -> TableData:
    """3-relation shedding: m-approximation vs. exhaustive optimum.

    The problem is NP-hard (Theorem 1), so the instance is kept tiny
    enough for brute force; the approximation's loss must be within the
    factor-3 guarantee.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    rows: list[list] = []
    for trial in range(5):
        relations = [rng.integers(0, 4, size=6).tolist() for _ in range(3)]
        instance = MultiwayInstance.from_relations(relations)
        budgets = [2, 2, 2]
        approx = independent_selection(instance, budgets)
        optimal = brute_force_optimal(instance, budgets)
        rows.append(
            [
                trial,
                instance.output_size(),
                optimal.output_size,
                approx.output_size,
                optimal.lost_output,
                approx.lost_output,
            ]
        )

    return TableData(
        table_id="multiway_join",
        title="3-relation shedding: independent-selection approximation",
        columns=[
            "trial",
            "full join",
            "optimal output",
            "approx output",
            "optimal loss",
            "approx loss",
        ],
        rows=rows,
        params={"relations": 3, "budget_each": 2},
        expectation="approx loss <= 3 x optimal loss on every instance.",
    )


# ----------------------------------------------------------------------
# Archive-metric experiment (extension; paper future work)
# ----------------------------------------------------------------------

def arm_study(
    scale: Optional[Scale] = None,
    *,
    seed: int = 0,
    algorithms: Sequence[str] = ("RAND", "PROB", "LIFE", "ARM"),
) -> TableData:
    """Archive-metric and output of each policy across the memory sweep."""
    scale = scale or current_scale()
    window = scale.window
    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=seed)
    estimators = estimators_for(pair)
    warmup = 2 * window

    rows: list[list] = []
    for memory in memory_sweep(window):
        row: list = [memory]
        for name in algorithms:
            result = run_algorithm(
                name,
                pair,
                window,
                memory,
                seed=seed,
                estimators=estimators,
                track_survival=True,
            )
            report = archive_metric(
                pair,
                result.r_departures,
                result.s_departures,
                window,
                count_from=warmup,
            )
            row.extend([result.output_count, report.arm])
        rows.append(row)

    columns = ["memory"]
    for name in algorithms:
        columns.extend([f"{name} out", f"{name} ArM"])
    return TableData(
        table_id="arm_study",
        title=f"Archive-metric vs. memory, Zipf(1.0), w={window}",
        columns=columns,
        rows=rows,
        params={"window": window, "stream_length": scale.stream_length},
        expectation=(
            "ArM falls as memory grows; the semantic policies (PROB, ARM) "
            "leave far fewer incomplete tuples than RAND.  Negative "
            "finding for the future-work heuristic: on iid workloads PROB "
            "is already near-optimal for ArM — expected-damage scoring "
            "(ARM) does not improve on it."
        ),
    )


# ----------------------------------------------------------------------
# Slow-CPU experiment (extension; paper future work)
# ----------------------------------------------------------------------

def slow_cpu_study(
    scale: Optional[Scale] = None,
    *,
    seed: int = 0,
    queue_policies: Sequence[str] = ("tail", "random", "prob"),
) -> TableData:
    """Queue-shedding policies under CPU overload.

    Arrivals are Poisson(1) per stream per tick but the join serves only
    one tuple per tick, so roughly half the input must be shed from the
    queue; semantic queue shedding should retain the valuable tuples.
    """
    scale = scale or current_scale()
    window = scale.window
    length = scale.stream_length
    pair = zipf_pair(length, DEFAULT_DOMAIN, 1.0, seed=seed)
    estimators = estimators_for(pair)
    r_schedule = clip_schedule(poisson_schedule(length, 1.0, seed=seed + 10), length)
    s_schedule = clip_schedule(poisson_schedule(length, 1.0, seed=seed + 11), length)

    rows: list[list] = []
    for queue_policy in queue_policies:
        from ..core.policies import ProbPolicy, SidePolicies

        config = SlowCpuConfig(
            window=window,
            memory=even_memory(window, 0.5),
            service_per_tick=1,
            queue_capacity=max(window // 4, 4),
            queue_policy=queue_policy,
            seed=seed,
        )
        engine = SlowCpuEngine(
            config,
            policy=SidePolicies(
                r=ProbPolicy(estimators), s=ProbPolicy(estimators)
            ),
            estimators=estimators,
        )
        result = engine.run(pair.r, pair.s, r_schedule, s_schedule)
        rows.append(
            [
                queue_policy,
                result.output_count,
                result.processed,
                result.shed_from_queue,
                result.expired_in_queue,
                result.max_queue_length,
            ]
        )

    return TableData(
        table_id="slow_cpu",
        title=f"Slow-CPU queue shedding, w={window}, service=1/tick",
        columns=["queue policy", "output", "processed", "shed", "expired in queue", "max queue"],
        rows=rows,
        params={"window": window, "stream_length": length},
        expectation=(
            "Semantic ('prob') queue shedding produces the most output; "
            "value-oblivious tail/random drops trail it."
        ),
    )


# ----------------------------------------------------------------------
# Varying memory budget (Section 3.3: "PROB can also easily deal with
# varying memory and window sizes")
# ----------------------------------------------------------------------

def varying_memory_study(
    scale: Optional[Scale] = None,
    *,
    seed: int = 0,
    low_fraction: float = 0.25,
    high_fraction: float = 1.0,
) -> TableData:
    """Policies under a square-wave memory budget.

    The budget alternates between ``low_fraction * w`` and
    ``high_fraction * w`` every window — the "availability of resources
    ... might vary over time" scenario of the paper's introduction.  Each
    policy's output under the varying budget is bracketed by its outputs
    under the constant low/high budgets, landing near the constant budget
    of the same *mean* — graceful adaptation, no cliff.
    """
    scale = scale or current_scale()
    window = scale.window
    low = even_memory(window, low_fraction)
    high = even_memory(window, high_fraction)
    mean = even_memory(window, (low_fraction + high_fraction) / 2)
    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=seed)
    estimators = estimators_for(pair)

    def square_wave(t: int) -> int:
        return high if (t // window) % 2 == 0 else low

    from ..core.engine import EngineConfig, JoinEngine
    from .runner import _policy_for

    rows: list[list] = []
    for name in ("RAND", "PROB", "LIFE"):
        outputs = {}
        for label, memory, schedule in (
            ("low", low, None),
            ("mean", mean, None),
            ("high", high, None),
            ("varying", high, square_wave),
        ):
            config = EngineConfig(
                window=window, memory=memory, memory_schedule=schedule
            )
            policy = _policy_for(name, estimators, window, seed)
            outputs[label] = JoinEngine(config, policy=policy).run(pair).output_count
        rows.append(
            [name, outputs["low"], outputs["varying"], outputs["mean"], outputs["high"]]
        )

    return TableData(
        table_id="varying_memory",
        title=(
            f"Square-wave memory budget {low}<->{high} (period {window}), "
            f"Zipf(1.0), w={window}"
        ),
        columns=["policy", f"const M={low}", "varying", f"const M={mean}", f"const M={high}"],
        rows=rows,
        params={"window": window, "low": low, "high": high, "mean": mean},
        expectation=(
            "Every policy's varying-budget output lies between its "
            "constant low and high outputs (graceful adaptation); PROB "
            "stays well above RAND throughout."
        ),
    )


# ----------------------------------------------------------------------
# Multi-query resource sharing (Section 6 future work)
# ----------------------------------------------------------------------

def multi_query_study(
    scale: Optional[Scale] = None,
    *,
    seed: int = 0,
    shed_rules: Sequence[str] = ("tail", "random", "max", "sum"),
) -> TableData:
    """Two joins over shared streams under queue-shedding rules.

    The queries join on *different* attributes (so they value different
    tuples), share both input queues, and the service budget covers only
    half the arrival rate.  Semantic shedding that aggregates both
    queries' statistics ("max"/"sum") should beat value-oblivious drops.
    """
    from ..core.multiquery import QuerySpec, SharedQueueSystem
    from ..streams.generators import multi_attribute_pair

    scale = scale or current_scale()
    window = scale.window
    length = scale.stream_length
    pair = multi_attribute_pair(length, [DEFAULT_DOMAIN, 20], [1.2, 0.8], seed=seed)
    queries = [
        QuerySpec("skewed-join", attribute=0, window=window,
                  memory=even_memory(window, 0.5)),
        QuerySpec("mild-join", attribute=1, window=2 * window,
                  memory=even_memory(window, 1.0)),
    ]

    rows: list[list] = []
    for rule in shed_rules:
        system = SharedQueueSystem(
            pair,
            queries,
            service_per_tick=len(queries),  # half of the 2*K units needed
            queue_capacity=max(window // 4, 4),
            shed_rule=rule,
            warmup=2 * window,
            seed=seed,
        )
        result = system.run()
        rows.append(
            [
                rule,
                result.outputs["skewed-join"],
                result.outputs["mild-join"],
                result.total_output,
                result.shed_from_queue,
            ]
        )

    return TableData(
        table_id="multi_query",
        title=f"Two joins sharing queues under overload, w={window}/{2 * window}",
        columns=["shed rule", "skewed-join out", "mild-join out", "total", "shed"],
        rows=rows,
        params={"window": window, "stream_length": length, "queries": 2},
        expectation=(
            "Aggregated semantic shedding ('max'/'sum') produces more "
            "total output than tail/random drops, without starving "
            "either query."
        ),
    )


#: Every figure generator keyed by figure id, for the benchmark driver.
FIGURE_GENERATORS = {
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure7": figure7,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
}

#: Every table generator keyed by table id.
TABLE_GENERATORS = {
    "variable_memory": variable_memory_study,
    "varying_memory": varying_memory_study,
    "multi_query": multi_query_study,
    "static_join": static_join_study,
    "multiway_join": multiway_join_study,
    "arm_study": arm_study,
    "slow_cpu": slow_cpu_study,
}
