"""Plain-text rendering of reproduced figures and tables.

The benchmark harness prints each figure as an aligned column table (the
x-axis plus one column per series) so terminal output is directly
comparable with the paper's plots; the paper's qualitative expectation is
printed alongside.
"""

from __future__ import annotations

from typing import Sequence

from ..obs import (
    format_metrics,
    load_metrics_json,
    metrics_to_csv,
    metrics_to_json,
    save_metrics_csv,
    save_metrics_json,
)
from .figures import FigureData, TableData

__all__ = [
    "figure_to_dict",
    "format_figure",
    "format_metrics",
    "format_table",
    "load_metrics_json",
    "metrics_to_csv",
    "metrics_to_json",
    "print_figure",
    "print_table",
    "save_figure_csv",
    "save_metrics_csv",
    "save_metrics_json",
    "save_table_csv",
    "table_to_dict",
]


def _format_value(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _render_grid(header: Sequence[str], rows: Sequence[Sequence]) -> str:
    cells = [list(map(_format_value, header))] + [
        list(map(_format_value, row)) for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(header))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_figure(figure: FigureData, *, max_rows: int = 40) -> str:
    """Render a figure's series as an aligned table.

    Series are joined on their x-values; long traces (e.g. Figure 8's
    time series) are down-sampled to ``max_rows`` evenly spaced rows.
    """
    xs: list = []
    for series in figure.series:
        for x in series.x:
            if x not in xs:
                xs.append(x)
    xs.sort()

    if len(xs) > max_rows:
        step = (len(xs) - 1) / (max_rows - 1)
        xs = [xs[round(i * step)] for i in range(max_rows)]

    lookup = [{x: y for x, y in series.points} for series in figure.series]
    header = [figure.x_label] + [series.label for series in figure.series]
    rows = [
        [x] + [table.get(x, "") for table in lookup]
        for x in xs
    ]

    parts = [
        f"== {figure.figure_id}: {figure.title} ==",
        _render_grid(header, rows),
    ]
    if figure.expectation:
        parts.append(f"paper expectation: {figure.expectation}")
    return "\n".join(parts)


def format_table(table: TableData) -> str:
    """Render a reproduced table."""
    parts = [
        f"== {table.table_id}: {table.title} ==",
        _render_grid(table.columns, table.rows),
    ]
    if table.expectation:
        parts.append(f"paper expectation: {table.expectation}")
    return "\n".join(parts)


def print_figure(figure: FigureData, **kwargs) -> None:
    print()
    print(format_figure(figure, **kwargs))


def print_table(table: TableData) -> None:
    print()
    print(format_table(table))


# ----------------------------------------------------------------------
# machine-readable exports
# ----------------------------------------------------------------------

def figure_to_dict(figure: FigureData) -> dict:
    """JSON-serialisable representation of a figure."""
    return {
        "figure_id": figure.figure_id,
        "title": figure.title,
        "x_label": figure.x_label,
        "y_label": figure.y_label,
        "series": [
            {"label": series.label, "points": [list(p) for p in series.points]}
            for series in figure.series
        ],
        "params": dict(figure.params),
        "expectation": figure.expectation,
    }


def table_to_dict(table: TableData) -> dict:
    """JSON-serialisable representation of a table."""
    return {
        "table_id": table.table_id,
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
        "params": dict(table.params),
        "expectation": table.expectation,
    }


def save_figure_csv(figure: FigureData, path) -> None:
    """Write a figure as CSV: the x column plus one column per series."""
    import csv
    from pathlib import Path

    xs: list = []
    for series in figure.series:
        for x in series.x:
            if x not in xs:
                xs.append(x)
    xs.sort()
    lookup = [{x: y for x, y in series.points} for series in figure.series]

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([figure.x_label] + [series.label for series in figure.series])
        for x in xs:
            writer.writerow([x] + [table.get(x, "") for table in lookup])


def save_table_csv(table: TableData, path) -> None:
    """Write a table's columns and rows as CSV."""
    import csv
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.columns)
        writer.writerows(table.rows)
