"""Multi-seed sweeps with mean/deviation aggregation.

The paper's figures are single runs; a reproduction should also show
that its conclusions are stable under the generators' randomness.  This
module reruns an algorithm suite across seeds and aggregates the output
counts, and provides a stability check used by the variance benchmark:
the ordering of two algorithms across all seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..streams.tuples import StreamPair
from .config import DEFAULT_DOMAIN, Scale, current_scale, even_memory
from .figures import TableData
from .runner import run_suite


@dataclass(frozen=True)
class Aggregate:
    """Summary statistics of one algorithm's outputs across seeds."""

    mean: float
    std: float
    minimum: int
    maximum: int
    runs: int

    @classmethod
    def of(cls, values: Sequence[int]) -> "Aggregate":
        if not values:
            raise ValueError("cannot aggregate zero runs")
        n = len(values)
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / n
        return cls(
            mean=mean,
            std=math.sqrt(variance),
            minimum=min(values),
            maximum=max(values),
            runs=n,
        )


def sweep_seeds(
    algorithms: Sequence[str],
    pair_factory: Callable[[int], StreamPair],
    window: int,
    memory: int,
    *,
    seeds: Sequence[int],
    warmup: Optional[int] = None,
    workers: Optional[int] = None,
) -> dict[str, Aggregate]:
    """Run the suite once per seed; aggregate outputs per algorithm.

    ``pair_factory(seed)`` builds the workload, so both the data and the
    randomised policies vary together, exactly like independent repeats
    of the paper's experiment.

    ``workers`` fans the seeds out over worker processes (see
    :mod:`repro.runtime`).  The factory runs in the parent either way —
    it may be a lambda, and shipping the generated pair guarantees
    workers see byte-identical inputs — so aggregates are identical to
    the serial sweep.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    counts = _suite_counts(algorithms, pair_factory, window, memory,
                           seeds=seeds, warmup=warmup, workers=workers)
    outputs: dict[str, list[int]] = {name: [] for name in algorithms}
    for per_seed in counts:
        for name in algorithms:
            outputs[name].append(per_seed[name])
    return {name: Aggregate.of(values) for name, values in outputs.items()}


def _suite_counts(
    algorithms: Sequence[str],
    pair_factory: Callable[[int], StreamPair],
    window: int,
    memory: int,
    *,
    seeds: Sequence[int],
    warmup: Optional[int] = None,
    workers: Optional[int] = None,
) -> list[dict[str, int]]:
    """Per-seed ``{algorithm: output_count}`` maps, optionally parallel."""
    from ..runtime import SuiteCell, parallel_map, resolve_workers, run_suite_cell

    if resolve_workers(workers) <= 1 or len(seeds) <= 1:
        counts = []
        for seed in seeds:
            pair = pair_factory(seed)
            results = run_suite(
                algorithms, pair, window, memory, seed=seed, warmup=warmup
            )
            counts.append({name: results[name].output_count for name in algorithms})
        return counts

    cells = [
        SuiteCell(tuple(algorithms), pair_factory(seed), window, memory,
                  seed=seed, warmup=warmup)
        for seed in seeds
    ]
    return parallel_map(
        run_suite_cell,
        cells,
        workers=workers,
        labels=[cell.label for cell in cells],
    )


def sweep_specs(
    algorithms: Sequence[str],
    base_spec,
    *,
    seeds: Sequence[int],
    workers: Optional[int] = None,
) -> dict[str, Aggregate]:
    """Seed sweep through the unified :func:`repro.run` entry point.

    :func:`sweep_seeds` drives the suite runner directly and is the
    fast path for plain engine sweeps.  This variant routes every cell
    through ``run()`` instead, so the sweep honours the full
    :class:`~repro.api.RunSpec` surface — sharded execution,
    checkpointing, retries, graceful degradation — with the same flags
    the ``run`` and ``compare`` verbs take.  One cell per
    ``(seed, algorithm)``; each worker executes its spec serially
    (a sharded spec's shards run inside that worker — the grid is
    already fanned out).
    """
    from dataclasses import replace

    from ..api import build_pair
    from ..runtime import SpecCell, parallel_map, run_spec_cell

    if not seeds:
        raise ValueError("need at least one seed")
    cells = []
    for seed in seeds:
        seeded = replace(base_spec, seed=seed)
        pair = build_pair(seeded)
        for name in algorithms:
            cells.append(
                SpecCell(replace(seeded, algorithm=name, variable=None), pair)
            )
    results = parallel_map(
        run_spec_cell,
        cells,
        workers=workers,
        labels=[cell.label for cell in cells],
    )
    outputs: dict[str, list[int]] = {name: [] for name in algorithms}
    index = 0
    for _seed in seeds:
        for name in algorithms:
            outputs[name].append(results[index].output_count)
            index += 1
    return {name: Aggregate.of(values) for name, values in outputs.items()}


def dominance_count(
    winner: str,
    loser: str,
    algorithms_outputs: dict[str, Aggregate],
    raw: Optional[dict[str, list[int]]] = None,
) -> Optional[int]:
    """How many seeds ``winner`` beat ``loser`` on (needs raw outputs)."""
    if raw is None:
        return None
    return sum(1 for a, b in zip(raw[winner], raw[loser]) if a > b)


def variance_study(
    scale: Optional[Scale] = None,
    *,
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    algorithms: Sequence[str] = ("RAND", "FIFO", "LIFE", "PROB", "OPT"),
    workers: Optional[int] = None,
) -> TableData:
    """Seed-to-seed stability of the Figure 3 configuration.

    The absolute join size varies strongly between seeds (the random
    value permutations sometimes align the two streams' hot values), so
    each run is normalised by its own seed's EXACT join size; the table
    reports the mean ± std of those *fractions*, plus whether PROB beat
    RAND on every seed (it should — the paper's conclusion is not a
    lucky draw).
    """
    from ..streams.generators import zipf_pair
    from ..streams.tuples import exact_join_size

    scale = scale or current_scale()
    window = scale.window
    memory = even_memory(window, 0.5)

    def factory(seed: int) -> StreamPair:
        return zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=seed)

    counts = _suite_counts(
        algorithms, factory, window, memory, seeds=seeds, workers=workers
    )
    fractions: dict[str, list[float]] = {name: [] for name in algorithms}
    raw: dict[str, list[int]] = {name: [] for name in algorithms}
    for seed, per_seed in zip(seeds, counts):
        exact = max(
            exact_join_size(factory(seed), window, count_from=2 * window), 1
        )
        for name in algorithms:
            raw[name].append(per_seed[name])
            fractions[name].append(per_seed[name] / exact)

    rows: list[list] = []
    for name in algorithms:
        values = fractions[name]
        n = len(values)
        mean = sum(values) / n
        std = math.sqrt(sum((v - mean) ** 2 for v in values) / n)
        rows.append([name, round(mean, 4), round(std, 4), round(min(values), 4),
                     round(max(values), 4)])
    prob_wins = sum(1 for p, r in zip(raw["PROB"], raw["RAND"]) if p > r)
    rows.append(["PROB>RAND", prob_wins, "", f"of {len(seeds)}", "seeds"])

    return TableData(
        table_id="variance_study",
        title=(
            f"Seed stability (fraction of EXACT), Zipf(1.0), w={window}, "
            f"M={memory}, {len(seeds)} seeds"
        ),
        columns=["algorithm", "mean frac", "std", "min", "max"],
        rows=rows,
        params={"window": window, "memory": memory, "seeds": list(seeds)},
        expectation=(
            "PROB beats RAND on every seed; OPT dominates everything; "
            "fraction-of-EXACT deviations are small relative to the gaps."
        ),
    )
