"""Ablation studies for the design choices DESIGN.md calls out.

Beyond reproducing the paper's figures, these experiments probe the
knobs the paper leaves implicit:

* **statistics module** — the paper uses an exact offline frequency
  table and notes any stream sketch could substitute; how much output
  does PROB lose with bounded-memory statistics (Count-Min,
  Space-Saving), incremental counting, or decayed counts?
* **predictor quality** — the paper claims "given a bad predictor of
  future tuples, no online algorithm would be able to perform well";
  corrupting PROB's probability table towards uniform noise quantifies
  the decay from near-OPT to RAND-level.
* **distribution drift** — static tables cannot follow a shifting
  distribution; decayed statistics can.
* **solver choice** — OPT via successive shortest paths vs. the
  cost-scaling (CS2-family) solver: identical optima, different runtime.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..core.engine import EngineConfig, JoinEngine
from ..core.offline.opt import solve_opt
from ..core.policies import ProbPolicy, SidePolicies
from ..stats import (
    CountMinSketch,
    EwmaFrequencyEstimator,
    OnlineFrequencyCounter,
    ReservoirSample,
    SpaceSaving,
    StaticFrequencyTable,
)
from ..streams.generators import drifting_zipf_pair, zipf_pair
from .config import DEFAULT_DOMAIN, Scale, current_scale, even_memory
from .figures import TableData
from .runner import estimators_for, run_algorithm


def _run_prob_with(pair, window, memory, estimators, *, update: bool) -> int:
    """One PROB run with explicit estimator instances per side."""
    config = EngineConfig(window=window, memory=memory)
    policy = SidePolicies(
        r=ProbPolicy(estimators, update_estimators=update),
        s=ProbPolicy(estimators, update_estimators=update),
    )
    return JoinEngine(config, policy=policy).run(pair).output_count


def statistics_ablation(
    scale: Optional[Scale] = None, *, seed: int = 0
) -> TableData:
    """PROB output under different statistics-module implementations.

    The bounded-memory estimators (Count-Min, Space-Saving) should land
    close to the exact table on skewed data — they only need to *rank*
    keys, and heavy keys are exactly what they capture.
    """
    scale = scale or current_scale()
    window = scale.window
    memory = even_memory(window, 0.5)
    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=seed)

    true_tables = estimators_for(pair)

    def fresh_estimators(kind: str) -> tuple[dict, bool]:
        if kind == "true distribution (paper)":
            return true_tables, False
        if kind == "online exact counts":
            return {"R": OnlineFrequencyCounter(), "S": OnlineFrequencyCounter()}, True
        if kind == "EWMA (alpha=0.01)":
            return (
                {"R": EwmaFrequencyEstimator(0.01), "S": EwmaFrequencyEstimator(0.01)},
                True,
            )
        if kind == "Count-Min (20x4)":
            return (
                {
                    "R": CountMinSketch(20, 4, seed=seed),
                    "S": CountMinSketch(20, 4, seed=seed + 1),
                },
                True,
            )
        if kind == "Space-Saving (16)":
            return {"R": SpaceSaving(16), "S": SpaceSaving(16)}, True
        if kind == "Reservoir (128)":
            return (
                {
                    "R": ReservoirSample(128, seed=seed),
                    "S": ReservoirSample(128, seed=seed + 1),
                },
                True,
            )
        raise ValueError(kind)

    kinds = (
        "true distribution (paper)",
        "online exact counts",
        "EWMA (alpha=0.01)",
        "Count-Min (20x4)",
        "Space-Saving (16)",
        "Reservoir (128)",
    )
    rand = run_algorithm("RAND", pair, window, memory, seed=seed).output_count
    rows: list[list] = []
    for kind in kinds:
        estimators, update = fresh_estimators(kind)
        output = _run_prob_with(pair, window, memory, estimators, update=update)
        rows.append([kind, output, round(output / max(rand, 1), 2)])
    rows.append(["(RAND baseline)", rand, 1.0])

    return TableData(
        table_id="ablation_statistics",
        title=f"PROB vs. statistics module, Zipf(1.0), w={window}, M={memory}",
        columns=["statistics module", "PROB output", "x RAND"],
        rows=rows,
        params={"window": window, "memory": memory},
        expectation=(
            "Every estimator — including the bounded-memory sketches — "
            "keeps PROB far above RAND; the exact table is best but the "
            "gap to sketches is small (ranking heavy keys suffices)."
        ),
    )


def predictor_quality_ablation(
    scale: Optional[Scale] = None,
    *,
    seed: int = 0,
    noise_levels: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
) -> TableData:
    """PROB as its probability table degrades towards pure noise.

    ``noise = 0`` is the paper's exact table; ``noise = 1`` replaces the
    table with a random permutation of itself — a maximally misleading
    predictor with the same value distribution.
    """
    scale = scale or current_scale()
    window = scale.window
    memory = even_memory(window, 0.5)
    pair = zipf_pair(scale.stream_length, DEFAULT_DOMAIN, 1.0, seed=seed)

    rng = np.random.default_rng(seed + 99)
    true_r = pair.metadata["r_distribution"].probabilities()
    true_s = pair.metadata["s_distribution"].probabilities()
    shuffled_r = rng.permutation(true_r)
    shuffled_s = rng.permutation(true_s)

    rand = run_algorithm("RAND", pair, window, memory, seed=seed).output_count
    opt = run_algorithm("OPT", pair, window, memory).output_count

    rows: list[list] = []
    for noise in noise_levels:
        blend_r = (1 - noise) * true_r + noise * shuffled_r
        blend_s = (1 - noise) * true_s + noise * shuffled_s
        estimators = {
            "R": StaticFrequencyTable.from_array(blend_r),
            "S": StaticFrequencyTable.from_array(blend_s),
        }
        output = _run_prob_with(pair, window, memory, estimators, update=False)
        rows.append([noise, output, round(output / max(opt, 1), 3)])
    rows.append(["RAND", rand, round(rand / max(opt, 1), 3)])

    return TableData(
        table_id="ablation_predictor",
        title=f"PROB vs. predictor corruption, Zipf(1.0), w={window}, M={memory}",
        columns=["table noise", "PROB output", "fraction of OPT"],
        rows=rows,
        params={"window": window, "memory": memory},
        expectation=(
            "Output decays monotonically (modulo noise) as the predictor "
            "degrades, approaching RAND at full corruption — the paper's "
            "'given a bad predictor ... no online algorithm performs "
            "well'."
        ),
    )


def drift_ablation(scale: Optional[Scale] = None, *, seed: int = 0) -> TableData:
    """Static table vs. decayed statistics under distribution drift.

    The streams' hot values change halfway through; a table built on the
    first half misleads PROB for the second half, while EWMA adapts.
    """
    scale = scale or current_scale()
    window = scale.window
    memory = even_memory(window, 0.5)
    pair = drifting_zipf_pair(
        scale.stream_length, DEFAULT_DOMAIN, 1.5, phases=2, seed=seed
    )

    # Static table trained on the first phase only (what a deployed
    # system would have measured before the shift).
    half = len(pair) // 2
    stale = {
        "R": StaticFrequencyTable.from_stream(pair.r[:half]),
        "S": StaticFrequencyTable.from_stream(pair.s[:half]),
    }
    stale_output = _run_prob_with(pair, window, memory, stale, update=False)

    adaptive = {"R": EwmaFrequencyEstimator(0.02), "S": EwmaFrequencyEstimator(0.02)}
    adaptive_output = _run_prob_with(pair, window, memory, adaptive, update=True)

    rand = run_algorithm("RAND", pair, window, memory, seed=seed).output_count

    rows = [
        ["static table (first phase)", stale_output],
        ["EWMA (alpha=0.02)", adaptive_output],
        ["RAND", rand],
    ]
    return TableData(
        table_id="ablation_drift",
        title=f"Distribution drift: static vs. decayed statistics, w={window}",
        columns=["statistics module", "PROB output"],
        rows=rows,
        params={"window": window, "memory": memory, "phases": 2},
        expectation=(
            "The decayed estimator beats the stale static table once the "
            "distribution shifts; both beat RAND."
        ),
    )


def solver_ablation(scale: Optional[Scale] = None, *, seed: int = 0) -> TableData:
    """OPT runtime and optimum under the two min-cost flow solvers.

    The instance is capped at a fixed small size regardless of scale:
    the point is agreement plus a runtime data point, and the
    cost-scaling solver's pure-Python constants are far larger than
    SSP's (which is why SSP is the production default).
    """
    scale = scale or current_scale()
    window = min(max(scale.window // 2, 20), 30)
    memory = even_memory(window, 1.0)
    pair = zipf_pair(
        min(max(scale.stream_length // 2, 300), 450), DEFAULT_DOMAIN, 1.0, seed=seed
    )

    rows: list[list] = []
    reference = None
    for solver in ("ssp", "cost_scaling"):
        start = time.perf_counter()
        result = solve_opt(pair, window, memory, solver=solver)
        elapsed = time.perf_counter() - start
        rows.append([solver, result.output_count, round(elapsed, 3)])
        if reference is None:
            reference = result.output_count
        else:
            assert result.output_count == reference, "solvers disagree"

    return TableData(
        table_id="ablation_solver",
        title=f"OPT solver comparison, n={len(pair)}, w={window}, M={memory}",
        columns=["solver", "OPT output", "seconds"],
        rows=rows,
        params={"window": window, "memory": memory},
        expectation="Identical optima; runtimes differ by constant factors.",
    )


#: Every ablation generator keyed by id, for the benchmark driver.
ABLATION_GENERATORS = {
    "ablation_statistics": statistics_ablation,
    "ablation_predictor": predictor_quality_ablation,
    "ablation_drift": drift_ablation,
    "ablation_solver": solver_ablation,
}
