"""Uniform runner for every algorithm of the evaluation.

Maps the paper's algorithm names (EXACT, RAND, PROB, LIFE, their
variable-allocation ``...V`` versions, OPT/OPTV, and the ARM extension)
onto engine/policy/solver configurations, wiring the statistics module
exactly as the paper does: the true generating distribution for synthetic
data, the offline frequency table for recorded/real data.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.engine import EngineConfig, JoinEngine, RunResult
from ..core.offline.opt import OptResult, solve_opt
from ..core.policies import make_policy_spec
from ..stats.frequency import (
    FrequencyEstimator,
    OnlineFrequencyCounter,
    StaticFrequencyTable,
)
from ..streams.tuples import StreamPair

#: Algorithms with a fixed / variable allocation pair.
FIXED_ALGORITHMS = ("RAND", "PROB", "LIFE", "ARM", "FIFO")
VARIABLE_ALGORITHMS = tuple(f"{name}V" for name in FIXED_ALGORITHMS)
ALL_ALGORITHMS = ("EXACT", "OPT", "OPTV") + FIXED_ALGORITHMS + VARIABLE_ALGORITHMS

AnyResult = Union[RunResult, OptResult]


def estimators_for(pair: StreamPair) -> dict[str, FrequencyEstimator]:
    """The statistics module for a stream pair, as the paper built it.

    Synthetic pairs carry their true generating distributions in
    ``metadata`` (``r_distribution``/``s_distribution`` objects or
    ``r_probabilities``/``s_probabilities`` arrays); otherwise an offline
    frequency scan of the streams is used — the paper's procedure for the
    real-life dataset ("the frequency table of the data values in the
    dataset was used", not updated during the run).

    An *empty* side (legal: a run over zero ticks) has no frequencies to
    tabulate; it gets a zero-knowledge counter whose probabilities are
    all 0.0, so policies over empty streams construct and run cleanly
    instead of tripping ``StaticFrequencyTable``'s empty-input guard.
    """
    metadata = pair.metadata
    if "r_distribution" in metadata and "s_distribution" in metadata:
        return {
            "R": StaticFrequencyTable.from_array(
                metadata["r_distribution"].probabilities()
            ),
            "S": StaticFrequencyTable.from_array(
                metadata["s_distribution"].probabilities()
            ),
        }
    if "r_probabilities" in metadata and "s_probabilities" in metadata:
        return {
            "R": StaticFrequencyTable.from_array(metadata["r_probabilities"]),
            "S": StaticFrequencyTable.from_array(metadata["s_probabilities"]),
        }
    return {
        "R": StaticFrequencyTable.from_stream(pair.r)
        if len(pair.r) else OnlineFrequencyCounter(),
        "S": StaticFrequencyTable.from_stream(pair.s)
        if len(pair.s) else OnlineFrequencyCounter(),
    }


def _policy_for(
    name: str,
    estimators: dict[str, StaticFrequencyTable],
    window: int,
    seed: int,
):
    """Back-compat alias for :func:`repro.core.policies.make_policy_spec`.

    Kept because figure generators and older call sites build policy
    specs through it; new code should use ``make_policy_spec`` directly.
    """
    return make_policy_spec(name, estimators=estimators, window=window, seed=seed)


def run_algorithm(
    name: str,
    pair: StreamPair,
    window: int,
    memory: int,
    *,
    seed: int = 0,
    warmup: Optional[int] = None,
    estimators: Optional[dict] = None,
    materialize: bool = False,
    track_shares: bool = False,
    share_sample_every: int = 1,
    track_survival: bool = False,
    metrics=None,
    trace=None,
    source=None,
    until: Optional[int] = None,
    batch_size: Optional[int] = None,
    force_general: bool = False,
) -> AnyResult:
    """Run one named algorithm and return its result.

    ``name`` is one of :data:`ALL_ALGORITHMS`.  ``memory`` is ignored for
    EXACT (which always gets ``2 * window``).  ``metrics`` is an optional
    :class:`~repro.obs.MetricsRegistry`; engine runs attach its snapshot
    to the result, OPT solves feed the flow-solver counters.  ``trace``
    is an optional :class:`~repro.obs.Tracer`; engine runs attach the
    collected lifecycle events as ``result.trace``.  OPT/OPTV are batch
    solves with no tuple lifecycle, so ``trace`` is ignored there.

    ``source`` switches the engine-backed algorithms to
    :meth:`~repro.core.engine.JoinEngine.run_stream` over that
    :class:`~repro.streams.sources.Source` (``pair`` still supplies the
    estimator defaults); ``until`` bounds the streamed run and forces
    the incremental lane even for a plain ``PairSource`` — the pair of
    them lets callers pin ``run_stream(PairSource(pair), until=n)``
    against the pair fast path.  OPT/OPTV are offline solves over the
    full materialized pair and reject ``source``.

    ``batch_size`` enables the engines' columnar micro-batch lanes for
    eligible configurations (see
    :attr:`~repro.core.engine.EngineConfig.batch_size`);
    ``force_general`` pins the run to the general per-tick loop, which
    lets benchmarks compare instrumented and plain runs on the same
    execution lane.  Both are ignored by OPT/OPTV.
    """
    if until is not None and source is None:
        raise ValueError("until= requires source=")
    if name == "EXACT":
        config = EngineConfig(
            window=window,
            memory=2 * window,
            warmup=warmup,
            materialize=materialize,
            track_shares=track_shares,
            share_sample_every=share_sample_every,
            track_survival=track_survival,
            batch_size=batch_size,
            force_general=force_general,
        )
        engine = JoinEngine(config, policy=None, metrics=metrics, trace=trace)
        if source is not None:
            return engine.run_stream(source, until=until)
        return engine.run(pair)

    if name in ("OPT", "OPTV"):
        if source is not None:
            raise ValueError(
                f"{name} is an offline solve over the materialized pair; "
                "it cannot consume a source"
            )
        count_from = warmup if warmup is not None else 2 * window
        return solve_opt(
            pair,
            window,
            memory,
            variable=name.endswith("V"),
            count_from=count_from,
            metrics=metrics,
        )

    if name not in FIXED_ALGORITHMS + VARIABLE_ALGORITHMS:
        raise ValueError(f"unknown algorithm {name!r}; choose from {ALL_ALGORITHMS}")

    if estimators is None:
        estimators = estimators_for(pair)
    config = EngineConfig(
        window=window,
        memory=memory,
        variable=name.endswith("V"),
        warmup=warmup,
        materialize=materialize,
        track_shares=track_shares,
        share_sample_every=share_sample_every,
        track_survival=track_survival,
        batch_size=batch_size,
        force_general=force_general,
    )
    policy = make_policy_spec(name, estimators=estimators, window=window, seed=seed)
    engine = JoinEngine(config, policy=policy, metrics=metrics, trace=trace)
    if source is not None:
        return engine.run_stream(source, until=until)
    return engine.run(pair)


def run_suite(
    algorithms,
    pair: StreamPair,
    window: int,
    memory: int,
    *,
    seed: int = 0,
    warmup: Optional[int] = None,
    workers: Optional[int] = None,
    **kwargs,
) -> dict[str, AnyResult]:
    """Run several algorithms on identical inputs; estimators are shared.

    ``workers`` fans the algorithms out over worker processes (see
    :mod:`repro.runtime`) with identical results.  A shared ``metrics``
    registry is handled by merging worker snapshots back into it; a
    shared ``trace`` tracer cannot cross process boundaries, so traced
    suites always run serially.
    """
    from ..runtime import (
        AlgorithmCell,
        parallel_map,
        resolve_workers,
        run_algorithm_cell,
    )

    metrics = kwargs.get("metrics")
    if (
        resolve_workers(workers) <= 1
        or len(algorithms) <= 1
        or kwargs.get("trace") is not None
    ):
        estimators = estimators_for(pair)
        results: dict[str, AnyResult] = {}
        for name in algorithms:
            results[name] = run_algorithm(
                name,
                pair,
                window,
                memory,
                seed=seed,
                warmup=warmup,
                estimators=estimators,
                **kwargs,
            )
        return results

    cell_kwargs = {k: v for k, v in kwargs.items() if k != "metrics"}
    with_metrics = metrics is not None and getattr(metrics, "enabled", True)
    cells = [
        AlgorithmCell(
            name,
            pair,
            window,
            memory,
            seed=seed,
            warmup=warmup,
            with_metrics=with_metrics,
            kwargs=cell_kwargs,
        )
        for name in algorithms
    ]
    outputs = parallel_map(
        run_algorithm_cell,
        cells,
        workers=workers,
        labels=[cell.label for cell in cells],
    )
    if with_metrics:
        for result in outputs:
            snapshot = getattr(result, "metrics", None)
            if snapshot:
                metrics.merge_snapshot(snapshot)
    return dict(zip(algorithms, outputs))


def output_counts(results: dict[str, AnyResult]) -> dict[str, int]:
    """Extract the headline metric from a suite's results."""
    return {name: result.output_count for name, result in results.items()}
