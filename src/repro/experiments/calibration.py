"""Analytical workload calibration.

Closed-form expectations for the synthetic workloads, used to size
experiments without running them and to property-test the generators:

* per-tick match probability of two iid streams is
  ``rho = sum_v p_R(v) p_S(v)``;
* the exact sliding-window join over ``N`` ticks with window ``w`` has
  ``(2w - 1)`` pair slots per interior tick, so its expected size is
  ``rho * ((2w - 1) N - w (w - 1))`` (the subtraction removes the pair
  slots truncated at the stream start — and, when ``count_from`` skips a
  warmup, the slots whose later tuple falls inside it).

The measured join sizes of the generators match these predictions within
sampling noise (see ``tests/test_calibration.py``), which pins down the
generators' semantics independently of the engine.
"""

from __future__ import annotations

from typing import Optional

from ..streams.tuples import StreamPair


def match_probability(pair: StreamPair) -> float:
    """``rho``: probability one R draw equals one S draw.

    Uses the pair's true generating distributions when present in the
    metadata, otherwise the empirical frequencies.
    """
    metadata = pair.metadata
    if "r_distribution" in metadata and "s_distribution" in metadata:
        return metadata["r_distribution"].match_probability(metadata["s_distribution"])
    if "r_probabilities" in metadata and "s_probabilities" in metadata:
        import numpy as np

        return float(
            np.dot(metadata["r_probabilities"], metadata["s_probabilities"])
        )
    from collections import Counter

    n = max(len(pair), 1)
    counts_r = Counter(pair.r)
    counts_s = Counter(pair.s)
    return sum(
        (count / n) * (counts_s.get(key, 0) / n) for key, count in counts_r.items()
    )


def pair_slots(length: int, window: int, *, count_from: int = 0) -> int:
    """Number of (i, j) index pairs the window join inspects.

    Pairs with ``|i - j| < w``, both in ``[0, length)``, and later index
    ``>= count_from`` — the denominator of the expected-join-size
    formula, computed exactly.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if length < 0 or count_from < 0:
        raise ValueError("length and count_from must be non-negative")
    total = 0
    for later in range(max(count_from, 0), length):
        # earlier in [later - w + 1, later], clipped at 0; both orders,
        # but (earlier, later) with earlier == later counts once per
        # stream assignment -> 2 * span - 1 ordered stream pairs.
        span = min(window, later + 1)
        total += 2 * span - 1
    return total


def expected_join_size(
    pair_or_length,
    window: int,
    *,
    count_from: int = 0,
    rho: Optional[float] = None,
) -> float:
    """Expected exact-join size of an iid workload.

    Pass a :class:`StreamPair` (rho inferred from its metadata) or a
    stream length together with an explicit ``rho``.
    """
    if isinstance(pair_or_length, StreamPair):
        length = len(pair_or_length)
        if rho is None:
            rho = match_probability(pair_or_length)
    else:
        length = int(pair_or_length)
        if rho is None:
            raise ValueError("rho is required when passing a bare length")
    return rho * pair_slots(length, window, count_from=count_from)
