"""repro: Approximate Join Processing Over Data Streams.

A complete reproduction of Das, Gehrke & Riedewald (SIGMOD 2003):
semantic load shedding for sliding-window equi-joins over data streams,
including

* the fast-CPU integrated join engine with the RAND / PROB / LIFE
  eviction policies (fixed and variable memory allocation),
* the optimal offline algorithm (OPT / OPTV) via min-cost network flow,
* static join load shedding (the ``O(c k^2)`` DP, the ``(k_A, k_B)``
  variant, and the m-relation approximation),
* the error-measure design space (MAX-subset, set coefficients, EMD,
  MAC) and the Archive-metric with archive-backed load smoothing,
* every workload of the evaluation and generators for all of its
  figures.

Quick start::

    from repro import zipf_pair, run_algorithm

    pair = zipf_pair(length=2000, domain_size=50, skew=1.0, seed=7)
    prob = run_algorithm("PROB", pair, window=100, memory=50)
    opt = run_algorithm("OPT", pair, window=100, memory=50)
    print(prob.output_count, opt.output_count)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .core import (
    EngineConfig,
    JoinEngine,
    RunResult,
    SlowCpuConfig,
    SlowCpuEngine,
    WindowSpec,
    run_exact,
)
from .core.archive import ArchiveStore, RefinementReport, refine_from_archive
from .core.metrics import archive_metric, max_subset_report
from .core.offline import OptResult, solve_opt
from .core.policies import (
    ArmAwarePolicy,
    EvictionPolicy,
    LifePolicy,
    ProbPolicy,
    RandomEvictionPolicy,
)
from .core.static_join import (
    extract_components,
    max_edges_retaining,
    min_edges_lost_deleting,
    retention_benefit,
)
from .experiments import run_algorithm, run_suite
from .streams import (
    StreamPair,
    StreamTuple,
    exact_join_size,
    uniform_pair,
    weather_pair,
    zipf_pair,
)

__version__ = "1.0.0"

__all__ = [
    "ArchiveStore",
    "ArmAwarePolicy",
    "EngineConfig",
    "EvictionPolicy",
    "JoinEngine",
    "LifePolicy",
    "OptResult",
    "ProbPolicy",
    "RandomEvictionPolicy",
    "RefinementReport",
    "RunResult",
    "SlowCpuConfig",
    "SlowCpuEngine",
    "StreamPair",
    "StreamTuple",
    "WindowSpec",
    "archive_metric",
    "exact_join_size",
    "extract_components",
    "max_edges_retaining",
    "max_subset_report",
    "min_edges_lost_deleting",
    "refine_from_archive",
    "retention_benefit",
    "run_algorithm",
    "run_exact",
    "run_suite",
    "solve_opt",
    "uniform_pair",
    "weather_pair",
    "zipf_pair",
]
