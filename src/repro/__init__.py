"""repro: Approximate Join Processing Over Data Streams.

A complete reproduction of Das, Gehrke & Riedewald (SIGMOD 2003):
semantic load shedding for sliding-window equi-joins over data streams,
including

* the fast-CPU integrated join engine with the RAND / PROB / LIFE
  eviction policies (fixed and variable memory allocation),
* the optimal offline algorithm (OPT / OPTV) via min-cost network flow,
* static join load shedding (the ``O(c k^2)`` DP, the ``(k_A, k_B)``
  variant, and the m-relation approximation),
* the error-measure design space (MAX-subset, set coefficients, EMD,
  MAC) and the Archive-metric with archive-backed load smoothing,
* every workload of the evaluation and generators for all of its
  figures.

Quick start::

    from repro import RunSpec, run

    spec = RunSpec(algorithm="PROB", window=100, memory=50,
                   length=2000, skew=1.0, seed=7)
    prob = run(spec)
    opt = run(RunSpec(algorithm="OPT", window=100, memory=50,
                      length=2000, skew=1.0, seed=7))
    print(prob.output_count, opt.output_count)

:func:`repro.run` is the single public entry point: it dispatches on
the spec (online engines, the offline OPT/OPTV bound, sharded parallel
execution, checkpoint/retry fault tolerance).  ``run_join`` and
``run_sharded`` survive as deprecated aliases.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from .api import RunSpec, build_pair, compare, optimal_offline, run, run_join
from .core import (
    DropBreakdown,
    EngineConfig,
    JoinEngine,
    RunResult,
    RunSummary,
    SidePolicies,
    SlowCpuConfig,
    SlowCpuEngine,
    WindowSpec,
    make_policy,
    make_policy_spec,
    run_exact,
)
from .core.archive import ArchiveStore, RefinementReport, refine_from_archive
from .core.metrics import archive_metric, max_subset_report
from .core.offline import OptResult, solve_opt
from .core.policies import (
    ArmAwarePolicy,
    EvictionPolicy,
    LifePolicy,
    ProbPolicy,
    RandomEvictionPolicy,
)
from .core.static_join import (
    extract_components,
    max_edges_retaining,
    min_edges_lost_deleting,
    retention_benefit,
)
from .experiments import run_algorithm, run_suite
from .obs import (
    MetricsRegistry,
    NullRecorder,
    Timer,
    load_metrics_json,
    metrics_to_csv,
    metrics_to_json,
    save_metrics_csv,
    save_metrics_json,
)
from .streams import (
    StreamPair,
    StreamTuple,
    exact_join_size,
    uniform_pair,
    weather_pair,
    zipf_pair,
)

__version__ = "1.0.0"

__all__ = [
    "ArchiveStore",
    "ArmAwarePolicy",
    "DropBreakdown",
    "EngineConfig",
    "EvictionPolicy",
    "JoinEngine",
    "LifePolicy",
    "MetricsRegistry",
    "NullRecorder",
    "OptResult",
    "ProbPolicy",
    "RandomEvictionPolicy",
    "RefinementReport",
    "RunResult",
    "RunSpec",
    "RunSummary",
    "SidePolicies",
    "SlowCpuConfig",
    "SlowCpuEngine",
    "StreamPair",
    "StreamTuple",
    "Timer",
    "WindowSpec",
    "archive_metric",
    "build_pair",
    "compare",
    "exact_join_size",
    "extract_components",
    "load_metrics_json",
    "make_policy",
    "make_policy_spec",
    "max_edges_retaining",
    "max_subset_report",
    "metrics_to_csv",
    "metrics_to_json",
    "min_edges_lost_deleting",
    "optimal_offline",
    "refine_from_archive",
    "retention_benefit",
    "run",
    "run_algorithm",
    "run_exact",
    "run_join",
    "run_suite",
    "save_metrics_csv",
    "save_metrics_json",
    "solve_opt",
    "uniform_pair",
    "weather_pair",
    "zipf_pair",
]
