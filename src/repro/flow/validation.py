"""Certificates for min-cost flow solutions.

A claimed solution is *feasible* when it respects capacities and node
conservation, and *optimal* when the residual graph it induces contains no
negative-cost cycle (the classical optimality criterion).  These checks
are used by the test-suite and can be enabled on production solves for
paranoid verification of OPT-offline results.
"""

from __future__ import annotations

from .bellman_ford import has_negative_cycle
from .network import FlowNetwork, FlowResult
from .residual import ResidualGraph


def check_feasible(network: FlowNetwork, result: FlowResult) -> list[str]:
    """Return a list of human-readable violations (empty = feasible)."""
    problems: list[str] = []
    if len(result.flow) != network.num_arcs:
        return [
            f"flow vector has {len(result.flow)} entries, network has "
            f"{network.num_arcs} arcs"
        ]

    balance = [0] * network.num_nodes
    for arc_id, arc in enumerate(network.arcs):
        f = result.flow[arc_id]
        if f < 0:
            problems.append(f"arc {arc_id}: negative flow {f}")
        if f > arc.capacity:
            problems.append(f"arc {arc_id}: flow {f} exceeds capacity {arc.capacity}")
        balance[arc.tail] += f
        balance[arc.head] -= f

    for node in range(network.num_nodes):
        expected = network.supply(node)
        if result.feasible and balance[node] != expected:
            problems.append(
                f"node {node}: net outflow {balance[node]} != supply {expected}"
            )
    return problems


def check_optimal(network: FlowNetwork, result: FlowResult) -> bool:
    """True when the flow admits no improving residual cycle.

    Only meaningful for feasible flows of the full supply value; a partial
    flow can often be improved by routing more.
    """
    residual = ResidualGraph(network)
    for arc_id, f in enumerate(result.flow):
        if f:
            residual.push(2 * arc_id, f)
    return not has_negative_cycle(residual)


def assert_valid(network: FlowNetwork, result: FlowResult, *, optimal: bool = True) -> None:
    """Raise AssertionError when the result is infeasible (or sub-optimal)."""
    problems = check_feasible(network, result)
    if problems:
        raise AssertionError("infeasible flow: " + "; ".join(problems[:5]))
    if optimal and result.feasible and not check_optimal(network, result):
        raise AssertionError("flow admits a negative residual cycle (not optimal)")


def recompute_cost(network: FlowNetwork, result: FlowResult) -> int:
    """Independent recomputation of the flow's total cost."""
    return sum(f * arc.cost for f, arc in zip(result.flow, network.arcs))
