"""Reference min-cost flow solver backed by linear programming.

Used only in tests and validation: min-cost flow LPs over networks with
integral data have integral optimal vertices, so the LP optimum equals the
combinatorial optimum.  The production solver is
:func:`repro.flow.ssp.solve_min_cost_flow`; this module exists to
cross-check it on arbitrary (small) instances.
"""

from __future__ import annotations

import numpy as np

from .network import FlowNetwork, FlowResult


def solve_lp(network: FlowNetwork) -> FlowResult:
    """Solve the min-cost flow LP with scipy's HiGHS backend.

    Only suitable for small instances (dense constraint matrix).  Flows in
    the result are rounded to the nearest integer; for integral instances
    the LP vertex optimum is integral so this is exact.

    Raises
    ------
    RuntimeError
        If the LP is infeasible or the solver fails.
    """
    from scipy.optimize import linprog  # local import: test-only dependency

    num_nodes = network.num_nodes
    num_arcs = network.num_arcs
    if num_arcs == 0:
        if any(network.supplies()):
            raise RuntimeError("no arcs but non-zero supplies: infeasible")
        return FlowResult(flow=[], cost=0, value=0, feasible=True)

    costs = np.array([arc.cost for arc in network.arcs], dtype=float)
    capacities = np.array([arc.capacity for arc in network.arcs], dtype=float)

    # Conservation: outflow - inflow = supply at every node.
    incidence = np.zeros((num_nodes, num_arcs))
    for arc_id, arc in enumerate(network.arcs):
        incidence[arc.tail, arc_id] += 1.0
        incidence[arc.head, arc_id] -= 1.0
    supplies = np.array(network.supplies(), dtype=float)

    outcome = linprog(
        c=costs,
        A_eq=incidence,
        b_eq=supplies,
        bounds=list(zip([0.0] * num_arcs, capacities)),
        method="highs",
    )
    if not outcome.success:
        raise RuntimeError(f"LP solve failed: {outcome.message}")

    flow = [int(round(x)) for x in outcome.x]
    cost = sum(f * arc.cost for f, arc in zip(flow, network.arcs))
    return FlowResult(flow=flow, cost=cost, value=network.total_supply(), feasible=True)
