"""Cost-scaling push-relabel min-cost flow (Goldberg-Tarjan).

This is the algorithm family of Goldberg's CS2 — the solver the paper
used for OPT-offline.  It complements the successive-shortest-paths
solver: SSP is fast when the flow value is small, cost scaling when arc
counts dominate.  Both are cross-checked against each other (and an LP)
in the test-suite; ``solve_opt`` can be pointed at either.

Outline
-------
1. Route the supplies with a max-flow (Dinic) — min-cost flow needs a
   *feasible* flow to start from; infeasible instances are rejected.
2. Scale integer costs by ``n + 1`` and run ε-phases: each ``refine(ε)``
   saturates negative-reduced-cost arcs and restores conservation with
   push/relabel, producing an ε-optimal flow; once ``ε < 1`` the flow is
   ``1/(n+1)``-optimal in the original costs, hence optimal (a unit of
   scaled cost cannot be split among fewer than ``n + 1`` arcs of a
   cycle).
"""

from __future__ import annotations

from collections import deque
from time import perf_counter

from ..obs import active_or_none
from .maxflow import max_flow
from .network import FlowNetwork, FlowResult
from .residual import ResidualGraph
from .ssp import UnbalancedNetworkError, _augmented_residual

#: ε divisor between phases (CS2 uses values around 8-16).
SCALE_FACTOR = 8


class InfeasibleFlowError(RuntimeError):
    """Raised when the supplies cannot be routed at all."""


def solve_cost_scaling(network: FlowNetwork, *, metrics=None) -> FlowResult:
    """Route the network's full supply at minimum cost via cost scaling.

    Same contract as :func:`repro.flow.ssp.solve_min_cost_flow` except
    that capacity-infeasible instances raise
    :class:`InfeasibleFlowError` instead of returning a partial flow.
    ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) records ε-phase,
    push, and relabel counts plus the ``flow/cost_scaling`` phase time.
    """
    if not network.is_balanced():
        raise UnbalancedNetworkError(
            f"supplies sum to {sum(network.supplies())}, expected 0"
        )
    demand = network.total_supply()
    num_original_arcs = network.num_arcs
    if demand == 0:
        return FlowResult(flow=[0] * num_original_arcs, cost=0, value=0, feasible=True)

    obs = active_or_none(metrics)
    start_time = perf_counter() if obs is not None else 0.0

    graph, super_source, super_sink, _ = _augmented_residual(network)

    routed = max_flow(graph, super_source, super_sink)
    if routed < demand:
        raise InfeasibleFlowError(
            f"only {routed} of {demand} supply units are routable"
        )

    _optimise(graph, obs)

    if obs is not None:
        obs.gauge("flow.cost_scaling.routed").set(routed)
        obs.record_phase("flow/cost_scaling", perf_counter() - start_time)

    flow = graph.flows(num_original_arcs)
    cost = sum(f * network.arc(a).cost for a, f in enumerate(flow) if f)
    return FlowResult(flow=flow, cost=cost, value=demand, feasible=True)


def _optimise(graph: ResidualGraph, obs=None) -> None:
    """Turn a feasible flow into a min-cost flow by ε-scaling phases."""
    n = graph.num_nodes
    scale = n + 1
    cost = [c * scale for c in graph.cost]
    max_cost = max((abs(c) for c in cost), default=0)
    if max_cost == 0:
        return

    prices = [0] * n
    epsilon = max_cost
    while True:
        _refine(graph, cost, prices, epsilon, obs)
        if obs is not None:
            obs.counter("flow.cost_scaling.phases").inc()
        if epsilon <= 1:
            # 1-optimal on costs scaled by (n+1) means 1/(n+1)-optimal on
            # the originals — below the 1/n optimality threshold.
            break
        epsilon = max(epsilon // SCALE_FACTOR, 1)


def _refine(
    graph: ResidualGraph, cost: list[int], prices: list[int], epsilon: int, obs=None
) -> None:
    """Make the current flow ε-optimal with push/relabel."""
    head = graph.head
    residual = graph.residual
    adjacency = graph.adjacency
    n = graph.num_nodes

    # Saturate every residual arc with negative reduced cost.  This makes
    # the pseudo-flow ε-optimal but creates excesses and deficits.
    excess = [0] * n
    for u in range(n):
        pu = prices[u]
        for arc in adjacency[u]:
            if residual[arc] <= 0:
                continue
            if cost[arc] + pu - prices[head[arc]] < 0:
                amount = residual[arc]
                residual[arc] = 0
                residual[arc ^ 1] += amount
                excess[u] -= amount
                excess[head[arc]] += amount

    active: deque[int] = deque(u for u in range(n) if excess[u] > 0)
    in_queue = [False] * n
    for u in active:
        in_queue[u] = True
    pointer = [0] * n
    pushes = 0
    relabels = 0

    while active:
        u = active.popleft()
        in_queue[u] = False
        while excess[u] > 0:
            arcs = adjacency[u]
            if pointer[u] >= len(arcs):
                # Relabel: lower u's price just enough to create an
                # admissible arc (guaranteed to exist for a feasible
                # instance), then rescan.
                best = None
                pu = prices[u]
                for arc in arcs:
                    if residual[arc] <= 0:
                        continue
                    candidate = prices[head[arc]] - cost[arc] - epsilon
                    if best is None or candidate > best:
                        best = candidate
                if best is None:  # pragma: no cover - guarded by max_flow
                    raise InfeasibleFlowError("active node with no residual arcs")
                prices[u] = best
                pointer[u] = 0
                relabels += 1
                continue
            arc = arcs[pointer[u]]
            v = head[arc]
            if residual[arc] > 0 and cost[arc] + prices[u] - prices[v] < 0:
                delta = min(excess[u], residual[arc])
                residual[arc] -= delta
                residual[arc ^ 1] += delta
                excess[u] -= delta
                excess[v] += delta
                pushes += 1
                if excess[v] > 0 and not in_queue[v]:
                    active.append(v)
                    in_queue[v] = True
            else:
                pointer[u] += 1
        # Deficit nodes (excess < 0) absorb pushes passively.

    if obs is not None:
        obs.counter("flow.cost_scaling.pushes").inc(pushes)
        obs.counter("flow.cost_scaling.relabels").inc(relabels)
