"""Dinic's maximum-flow algorithm over residual graphs.

Used by the cost-scaling solver to establish a feasible flow before
optimising cost, and available standalone for capacity-feasibility
questions.  Operates in place on a :class:`ResidualGraph`.
"""

from __future__ import annotations

from collections import deque

from .residual import ResidualGraph


def max_flow(graph: ResidualGraph, source: int, sink: int) -> int:
    """Push the maximum flow from ``source`` to ``sink``; return its value.

    Standard Dinic: repeat { BFS level graph; DFS blocking flow } until
    the sink becomes unreachable.  O(V^2 E) worst case, far faster on the
    sparse unit-ish graphs this library builds.
    """
    if source == sink:
        raise ValueError("source and sink must differ")

    head = graph.head
    residual = graph.residual
    adjacency = graph.adjacency
    n = graph.num_nodes

    total = 0
    while True:
        # BFS: build level labels over arcs with residual capacity.
        level = [-1] * n
        level[source] = 0
        queue: deque[int] = deque([source])
        while queue:
            u = queue.popleft()
            for arc in adjacency[u]:
                v = head[arc]
                if residual[arc] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        if level[sink] < 0:
            return total

        # DFS blocking flow with current-arc pointers (iterative).
        pointer = [0] * n
        while True:
            pushed = _dfs_push(
                graph, source, sink, float("inf"), level, pointer
            )
            if pushed == 0:
                break
            total += int(pushed)


def _dfs_push(
    graph: ResidualGraph,
    source: int,
    sink: int,
    limit: float,
    level: list[int],
    pointer: list[int],
) -> float:
    """One augmenting path in the level graph (iterative DFS)."""
    head = graph.head
    residual = graph.residual
    adjacency = graph.adjacency

    path: list[int] = []  # residual arc ids along the current path
    node = source
    while True:
        if node == sink:
            bottleneck = min(limit, min(residual[arc] for arc in path))
            for arc in path:
                residual[arc] -= bottleneck
                residual[arc ^ 1] += bottleneck
            return bottleneck

        advanced = False
        arcs = adjacency[node]
        while pointer[node] < len(arcs):
            arc = arcs[pointer[node]]
            v = head[arc]
            if residual[arc] > 0 and level[v] == level[node] + 1:
                path.append(arc)
                node = v
                advanced = True
                break
            pointer[node] += 1
        if advanced:
            continue

        # Dead end: retreat (or give up at the source).
        level[node] = -1  # prune from this phase
        if not path:
            return 0
        arc = path.pop()
        node = head[arc ^ 1]
        pointer[node] += 1
