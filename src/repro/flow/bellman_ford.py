"""Bellman-Ford shortest paths over residual graphs.

Used to (a) initialise node potentials when the cost graph contains
negative arcs and is not known to be a DAG, and (b) assert the absence of
negative residual cycles, which certifies optimality of a min-cost flow
(see :mod:`repro.flow.validation`).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .residual import ResidualGraph

#: Sentinel distance for unreachable nodes.
INFINITY = float("inf")


class NegativeCycleError(RuntimeError):
    """Raised when a negative-cost cycle is reachable from the source."""


def shortest_paths(
    graph: ResidualGraph,
    source: int,
    *,
    raise_on_negative_cycle: bool = True,
) -> tuple[list[float], list[int]]:
    """SPFA-style Bellman-Ford over arcs with positive residual capacity.

    Parameters
    ----------
    graph:
        Residual graph; only arcs with ``residual > 0`` are traversed.
    source:
        Start node.
    raise_on_negative_cycle:
        When True (default) a :class:`NegativeCycleError` is raised if a
        negative cycle is reachable; when False the function returns after
        detection with whatever labels it has (useful for probing).

    Returns
    -------
    (dist, parent_arc):
        ``dist[v]`` is the least cost from ``source`` to ``v`` (``inf`` if
        unreachable); ``parent_arc[v]`` is the residual arc id used to
        enter ``v`` on a shortest path, or ``-1``.
    """
    n = graph.num_nodes
    dist: list[float] = [INFINITY] * n
    parent_arc = [-1] * n
    relaxations = [0] * n
    in_queue = [False] * n

    dist[source] = 0
    queue: deque[int] = deque([source])
    in_queue[source] = True

    head = graph.head
    cost = graph.cost
    residual = graph.residual
    adjacency = graph.adjacency

    while queue:
        u = queue.popleft()
        in_queue[u] = False
        du = dist[u]
        for arc in adjacency[u]:
            if residual[arc] <= 0:
                continue
            v = head[arc]
            candidate = du + cost[arc]
            if candidate < dist[v]:
                dist[v] = candidate
                parent_arc[v] = arc
                if not in_queue[v]:
                    relaxations[v] += 1
                    if relaxations[v] > n:
                        if raise_on_negative_cycle:
                            raise NegativeCycleError(
                                f"negative cycle reachable from node {source}"
                            )
                        return dist, parent_arc
                    queue.append(v)
                    in_queue[v] = True
    return dist, parent_arc


def has_negative_cycle(graph: ResidualGraph) -> bool:
    """True if any negative-cost cycle exists among residual arcs.

    Runs Bellman-Ford from a virtual source connected to every node with a
    zero-cost arc, so cycles in any component are found.
    """
    n = graph.num_nodes
    dist = [0.0] * n
    parent_arc: list[int] = [-1] * n
    relaxations = [0] * n
    in_queue = [True] * n
    queue: deque[int] = deque(range(n))

    head = graph.head
    cost = graph.cost
    residual = graph.residual
    adjacency = graph.adjacency

    while queue:
        u = queue.popleft()
        in_queue[u] = False
        du = dist[u]
        for arc in adjacency[u]:
            if residual[arc] <= 0:
                continue
            v = head[arc]
            candidate = du + cost[arc]
            if candidate < dist[v]:
                dist[v] = candidate
                parent_arc[v] = arc
                if not in_queue[v]:
                    relaxations[v] += 1
                    if relaxations[v] > n:
                        return True
                    queue.append(v)
                    in_queue[v] = True
    return False


def extract_path(parent_arc: list[int], graph: ResidualGraph, sink: int) -> Optional[list[int]]:
    """Rebuild the residual-arc path reaching ``sink``, or None."""
    if parent_arc[sink] == -1:
        return None
    path: list[int] = []
    node = sink
    while parent_arc[node] != -1:
        arc = parent_arc[node]
        path.append(arc)
        node = graph.head[arc ^ 1]
    path.reverse()
    return path
