"""Residual-graph representation shared by the flow solvers.

The residual graph stores each original arc together with its reverse arc
in a flat arc array where arc ``i`` and arc ``i ^ 1`` are partners.  This
is the standard trick that makes pushing and retracting flow an O(1)
operation and keeps the Dijkstra inner loop allocation-free.
"""

from __future__ import annotations

from .network import FlowNetwork


class ResidualGraph:
    """Flat-array residual graph over a :class:`FlowNetwork`.

    Arc ``2 * a`` is original arc ``a`` of the network; arc ``2 * a + 1``
    is its residual reverse.  ``residual[i]`` is the remaining capacity of
    residual arc ``i``; the flow on original arc ``a`` is therefore
    ``residual[2 * a + 1]``.
    """

    def __init__(self, network: FlowNetwork) -> None:
        num_arcs = network.num_arcs
        self.num_nodes = network.num_nodes
        self.head = [0] * (2 * num_arcs)
        self.cost = [0] * (2 * num_arcs)
        self.residual = [0] * (2 * num_arcs)
        self.adjacency: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for arc_id, arc in enumerate(network.arcs):
            fwd = 2 * arc_id
            rev = fwd + 1
            self.head[fwd] = arc.head
            self.head[rev] = arc.tail
            self.cost[fwd] = arc.cost
            self.cost[rev] = -arc.cost
            self.residual[fwd] = arc.capacity
            self.residual[rev] = 0
            self.adjacency[arc.tail].append(fwd)
            self.adjacency[arc.head].append(rev)

    def push(self, residual_arc: int, amount: int) -> None:
        """Send ``amount`` units through residual arc ``residual_arc``."""
        self.residual[residual_arc] -= amount
        self.residual[residual_arc ^ 1] += amount

    def flow_on(self, original_arc: int) -> int:
        """Current flow on original arc ``original_arc``."""
        return self.residual[2 * original_arc + 1]

    def flows(self, num_original_arcs: int) -> list[int]:
        """Per-arc flows for the first ``num_original_arcs`` original arcs."""
        residual = self.residual
        return [residual[2 * a + 1] for a in range(num_original_arcs)]
