"""Min-cost network flow substrate.

The paper solves its OPT-offline join approximation with Goldberg's CS2
min-cost flow solver; this package provides an equivalent self-contained
implementation:

* :class:`FlowNetwork` / :class:`FlowResult` — problem & solution model;
* :func:`solve_min_cost_flow` — successive shortest paths with potentials
  (handles the negative-cost DAGs produced by the OPT-offline builder);
* :mod:`repro.flow.validation` — feasibility and optimality certificates;
* :func:`repro.flow.simple.solve_lp` — LP-backed reference solver for
  cross-checking in tests.
"""

from .bellman_ford import NegativeCycleError, has_negative_cycle, shortest_paths
from .cost_scaling import InfeasibleFlowError, solve_cost_scaling
from .dag import shortest_distances_from, topological_order
from .maxflow import max_flow
from .network import Arc, FlowNetwork, FlowResult
from .residual import ResidualGraph
from .ssp import UnbalancedNetworkError, solve_min_cost_flow
from .validation import assert_valid, check_feasible, check_optimal, recompute_cost

#: Named min-cost flow solvers (both exact; see their modules).
SOLVERS = {
    "ssp": solve_min_cost_flow,
    "cost_scaling": solve_cost_scaling,
}

__all__ = [
    "Arc",
    "FlowNetwork",
    "FlowResult",
    "InfeasibleFlowError",
    "NegativeCycleError",
    "ResidualGraph",
    "SOLVERS",
    "UnbalancedNetworkError",
    "assert_valid",
    "check_feasible",
    "check_optimal",
    "has_negative_cycle",
    "max_flow",
    "recompute_cost",
    "shortest_distances_from",
    "shortest_paths",
    "solve_cost_scaling",
    "solve_min_cost_flow",
    "topological_order",
]
