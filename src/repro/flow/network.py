"""Directed flow network with capacities, costs, and node supplies.

This module provides the problem description shared by every min-cost flow
solver in :mod:`repro.flow`.  The paper solves its OPT-offline formulation
with Goldberg's CS2 solver; since no external solver is available we build
the substrate from scratch.

A :class:`FlowNetwork` is a multigraph: parallel arcs between the same node
pair are allowed (the OPT-offline construction uses one arc per candidate
drop time of a tuple, several of which may share endpoints).

Conventions
-----------
* Nodes are dense integer ids ``0 .. num_nodes - 1`` created through
  :meth:`FlowNetwork.add_node`; an optional label aids debugging.
* Arc capacities are non-negative integers; costs are integers (possibly
  negative).  Integral data guarantees an integral optimal flow exists
  (Theorem 2 of the paper, citing Rockafellar).
* ``supply[v] > 0`` means ``v`` is a source of that many units,
  ``supply[v] < 0`` a sink.  A balanced network has supplies summing to 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence


@dataclass(frozen=True)
class Arc:
    """A single directed arc of a :class:`FlowNetwork`.

    Attributes
    ----------
    tail, head:
        Endpoint node ids (flow travels tail -> head).
    capacity:
        Maximum units of flow, a non-negative integer.
    cost:
        Cost per unit of flow, an integer (negative = profit).
    """

    tail: int
    head: int
    capacity: int
    cost: int


class FlowNetwork:
    """Mutable builder for min-cost flow problem instances."""

    def __init__(self) -> None:
        self._arcs: list[Arc] = []
        self._supply: list[int] = []
        self._labels: list[Optional[str]] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, label: Optional[str] = None, supply: int = 0) -> int:
        """Create a node and return its dense integer id."""
        self._supply.append(int(supply))
        self._labels.append(label)
        return len(self._supply) - 1

    def add_nodes(self, count: int) -> range:
        """Create ``count`` unlabeled nodes; return the range of new ids."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        start = len(self._supply)
        self._supply.extend([0] * count)
        self._labels.extend([None] * count)
        return range(start, start + count)

    def add_arc(self, tail: int, head: int, capacity: int, cost: int = 0) -> int:
        """Add a directed arc and return its arc id.

        Raises
        ------
        ValueError
            If an endpoint does not exist, the capacity is negative, or the
            arc is a self-loop (self-loops never carry useful flow and are
            rejected to surface construction bugs early).
        """
        n = len(self._supply)
        if not (0 <= tail < n and 0 <= head < n):
            raise ValueError(f"arc ({tail}, {head}) references unknown node; have {n} nodes")
        if tail == head:
            raise ValueError(f"self-loop arcs are not allowed (node {tail})")
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self._arcs.append(Arc(tail, head, int(capacity), int(cost)))
        return len(self._arcs) - 1

    def set_supply(self, node: int, supply: int) -> None:
        """Set the supply (positive) or demand (negative) of ``node``."""
        self._supply[node] = int(supply)

    def add_supply(self, node: int, delta: int) -> None:
        """Increment the supply of ``node`` by ``delta``."""
        self._supply[node] += int(delta)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._supply)

    @property
    def num_arcs(self) -> int:
        return len(self._arcs)

    @property
    def arcs(self) -> Sequence[Arc]:
        return self._arcs

    def arc(self, arc_id: int) -> Arc:
        return self._arcs[arc_id]

    def supply(self, node: int) -> int:
        return self._supply[node]

    def supplies(self) -> Sequence[int]:
        return self._supply

    def label(self, node: int) -> Optional[str]:
        return self._labels[node]

    def total_supply(self) -> int:
        """Sum of positive supplies (the amount of flow to be routed)."""
        return sum(s for s in self._supply if s > 0)

    def is_balanced(self) -> bool:
        """True if supplies and demands cancel exactly."""
        return sum(self._supply) == 0

    def out_arcs(self) -> list[list[int]]:
        """Adjacency: for each node, the list of outgoing arc ids."""
        adjacency: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for arc_id, arc in enumerate(self._arcs):
            adjacency[arc.tail].append(arc_id)
        return adjacency

    def is_topologically_ordered(self) -> bool:
        """True when every arc goes from a lower to a higher node id.

        Networks built in time order (such as the OPT-offline graphs)
        satisfy this, which lets solvers skip Bellman-Ford initialisation.
        """
        return all(arc.tail < arc.head for arc in self._arcs)

    def __iter__(self) -> Iterator[Arc]:
        return iter(self._arcs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FlowNetwork(nodes={self.num_nodes}, arcs={self.num_arcs}, "
            f"supply={self.total_supply()})"
        )


@dataclass
class FlowResult:
    """Outcome of a min-cost flow solve.

    Attributes
    ----------
    flow:
        Per-arc flow, indexed by arc id of the original network.
    cost:
        Total cost ``sum(flow[a] * cost[a])``.
    value:
        Units of flow actually routed from sources to sinks.
    feasible:
        True when every unit of supply reached a demand node.
    """

    flow: list[int]
    cost: int
    value: int
    feasible: bool

    def flow_on(self, arc_id: int) -> int:
        return self.flow[arc_id]
