"""Successive-shortest-paths min-cost flow with Johnson potentials.

This is the workhorse solver of :mod:`repro.flow`.  It routes the full
supply of a balanced :class:`~repro.flow.network.FlowNetwork` at minimum
total cost:

* a super source / super sink pair absorbs multiple supplies and demands;
* initial node potentials come from a single DAG sweep when the network is
  built in topological id order (true for all OPT-offline graphs), and
  from Bellman-Ford otherwise, so negative arc costs are supported;
* each augmentation runs Dijkstra on reduced costs (non-negative by the
  potential invariant) and pushes the bottleneck amount.

All capacities and supplies are integers, so the solution is integral
(Theorem 2 of the paper).  Complexity is ``O(F · E log V)`` where ``F`` is
the number of augmentations (bounded by the total supply).
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter

from ..obs import active_or_none
from .bellman_ford import shortest_paths
from .network import FlowNetwork, FlowResult
from .residual import ResidualGraph

INFINITY = float("inf")


class UnbalancedNetworkError(ValueError):
    """Raised when supplies and demands do not cancel."""


def _augmented_residual(network: FlowNetwork) -> tuple[ResidualGraph, int, int, int]:
    """Clone the network, add super source/sink, build the residual.

    Returns ``(residual, super_source, super_sink, num_original_arcs)``.
    """
    clone = FlowNetwork()
    clone.add_nodes(network.num_nodes)
    for arc in network.arcs:
        clone.add_arc(arc.tail, arc.head, arc.capacity, arc.cost)
    super_source = clone.add_node("super-source")
    super_sink = clone.add_node("super-sink")
    for node in range(network.num_nodes):
        supply = network.supply(node)
        if supply > 0:
            clone.add_arc(super_source, node, supply, 0)
        elif supply < 0:
            clone.add_arc(node, super_sink, -supply, 0)
    return ResidualGraph(clone), super_source, super_sink, network.num_arcs


def _dag_potentials(network: FlowNetwork, super_source: int, super_sink: int) -> list[float]:
    """Initial potentials via one forward sweep in node-id order.

    Valid when every original arc satisfies ``tail < head``.  Supply nodes
    start at distance 0 (they hang off the zero-cost super source).
    """
    n = network.num_nodes
    dist: list[float] = [INFINITY] * n
    for node in range(n):
        if network.supply(node) > 0:
            dist[node] = 0.0

    out = network.out_arcs()
    arcs = network.arcs
    for u in range(n):
        du = dist[u]
        if du == INFINITY:
            continue
        for arc_id in out[u]:
            arc = arcs[arc_id]
            candidate = du + arc.cost
            if candidate < dist[arc.head]:
                dist[arc.head] = candidate

    potentials = [d if d != INFINITY else 0.0 for d in dist]
    sink_potential = min(
        (potentials[v] for v in range(n) if network.supply(v) < 0 and dist[v] != INFINITY),
        default=0.0,
    )
    return potentials + [0.0, sink_potential]  # super source, super sink


def solve_min_cost_flow(network: FlowNetwork, *, metrics=None) -> FlowResult:
    """Route the network's full supply at minimum cost.

    Parameters
    ----------
    network:
        A balanced network (supplies sum to zero).  Costs may be negative
        as long as no negative-cost *cycle* of positive-capacity arcs
        exists (the OPT-offline graphs are DAGs, so this always holds).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; records the number
        of augmentations, each augmenting path's length, and the solve's
        wall-clock phase under ``flow/ssp``.

    Returns
    -------
    FlowResult
        ``feasible`` is False when the arc capacities cannot carry the
        whole supply; the returned flow then routes as much as possible
        (at minimum cost for that value).

    Raises
    ------
    UnbalancedNetworkError
        If supplies do not sum to zero.
    """
    if not network.is_balanced():
        raise UnbalancedNetworkError(
            f"supplies sum to {sum(network.supplies())}, expected 0"
        )

    demand = network.total_supply()
    num_original_arcs = network.num_arcs
    if demand == 0:
        return FlowResult(flow=[0] * num_original_arcs, cost=0, value=0, feasible=True)

    obs = active_or_none(metrics)
    start_time = perf_counter() if obs is not None else 0.0

    graph, super_source, super_sink, _ = _augmented_residual(network)

    has_negative_cost = any(arc.cost < 0 for arc in network.arcs)
    if not has_negative_cost:
        potentials: list[float] = [0.0] * graph.num_nodes
    elif network.is_topologically_ordered():
        potentials = _dag_potentials(network, super_source, super_sink)
    else:
        dist, _parents = shortest_paths(graph, super_source)
        potentials = [d if d != INFINITY else 0.0 for d in dist]

    head = graph.head
    cost = graph.cost
    residual = graph.residual
    adjacency = graph.adjacency
    n = graph.num_nodes

    routed = 0
    augmentations = 0
    path_lengths = obs.histogram("flow.ssp.path_length") if obs is not None else None
    while routed < demand:
        # Dijkstra on reduced costs from the super source.
        dist = [INFINITY] * n
        parent_arc = [-1] * n
        done = [False] * n
        dist[super_source] = 0.0
        heap: list[tuple[float, int]] = [(0.0, super_source)]
        while heap:
            d, u = heappop(heap)
            if done[u]:
                continue
            done[u] = True
            if u == super_sink:
                break
            base = d + potentials[u]
            for arc in adjacency[u]:
                if residual[arc] <= 0:
                    continue
                v = head[arc]
                if done[v]:
                    continue
                candidate = base + cost[arc] - potentials[v]
                if candidate < dist[v]:
                    dist[v] = candidate
                    parent_arc[v] = arc
                    heappush(heap, (candidate, v))

        if not done[super_sink]:
            break  # no augmenting path: capacity-infeasible supply

        # Update potentials so reduced costs stay non-negative.
        sink_dist = dist[super_sink]
        for v in range(n):
            dv = dist[v]
            potentials[v] += dv if dv < sink_dist else sink_dist

        # Bottleneck along the path, capped by the remaining demand.
        bottleneck = demand - routed
        node = super_sink
        while node != super_source:
            arc = parent_arc[node]
            if residual[arc] < bottleneck:
                bottleneck = residual[arc]
            node = head[arc ^ 1]

        node = super_sink
        path_arcs = 0
        while node != super_source:
            arc = parent_arc[node]
            residual[arc] -= bottleneck
            residual[arc ^ 1] += bottleneck
            node = head[arc ^ 1]
            path_arcs += 1
        routed += bottleneck
        augmentations += 1
        if path_lengths is not None:
            path_lengths.observe(path_arcs)

    if obs is not None:
        obs.counter("flow.ssp.augmentations").inc(augmentations)
        obs.gauge("flow.ssp.routed").set(routed)
        obs.record_phase("flow/ssp", perf_counter() - start_time)

    flow = graph.flows(num_original_arcs)
    total_cost = sum(
        f * network.arc(arc_id).cost for arc_id, f in enumerate(flow) if f
    )
    return FlowResult(flow=flow, cost=total_cost, value=routed, feasible=routed == demand)
