"""Shortest paths on DAG-structured cost graphs.

The OPT-offline flow networks are built in time order, so every arc goes
from a lower to a higher node id.  A single forward sweep then yields exact
shortest-path distances even with negative arc costs, which gives the
successive-shortest-paths solver valid initial potentials in O(V + E)
instead of a Bellman-Ford pass.
"""

from __future__ import annotations

from .network import FlowNetwork

INFINITY = float("inf")


def topological_order(network: FlowNetwork) -> list[int]:
    """Kahn topological order of the network's nodes.

    Raises
    ------
    ValueError
        If the network contains a directed cycle.
    """
    n = network.num_nodes
    indegree = [0] * n
    adjacency: list[list[int]] = [[] for _ in range(n)]
    for arc in network.arcs:
        adjacency[arc.tail].append(arc.head)
        indegree[arc.head] += 1

    order: list[int] = [v for v in range(n) if indegree[v] == 0]
    cursor = 0
    while cursor < len(order):
        u = order[cursor]
        cursor += 1
        for v in adjacency[u]:
            indegree[v] -= 1
            if indegree[v] == 0:
                order.append(v)
    if len(order) != n:
        raise ValueError("network contains a directed cycle")
    return order


def shortest_distances_from(network: FlowNetwork, source: int) -> list[float]:
    """Exact shortest distances from ``source`` over original arcs.

    Works for arbitrary (also negative) costs as long as the network is a
    DAG.  Unreachable nodes get ``inf``.
    """
    order = topological_order(network)
    dist: list[float] = [INFINITY] * network.num_nodes
    dist[source] = 0

    out = network.out_arcs()
    arcs = network.arcs
    for u in order:
        du = dist[u]
        if du == INFINITY:
            continue
        for arc_id in out[u]:
            arc = arcs[arc_id]
            candidate = du + arc.cost
            if candidate < dist[arc.head]:
                dist[arc.head] = candidate
    return dist


def initial_potentials(network: FlowNetwork, source: int) -> list[float]:
    """Johnson potentials for a DAG network: shortest distances from source.

    Nodes unreachable from the source keep potential 0; they can never lie
    on an augmenting path, so their value is irrelevant as long as it is
    finite.
    """
    dist = shortest_distances_from(network, source)
    return [d if d != INFINITY else 0.0 for d in dist]
