"""Command-line interface.

Four verbs, all printing plain text:

* ``repro list`` — available algorithms, figures, tables, and scales;
* ``repro run`` — run one algorithm on a generated workload;
* ``repro compare`` — run several algorithms on the same workload;
* ``repro figure`` / ``repro table`` — regenerate one of the paper's
  figures/tables (or an ablation) at a chosen scale.

Examples
--------
::

    repro run --algorithm PROB --length 2000 --window 100 --memory 50
    repro compare --algorithms RAND,PROB,OPT --skew 1.5
    repro figure figure3 --scale ci
    repro table ablation_drift --scale ci
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .experiments import (
    ABLATION_GENERATORS,
    ALL_ALGORITHMS,
    FIGURE_GENERATORS,
    SCALES,
    TABLE_GENERATORS,
    format_figure,
    format_table,
    run_algorithm,
    run_suite,
)
from .streams import exact_join_size, uniform_pair, weather_pair, zipf_pair


def _build_pair(args: argparse.Namespace):
    """The workload a ``run``/``compare`` invocation asks for."""
    if args.workload == "weather":
        return weather_pair(args.length, seed=args.seed)
    if args.workload == "uniform":
        return uniform_pair(args.length, args.domain, seed=args.seed)
    return zipf_pair(
        args.length,
        args.domain,
        args.skew,
        skew_s=args.skew_s,
        correlation=args.correlation,
        seed=args.seed,
    )


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--length", type=int, default=2000, help="tuples per stream")
    parser.add_argument("--window", type=int, default=100, help="window size w")
    parser.add_argument("--memory", type=int, default=50, help="memory budget M")
    parser.add_argument(
        "--workload",
        choices=("zipf", "uniform", "weather"),
        default="zipf",
    )
    parser.add_argument("--domain", type=int, default=50, help="join-value domain size")
    parser.add_argument("--skew", type=float, default=1.0, help="Zipf parameter of R")
    parser.add_argument(
        "--skew-s", type=float, default=None, dest="skew_s",
        help="Zipf parameter of S (defaults to --skew)",
    )
    parser.add_argument(
        "--correlation",
        choices=("uncorrelated", "correlated", "anticorrelated"),
        default="uncorrelated",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="output-counting start (default: 2 * window)",
    )


def _scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES) + ["full"],
        default=None,
        help="experiment scale (default: REPRO_SCALE or 'default')",
    )


def _resolve_scale(name: Optional[str]):
    if name is None:
        from .experiments import current_scale

        return current_scale()
    return SCALES["paper" if name == "full" else name]


def _cmd_list(_args: argparse.Namespace) -> int:
    print("algorithms :", ", ".join(ALL_ALGORITHMS))
    print("figures    :", ", ".join(sorted(FIGURE_GENERATORS)))
    print("tables     :", ", ".join(sorted(TABLE_GENERATORS)))
    print("ablations  :", ", ".join(sorted(ABLATION_GENERATORS)))
    print("scales     :", ", ".join(sorted(SCALES)), "(or 'full' = paper)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    pair = _build_pair(args)
    result = run_algorithm(
        args.algorithm, pair, args.window, args.memory,
        seed=args.seed, warmup=args.warmup,
    )
    warmup = args.warmup if args.warmup is not None else 2 * args.window
    exact = exact_join_size(pair, args.window, count_from=warmup)
    print(f"workload : {pair.name}")
    print(f"window   : {args.window}   memory: {args.memory}   warmup: {warmup}")
    print(f"{args.algorithm}: {result.output_count} output tuples "
          f"({100 * result.output_count / max(exact, 1):.1f}% of exact {exact})")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    names = [name.strip().upper() for name in args.algorithms.split(",") if name.strip()]
    unknown = [name for name in names if name not in ALL_ALGORITHMS]
    if unknown:
        print(f"unknown algorithms: {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(ALL_ALGORITHMS)}", file=sys.stderr)
        return 2
    pair = _build_pair(args)
    results = run_suite(
        names, pair, args.window, args.memory, seed=args.seed, warmup=args.warmup
    )
    warmup = args.warmup if args.warmup is not None else 2 * args.window
    exact = exact_join_size(pair, args.window, count_from=warmup)
    print(f"workload : {pair.name}   w={args.window}  M={args.memory}")
    print(f"{'algorithm':<10} {'output':>10} {'% of exact':>11}")
    print("-" * 33)
    for name in names:
        count = results[name].output_count
        print(f"{name:<10} {count:>10} {100 * count / max(exact, 1):>10.1f}%")
    print(f"{'EXACT':<10} {exact:>10} {100.0:>10.1f}%")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.name not in FIGURE_GENERATORS:
        print(f"unknown figure {args.name!r}; choose from "
              f"{', '.join(sorted(FIGURE_GENERATORS))}", file=sys.stderr)
        return 2
    scale = _resolve_scale(args.scale)
    figure = FIGURE_GENERATORS[args.name](scale, seed=args.seed)
    print(format_figure(figure))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    generators = {**TABLE_GENERATORS, **ABLATION_GENERATORS}
    if args.name not in generators:
        print(f"unknown table {args.name!r}; choose from "
              f"{', '.join(sorted(generators))}", file=sys.stderr)
        return 2
    generator = generators[args.name]
    scale = _resolve_scale(args.scale)
    if args.name == "multiway_join":  # scale-free tiny study
        table = generator(seed=args.seed)
    else:
        table = generator(scale, seed=args.seed)
    print(format_table(table))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate Join Processing Over Data Streams (SIGMOD 2003) — reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list algorithms, figures, tables, scales")

    run_parser = commands.add_parser("run", help="run one algorithm on a workload")
    run_parser.add_argument(
        "--algorithm", default="PROB", type=str.upper,
        help=f"one of {', '.join(ALL_ALGORITHMS)}",
    )
    _add_workload_arguments(run_parser)

    compare_parser = commands.add_parser("compare", help="run several algorithms")
    compare_parser.add_argument(
        "--algorithms", default="RAND,PROB,OPT",
        help="comma-separated algorithm names",
    )
    _add_workload_arguments(compare_parser)

    figure_parser = commands.add_parser("figure", help="regenerate a paper figure")
    figure_parser.add_argument("name", help="e.g. figure3 .. figure11")
    figure_parser.add_argument("--seed", type=int, default=0)
    _scale_argument(figure_parser)

    table_parser = commands.add_parser("table", help="regenerate a table / ablation")
    table_parser.add_argument("name", help="e.g. static_join, ablation_drift")
    table_parser.add_argument("--seed", type=int, default=0)
    _scale_argument(table_parser)

    return parser


_HANDLERS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "figure": _cmd_figure,
    "table": _cmd_table,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
