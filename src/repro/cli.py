"""Command-line interface.

Four verbs, all printing plain text:

* ``repro list`` — available algorithms, figures, tables, and scales;
* ``repro run`` — run one algorithm on a generated workload;
* ``repro compare`` — run several algorithms on the same workload;
* ``repro figure`` / ``repro table`` — regenerate one of the paper's
  figures/tables (or an ablation) at a chosen scale.

``run`` and ``compare`` are thin layers over :mod:`repro.api`; with
``--metrics json|csv`` they also emit the observability snapshot (see
EXPERIMENTS.md for the schema), either to stdout or to ``--metrics-out``.

Examples
--------
::

    repro run --algorithm PROB --length 2000 --window 100 --memory 50
    repro run --algorithm PROB --metrics json --metrics-out prob.json
    repro compare --algorithms RAND,PROB,OPT --skew 1.5
    repro figure figure3 --scale ci
    repro table ablation_drift --scale ci
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Optional, Sequence

from .api import RunSpec, build_pair, compare as compare_specs, run_join
from .experiments import (
    ABLATION_GENERATORS,
    ALL_ALGORITHMS,
    FIGURE_GENERATORS,
    SCALES,
    TABLE_GENERATORS,
    format_figure,
    format_table,
)
from .obs import metrics_to_csv, metrics_to_json
from .streams import exact_join_size


def _spec_from_args(args: argparse.Namespace, algorithm: str) -> RunSpec:
    """The :class:`~repro.api.RunSpec` a ``run``/``compare`` asks for."""
    return RunSpec(
        algorithm=algorithm,
        window=args.window,
        memory=args.memory,
        warmup=args.warmup,
        seed=args.seed,
        workload=args.workload,
        length=args.length,
        domain=args.domain,
        skew=args.skew,
        skew_s=args.skew_s,
        correlation=args.correlation,
        metrics=args.metrics is not None,
    )


def _emit_metrics(args: argparse.Namespace, snapshots: dict) -> None:
    """Render collected snapshots as the requested format.

    ``snapshots`` maps algorithm label to snapshot dict; a single run
    emits the bare snapshot, a comparison an object keyed by label.
    """
    payload = next(iter(snapshots.values())) if len(snapshots) == 1 else snapshots
    if args.metrics == "csv":
        if len(snapshots) == 1:
            text = metrics_to_csv(payload)
        else:
            parts = []
            for label, snapshot in snapshots.items():
                parts.append(f"# {label}")
                parts.append(metrics_to_csv(snapshot).rstrip("\n"))
            text = "\n".join(parts) + "\n"
    else:
        text = metrics_to_json(payload) + "\n"
    if args.metrics_out:
        from pathlib import Path

        path = Path(args.metrics_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        print(f"metrics  : written to {path}")
    else:
        sys.stdout.write(text)


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--length", type=int, default=2000, help="tuples per stream")
    parser.add_argument("--window", type=int, default=100, help="window size w")
    parser.add_argument("--memory", type=int, default=50, help="memory budget M")
    parser.add_argument(
        "--workload",
        choices=("zipf", "uniform", "weather"),
        default="zipf",
    )
    parser.add_argument("--domain", type=int, default=50, help="join-value domain size")
    parser.add_argument("--skew", type=float, default=1.0, help="Zipf parameter of R")
    parser.add_argument(
        "--skew-s", type=float, default=None, dest="skew_s",
        help="Zipf parameter of S (defaults to --skew)",
    )
    parser.add_argument(
        "--correlation",
        choices=("uncorrelated", "correlated", "anticorrelated"),
        default="uncorrelated",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="output-counting start (default: 2 * window)",
    )
    parser.add_argument(
        "--metrics", choices=("json", "csv"), default=None,
        help="collect and emit an observability snapshot",
    )
    parser.add_argument(
        "--metrics-out", default=None, dest="metrics_out",
        help="write the metrics report to this file instead of stdout",
    )


def _scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES) + ["full"],
        default=None,
        help="experiment scale (default: REPRO_SCALE or 'default')",
    )


def _resolve_scale(name: Optional[str]):
    if name is None:
        from .experiments import current_scale

        return current_scale()
    return SCALES["paper" if name == "full" else name]


def _cmd_list(_args: argparse.Namespace) -> int:
    print("algorithms :", ", ".join(ALL_ALGORITHMS))
    print("figures    :", ", ".join(sorted(FIGURE_GENERATORS)))
    print("tables     :", ", ".join(sorted(TABLE_GENERATORS)))
    print("ablations  :", ", ".join(sorted(ABLATION_GENERATORS)))
    print("scales     :", ", ".join(sorted(SCALES)), "(or 'full' = paper)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args, args.algorithm)
    pair = build_pair(spec)
    result = run_join(spec, pair=pair)
    warmup = spec.effective_warmup
    exact = exact_join_size(pair, args.window, count_from=warmup)
    print(f"workload : {pair.name}")
    print(f"window   : {args.window}   memory: {args.memory}   warmup: {warmup}")
    print(f"{args.algorithm}: {result.output_count} output tuples "
          f"({100 * result.output_count / max(exact, 1):.1f}% of exact {exact})")
    if args.metrics is not None:
        snapshot = getattr(result, "metrics", None)
        _emit_metrics(args, {args.algorithm: snapshot or {}})
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    names = [name.strip().upper() for name in args.algorithms.split(",") if name.strip()]
    unknown = [name for name in names if name not in ALL_ALGORITHMS]
    if unknown:
        print(f"unknown algorithms: {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(ALL_ALGORITHMS)}", file=sys.stderr)
        return 2
    template = _spec_from_args(args, names[0])
    pair = build_pair(template)
    results = compare_specs(
        [replace(template, algorithm=name, variable=None) for name in names],
        pair=pair,
    )
    warmup = template.effective_warmup
    exact = exact_join_size(pair, args.window, count_from=warmup)
    print(f"workload : {pair.name}   w={args.window}  M={args.memory}")
    print(f"{'algorithm':<10} {'output':>10} {'% of exact':>11}")
    print("-" * 33)
    for name in names:
        count = results[name].output_count
        print(f"{name:<10} {count:>10} {100 * count / max(exact, 1):>10.1f}%")
    print(f"{'EXACT':<10} {exact:>10} {100.0:>10.1f}%")
    if args.metrics is not None:
        _emit_metrics(
            args,
            {
                name: getattr(result, "metrics", None) or {}
                for name, result in results.items()
            },
        )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.name not in FIGURE_GENERATORS:
        print(f"unknown figure {args.name!r}; choose from "
              f"{', '.join(sorted(FIGURE_GENERATORS))}", file=sys.stderr)
        return 2
    scale = _resolve_scale(args.scale)
    figure = FIGURE_GENERATORS[args.name](scale, seed=args.seed)
    print(format_figure(figure))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    generators = {**TABLE_GENERATORS, **ABLATION_GENERATORS}
    if args.name not in generators:
        print(f"unknown table {args.name!r}; choose from "
              f"{', '.join(sorted(generators))}", file=sys.stderr)
        return 2
    generator = generators[args.name]
    scale = _resolve_scale(args.scale)
    if args.name == "multiway_join":  # scale-free tiny study
        table = generator(seed=args.seed)
    else:
        table = generator(scale, seed=args.seed)
    print(format_table(table))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate Join Processing Over Data Streams (SIGMOD 2003) — reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list algorithms, figures, tables, scales")

    run_parser = commands.add_parser("run", help="run one algorithm on a workload")
    run_parser.add_argument(
        "--algorithm", default="PROB", type=str.upper,
        help=f"one of {', '.join(ALL_ALGORITHMS)}",
    )
    _add_workload_arguments(run_parser)

    compare_parser = commands.add_parser("compare", help="run several algorithms")
    compare_parser.add_argument(
        "--algorithms", default="RAND,PROB,OPT",
        help="comma-separated algorithm names",
    )
    _add_workload_arguments(compare_parser)

    figure_parser = commands.add_parser("figure", help="regenerate a paper figure")
    figure_parser.add_argument("name", help="e.g. figure3 .. figure11")
    figure_parser.add_argument("--seed", type=int, default=0)
    _scale_argument(figure_parser)

    table_parser = commands.add_parser("table", help="regenerate a table / ablation")
    table_parser.add_argument("name", help="e.g. static_join, ablation_drift")
    table_parser.add_argument("--seed", type=int, default=0)
    _scale_argument(table_parser)

    return parser


_HANDLERS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "figure": _cmd_figure,
    "table": _cmd_table,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
