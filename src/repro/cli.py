"""Command-line interface.

Eight verbs, all printing plain text:

* ``repro list`` — available algorithms, figures, tables, and scales;
* ``repro run`` — run one algorithm on a generated workload;
* ``repro serve`` — run one algorithm over a pull-based *source*
  (generator or JSONL replay), incrementally and optionally unbounded:
  rolling summary lines on stderr, graceful Ctrl-C shutdown, and
  ``--emit jsonl`` streaming each join output to stdout as produced;
* ``repro compare`` — run several algorithms on the same workload;
* ``repro sweep`` — run several algorithms across seeds and print
  mean/std/min/max aggregates per algorithm;
* ``repro figure`` / ``repro table`` — regenerate one of the paper's
  figures/tables (or an ablation) at a chosen scale;
* ``repro trace record|timeline|inspect|attribute`` — capture a
  tuple-lifecycle trace, export a parallel run's merged span timeline
  as Chrome trace-event JSON, summarise a trace, or replay runs
  against the exact partner sets and print the per-policy lost-output
  (regret) table;
* ``repro dash`` — animate a traced run as a live text dashboard;
  ``repro dash --fleet`` renders a telemetry-armed parallel run as one
  row per shard (heartbeat age, retries, lost shards).

``run`` and ``compare`` are thin layers over :mod:`repro.api`; with
``--metrics json|csv`` they also emit the observability snapshot (see
EXPERIMENTS.md for the schema), either to stdout or to ``--metrics-out``.

Examples
--------
::

    repro run --algorithm PROB --length 2000 --window 100 --memory 50
    repro run --algorithm PROB --metrics json --metrics-out prob.json
    repro serve --source zipf --algorithm PROB --duration 100000
    repro serve --source drifting-zipf --estimator ewma --duration 50000
    repro serve --source replay --replay streams.jsonl --emit jsonl
    repro run --algorithm EXACT --shards 4 --workers 4 \
        --max-retries 2 --checkpoint-every 64
    repro compare --algorithms RAND,PROB,OPT --skew 1.5
    repro compare --algorithms RAND,PROB,LIFE,OPT --workers 4
    repro sweep --algorithms RAND,PROB --seeds 0,1,2,3 --workers 4
    repro sweep --algorithms RAND,PROB --seeds 0,1 --shards 2 --max-retries 1
    repro figure figure3 --scale ci
    repro table ablation_drift --scale ci
    repro trace record --algorithm PROB --out prob.trace.jsonl
    repro trace timeline --shards 4 --workers 4 --out timeline.json
    repro trace attribute --algorithms PROB,RAND --scale ci
    repro dash --algorithm PROB --once
    repro dash --fleet --shards 4 --workers 4 --once
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import Optional, Sequence

from .api import RunSpec, build_pair, compare as compare_specs, run
from .experiments import (
    ABLATION_GENERATORS,
    ALL_ALGORITHMS,
    FIGURE_GENERATORS,
    SCALES,
    TABLE_GENERATORS,
    format_figure,
    format_table,
)
from .obs import metrics_to_csv, metrics_to_csv_multi, metrics_to_json
from .streams import exact_join_size


def _spec_from_args(args: argparse.Namespace, algorithm: str) -> RunSpec:
    """The :class:`~repro.api.RunSpec` a ``run``/``compare`` asks for."""
    return RunSpec(
        algorithm=algorithm,
        window=args.window,
        memory=args.memory,
        warmup=args.warmup,
        seed=getattr(args, "seed", 0),
        workload=args.workload,
        length=args.length,
        domain=args.domain,
        skew=args.skew,
        skew_s=args.skew_s,
        correlation=args.correlation,
        batch_size=getattr(args, "batch_size", None),
        metrics=getattr(args, "metrics", None) is not None,
        shards=getattr(args, "shards", 1),
        shard_weighted=getattr(args, "shard_weighted", False),
        max_retries=getattr(args, "max_retries", 0),
        timeout_s=getattr(args, "timeout_s", None),
        checkpoint_every=getattr(args, "checkpoint_every", None),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        degrade=getattr(args, "degrade", False),
        telemetry=getattr(args, "telemetry", False),
        telemetry_dir=getattr(args, "telemetry_dir", None),
        heartbeat_every=getattr(args, "heartbeat_every", 16),
    )


def _emit_metrics(
    args: argparse.Namespace, snapshots: dict, summaries: Optional[dict] = None
) -> None:
    """Render collected snapshots as the requested format.

    ``snapshots`` maps algorithm label to snapshot dict; a single run
    emits the bare snapshot, a comparison an object keyed by label.
    JSON exports are versioned: each snapshot gains a ``schema_version``
    key and — when ``summaries`` provides the run's
    :class:`~repro.core.results.RunSummary` — a ``run`` document
    (:meth:`~repro.core.results.RunSummary.to_dict`).  The extra keys
    are ignored by ``load_metrics_json``, so the snapshot round-trip
    is unchanged.
    """
    if args.metrics == "json":
        from .core.results import SCHEMA_VERSION

        snapshots = {
            label: {
                **snapshot,
                "schema_version": SCHEMA_VERSION,
                **(
                    {"run": summaries[label].to_dict()}
                    if summaries and summaries.get(label) is not None
                    else {}
                ),
            }
            for label, snapshot in snapshots.items()
        }
    payload = next(iter(snapshots.values())) if len(snapshots) == 1 else snapshots
    if args.metrics == "csv":
        if len(snapshots) == 1:
            text = metrics_to_csv(payload)
        else:
            # One merged CSV with a leading ``policy`` column — not
            # concatenated per-policy blocks, which lose the labels.
            text = metrics_to_csv_multi(snapshots)
    else:
        text = metrics_to_json(payload) + "\n"
    if args.metrics_out:
        from pathlib import Path

        path = Path(args.metrics_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        print(f"metrics  : written to {path}")
    else:
        sys.stdout.write(text)


def _add_workload_arguments(
    parser: argparse.ArgumentParser, *, seed: bool = True, metrics: bool = True
) -> None:
    parser.add_argument("--length", type=int, default=2000, help="tuples per stream")
    parser.add_argument("--window", type=int, default=100, help="window size w")
    parser.add_argument("--memory", type=int, default=50, help="memory budget M")
    parser.add_argument(
        "--workload",
        choices=("zipf", "uniform", "weather"),
        default="zipf",
    )
    parser.add_argument("--domain", type=int, default=50, help="join-value domain size")
    parser.add_argument("--skew", type=float, default=1.0, help="Zipf parameter of R")
    parser.add_argument(
        "--skew-s", type=float, default=None, dest="skew_s",
        help="Zipf parameter of S (defaults to --skew)",
    )
    parser.add_argument(
        "--correlation",
        choices=("uncorrelated", "correlated", "anticorrelated"),
        default="uncorrelated",
    )
    if seed:
        parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--warmup", type=int, default=None,
        help="output-counting start (default: 2 * window)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None, dest="batch_size",
        help="columnar micro-batch chunk size for the fast engine "
             "(EXACT takes the count-only lane; RAND/PROB/LIFE with "
             "static tables take the vectorized policy lanes; "
             "configurations needing tuple granularity fall back, "
             "results identical)",
    )
    if metrics:
        parser.add_argument(
            "--metrics", choices=("json", "csv"), default=None,
            help="collect and emit an observability snapshot",
        )
        parser.add_argument(
            "--metrics-out", default=None, dest="metrics_out",
            help="write the metrics report to this file instead of stdout",
        )


def _shards_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", type=int, default=1,
        help="hash-partition the key domain into N independent sub-joins "
             "(EXACT: identical result; policies: approximation variant)",
    )
    parser.add_argument(
        "--shard-weighted", action="store_true", dest="shard_weighted",
        help="split the memory budget by per-shard arrival mass "
             "instead of evenly",
    )


def _workers_argument(parser: argparse.ArgumentParser, help_text: str) -> None:
    parser.add_argument(
        "--workers", type=int, default=None,
        help=help_text + " (default: REPRO_WORKERS or serial)",
    )


def _fault_tolerance_arguments(parser: argparse.ArgumentParser) -> None:
    """The sharded-run fault-tolerance knobs (see :class:`RunSpec`).

    Combination rules live in one place — ``RunSpec.__post_init__`` —
    so every verb rejects invalid flag mixes identically.
    """
    group = parser.add_argument_group("fault tolerance (sharded runs)")
    group.add_argument(
        "--max-retries", type=int, default=0, dest="max_retries",
        help="re-run a failed/timed-out shard up to N times",
    )
    group.add_argument(
        "--timeout-s", type=float, default=None, dest="timeout_s",
        help="per-attempt shard timeout in seconds (pooled runs)",
    )
    group.add_argument(
        "--checkpoint-every", type=int, default=None, dest="checkpoint_every",
        help="checkpoint each shard every N ticks so retries resume "
             "instead of replaying from tick 0",
    )
    group.add_argument(
        "--checkpoint-dir", default=None, dest="checkpoint_dir",
        help="directory for shard checkpoints "
             "(default: a run-private temporary directory)",
    )
    group.add_argument(
        "--degrade", action="store_true",
        help="on retry exhaustion, merge the surviving shards and "
             "report the lost shard in the drop ledger instead of failing",
    )
    group.add_argument(
        "--telemetry", action="store_true",
        help="record runtime spans and per-shard worker heartbeats; "
             "the merged timeline lands on the result",
    )
    group.add_argument(
        "--telemetry-dir", default=None, dest="telemetry_dir",
        help="keep the worker heartbeat spools in this directory "
             "(default: a run-private temporary directory)",
    )
    group.add_argument(
        "--heartbeat-every", type=int, default=16, dest="heartbeat_every",
        help="ticks between worker heartbeats (default: 16)",
    )


def _scale_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES) + ["full"],
        default=None,
        help="experiment scale (default: REPRO_SCALE or 'default')",
    )


def _resolve_scale(name: Optional[str]):
    if name is None:
        from .experiments import current_scale

        return current_scale()
    return SCALES["paper" if name == "full" else name]


def _cmd_list(_args: argparse.Namespace) -> int:
    print("algorithms :", ", ".join(ALL_ALGORITHMS))
    print("figures    :", ", ".join(sorted(FIGURE_GENERATORS)))
    print("tables     :", ", ".join(sorted(TABLE_GENERATORS)))
    print("ablations  :", ", ".join(sorted(ABLATION_GENERATORS)))
    print("scales     :", ", ".join(sorted(SCALES)), "(or 'full' = paper)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = _spec_from_args(args, args.algorithm)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    pair = build_pair(spec)
    result = run(spec, pair=pair, workers=args.workers)
    warmup = spec.effective_warmup
    exact = exact_join_size(pair, args.window, count_from=warmup)
    print(f"workload : {pair.name}")
    print(f"window   : {args.window}   memory: {args.memory}   warmup: {warmup}")
    print(f"{args.algorithm}: {result.output_count} output tuples "
          f"({100 * result.output_count / max(exact, 1):.1f}% of exact {exact})")
    lost = getattr(result, "lost_shards", ())
    if lost:
        print(f"degraded : lost shard(s) {', '.join(map(str, lost))}"
              + (f"; {result.lost_output} outputs forgone"
                 if result.lost_output is not None else ""))
    if args.metrics is not None:
        snapshot = getattr(result, "metrics", None)
        summary = getattr(result, "summary", None)
        _emit_metrics(
            args,
            {args.algorithm: snapshot or {}},
            {args.algorithm: summary() if callable(summary) else None},
        )
    return 0


def _build_source(args: argparse.Namespace):
    """The :class:`~repro.streams.sources.Source` a ``serve`` asks for."""
    from .streams.sources import (
        DriftingZipfSource,
        PoissonSource,
        ReplaySource,
        ZipfSource,
    )

    if args.source == "replay":
        if not args.replay:
            raise ValueError("--source replay needs --replay PATH")
        return ReplaySource(args.replay)
    if args.source == "drifting-zipf":
        return DriftingZipfSource(
            args.domain,
            args.skew,
            phase_length=args.phase_length,
            seed=args.seed,
            length=args.length,
        )
    if args.source == "poisson":
        return PoissonSource(
            args.domain,
            args.skew,
            args.rate,
            skew_s=args.skew_s,
            correlation=args.correlation,
            seed=args.seed,
            length=args.length,
        )
    return ZipfSource(
        args.domain,
        args.skew,
        skew_s=args.skew_s,
        correlation=args.correlation,
        seed=args.seed,
        length=args.length,
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve a source through the incremental engine path.

    Join results never materialize: ``--emit jsonl`` streams each output
    pair to stdout the tick it is produced, rolling summaries go to
    stderr every ``--summary-every`` ticks, and SIGINT (Ctrl-C) sets a
    cooperative stop flag — the engine finishes the current tick,
    flushes, and reports like any bounded run.
    """
    import json
    import signal

    try:
        source = _build_source(args)
        spec = RunSpec(
            algorithm=args.algorithm,
            window=args.window,
            memory=args.memory,
            warmup=args.warmup,
            seed=args.seed,
            engine=args.engine,
            source=source,
            duration=args.duration,
            estimator=args.estimator,
            estimator_alpha=args.estimator_alpha,
            batch_size=args.batch_size,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.duration is None and source.length is None and not sys.stderr.isatty():
        # Unbounded runs are interactive by design; still allow them in
        # pipelines — the stop flag is the only exit, so say so once.
        print("serving unbounded source; stop with SIGINT", file=sys.stderr)

    emit = None
    if args.emit == "jsonl":
        out = sys.stdout

        def emit(result):
            out.write(json.dumps({
                "r": result.r_arrival, "s": result.s_arrival, "key": result.key,
            }) + "\n")

    ticks_seen = {"n": 0}

    def on_summary(summary):
        ticks_seen["n"] += args.summary_every
        drops = summary.drops
        print(
            f"[{source.name or args.source} t={ticks_seen['n']}] "
            f"{summary.policy_name}: output={summary.output_count} "
            f"shed={drops.shed} expired={drops.expired}",
            file=sys.stderr,
        )

    stopping = {"flag": False}

    def _handle_sigint(signum, frame):
        if stopping["flag"]:  # second Ctrl-C: give up immediately
            raise KeyboardInterrupt
        stopping["flag"] = True
        print("stopping after current tick ...", file=sys.stderr)

    previous = signal.signal(signal.SIGINT, _handle_sigint)
    try:
        result = run(
            spec,
            emit=emit,
            on_summary=on_summary,
            on_summary_every=args.summary_every,
            stop=lambda: stopping["flag"],
        )
    except ValueError as exc:  # e.g. estimator='oracle' over a replay source
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # The downstream --emit consumer closed its end (`... | head`):
        # normal termination for a streaming run.  Point stdout at
        # devnull so the interpreter's shutdown flush doesn't print an
        # "Exception ignored" complaint, and exit like SIGPIPE would.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    finally:
        signal.signal(signal.SIGINT, previous)
    drops = result.drop_breakdown()
    print(f"source   : {source.name or args.source}", file=sys.stderr)
    print(
        f"window   : {args.window}   memory: {args.memory}   "
        f"warmup: {spec.effective_warmup}",
        file=sys.stderr,
    )
    print(
        f"{args.algorithm}: {result.output_count} output tuples over "
        f"{result.length} ticks (shed={drops.shed}, expired={drops.expired})"
        + ("  [stopped]" if stopping["flag"] else ""),
        file=sys.stderr,
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    names = [name.strip().upper() for name in args.algorithms.split(",") if name.strip()]
    unknown = [name for name in names if name not in ALL_ALGORITHMS]
    if unknown:
        print(f"unknown algorithms: {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(ALL_ALGORITHMS)}", file=sys.stderr)
        return 2
    try:
        template = _spec_from_args(args, names[0])
        specs = [
            replace(template, algorithm=name, variable=None) for name in names
        ]
    except ValueError as exc:  # e.g. --shards with OPT in the list
        print(f"error: {exc}", file=sys.stderr)
        return 2
    pair = build_pair(template)
    results = compare_specs(specs, pair=pair, workers=args.workers)
    warmup = template.effective_warmup
    exact = exact_join_size(pair, args.window, count_from=warmup)
    print(f"workload : {pair.name}   w={args.window}  M={args.memory}")
    print(f"{'algorithm':<10} {'output':>10} {'% of exact':>11}")
    print("-" * 33)
    for name in names:
        count = results[name].output_count
        print(f"{name:<10} {count:>10} {100 * count / max(exact, 1):>10.1f}%")
    print(f"{'EXACT':<10} {exact:>10} {100.0:>10.1f}%")
    if args.metrics is not None:
        summaries = {}
        for name, result in results.items():
            summary = getattr(result, "summary", None)
            summaries[name] = summary() if callable(summary) else None
        _emit_metrics(
            args,
            {
                name: getattr(result, "metrics", None) or {}
                for name, result in results.items()
            },
            summaries,
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .experiments.sweep import sweep_seeds, sweep_specs

    names = [name.strip().upper() for name in args.algorithms.split(",") if name.strip()]
    unknown = [name for name in names if name not in ALL_ALGORITHMS]
    if unknown:
        print(f"unknown algorithms: {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(ALL_ALGORITHMS)}", file=sys.stderr)
        return 2
    try:
        seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    except ValueError:
        print(f"--seeds must be comma-separated integers, got {args.seeds!r}",
              file=sys.stderr)
        return 2
    if not seeds:
        print("--seeds must name at least one seed", file=sys.stderr)
        return 2

    try:
        base = _spec_from_args(args, names[0])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if base.shards > 1 or base.max_retries or base.timeout_s is not None \
            or base.checkpoint_every is not None or base.degrade:
        # Sharded / fault-tolerant sweeps go through the unified run()
        # path; the plain suite fast path cannot express those knobs.
        aggregates = sweep_specs(names, base, seeds=seeds, workers=args.workers)
    else:
        def factory(seed: int):
            return build_pair(replace(base, seed=seed))

        aggregates = sweep_seeds(
            names,
            factory,
            args.window,
            args.memory,
            seeds=seeds,
            warmup=args.warmup,
            workers=args.workers,
        )
    print(f"workload : {args.workload}(length={args.length}, domain={args.domain}, "
          f"skew={args.skew})   w={args.window}  M={args.memory}  "
          f"seeds={','.join(map(str, seeds))}")
    print(f"{'algorithm':<10} {'mean':>12} {'std':>10} {'min':>10} {'max':>10}")
    print("-" * 56)
    for name in names:
        agg = aggregates[name]
        print(f"{name:<10} {agg.mean:>12.1f} {agg.std:>10.1f} "
              f"{agg.minimum:>10} {agg.maximum:>10}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.name not in FIGURE_GENERATORS:
        print(f"unknown figure {args.name!r}; choose from "
              f"{', '.join(sorted(FIGURE_GENERATORS))}", file=sys.stderr)
        return 2
    scale = _resolve_scale(args.scale)
    figure = FIGURE_GENERATORS[args.name](scale, seed=args.seed)
    print(format_figure(figure))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    generators = {**TABLE_GENERATORS, **ABLATION_GENERATORS}
    if args.name not in generators:
        print(f"unknown table {args.name!r}; choose from "
              f"{', '.join(sorted(generators))}", file=sys.stderr)
        return 2
    generator = generators[args.name]
    scale = _resolve_scale(args.scale)
    if args.name == "multiway_join":  # scale-free tiny study
        table = generator(seed=args.seed)
    else:
        table = generator(scale, seed=args.seed)
    print(format_table(table))
    return 0


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from .obs import save_trace, trace_summary

    spec = replace(_spec_from_args(args, args.algorithm), trace=True)
    pair = build_pair(spec)
    result = run(spec, pair=pair)
    events = result.trace or []
    summary = trace_summary(events)
    print(f"workload : {pair.name}   w={args.window}  M={args.memory}")
    print(f"{args.algorithm}: {result.output_count} output tuples, "
          f"{len(events)} trace events")
    for kind, count in sorted(summary.get("kinds", {}).items()):
        print(f"  {kind:<12} {count}")
    if args.out:
        path = save_trace(events, args.out)
        print(f"trace    : written to {path}")
    return 0


def _cmd_trace_timeline(args: argparse.Namespace) -> int:
    """Run a sharded spec with telemetry; export the merged timeline."""
    import json

    from .obs import save_spans, span_summary, stage_stats, to_chrome_trace

    try:
        spec = replace(
            _spec_from_args(args, args.algorithm),
            telemetry=True,
            heartbeat_every=args.heartbeat_every,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if spec.shards < 2:
        print("error: trace timeline needs --shards >= 2 "
              "(the telemetry plane instruments parallel runs)",
              file=sys.stderr)
        return 2
    pair = build_pair(spec)
    result = run(spec, pair=pair, workers=args.workers)
    timeline = result.timeline or []
    summary = span_summary(timeline)
    print(f"workload : {pair.name}   w={args.window}  M={args.memory}  "
          f"shards={spec.shards}")
    print(f"timeline : {summary['events']} span events, "
          f"{len(summary['cells'])} cells, "
          f"{summary['retries']} retries, "
          f"wall {summary['wall_seconds']:.3f}s")
    for kind, count in sorted(summary.get("kinds", {}).items()):
        print(f"  {kind:<18} {count}")
    stats = stage_stats(timeline)
    print("stage latencies (seconds):")
    print(f"  {'stage':<16} {'count':>6} {'mean':>10} {'p50':>10} "
          f"{'p90':>10} {'p99':>10} {'max':>10}")
    for stage, stat in stats.items():
        if not stat.get("count"):
            print(f"  {stage:<16} {0:>6}")
            continue
        print(f"  {stage:<16} {stat['count']:>6} {stat['mean']:>10.6f} "
              f"{stat['p50']:>10.6f} {stat['p90']:>10.6f} "
              f"{stat['p99']:>10.6f} {stat['max']:>10.6f}")
    if args.spans_out:
        path = save_spans(timeline, args.spans_out)
        print(f"spans    : written to {path}")
    if args.out:
        from pathlib import Path

        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(to_chrome_trace(timeline)) + "\n")
        print(f"trace    : written to {path} "
              "(load in chrome://tracing or ui.perfetto.dev)")
    return 0


def _cmd_trace_inspect(args: argparse.Namespace) -> int:
    from .obs import load_trace, trace_summary

    try:
        events = load_trace(args.path)
    except (OSError, ValueError) as error:
        print(f"cannot read trace {args.path!r}: {error}", file=sys.stderr)
        return 2
    summary = trace_summary(events)
    print(f"trace    : {args.path}   {len(events)} events")
    span = summary.get("tick_span")
    if span:
        print(f"ticks    : {span[0]}..{span[1]}")
    print("kinds    :", ", ".join(
        f"{kind}={count}" for kind, count in sorted(summary.get("kinds", {}).items())
    ) or "(none)")
    reasons = summary.get("reasons", {})
    if reasons:
        print("reasons  :", ", ".join(
            f"{reason}={count}" for reason, count in sorted(reasons.items())
        ))
    top = summary.get("top_shed_keys", [])
    if top:
        print("top shed :", ", ".join(f"{key}×{count}" for key, count in top))
    for event in events[: args.events]:
        print(f"  {event.tick:>6} {event.stream} {event.kind:<12} "
              f"key={event.key} arrival={event.arrival}"
              + (f" reason={event.reason}" if event.reason else ""))
    return 0


def _cmd_trace_attribute(args: argparse.Namespace) -> int:
    from .experiments.config import even_memory
    from .obs import format_regret_table, regret_by_policy

    names = [name.strip().upper() for name in args.algorithms.split(",") if name.strip()]
    unknown = [
        name for name in names
        if name not in ALL_ALGORITHMS or name in ("OPT", "OPTV")
    ]
    if unknown:
        print(f"cannot attribute: {', '.join(unknown)} "
              "(engine algorithms only — OPT has no tuple lifecycle)",
              file=sys.stderr)
        return 2
    scale = _resolve_scale(args.scale)
    length = args.length if args.length is not None else scale.stream_length
    window = args.window if args.window is not None else scale.window
    memory = args.memory if args.memory is not None else even_memory(window, 0.5)
    reports = regret_by_policy(
        names,
        window=window,
        memory=memory,
        length=length,
        domain=args.domain,
        skew=args.skew,
        seed=args.seed,
        warmup=args.warmup,
    )
    print(f"workload : zipf(length={length}, domain={args.domain}, "
          f"skew={args.skew})   w={window}  M={memory}")
    print(format_regret_table(reports))
    if args.top:
        for name, report in reports.items():
            regrets = report.top_regrets(args.top)
            if not regrets:
                continue
            print(f"\n{name}: top {len(regrets)} costliest decisions")
            for entry in regrets:
                priority = (
                    f" prio={entry.priority:.3g}" if entry.priority is not None else ""
                )
                print(f"  t={entry.tick:>6} {entry.stream} key={entry.key} "
                      f"{entry.kind}/{entry.reason}{priority} "
                      f"lost={entry.lost_counted}")
    return 0


def _cmd_dash(args: argparse.Namespace) -> int:
    from .obs import load_trace, play

    if args.fleet:
        return _cmd_dash_fleet(args)
    if args.from_trace:
        try:
            events = load_trace(args.from_trace)
        except (OSError, ValueError) as error:
            print(f"cannot read trace {args.from_trace!r}: {error}", file=sys.stderr)
            return 2
        title = f"repro dash — {args.from_trace}"
    else:
        spec = replace(_spec_from_args(args, args.algorithm), trace=True)
        pair = build_pair(spec)
        result = run(spec, pair=pair)
        events = result.trace or []
        title = f"repro dash — {args.algorithm} on {pair.name}"
    width = args.bucket if args.bucket is not None else max(args.window // 2, 1)
    frames = play(
        events, width=width, fps=args.fps, title=title,
        once=args.once, color=False if args.no_color else None,
    )
    return 0 if frames else 1


def _cmd_dash_fleet(args: argparse.Namespace) -> int:
    """Fleet mode: one row per shard of a telemetry-armed parallel run."""
    from .obs import load_spans, play_fleet

    if args.from_trace:
        # In fleet mode the file is a span timeline (``trace timeline
        # --spans-out``), not a tuple-lifecycle trace.
        try:
            events = load_spans(args.from_trace)
        except (OSError, ValueError) as error:
            print(f"cannot read spans {args.from_trace!r}: {error}",
                  file=sys.stderr)
            return 2
        title = f"repro dash --fleet — {args.from_trace}"
    else:
        try:
            spec = replace(_spec_from_args(args, args.algorithm), telemetry=True)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if spec.shards < 2:
            print("error: dash --fleet needs --shards >= 2 "
                  "(or --from-trace with a saved span timeline)",
                  file=sys.stderr)
            return 2
        pair = build_pair(spec)
        result = run(spec, pair=pair, workers=args.workers)
        events = result.timeline or []
        title = f"repro dash --fleet — {args.algorithm} x{spec.shards}"
    frames = play_fleet(
        events, fps=args.fps, title=title,
        once=args.once, color=False if args.no_color else None,
    )
    return 0 if frames else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Approximate Join Processing Over Data Streams (SIGMOD 2003) — reproduction CLI",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list algorithms, figures, tables, scales")

    run_parser = commands.add_parser("run", help="run one algorithm on a workload")
    run_parser.add_argument(
        "--algorithm", default="PROB", type=str.upper,
        help=f"one of {', '.join(ALL_ALGORITHMS)}",
    )
    _add_workload_arguments(run_parser)
    _shards_arguments(run_parser)
    _fault_tolerance_arguments(run_parser)
    _workers_argument(
        run_parser,
        "worker processes; an unsharded run executes serially, a "
        "--shards run fans its shards over the workers",
    )

    serve_parser = commands.add_parser(
        "serve",
        help="run one algorithm incrementally over a pull-based source "
             "(generator or JSONL replay), optionally unbounded",
    )
    serve_parser.add_argument(
        "--algorithm", default="PROB", type=str.upper,
        help=f"one of {', '.join(ALL_ALGORITHMS)} (no OPT/OPTV)",
    )
    serve_parser.add_argument(
        "--source",
        choices=("zipf", "drifting-zipf", "poisson", "replay"),
        default="zipf",
        help="arrival source (generators are unbounded unless --length)",
    )
    serve_parser.add_argument(
        "--replay", default=None,
        help="JSONL recording to replay (with --source replay; "
             "CSV recordings are adapted automatically)",
    )
    serve_parser.add_argument("--window", type=int, default=100, help="window size w")
    serve_parser.add_argument("--memory", type=int, default=50, help="memory budget M")
    serve_parser.add_argument("--domain", type=int, default=50)
    serve_parser.add_argument("--skew", type=float, default=1.0)
    serve_parser.add_argument(
        "--skew-s", type=float, default=None, dest="skew_s",
        help="Zipf parameter of S (defaults to --skew)",
    )
    serve_parser.add_argument(
        "--correlation",
        choices=("uncorrelated", "correlated", "anticorrelated"),
        default="uncorrelated",
    )
    serve_parser.add_argument(
        "--rate", type=float, default=1.0,
        help="mean arrivals per side per tick (--source poisson)",
    )
    serve_parser.add_argument(
        "--phase-length", type=int, default=10_000, dest="phase_length",
        help="ticks per drift phase (--source drifting-zipf)",
    )
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument(
        "--length", type=int, default=None,
        help="bound the *source* at N ticks (default: unbounded generator)",
    )
    serve_parser.add_argument(
        "--duration", type=int, default=None,
        help="bound the *run* at N ticks (else runs to source end / SIGINT)",
    )
    serve_parser.add_argument(
        "--warmup", type=int, default=None,
        help="output-counting start (default: 2 * window)",
    )
    serve_parser.add_argument(
        "--engine", choices=("fast", "async"), default="fast",
    )
    serve_parser.add_argument(
        "--batch-size", type=int, default=None, dest="batch_size",
        help="chunk unit-rate sources into columnar micro-batches "
             "(EXACT and static RAND/PROB/LIFE take the vectorized "
             "lanes; memory stays bounded, results identical)",
    )
    serve_parser.add_argument(
        "--estimator",
        choices=("oracle", "ewma", "countmin", "spacesaving"),
        default="oracle",
        help="statistics module for PROB/LIFE (oracle = static tables; "
             "the rest update online from the live arrivals)",
    )
    serve_parser.add_argument(
        "--estimator-alpha", type=float, default=None, dest="estimator_alpha",
        help="EWMA smoothing factor (default: 2 / (window + 1))",
    )
    serve_parser.add_argument(
        "--emit", choices=("jsonl",), default=None,
        help="stream each join output to stdout as produced",
    )
    serve_parser.add_argument(
        "--summary-every", type=int, default=5000, dest="summary_every",
        help="ticks between rolling summary lines on stderr",
    )

    compare_parser = commands.add_parser("compare", help="run several algorithms")
    compare_parser.add_argument(
        "--algorithms", default="RAND,PROB,OPT",
        help="comma-separated algorithm names",
    )
    _add_workload_arguments(compare_parser)
    _shards_arguments(compare_parser)
    _fault_tolerance_arguments(compare_parser)
    _workers_argument(compare_parser, "worker processes to fan the algorithms over")

    sweep_parser = commands.add_parser(
        "sweep", help="run several algorithms across seeds; print aggregates"
    )
    sweep_parser.add_argument(
        "--algorithms", default="RAND,PROB,OPT",
        help="comma-separated algorithm names",
    )
    sweep_parser.add_argument(
        "--seeds", default="0,1,2,3,4",
        help="comma-separated seeds; one suite runs per seed",
    )
    _add_workload_arguments(sweep_parser, seed=False, metrics=False)
    _shards_arguments(sweep_parser)
    _fault_tolerance_arguments(sweep_parser)
    _workers_argument(sweep_parser, "worker processes to fan the seeds over")

    figure_parser = commands.add_parser("figure", help="regenerate a paper figure")
    figure_parser.add_argument("name", help="e.g. figure3 .. figure11")
    figure_parser.add_argument("--seed", type=int, default=0)
    _scale_argument(figure_parser)

    table_parser = commands.add_parser("table", help="regenerate a table / ablation")
    table_parser.add_argument("name", help="e.g. static_join, ablation_drift")
    table_parser.add_argument("--seed", type=int, default=0)
    _scale_argument(table_parser)

    trace_parser = commands.add_parser(
        "trace", help="record, inspect, or attribute a tuple-lifecycle trace"
    )
    trace_commands = trace_parser.add_subparsers(dest="trace_command", required=True)

    record_parser = trace_commands.add_parser(
        "record", help="run one algorithm with tracing and save the trace"
    )
    record_parser.add_argument(
        "--algorithm", default="PROB", type=str.upper,
        help=f"one of {', '.join(ALL_ALGORITHMS)}",
    )
    record_parser.add_argument(
        "--out", default=None, help="write the trace to this JSONL file"
    )
    _add_workload_arguments(record_parser)

    timeline_parser = trace_commands.add_parser(
        "timeline",
        help="run a sharded spec with telemetry; export the merged "
             "span timeline as Chrome trace-event JSON",
    )
    timeline_parser.add_argument(
        "--algorithm", default="EXACT", type=str.upper,
        help=f"one of {', '.join(ALL_ALGORITHMS)}",
    )
    timeline_parser.add_argument(
        "--out", default=None,
        help="write Chrome trace-event JSON here "
             "(chrome://tracing / Perfetto)",
    )
    timeline_parser.add_argument(
        "--spans-out", default=None, dest="spans_out",
        help="also save the raw span timeline as JSONL "
             "(replayable with dash --fleet --from-trace)",
    )
    _add_workload_arguments(timeline_parser, metrics=False)
    _shards_arguments(timeline_parser)
    _fault_tolerance_arguments(timeline_parser)
    _workers_argument(timeline_parser, "worker processes to fan the shards over")

    inspect_parser = trace_commands.add_parser(
        "inspect", help="summarise a saved trace file"
    )
    inspect_parser.add_argument("path", help="trace file written by `trace record`")
    inspect_parser.add_argument(
        "--events", type=int, default=0,
        help="also print the first N raw events",
    )

    attribute_parser = trace_commands.add_parser(
        "attribute",
        help="replay traced runs against exact partner sets; print regret table",
    )
    attribute_parser.add_argument(
        "--algorithms", default="PROB,RAND",
        help="comma-separated engine algorithms (no OPT/OPTV)",
    )
    attribute_parser.add_argument(
        "--length", type=int, default=None,
        help="tuples per stream (default: the scale's stream length)",
    )
    attribute_parser.add_argument(
        "--window", type=int, default=None,
        help="window size w (default: the scale's window)",
    )
    attribute_parser.add_argument(
        "--memory", type=int, default=None,
        help="memory budget M (default: half the window, kept even)",
    )
    attribute_parser.add_argument("--domain", type=int, default=50)
    attribute_parser.add_argument("--skew", type=float, default=1.0)
    attribute_parser.add_argument("--seed", type=int, default=0)
    attribute_parser.add_argument("--warmup", type=int, default=None)
    attribute_parser.add_argument(
        "--top", type=int, default=0,
        help="also print each policy's N costliest shedding decisions",
    )
    _scale_argument(attribute_parser)

    dash_parser = commands.add_parser(
        "dash", help="animate a traced run as a live text dashboard"
    )
    dash_parser.add_argument(
        "--algorithm", default="PROB", type=str.upper,
        help=f"one of {', '.join(ALL_ALGORITHMS)}",
    )
    dash_parser.add_argument(
        "--from-trace", default=None, dest="from_trace",
        help="replay a saved trace file instead of running an algorithm",
    )
    dash_parser.add_argument(
        "--bucket", type=int, default=None,
        help="ticks per dashboard window (default: window / 2)",
    )
    dash_parser.add_argument("--fps", type=float, default=8.0)
    dash_parser.add_argument(
        "--once", action="store_true",
        help="print only the final frame (no animation)",
    )
    dash_parser.add_argument(
        "--no-color", action="store_true", dest="no_color",
        help="disable ANSI colour/clear codes",
    )
    dash_parser.add_argument(
        "--fleet", action="store_true",
        help="fleet mode: one row per shard of a telemetry-armed "
             "parallel run (heartbeat age, retries, lost shards)",
    )
    _add_workload_arguments(dash_parser)
    _shards_arguments(dash_parser)
    _fault_tolerance_arguments(dash_parser)
    _workers_argument(dash_parser, "worker processes to fan the shards over")

    return parser


_HANDLERS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "serve": _cmd_serve,
    "compare": _cmd_compare,
    "sweep": _cmd_sweep,
    "figure": _cmd_figure,
    "table": _cmd_table,
    "dash": _cmd_dash,
}

_TRACE_HANDLERS = {
    "record": _cmd_trace_record,
    "timeline": _cmd_trace_timeline,
    "inspect": _cmd_trace_inspect,
    "attribute": _cmd_trace_attribute,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "trace":
        return _TRACE_HANDLERS[args.trace_command](args)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
