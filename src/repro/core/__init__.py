"""Core library: the paper's contribution.

* :mod:`repro.core.engine` — fast-CPU integrated-model simulator;
* :mod:`repro.core.policies` — RAND / PROB / LIFE (+V) semantic shedding;
* :mod:`repro.core.offline` — OPT-offline via min-cost flow;
* :mod:`repro.core.static_join` — k-truncated static joins (DP, variants);
* :mod:`repro.core.metrics` — MAX-subset, set measures, EMD, MAC, ArM;
* :mod:`repro.core.archive` — load smoothing with archive refinement;
* :mod:`repro.core.slowcpu` — the modular slow-CPU extension.
"""

from .async_engine import (
    AsyncEngineConfig,
    AsyncJoinEngine,
    AsyncRunResult,
    batches_from_pair,
)
from .engine import (
    CapacityExceededError,
    EngineConfig,
    JoinEngine,
    RunResult,
)
from .exact import run_exact
from .memory import JoinMemory, StreamMemory, TupleRecord
from .slowcpu import SlowCpuConfig, SlowCpuEngine, SlowCpuResult
from .window import WindowSpec

__all__ = [
    "AsyncEngineConfig",
    "AsyncJoinEngine",
    "AsyncRunResult",
    "CapacityExceededError",
    "batches_from_pair",
    "EngineConfig",
    "JoinEngine",
    "JoinMemory",
    "RunResult",
    "SlowCpuConfig",
    "SlowCpuEngine",
    "SlowCpuResult",
    "StreamMemory",
    "TupleRecord",
    "WindowSpec",
    "run_exact",
]
