"""Core library: the paper's contribution.

* :mod:`repro.core.engine` — fast-CPU integrated-model simulator;
* :mod:`repro.core.policies` — RAND / PROB / LIFE (+V) semantic shedding;
* :mod:`repro.core.offline` — OPT-offline via min-cost flow;
* :mod:`repro.core.static_join` — k-truncated static joins (DP, variants);
* :mod:`repro.core.metrics` — MAX-subset, set measures, EMD, MAC, ArM;
* :mod:`repro.core.archive` — load smoothing with archive refinement;
* :mod:`repro.core.slowcpu` — the modular slow-CPU extension.
"""

from .async_engine import (
    AsyncEngineConfig,
    AsyncJoinEngine,
    AsyncRunResult,
    batches_from_pair,
)
from .engine import (
    CapacityExceededError,
    EngineConfig,
    JoinEngine,
    RunResult,
)
from .exact import run_exact
from .memory import JoinMemory, StreamMemory, TupleRecord
from .policies import (
    POLICY_NAMES,
    SidePolicies,
    make_policy,
    make_policy_spec,
    register_policy,
)
from .results import DropBreakdown, RunSummary
from .slowcpu import SlowCpuConfig, SlowCpuEngine, SlowCpuResult
from .window import WindowSpec

__all__ = [
    "AsyncEngineConfig",
    "AsyncJoinEngine",
    "AsyncRunResult",
    "CapacityExceededError",
    "batches_from_pair",
    "DropBreakdown",
    "EngineConfig",
    "JoinEngine",
    "JoinMemory",
    "POLICY_NAMES",
    "RunResult",
    "RunSummary",
    "SidePolicies",
    "SlowCpuConfig",
    "SlowCpuEngine",
    "SlowCpuResult",
    "StreamMemory",
    "TupleRecord",
    "WindowSpec",
    "make_policy",
    "make_policy_spec",
    "register_policy",
    "run_exact",
]
