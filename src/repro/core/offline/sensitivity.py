"""Memory-value analysis on top of OPT-offline.

OPT as a function of the memory budget answers the provisioning question
behind the whole paper: *how much is another tuple of memory worth?*
For the compact formulation this is a parametric min-cost flow in the
chain capacity, so the optimal profit is concave in the budget — each
additional slot buys at most as much output as the previous one.  The
helpers here compute the curve, its marginal values, and the smallest
budget achieving a target fraction of the exact result ("the knee").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ...streams.tuples import StreamPair, exact_join_size
from .opt import solve_opt


@dataclass(frozen=True)
class MemoryValuePoint:
    """One point of the memory-value curve."""

    memory: int
    output: int
    fraction_of_exact: float


@dataclass
class MemoryValueCurve:
    """OPT output as a function of the memory budget.

    Attributes
    ----------
    points:
        Curve points in increasing memory order.
    exact:
        The unconstrained (EXACT) output the fractions refer to.
    """

    points: list[MemoryValuePoint]
    exact: int
    window: int
    variable: bool

    def marginal_values(self) -> list[float]:
        """Output gained per extra tuple of memory between grid points.

        Concavity of the parametric flow optimum means these are
        non-increasing (verified by the test-suite); a sharp drop marks
        the provisioning knee.
        """
        marginals: list[float] = []
        for previous, current in zip(self.points, self.points[1:]):
            span = current.memory - previous.memory
            marginals.append((current.output - previous.output) / max(span, 1))
        return marginals

    def smallest_budget_reaching(self, fraction: float) -> Optional[int]:
        """Least measured budget with ``output >= fraction * exact``."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        for point in self.points:
            if point.fraction_of_exact >= fraction:
                return point.memory
        return None


def memory_value_curve(
    pair: StreamPair,
    window: int,
    memories: Sequence[int],
    *,
    variable: bool = False,
    count_from: Optional[int] = None,
) -> MemoryValueCurve:
    """Solve OPT across a memory grid and assemble the value curve.

    ``memories`` must be strictly increasing (and even under fixed
    allocation, as usual).
    """
    if not memories:
        raise ValueError("need at least one memory budget")
    if list(memories) != sorted(set(memories)):
        raise ValueError("memories must be strictly increasing")
    if count_from is None:
        count_from = 2 * window

    exact = exact_join_size(pair, window, count_from=count_from)
    points = []
    for memory in memories:
        output = solve_opt(
            pair, window, memory, variable=variable, count_from=count_from
        ).output_count
        points.append(
            MemoryValuePoint(
                memory=memory,
                output=output,
                fraction_of_exact=output / max(exact, 1),
            )
        )
    return MemoryValueCurve(points=points, exact=exact, window=window, variable=variable)
