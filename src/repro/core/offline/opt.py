"""OPT-offline: the best possible MAX-subset approximation (Section 3.2).

Given a finite stream prefix and full knowledge of the future, OPT picks
the keep/drop schedule maximising the number of counted output tuples
under the memory budget.  It upper-bounds every online policy and is the
denominator of the paper's "fraction of OPT" plots (Figures 6, 9-11).

``solve_opt`` builds the compact flow network(s) (see
:mod:`repro.core.offline.flowgraph`), solves them with the library's SSP
solver, decodes the schedule, and *independently replays* the schedule
against the streams to verify that the claimed optimum is actually
realised — a run-time self-check of both the construction and the solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...flow import SOLVERS
from ...obs import active_or_none
from ...streams.tuples import StreamPair
from ..results import BaseRunResult, DropBreakdown
from .flowgraph import build_schedule_network, decode_departures
from .intervals import TupleJob, extract_jobs


@dataclass
class OptResult(BaseRunResult):
    """Outcome of an OPT-offline solve.

    Attributes
    ----------
    output_count:
        Counted output size of the optimal schedule, including the
        always-produced simultaneous pairs — directly comparable with
        :attr:`repro.core.engine.RunResult.output_count`.
    held_profit:
        Output earned by tuples held in memory (output_count minus the
        simultaneous pairs).
    simultaneous:
        Counted pairs ``r(t) == s(t)``.
    r_departures / s_departures:
        Per-arrival last probe tick the tuple stays for (engine
        convention); tuples shed on arrival have ``departure == arrival``.
    variable:
        Whether the schedule used a shared (variable-allocation) pool.
    """

    output_count: int
    held_profit: int
    simultaneous: int
    r_departures: list[int]
    s_departures: list[int]
    window: int
    memory: int
    variable: bool
    count_from: int
    policy_name: str = "OPT"
    metrics: Optional[dict] = None

    engine_kind = "offline"

    def drop_breakdown(self) -> DropBreakdown:
        """All-zero: OPT sheds *implicitly* through its schedule.

        The solver picks departures; it keeps no engine-style drop
        ledger.  Overriding keeps the unified result surface
        (``summary()`` / ``drop_breakdown()``) total across every
        :func:`repro.api.run` dispatch target.
        """
        return DropBreakdown()


def _solve_pool(
    jobs: list[TupleJob], length: int, capacity: int, solver: str, metrics=None
) -> tuple[int, dict[tuple[str, int], int]]:
    """Optimal profit and schedule for one slot pool."""
    if capacity == 0 or not jobs:
        return 0, {}
    schedule = build_schedule_network(jobs, length, capacity)
    result = SOLVERS[solver](schedule.network, metrics=metrics)
    if not result.feasible:
        raise RuntimeError(
            "schedule network infeasible — the chain should always carry "
            f"the supply (capacity {capacity}, length {length})"
        )
    departures = decode_departures(schedule, result.flow)
    return -result.cost, departures


def _replay_profit(
    pair: StreamPair,
    departures: dict[tuple[str, int], int],
    window: int,
    count_from: int,
) -> int:
    """Recount the schedule's output directly from the streams.

    A pair ``(x(i), y(j))`` with ``i < j`` is produced iff the earlier
    tuple's departure is ``>= j``; this is exactly the engine's
    accounting, computed without the flow machinery: for every scheduled
    tuple, count the other stream's counted arrivals of the same key in
    ``[arrival + 1, departure]``.
    """
    from bisect import bisect_left, bisect_right

    times_by_key = {"R": {}, "S": {}}
    for t, (r_key, s_key) in enumerate(zip(pair.r, pair.s)):
        times_by_key["R"].setdefault(r_key, []).append(t)
        times_by_key["S"].setdefault(s_key, []).append(t)

    produced = 0
    for (stream, arrival), departure in departures.items():
        if not arrival <= departure <= arrival + window - 1:
            raise AssertionError(
                f"schedule departure {departure} outside the lifetime of "
                f"{stream}({arrival}) with window {window}"
            )
        key = pair.r[arrival] if stream == "R" else pair.s[arrival]
        other = "S" if stream == "R" else "R"
        partner_times = times_by_key[other].get(key, ())
        low = max(arrival + 1, count_from)
        start = bisect_left(partner_times, low)
        stop = bisect_right(partner_times, departure)
        produced += max(0, stop - start)
    return produced


def solve_opt(
    pair: StreamPair,
    window: int,
    memory: int,
    *,
    variable: bool = False,
    count_from: Optional[int] = None,
    verify: bool = True,
    solver: str = "ssp",
    metrics=None,
) -> OptResult:
    """Compute the optimal offline schedule for a stream pair.

    Parameters
    ----------
    pair:
        Finite stream prefix (the paper uses 5600-tuple prefixes because
        CS2's runtime is super-linear; this solver handles such sizes).
    window, memory:
        Window size ``w`` and memory budget ``M``.
    variable:
        False — fixed M/2 + M/2 allocation (paper's OPT): the two pools
        never interact, so two independent flow problems are solved.
        True — shared pool of M slots (paper's OPTV with cross arcs).
    count_from:
        First tick whose output counts; defaults to the paper's warmup of
        ``2 * window``.
    verify:
        Replay the decoded schedule against the streams and assert the
        count matches the flow objective (cheap; on by default).
    solver:
        Which min-cost flow solver to use: ``"ssp"`` (successive shortest
        paths, the default — fastest here because the flow value is the
        memory size) or ``"cost_scaling"`` (the CS2 algorithm family the
        paper used).  Both are exact.
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry` passed down to the
        flow solver (augmentations, relabels, phase timings).
    """
    if solver not in SOLVERS:
        raise ValueError(f"solver must be one of {sorted(SOLVERS)}, got {solver!r}")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if memory <= 0:
        raise ValueError(f"memory must be positive, got {memory}")
    if not variable and memory % 2 != 0:
        raise ValueError(f"fixed allocation needs even memory, got {memory}")
    if count_from is None:
        count_from = 2 * window

    length = len(pair)
    r_jobs, s_jobs, simultaneous = extract_jobs(pair, window, count_from=count_from)

    if variable:
        profit, departures = _solve_pool(r_jobs + s_jobs, length, memory, solver, metrics)
    else:
        half = memory // 2
        profit_r, departures_r = _solve_pool(r_jobs, length, half, solver, metrics)
        profit_s, departures_s = _solve_pool(s_jobs, length, half, solver, metrics)
        profit = profit_r + profit_s
        departures = {**departures_r, **departures_s}

    if verify:
        replayed = _replay_profit(pair, departures, window, count_from)
        if replayed != profit:
            raise AssertionError(
                f"OPT self-check failed: flow objective {profit} but schedule "
                f"replay produced {replayed}"
            )

    obs = active_or_none(metrics)
    r_departures = [departures.get(("R", t), t) for t in range(length)]
    s_departures = [departures.get(("S", t), t) for t in range(length)]
    return OptResult(
        output_count=profit + simultaneous,
        held_profit=profit,
        simultaneous=simultaneous,
        r_departures=r_departures,
        s_departures=s_departures,
        window=window,
        memory=memory,
        variable=variable,
        count_from=count_from,
        policy_name="OPTV" if variable else "OPT",
        metrics=obs.snapshot() if obs is not None else None,
    )
