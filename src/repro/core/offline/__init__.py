"""OPT-offline: optimal keep/drop schedules via min-cost flow (Section 3.2)."""

from .brute import brute_force_opt, brute_force_side
from .flowgraph import JobArc, ScheduleNetwork, build_schedule_network, decode_departures
from .intervals import TupleJob, extract_jobs, total_exact_output
from .opt import OptResult, solve_opt
from .sensitivity import MemoryValueCurve, MemoryValuePoint, memory_value_curve

__all__ = [
    "JobArc",
    "MemoryValueCurve",
    "MemoryValuePoint",
    "OptResult",
    "ScheduleNetwork",
    "TupleJob",
    "brute_force_opt",
    "brute_force_side",
    "build_schedule_network",
    "decode_departures",
    "memory_value_curve",
    "extract_jobs",
    "solve_opt",
    "total_exact_output",
]
