"""Exhaustive optimal scheduler for tiny instances.

Explores every admit/reject/evict decision sequence of the fast-CPU model
by memoised search, giving a ground-truth optimum to validate the flow
formulation of OPT-offline against.  Exponential in general — intended
for streams of a dozen tuples and single-digit memory in tests.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from ...streams.tuples import StreamPair


def _simultaneous(pair: StreamPair, count_from: int) -> int:
    return sum(1 for t in range(count_from, len(pair)) if pair.r[t] == pair.s[t])


def brute_force_side(
    self_keys: Sequence,
    other_keys: Sequence,
    window: int,
    capacity: int,
    *,
    count_from: int = 0,
) -> int:
    """Optimal held-tuple output of one side under fixed allocation.

    Counts, over all schedules, the outputs earned by *self*-stream
    tuples resident when their partners arrive on the other stream.
    """
    if len(self_keys) != len(other_keys):
        raise ValueError("streams must have equal length")
    length = len(self_keys)
    if capacity <= 0 or length == 0:
        return 0

    self_keys = tuple(self_keys)
    other_keys = tuple(other_keys)

    @lru_cache(maxsize=None)
    def best(t: int, residents: tuple[int, ...]) -> int:
        if t == length:
            return 0
        residents = tuple(a for a in residents if a > t - window)
        profit = 0
        if t >= count_from:
            probe = other_keys[t]
            profit = sum(1 for a in residents if self_keys[a] == probe)

        # Admission choices for the tuple arriving now on the self stream.
        outcomes = [best(t + 1, residents)]  # reject the newcomer
        if len(residents) < capacity:
            outcomes.append(best(t + 1, tuple(sorted(residents + (t,)))))
        else:
            for victim in residents:
                kept = tuple(sorted(a for a in residents if a != victim) + [t])
                outcomes.append(best(t + 1, kept))
        return profit + max(outcomes)

    return best(0, ())


def brute_force_opt(
    pair: StreamPair,
    window: int,
    memory: int,
    *,
    variable: bool = False,
    count_from: int = 0,
) -> int:
    """Ground-truth optimal counted output (including simultaneous pairs)."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if memory <= 0:
        raise ValueError(f"memory must be positive, got {memory}")
    if not variable:
        if memory % 2 != 0:
            raise ValueError(f"fixed allocation needs even memory, got {memory}")
        half = memory // 2
        return (
            brute_force_side(pair.r, pair.s, window, half, count_from=count_from)
            + brute_force_side(pair.s, pair.r, window, half, count_from=count_from)
            + _simultaneous(pair, count_from)
        )
    return _brute_force_variable(pair, window, memory, count_from) + _simultaneous(
        pair, count_from
    )


def _brute_force_variable(
    pair: StreamPair, window: int, memory: int, count_from: int
) -> int:
    """Joint search over a shared pool (cross evictions allowed)."""
    length = len(pair)
    r_keys = tuple(pair.r)
    s_keys = tuple(pair.s)

    def admission_states(own, other, t):
        """(own, other) states after deciding the newcomer of `own`'s side."""
        states = [(own, other)]  # reject the newcomer
        if len(own) + len(other) < memory:
            states.append((tuple(sorted(own + (t,))), other))
        else:
            admitted = tuple(sorted(own + (t,)))
            for victim in own:
                shrunk = tuple(sorted(a for a in own if a != victim))
                states.append((tuple(sorted(shrunk + (t,))), other))
            for victim in other:
                states.append((admitted, tuple(a for a in other if a != victim)))
        return states

    @lru_cache(maxsize=None)
    def best(t: int, residents_r: tuple[int, ...], residents_s: tuple[int, ...]) -> int:
        if t == length:
            return 0
        residents_r = tuple(a for a in residents_r if a > t - window)
        residents_s = tuple(a for a in residents_s if a > t - window)

        profit = 0
        if t >= count_from:
            profit += sum(1 for a in residents_s if s_keys[a] == r_keys[t])
            profit += sum(1 for a in residents_r if r_keys[a] == s_keys[t])

        # Enumerate admissions of r(t) then s(t); cross evictions allowed.
        outcomes = []
        for new_r, mid_s in admission_states(residents_r, residents_s, t):
            for new_s, final_r in admission_states(mid_s, new_r, t):
                outcomes.append(best(t + 1, final_r, new_s))
        return profit + max(outcomes)

    return best(0, (), ())
