"""Per-tuple match-time extraction for OPT-offline.

Under the MAX-subset measure, the only times at which holding a tuple in
memory pays off are the arrival times of its match partners on the other
stream.  Every output pair ``(r(i), s(j))`` with ``i != j`` is earned by
the *earlier* tuple being resident when the later one arrives, so each
tuple's potential contribution is fully described by the ascending list
of its future match times within the window — its "interval job".

Match times before ``count_from`` (the warmup boundary) produce no
counted output and are dropped: an optimal schedule never holds a tuple
past a match it gets no credit for unless a later counted match follows,
and the remaining (counted) match times express exactly those options.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Hashable, Sequence

from ...streams.tuples import StreamPair


@dataclass(frozen=True)
class TupleJob:
    """The OPT-offline view of one tuple: when would holding it pay?

    Attributes
    ----------
    stream:
        ``"R"`` or ``"S"`` — which side's memory the tuple occupies.
    arrival:
        Arrival time ``i``.
    match_times:
        Strictly ascending arrival times of counted future partners, all
        within ``(i, i + w)`` and ``>= count_from``.  Holding the tuple
        for probes ``i+1 .. match_times[k]`` earns ``k + 1`` outputs.
    """

    stream: str
    arrival: int
    match_times: tuple[int, ...]

    @property
    def max_profit(self) -> int:
        return len(self.match_times)


def _future_matches(
    arrival: int,
    key: Hashable,
    other_times_by_key: dict,
    window: int,
    length: int,
    count_from: int,
) -> tuple[int, ...]:
    """Counted partner-arrival times for a tuple in ``(arrival, arrival+w)``."""
    times: Sequence[int] = other_times_by_key.get(key, ())
    if not times:
        return ()
    low = max(arrival + 1, count_from)
    high = min(arrival + window - 1, length - 1)
    if low > high:
        return ()
    start = bisect_left(times, low)
    stop = bisect_right(times, high)
    return tuple(times[start:stop])


def extract_jobs(
    pair: StreamPair, window: int, *, count_from: int = 0
) -> tuple[list[TupleJob], list[TupleJob], int]:
    """Turn a stream pair into interval jobs plus the simultaneous count.

    Returns
    -------
    (r_jobs, s_jobs, simultaneous):
        Jobs for tuples with at least one counted future match (tuples
        with none can never contribute and are omitted), and the number
        of counted simultaneous pairs ``r(t) == s(t)`` with
        ``t >= count_from`` (always produced; the flow graph's top path).
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if count_from < 0:
        raise ValueError(f"count_from must be non-negative, got {count_from}")

    length = len(pair)
    r_times_by_key: dict = {}
    s_times_by_key: dict = {}
    for t, (r_key, s_key) in enumerate(zip(pair.r, pair.s)):
        r_times_by_key.setdefault(r_key, []).append(t)
        s_times_by_key.setdefault(s_key, []).append(t)

    r_jobs: list[TupleJob] = []
    s_jobs: list[TupleJob] = []
    for t, (r_key, s_key) in enumerate(zip(pair.r, pair.s)):
        r_matches = _future_matches(t, r_key, s_times_by_key, window, length, count_from)
        if r_matches:
            r_jobs.append(TupleJob("R", t, r_matches))
        s_matches = _future_matches(t, s_key, r_times_by_key, window, length, count_from)
        if s_matches:
            s_jobs.append(TupleJob("S", t, s_matches))

    simultaneous = sum(
        1
        for t in range(count_from, length)
        if pair.r[t] == pair.s[t]
    )
    return r_jobs, s_jobs, simultaneous


def total_exact_output(
    r_jobs: list[TupleJob], s_jobs: list[TupleJob], simultaneous: int
) -> int:
    """Output size of the EXACT join implied by the jobs.

    With unbounded memory every job realises its full profit; this equals
    :func:`repro.streams.tuples.exact_join_size` with the same
    ``count_from`` and serves as a cross-check between the two pipelines.
    """
    return (
        sum(job.max_profit for job in r_jobs)
        + sum(job.max_profit for job in s_jobs)
        + simultaneous
    )
