"""Compact min-cost-flow construction for OPT-offline.

The paper's flow graph (Section 3.2.1) has a node for every (tuple, time)
pair — Θ(wN) nodes — and is solved with the C-coded CS2 solver.  This
module builds the provably equivalent compact network described in
DESIGN.md section 3: weighted interval scheduling of the tuples' match
intervals on M identical memory slots.

Construction
------------
* one *time node* per tick ``0 .. N`` (node ids in time order);
* chain arcs ``time_t -> time_{t+1}`` with capacity = slot count, cost 0
  (units flowing along the chain are idle slots);
* per tuple job: an *entry node* wedged (in id order) between its arrival
  tick and the next tick, fed by a unit-capacity zero-cost arc from
  ``time_arrival``, with one outgoing arc per counted match time ``m``:
  ``entry -> time_m`` with capacity 1 and cost ``-(k+1)`` for the
  ``k``-th match — "hold the tuple for probes ``arrival+1 .. m``, then
  release the slot to a tuple arriving at ``m``";
* supply = slot count at ``time_0``, demand at ``time_N``.

Every arc goes from a lower to a higher node id, so the network is a DAG
in topological order and the SSP solver's O(V+E) potential
initialisation applies.  Integral data ⇒ integral optimum (the paper's
Theorem 2 applies unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...flow.network import FlowNetwork
from .intervals import TupleJob


@dataclass(frozen=True)
class JobArc:
    """Bookkeeping for one candidate departure of one job."""

    job: TupleJob
    departure: int  # the tuple is present for probes arrival+1 .. departure
    profit: int


@dataclass
class ScheduleNetwork:
    """A built OPT-offline network plus the decode tables.

    Attributes
    ----------
    network:
        The flow problem (solve with ``solve_min_cost_flow``).
    entry_arcs:
        arc id -> job, for the unit arcs ``time_arrival -> entry_node``
        (flow 1 means the tuple is admitted).
    departure_arcs:
        arc id -> :class:`JobArc`, for the ``entry -> time_m`` arcs
        (flow 1 selects that departure).
    capacity:
        Memory slots represented by the chain.
    length:
        Number of ticks N (time nodes are ``0 .. N``).
    """

    network: FlowNetwork
    entry_arcs: dict[int, TupleJob]
    departure_arcs: dict[int, JobArc]
    capacity: int
    length: int


def build_schedule_network(
    jobs: list[TupleJob], length: int, capacity: int
) -> ScheduleNetwork:
    """Build the compact network for one slot pool.

    Parameters
    ----------
    jobs:
        Interval jobs competing for the pool (one stream's jobs under
        fixed allocation; both streams' jobs under variable allocation).
    length:
        Stream length N.
    capacity:
        Number of memory slots in the pool.

    Notes
    -----
    With ``capacity == 0`` the network carries no flow and the optimum is
    zero — still a valid (empty) schedule.
    """
    if length < 0:
        raise ValueError(f"length must be non-negative, got {length}")
    if capacity < 0:
        raise ValueError(f"capacity must be non-negative, got {capacity}")

    network = FlowNetwork()
    entry_arcs: dict[int, TupleJob] = {}
    departure_arcs: dict[int, JobArc] = {}

    if length == 0:
        return ScheduleNetwork(network, entry_arcs, departure_arcs, capacity, length)

    # Group jobs by arrival so entry nodes can be created in id order.
    jobs_by_arrival: dict[int, list[TupleJob]] = {}
    for job in jobs:
        if not 0 <= job.arrival < length:
            raise ValueError(f"job arrival {job.arrival} outside stream of length {length}")
        jobs_by_arrival.setdefault(job.arrival, []).append(job)

    # Create nodes tick by tick: time node, then that tick's entry nodes.
    time_node = [0] * (length + 1)
    entry_node: dict[int, int] = {}  # id(job) -> node (jobs are unique objects)
    job_entries: list[tuple[TupleJob, int]] = []
    for t in range(length):
        time_node[t] = network.add_node(f"t={t}")
        for job in jobs_by_arrival.get(t, ()):
            node = network.add_node(f"{job.stream}({job.arrival})")
            entry_node[id(job)] = node
            job_entries.append((job, node))
    time_node[length] = network.add_node(f"t={length}")

    network.set_supply(time_node[0], capacity)
    network.set_supply(time_node[length], -capacity)

    for t in range(length):
        network.add_arc(time_node[t], time_node[t + 1], capacity, 0)

    for job, node in job_entries:
        arc_id = network.add_arc(time_node[job.arrival], node, 1, 0)
        entry_arcs[arc_id] = job
        for k, match_time in enumerate(job.match_times):
            if not job.arrival < match_time <= length - 1:
                raise ValueError(
                    f"match time {match_time} invalid for arrival {job.arrival} "
                    f"in stream of length {length}"
                )
            profit = k + 1
            arc_id = network.add_arc(node, time_node[match_time], 1, -profit)
            departure_arcs[arc_id] = JobArc(job, match_time, profit)

    return ScheduleNetwork(network, entry_arcs, departure_arcs, capacity, length)


def decode_departures(
    schedule: ScheduleNetwork, flow: list[int]
) -> dict[tuple[str, int], int]:
    """Read the kept/dropped schedule off an optimal flow.

    Returns
    -------
    mapping ``(stream, arrival) -> departure``:
        For every *admitted* job, the last probe tick it stays for.
        Tuples absent from the mapping are shed on arrival.

    Raises
    ------
    ValueError
        If the flow selects more than one departure for a job (cannot
        happen for a feasible flow — the entry arc has capacity 1 — but
        guarded to catch solver bugs).
    """
    departures: dict[tuple[str, int], int] = {}
    for arc_id, job_arc in schedule.departure_arcs.items():
        if flow[arc_id] == 0:
            continue
        if flow[arc_id] != 1:
            raise ValueError(f"job arc {arc_id} carries flow {flow[arc_id]} != 1")
        key = (job_arc.job.stream, job_arc.job.arrival)
        if key in departures:
            raise ValueError(f"job {key} selected two departures")
        departures[key] = job_arc.departure
    return departures
