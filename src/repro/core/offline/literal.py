"""The paper's literal OPT-offline flow graph (Section 3.2.1).

This is the Θ(wN)-node construction exactly as Figure 2 describes it:

* a node ``x(i):j`` for every tuple and every time it could be resident;
* horizontal arcs model a tuple surviving one more tick, carrying cost
  −1 when the other stream's arrival at the new time matches it;
* diagonal arcs model replacement by the tuple newly arriving on the
  same stream (plus cross arcs to the *other* stream's newcomer in the
  variable-allocation generalisation);
* the source feeds the first M/2 tuples of each stream (they always fit)
  and a separate "top path" accounts for simultaneous matches — here
  folded in as the constant it always contributes, since the top path
  carries exactly one unit of flow regardless of the schedule;
* all flow drains to the sink at the stream end.

The production solver uses the compact formulation in
:mod:`repro.core.offline.flowgraph` (Θ(N) nodes); this module exists to
*validate* that compaction: the test-suite asserts both constructions
and the exhaustive scheduler agree on small inputs.  It is also a
faithful reference for readers following the paper's own exposition.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...flow.network import FlowNetwork
from ...flow.ssp import solve_min_cost_flow
from ...streams.tuples import StreamPair


@dataclass
class LiteralGraph:
    """The built literal network plus decode information."""

    network: FlowNetwork
    node_of: dict[tuple[str, int, int], int]  # (stream, tuple, time) -> node
    simultaneous: int
    capacity_r: int
    capacity_s: int


def _last_node_time(arrival: int, window: int, length: int) -> int:
    """Latest time a tuple can be resident for (expiry and stream end)."""
    return min(arrival + window - 1, length - 1)


def build_literal_graph(
    pair: StreamPair,
    window: int,
    memory: int,
    *,
    variable: bool = False,
    count_from: int = 0,
) -> LiteralGraph:
    """Construct the paper's tuple-time flow graph.

    Parameters
    ----------
    pair, window, memory:
        As for :func:`repro.core.offline.opt.solve_opt`.
    variable:
        Add the cross arcs of the variable-allocation generalisation.
    count_from:
        Matches before this tick carry no cost (warmup).

    Notes
    -----
    Intended for small inputs (node count is Θ(wN)); the stream must be
    long enough to absorb the initial allocation (``length >= M/2``).
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if memory <= 0:
        raise ValueError(f"memory must be positive, got {memory}")
    if not variable and memory % 2 != 0:
        raise ValueError(f"fixed allocation needs even memory, got {memory}")

    length = len(pair)
    half = memory // 2
    capacity_r = min(half, length)
    capacity_s = min(half, length)

    network = FlowNetwork()
    source = network.add_node("source", supply=capacity_r + capacity_s)
    node_of: dict[tuple[str, int, int], int] = {}

    keys = {"R": pair.r, "S": pair.s}
    other = {"R": pair.s, "S": pair.r}

    # Create nodes time-major so arcs go forward in node-id order (lets
    # the solver use its DAG potential initialisation).
    for t in range(length):
        for stream in ("R", "S"):
            for arrival in range(max(0, t - window + 1), t + 1):
                if _last_node_time(arrival, window, length) >= t:
                    node_of[(stream, arrival, t)] = network.add_node(
                        f"{stream.lower()}({arrival}):{t}"
                    )
    sink = network.add_node("sink", supply=-(capacity_r + capacity_s))

    # Source arcs: the first M/2 tuples of each stream always fit.
    for stream, capacity in (("R", capacity_r), ("S", capacity_s)):
        for arrival in range(capacity):
            network.add_arc(source, node_of[(stream, arrival, arrival)], 1, 0)

    # Arc semantics follow the fast-CPU model's probe-then-evict order: a
    # tuple resident "at time j" receives the match with the time-j
    # arrival even when it is evicted at that very tick to admit the
    # newcomer (the paper's Figure 2 optimum — missing exactly the pairs
    # (r(1), s(2)) and (r(1), s(3)) — requires this reading).
    for (stream, arrival, t), node in node_of.items():
        last = _last_node_time(arrival, window, length)
        cross = "S" if stream == "R" else "R"
        # Horizontal arc: survive to the next tick, producing an output
        # iff the other stream's arrival there matches this tuple.
        if t + 1 <= last:
            matches = other[stream][t + 1] == keys[stream][arrival]
            cost = -1 if (matches and t + 1 >= count_from) else 0
            network.add_arc(node, node_of[(stream, arrival, t + 1)], 1, cost)
        # Same-tick handover: after the tick-t probe the slot passes to
        # the tuple newly arriving at t (replacement).
        if t > arrival:
            network.add_arc(node, node_of[(stream, t, t)], 1, 0)
            if variable:
                network.add_arc(node, node_of[(cross, t, t)], 1, 0)
        # Expiry handover: at the end of its lifetime the slot passes to
        # the next tick's newcomer (or drains at the stream end).
        if t == last:
            if t + 1 <= length - 1:
                network.add_arc(node, node_of[(stream, t + 1, t + 1)], 1, 0)
                if variable:
                    network.add_arc(node, node_of[(cross, t + 1, t + 1)], 1, 0)
            else:
                network.add_arc(node, sink, 1, 0)

    simultaneous = sum(
        1 for t in range(count_from, length) if pair.r[t] == pair.s[t]
    )
    return LiteralGraph(
        network=network,
        node_of=node_of,
        simultaneous=simultaneous,
        capacity_r=capacity_r,
        capacity_s=capacity_s,
    )


def solve_opt_literal(
    pair: StreamPair,
    window: int,
    memory: int,
    *,
    variable: bool = False,
    count_from: int = 0,
) -> int:
    """Optimal counted output via the paper's literal graph.

    Returns the same value as
    :func:`repro.core.offline.opt.solve_opt(...).output_count` (the
    test-suite asserts this); use only on small inputs.
    """
    graph = build_literal_graph(
        pair, window, memory, variable=variable, count_from=count_from
    )
    if graph.network.total_supply() == 0:
        return graph.simultaneous
    result = solve_min_cost_flow(graph.network)
    if not result.feasible:
        raise RuntimeError("literal OPT graph was infeasible")  # pragma: no cover
    return -result.cost + graph.simultaneous
