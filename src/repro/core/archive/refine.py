"""Night-mode refinement: completing a shed join from the archive.

Day mode runs the engine with load shedding and records per-tuple
survival; night mode walks the incomplete tuples (the Archive-metric
population), fetches their full partner sets from the archive, and emits
exactly the output pairs the approximation missed.  The union of the
day-time output and the refinement output equals the exact join — load
was *deferred*, not lost — and the number of archive reads realises the
ArM cost model (work proportional to the incomplete-tuple count).
"""

from __future__ import annotations

from dataclasses import dataclass

from ...streams.tuples import JoinResultTuple, StreamPair
from ..engine import RunResult
from ..metrics.archive import archive_metric
from .store import ArchiveStore


@dataclass
class RefinementReport:
    """Outcome of a night-mode refinement pass.

    Attributes
    ----------
    missing_pairs:
        Output pairs the day-time run failed to produce (deduplicated).
    incomplete_tuples:
        The ArM value — tuples that triggered archive work.
    archive_reads:
        Tuples fetched from the archive while refining.
    """

    missing_pairs: list[JoinResultTuple]
    incomplete_tuples: int
    archive_reads: int

    @property
    def missing_count(self) -> int:
        return len(self.missing_pairs)


def refine_from_archive(
    pair: StreamPair,
    run: RunResult,
    *,
    count_from: int | None = None,
) -> RefinementReport:
    """Produce every output pair the day-time run missed.

    Parameters
    ----------
    pair:
        The archived streams (also the engine's input).
    run:
        The day-time run; must have been executed with
        ``track_survival=True`` so missed pairs are identifiable.
    count_from:
        Pairs with emission time before this tick are ignored; defaults
        to the run's warmup (consistent with its ``output_count``).

    Notes
    -----
    A pair ``(x(i), y(j))``, ``i < j``, was missed iff the earlier tuple
    departed before ``j``.  Enumerating missed pairs therefore needs only
    the *earlier* endpoint's survival record; each missed pair is found
    once, so no deduplication pass is required.
    """
    if run.r_departures is None or run.s_departures is None:
        raise ValueError("run must be executed with track_survival=True")
    if count_from is None:
        count_from = run.warmup
    window = run.window
    length = len(pair)

    archive = ArchiveStore.from_pair(pair)
    missing: list[JoinResultTuple] = []

    for i in range(length):
        # Missed partners of r(i) on S after i.
        departure = run.r_departures[i]
        horizon = min(i + window - 1, length - 1)
        if departure < horizon:
            key = pair.r[i]
            low = max(departure + 1, count_from, i + 1)
            for j in archive.partners_in_range("S", key, low, horizon):
                missing.append(JoinResultTuple(r_arrival=i, s_arrival=j, key=key))
        # Missed partners of s(i) on R after i.
        departure = run.s_departures[i]
        if departure < horizon:
            key = pair.s[i]
            low = max(departure + 1, count_from, i + 1)
            for j in archive.partners_in_range("R", key, low, horizon):
                missing.append(JoinResultTuple(r_arrival=j, s_arrival=i, key=key))

    arm = archive_metric(
        pair, run.r_departures, run.s_departures, window, count_from=count_from
    )
    return RefinementReport(
        missing_pairs=missing,
        incomplete_tuples=arm.arm,
        archive_reads=archive.reads,
    )
