"""Archive support for semantic load smoothing (day/night processing)."""

from .refine import RefinementReport, refine_from_archive
from .store import ArchiveStore

__all__ = ["ArchiveStore", "RefinementReport", "refine_from_archive"]
