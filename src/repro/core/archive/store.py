"""Archive store for semantic load *smoothing* (Section 1, Section 2.2).

In archive-backed deployments every arriving tuple is also written to an
archive (a warehouse); during low-load periods the archive is read back
to complete the join results that daytime load shedding left partial.
The store indexes tuples by stream, key, and arrival time, and counts the
tuples it serves so refinement cost can be reported alongside ArM.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Hashable, Sequence

from ...streams.tuples import StreamPair


class ArchiveStore:
    """Append-only archive of both streams with key/time range lookup."""

    def __init__(self) -> None:
        self._times_by_key = {"R": {}, "S": {}}
        self._keys = {"R": [], "S": []}
        self._reads = 0

    @classmethod
    def from_pair(cls, pair: StreamPair) -> "ArchiveStore":
        """Archive an entire recorded stream pair (the day's data)."""
        store = cls()
        for t, (r_key, s_key) in enumerate(zip(pair.r, pair.s)):
            store.append("R", t, r_key)
            store.append("S", t, s_key)
        return store

    def append(self, stream: str, arrival: int, key: Hashable) -> None:
        keys = self._keys[stream]
        if len(keys) != arrival:
            raise ValueError(
                f"archive for {stream} has {len(keys)} tuples; cannot append "
                f"arrival {arrival} out of order"
            )
        keys.append(key)
        self._times_by_key[stream].setdefault(key, []).append(arrival)

    def size(self, stream: str) -> int:
        return len(self._keys[stream])

    def key_at(self, stream: str, arrival: int) -> Hashable:
        self._reads += 1
        return self._keys[stream][arrival]

    def partners_in_range(
        self, stream: str, key: Hashable, low: int, high: int
    ) -> Sequence[int]:
        """Arrival times of ``key`` on ``stream`` within ``[low, high]``.

        Each returned tuple counts as one archive read (the refinement
        cost model: work is proportional to tuples fetched).
        """
        times = self._times_by_key[stream].get(key, ())
        start = bisect_left(times, low)
        stop = bisect_right(times, high)
        found = times[start:stop]
        self._reads += len(found)
        return found

    @property
    def reads(self) -> int:
        """Tuples served so far — the refinement work counter."""
        return self._reads

    def reset_reads(self) -> None:
        self._reads = 0
