"""Asynchronous-arrival join engine (paper Section 1's generalisation).

The paper's analysis assumes one tuple per stream per time unit but notes
the techniques "can be generalized to windows defined in terms of the
number of tuples and to asynchronous tuple arrival".  This engine
implements that generalisation for the fast-CPU integrated model: any
number of tuples (including zero) may arrive on each stream per tick.

Semantics
---------
* arrivals of one tick are processed in order — the R batch, then the S
  batch; each tuple probes the opposite memory *when processed*, so a
  same-tick pair is found when the later-processed partner probes (no
  separate "top path" is needed);
* ``window_mode="time"``: the pair ``(r, s)`` requires ``|t_r - t_s| <
  w`` in ticks, exactly as the synchronous engine;
* ``window_mode="count"``: each stream's window is its last ``w``
  tuples — a tuple expires when ``w`` further tuples of its *own* stream
  have arrived.  Priorities that depend on remaining *time* (LIFE, ARM)
  are not meaningful here, so count mode accepts only RAND/PROB-style
  policies (enforced at configuration time);
* ``window_mode="landmark"``: tuples accumulate from the most recent
  landmark (every ``landmark_every`` ticks, e.g. "since the top of the
  hour") and the whole state resets at each landmark — the third window
  style Section 1 lists.  Remaining lifetime is again not meaningful to
  a per-tuple priority, so the same policy restriction applies.

Output is counted per processing tick against the usual warmup.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..obs import Timer, active_or_none
from ..obs.trace import (
    EVENT_ARRIVE,
    REASON_WINDOW,
    TraceEvent,
    tracing_or_none,
)
from ..streams.sources import Source, as_source
from ..streams.tuples import StreamPair
from .engine import PolicySpec
from .kernel import JoinKernel
from .memory import JoinMemory, TupleRecord
from .policies import resolve_policy_spec
from .policies.life import LifePolicy
from .results import BaseRunResult, DropBreakdown, RunSummary

WINDOW_MODES = ("time", "count", "landmark")


@dataclass
class AsyncEngineConfig:
    """Configuration of an asynchronous-arrival run.

    In ``"landmark"`` mode ``window`` is ignored for expiry and
    ``landmark_every`` sets the reset period (state clears at every tick
    that is a positive multiple of it).
    """

    window: int
    memory: int
    variable: bool = False
    warmup: Optional[int] = None  # in ticks
    window_mode: str = "time"
    landmark_every: Optional[int] = None
    validate: bool = False

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.memory <= 0:
            raise ValueError(f"memory must be positive, got {self.memory}")
        if self.window_mode not in WINDOW_MODES:
            raise ValueError(
                f"window_mode must be one of {WINDOW_MODES}, got {self.window_mode!r}"
            )
        if self.window_mode == "landmark":
            if self.landmark_every is None or self.landmark_every <= 0:
                raise ValueError("landmark mode needs a positive landmark_every")
        elif self.landmark_every is not None:
            raise ValueError("landmark_every only applies to landmark mode")
        if self.warmup is None:
            self.warmup = 2 * self.window
        if self.warmup < 0:
            raise ValueError(f"warmup must be non-negative, got {self.warmup}")


@dataclass
class AsyncRunResult(BaseRunResult):
    """Counters of one asynchronous run."""

    output_count: int
    total_output_count: int
    ticks: int
    arrivals: int
    policy_name: str
    drop_counts: dict = field(default_factory=dict)
    metrics: Optional[dict] = None
    trace: Optional[list] = None

    engine_kind = "async"

    def drop_breakdown(self) -> DropBreakdown:
        return DropBreakdown.from_side_counts(self.drop_counts)


class AsyncJoinEngine:
    """Fast-CPU integrated model with bursty / idle ticks.

    Policies are wired exactly as for
    :class:`~repro.core.engine.JoinEngine` (``None`` / single instance /
    per-side dict).
    """

    def __init__(
        self,
        config: AsyncEngineConfig,
        policy: PolicySpec = None,
        *,
        metrics=None,
        trace=None,
    ) -> None:
        self.config = config
        self.memory = JoinMemory(config.memory, variable=config.variable)
        self.metrics = metrics
        self.trace = trace

        resolved = resolve_policy_spec(policy, self.memory, variable=config.variable)
        self._policy_r = resolved.r
        self._policy_s = resolved.s
        self._policies = resolved.instances
        self.policy_name = resolved.name
        self._kernel = None
        self._obs = None
        self._tracing = False
        self._tick_state = None

        if config.window_mode in ("count", "landmark"):
            from .policies.arm import ArmAwarePolicy

            for bound in self._policies:
                if isinstance(bound, (LifePolicy, ArmAwarePolicy)):
                    raise ValueError(
                        f"{config.window_mode}-based windows have no fixed "
                        "per-tuple lifetime; time-based priorities (LIFE, "
                        "ARM) do not apply"
                    )

    # ------------------------------------------------------------------
    def run(
        self,
        r_batches: Sequence[Sequence],
        s_batches: Sequence[Sequence],
        *,
        resume: Optional[dict] = None,
        on_tick=None,
        on_tick_every: int = 1,
    ) -> AsyncRunResult:
        """Process per-tick arrival batches.

        ``r_batches[t]`` is the (possibly empty) sequence of R join keys
        arriving at tick ``t``; likewise for S.  Both sequences must
        cover the same number of ticks.

        ``on_tick(engine, t)`` fires after each tick's batches complete
        (and after its metrics were recorded); inside the callback
        :meth:`checkpoint` captures a resumable snapshot of the run.
        ``on_tick_every=N`` fires it only on ticks where
        ``t % N == 0`` — a hook that samples (telemetry heartbeats)
        costs one modulo on the skipped ticks instead of a Python call.
        ``resume`` takes such a snapshot and continues from the tick
        after it — the finished run is bit-identical (counts, ledger,
        metrics totals) to one that was never interrupted.
        """
        if len(r_batches) != len(s_batches):
            raise ValueError("batch sequences must cover the same number of ticks")
        if on_tick_every < 1:
            raise ValueError(f"on_tick_every must be >= 1, got {on_tick_every}")
        # The count-only EXACT lane: with no policy, no instrumentation,
        # and no per-tick hooks, a time-windowed run is pure count
        # arithmetic (see repro.core.batched) — this is the hot path of
        # sharded EXACT execution.  Bit-identical to the kernel path.
        if (
            self._policy_r is None
            and self._policy_s is None
            and self.config.window_mode == "time"
            and resume is None
            and on_tick is None
            and not self.config.validate
            and active_or_none(self.metrics) is None
            and tracing_or_none(self.trace) is None
        ):
            return self._run_exact_counts(r_batches, s_batches)
        # The hook fires where t % on_tick_every == 0, tracked as a
        # next-tick pointer: one int compare per tick instead of a
        # modulo, and -1 (never matches) when there is no hook at all.
        hook_next = -1
        config = self.config
        memory = self.memory
        window = config.window
        warmup = config.warmup
        assert warmup is not None
        count_mode = config.window_mode == "count"
        landmark_mode = config.window_mode == "landmark"

        output = 0
        total_output = 0
        arrivals = 0
        sequence = {"R": 0, "S": 0}  # per-stream tuple counters (count mode)
        start_tick = 0

        obs = active_or_none(self.metrics)
        tracer = tracing_or_none(self.trace)
        kernel = JoinKernel(self.memory, self._policy_r, self._policy_s, tracer=tracer)
        drop_counts = kernel.drop_counts
        # Expiry reason names the window style that aged the tuple out.
        expire_reason = (
            REASON_WINDOW if config.window_mode == "time" else config.window_mode
        )
        tracing = tracer is not None
        timed = obs is not None
        self._kernel = kernel
        self._obs = obs
        self._tracing = tracing
        self._tick_state = None

        if resume is not None:
            if tracing:
                raise ValueError(
                    "cannot resume a traced run (pre-failure events are gone)"
                )
            start_tick = resume["tick"] + 1
            output = resume["output"]
            total_output = resume["total_output"]
            arrivals = resume["arrivals"]
            sequence = dict(resume["sequence"])
            restored = kernel.restore(resume["kernel"])
            self._restore_policies(resume["policies"], restored)
            if timed and resume.get("metrics"):
                # Merge the checkpoint-time snapshot *before* grabbing
                # instrument handles: merge_snapshot get-or-creates the
                # same objects the handles below will extend.
                obs.merge_snapshot(resume["metrics"])

        if timed:
            run_timer = Timer()
            run_timer.start()
            occupancy_r = obs.series("engine.occupancy", side="R")
            occupancy_s = obs.series("engine.occupancy", side="S")
            batch_size = obs.histogram("async.batch_size")

        if on_tick is not None:
            # First grid tick at or after start_tick (resume-safe).
            hook_next = start_tick + (-start_tick % on_tick_every)

        # Untraced sides take the kernel's batch operations (bulk probe
        # over the per-key group index; bulk insert with one capacity
        # check per chunk when no policy is attached, else per-tuple
        # contests inside :meth:`JoinKernel.insert_batch`).  Bulk probes
        # read the *opposite* memory, so hoisting them above the batch's
        # insertions is exact as long as those insertions cannot touch
        # the opposite side: fixed-allocation victims are own-side, but
        # a shared pool (variable) or an arrival-observing estimator
        # would make probe results order-dependent — those stay
        # per-tuple, as do tracers (event order) and count-mode windows
        # (expiry interleaves inside the batch).
        batch_ops = (
            not tracing
            and not count_mode
            and (
                (self._policy_r is None and self._policy_s is None)
                or (not memory.variable and not kernel.observers)
            )
        )

        for t in range(start_tick, len(r_batches)):
            if landmark_mode:
                if t > 0 and t % config.landmark_every == 0:
                    # A new landmark: the whole window state resets.
                    kernel.expire(t, t, reason=expire_reason)
            elif not count_mode:
                kernel.expire(t - window, t, reason=expire_reason)

            for stream, batch in (("R", r_batches[t]), ("S", s_batches[t])):
                if batch_ops:
                    if batch:
                        arrivals += len(batch)
                        kernel.observe_batch(stream, batch, t)
                        matches = kernel.probe_batch(stream, batch, t)
                        total_output += matches
                        if t >= warmup:
                            output += matches
                        kernel.insert_batch(stream, batch, t)
                    continue
                for key in batch:
                    arrivals += 1
                    kernel.observe(stream, key, t)
                    if tracing:
                        tracer.emit(TraceEvent(t, stream, key, EVENT_ARRIVE, t))

                    matches = kernel.probe(stream, key, t)
                    total_output += matches
                    if t >= warmup:
                        output += matches

                    if count_mode:
                        # The tuple's own arrival pushes the count window.
                        sequence[stream] += 1
                        kernel.expire(
                            sequence[stream] - window, t,
                            reason=expire_reason, side=stream,
                        )
                        record = TupleRecord(stream, sequence[stream], key)
                    else:
                        record = TupleRecord(stream, t, key)
                    kernel.insert(record, t)

            if timed:
                batch_size.observe(len(r_batches[t]) + len(s_batches[t]))
                occupancy_r.append(t, memory.r.size)
                occupancy_s.append(t, memory.s.size)

            if config.validate:
                self._check_invariants(t)

            if t == hook_next:
                hook_next = t + on_tick_every
                # `sequence` is stored by reference: the state is only
                # valid inside the hook call, before the next mutation,
                # so checkpoint() copies it lazily on demand.
                self._tick_state = (t, output, total_output, arrivals, sequence)
                on_tick(self, t)

        self._tick_state = None
        snapshot = None
        if obs is not None:
            run_timer.stop()
            obs.counter("engine.matches").inc(total_output)
            obs.counter("engine.output").inc(output)
            obs.counter("async.arrivals").inc(arrivals)
            for side in ("R", "S"):
                for reason, count in drop_counts[side].items():
                    obs.counter("engine.drops", side=side, reason=reason).inc(count)
            obs.record_phase("engine/run", run_timer.seconds)
            snapshot = obs.snapshot()

        trace_events = None
        if tracing:
            trace_events = tracer.collect()

        return AsyncRunResult(
            output_count=output,
            total_output_count=total_output,
            ticks=len(r_batches),
            arrivals=arrivals,
            policy_name=self.policy_name,
            drop_counts=drop_counts,
            metrics=snapshot,
            trace=trace_events,
        )

    # ------------------------------------------------------------------
    # the count-only EXACT lane
    # ------------------------------------------------------------------
    def _run_exact_counts(
        self, r_batches: Sequence[Sequence], s_batches: Sequence[Sequence]
    ) -> AsyncRunResult:
        """Dictionary count arithmetic for policy-less time-window runs.

        Dispatched from :meth:`run` when nothing needs per-tuple state:
        no policy, no metrics, no tracer, no per-tick hook, no resume.
        Sharded EXACT execution lands here — every shard is a policy-less
        time-mode run over mostly-empty ticks — so the lane removes the
        kernel, record allocation, and memory maintenance from the
        sharding hot path while staying bit-identical (a regression gate
        pins it to the kernel path).
        """
        from .batched import exact_tick_counts
        from .results import DROP_EXPIRED, empty_side_drop_counts

        config = self.config
        self._kernel = None
        self._obs = None
        self._tracing = False
        self._tick_state = None

        output, total_output, arrivals, expired_r, expired_s = exact_tick_counts(
            r_batches,
            s_batches,
            config.window,
            config.warmup,
            capacity=self.memory.capacity,
            variable=self.memory.variable,
        )
        drop_counts = empty_side_drop_counts()
        drop_counts["R"][DROP_EXPIRED] = expired_r
        drop_counts["S"][DROP_EXPIRED] = expired_s
        return AsyncRunResult(
            output_count=output,
            total_output_count=total_output,
            ticks=len(r_batches),
            arrivals=arrivals,
            policy_name=self.policy_name,
            drop_counts=drop_counts,
            metrics=None,
            trace=None,
        )

    # ------------------------------------------------------------------
    # the incremental source path
    # ------------------------------------------------------------------
    def run_stream(
        self,
        source: Union[Source, StreamPair],
        *,
        until: Optional[int] = None,
        emit=None,
        on_summary=None,
        on_summary_every: Optional[int] = None,
        stop=None,
        on_tick=None,
        on_tick_every: int = 1,
    ) -> AsyncRunResult:
        """Consume a pull-based source with asynchronous semantics.

        The source-path analogue of :meth:`run`: per-tick ``(r_keys,
        s_keys)`` events come from any
        :class:`~repro.streams.sources.Source` (a :class:`StreamPair` is
        adapted automatically) instead of materialized batch lists, and
        working state stays bounded by the window/memory budget, so
        unbounded sources are safe.  Tick semantics are identical to
        :meth:`run` — each tuple probes the opposite memory when
        processed, R batch before S batch — and a
        ``PairSource``-equivalent event stream produces bit-identical
        results (counts, ledger, metrics totals) to
        ``run(*batches_from_pair(pair))``.

        ``until`` bounds the tick count and ``stop()`` is polled each
        tick (either is required for an unbounded source); ``emit`` is a
        per-pair sink for post-warmup output; ``on_summary`` receives a
        rolling :class:`~repro.core.results.RunSummary` every
        ``on_summary_every`` ticks (default 4096).  ``on_tick`` works as
        in :meth:`run` (telemetry heartbeats; :meth:`progress` is valid
        inside), but checkpoint/resume stays pair-path-only — an
        interrupted source run is re-run from the start (sources are
        restartable by contract).
        """
        source = as_source(source)
        if until is not None and until < 0:
            raise ValueError(f"until must be non-negative, got {until}")
        if on_summary_every is not None and on_summary_every <= 0:
            raise ValueError(
                f"on_summary_every must be positive, got {on_summary_every}"
            )
        if on_tick_every < 1:
            raise ValueError(f"on_tick_every must be >= 1, got {on_tick_every}")
        if source.length is None and until is None and stop is None:
            raise ValueError(
                "unbounded source: pass until= and/or stop= to bound the run"
            )
        stride = on_summary_every or 4096

        config = self.config
        obs = active_or_none(self.metrics)
        tracer = tracing_or_none(self.trace)
        if (
            self._policy_r is None
            and self._policy_s is None
            and config.window_mode == "time"
            and on_tick is None
            and emit is None
            and not config.validate
            and obs is None
            and tracer is None
        ):
            return self._run_exact_stream(source, until, stop, on_summary, stride)

        memory = self.memory
        window = config.window
        warmup = config.warmup
        assert warmup is not None
        count_mode = config.window_mode == "count"
        landmark_mode = config.window_mode == "landmark"

        output = 0
        total_output = 0
        arrivals = 0
        ticks = 0
        sequence = {"R": 0, "S": 0}

        kernel = JoinKernel(memory, self._policy_r, self._policy_s, tracer=tracer)
        drop_counts = kernel.drop_counts
        expire_reason = (
            REASON_WINDOW if config.window_mode == "time" else config.window_mode
        )
        tracing = tracer is not None
        timed = obs is not None
        self._kernel = kernel
        self._obs = obs
        self._tracing = tracing
        self._tick_state = None

        if timed:
            run_timer = Timer()
            run_timer.start()
            occupancy_r = obs.series("engine.occupancy", side="R")
            occupancy_s = obs.series("engine.occupancy", side="S")
            batch_size = obs.histogram("async.batch_size")

        hook_next = 0 if on_tick is not None else -1

        # Same lane gate as :meth:`run` (see the comment there): bulk
        # probes are exact for policy-less sides and for fixed-mode,
        # non-observing policies; ``emit`` needs per-pair results, so it
        # forces the per-tuple path regardless.
        batch_ops = (
            not tracing
            and not count_mode
            and emit is None
            and (
                (self._policy_r is None and self._policy_s is None)
                or (not memory.variable and not kernel.observers)
            )
        )

        from ..streams.tuples import JoinResultTuple

        for t, (r_event, s_event) in enumerate(iter(source)):
            if until is not None and t >= until:
                break
            if stop is not None and stop():
                break
            if landmark_mode:
                if t > 0 and t % config.landmark_every == 0:
                    kernel.expire(t, t, reason=expire_reason)
            elif not count_mode:
                kernel.expire(t - window, t, reason=expire_reason)

            for stream, batch in (("R", r_event), ("S", s_event)):
                if batch_ops:
                    if batch:
                        arrivals += len(batch)
                        kernel.observe_batch(stream, batch, t)
                        matches = kernel.probe_batch(stream, batch, t)
                        total_output += matches
                        if t >= warmup:
                            output += matches
                        kernel.insert_batch(stream, batch, t)
                    continue
                other = memory.other_side(stream)
                for key in batch:
                    arrivals += 1
                    kernel.observe(stream, key, t)
                    if tracing:
                        tracer.emit(TraceEvent(t, stream, key, EVENT_ARRIVE, t))

                    matches = kernel.probe(stream, key, t)
                    total_output += matches
                    if t >= warmup:
                        output += matches
                        if emit is not None and matches:
                            if stream == "R":
                                for partner in other.matches(key):
                                    emit(JoinResultTuple(t, partner.arrival, key))
                            else:
                                for partner in other.matches(key):
                                    emit(JoinResultTuple(partner.arrival, t, key))

                    if count_mode:
                        sequence[stream] += 1
                        kernel.expire(
                            sequence[stream] - window, t,
                            reason=expire_reason, side=stream,
                        )
                        record = TupleRecord(stream, sequence[stream], key)
                    else:
                        record = TupleRecord(stream, t, key)
                    kernel.insert(record, t)

            if timed:
                batch_size.observe(len(r_event) + len(s_event))
                occupancy_r.append(t, memory.r.size)
                occupancy_s.append(t, memory.s.size)

            if config.validate:
                self._check_invariants(t)

            ticks = t + 1
            if on_summary is not None and ticks % stride == 0:
                on_summary(RunSummary(
                    engine="async",
                    policy_name=self.policy_name,
                    output_count=output,
                    drops=DropBreakdown.from_side_counts(drop_counts),
                ))

            if t == hook_next:
                hook_next = t + on_tick_every
                self._tick_state = (t, output, total_output, arrivals, sequence)
                on_tick(self, t)

        self._tick_state = None
        snapshot = None
        if obs is not None:
            run_timer.stop()
            obs.counter("engine.matches").inc(total_output)
            obs.counter("engine.output").inc(output)
            obs.counter("async.arrivals").inc(arrivals)
            for side in ("R", "S"):
                for reason, count in drop_counts[side].items():
                    obs.counter("engine.drops", side=side, reason=reason).inc(count)
            obs.record_phase("engine/run", run_timer.seconds)
            snapshot = obs.snapshot()

        trace_events = None
        if tracing:
            trace_events = tracer.collect()

        return AsyncRunResult(
            output_count=output,
            total_output_count=total_output,
            ticks=ticks,
            arrivals=arrivals,
            policy_name=self.policy_name,
            drop_counts=drop_counts,
            metrics=snapshot,
            trace=trace_events,
        )

    def _run_exact_stream(
        self, source, until, stop, on_summary, stride
    ) -> AsyncRunResult:
        """Streaming analogue of :meth:`_run_exact_counts`.

        Policy-less, uninstrumented, unhooked time-window source runs
        reduce to :func:`repro.core.batched.exact_stream_counts` —
        bounded dictionary state for arbitrarily long streams.
        """
        from .batched import exact_stream_counts
        from .results import DROP_EXPIRED, empty_side_drop_counts

        config = self.config
        self._kernel = None
        self._obs = None
        self._tracing = False
        self._tick_state = None

        on_progress = None
        if on_summary is not None:
            policy_name = self.policy_name

            def on_progress(t, output, total_output, arrivals, exp_r, exp_s):
                on_summary(RunSummary(
                    engine="async",
                    policy_name=policy_name,
                    output_count=output,
                    drops=DropBreakdown(expired=exp_r + exp_s),
                ))

        output, total_output, arrivals, expired_r, expired_s, ticks = (
            exact_stream_counts(
                iter(source),
                config.window,
                config.warmup,
                capacity=self.memory.capacity,
                variable=self.memory.variable,
                until=until,
                stop=stop,
                on_progress=on_progress,
                progress_every=stride if on_summary is not None else 0,
            )
        )
        drop_counts = empty_side_drop_counts()
        drop_counts["R"][DROP_EXPIRED] = expired_r
        drop_counts["S"][DROP_EXPIRED] = expired_s
        return AsyncRunResult(
            output_count=output,
            total_output_count=total_output,
            ticks=ticks,
            arrivals=arrivals,
            policy_name=self.policy_name,
            drop_counts=drop_counts,
            metrics=None,
            trace=None,
        )

    # ------------------------------------------------------------------
    # live progress
    # ------------------------------------------------------------------
    def progress(self) -> dict:
        """Live run counters, valid inside an ``on_tick`` callback.

        The telemetry heartbeat payload: current tick, produced output
        (counted and total), arrivals so far, resident-tuple occupancy,
        and the kernel's cumulative drop total.  Cheap by design — a
        handful of attribute reads, no snapshotting.
        """
        if self._tick_state is None:
            raise RuntimeError(
                "progress() is only valid inside an on_tick callback"
            )
        t, output, total_output, arrivals, _ = self._tick_state
        drops = 0
        if self._kernel is not None:
            for reasons in self._kernel.drop_counts.values():
                drops += sum(reasons.values())
        return {
            "tick": t,
            "output": output,
            "total_output": total_output,
            "arrivals": arrivals,
            "occupancy": self.memory.r.size + self.memory.s.size,
            "drops": drops,
        }

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self) -> dict:
        """Resumable snapshot of the run, valid inside an ``on_tick`` hook.

        Only time-based windows checkpoint: count/landmark modes stamp
        per-stream sequence numbers as arrivals, which breaks the
        cross-side admission-order merge the restore path relies on, and
        sharded runs (the checkpoint consumers) are always time-mode.
        Traced runs refuse too — the events emitted before a failure
        would be lost or duplicated on resume.
        """
        if self.config.window_mode != "time":
            raise ValueError(
                "checkpointing requires time-based windows, got "
                f"window_mode={self.config.window_mode!r}"
            )
        if self._tracing:
            raise ValueError("cannot checkpoint a traced run")
        if self._tick_state is None:
            raise RuntimeError(
                "checkpoint() is only valid inside an on_tick callback"
            )
        from .results import SCHEMA_VERSION

        t, output, total_output, arrivals, sequence = self._tick_state
        return {
            "schema_version": SCHEMA_VERSION,
            "tick": t,
            "output": output,
            "total_output": total_output,
            "arrivals": arrivals,
            "sequence": dict(sequence),
            "kernel": self._kernel.snapshot(),
            "policies": [p.snapshot_state() for p in self._policies],
            "metrics": self._obs.snapshot() if self._obs is not None else None,
        }

    def _restore_policies(self, states, records) -> None:
        """Hand each policy its snapshot plus the residents it governs."""
        if len(states) != len(self._policies):
            raise ValueError(
                f"checkpoint has {len(states)} policy states for "
                f"{len(self._policies)} policies"
            )
        for policy, state in zip(self._policies, states):
            if policy is self._policy_r and policy is self._policy_s:
                governed = records  # shared pool: both sides, merged order
            elif policy is self._policy_r:
                governed = [r for r in records if r.stream == "R"]
            else:
                governed = [r for r in records if r.stream == "S"]
            policy.restore_state(state, governed)

    # ------------------------------------------------------------------
    def _check_invariants(self, now: int) -> None:
        memory = self.memory
        if memory.variable:
            if memory.total_size > memory.capacity:
                raise AssertionError(f"tick {now}: pool exceeds budget")
        else:
            half = memory.capacity // 2
            if memory.r.size > half or memory.s.size > half:
                raise AssertionError(f"tick {now}: a side exceeds its budget")


def batches_from_pair(pair: StreamPair) -> tuple[list[list], list[list]]:
    """The synchronous workload as one-tuple-per-tick batches.

    .. deprecated::
        This materializes both streams positionally (``pair.r`` /
        ``pair.s``) into per-tick lists — the contract the source
        refactor removes.  Run
        ``engine.run_stream(PairSource(pair))`` instead; it is
        bit-identical and does not copy the streams.
    """
    warnings.warn(
        "batches_from_pair is deprecated; use "
        "AsyncJoinEngine.run_stream(PairSource(pair)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return [[key] for key in pair.r], [[key] for key in pair.s]
