"""Fast-CPU integrated-model join engine (Section 2.1).

Simulates the paper's processing model: at every time unit one tuple
arrives on each stream, is joined against the resident tuples of the
other stream (plus its simultaneous counterpart), and is then offered to
the join memory, whose eviction policy may shed it or displace a
resident.  The engine produces the output counts the paper's figures
plot, plus the per-tuple survival records the Archive-metric needs and
the memory-share trace of Figure 8.

Timing within one tick ``t``
----------------------------
1. tuples with ``arrival <= t - w`` expire;
2. ``r(t)`` and ``s(t)`` arrive; every policy observes both arrivals;
3. probes: ``r(t)`` matches resident S-tuples, ``s(t)`` matches resident
   R-tuples, and ``(r(t), s(t))`` is emitted if their keys agree (the
   flow graph's "top path" — a new tuple is *always* seen by the join);
4. admissions: first ``r(t)``, then ``s(t)``; a full memory asks the
   policy for a victim (``None`` = drop the newcomer).

Because probes precede admissions, a tuple evicted at time ``t`` has
already produced its matches with the time-``t`` arrivals; its survival
record therefore covers probe events ``arrival + 1 .. t``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Optional, Union

from ..obs import Timer, active_or_none
from ..obs.trace import (
    EVENT_ARRIVE,
    EVENT_JOIN_OUTPUT,
    REASON_SIMULTANEOUS,
    TraceEvent,
    tracing_or_none,
)
from ..streams.sources import PairSource, Source, as_source
from ..streams.tuples import JoinResultTuple, StreamPair
from .kernel import JoinKernel
from .memory import JoinMemory, TupleRecord
from .policies import SidePolicies, resolve_policy_spec
from .policies.base import EvictionPolicy, arrival_observers
from .results import (
    DROP_EVICTED,
    DROP_EXPIRED,
    DROP_REJECTED,
    BaseRunResult,
    DropBreakdown,
    RunSummary,
    empty_side_drop_counts,
)

#: Accepted policy specs: ``None`` / ``EvictionPolicy`` /
#: :class:`~repro.core.policies.SidePolicies` — see
#: :func:`repro.core.policies.resolve_policy_spec`.
PolicySpec = Union[None, EvictionPolicy, SidePolicies]


class CapacityExceededError(RuntimeError):
    """Raised when a policy-less (exact) run overflows its memory."""


@dataclass
class EngineConfig:
    """Configuration of one engine run.

    Attributes
    ----------
    window:
        Window size ``w`` in time units.
    memory:
        Total memory budget ``M`` in tuples (the paper varies it as
        ``0.1w .. 1.5w``; ``2w`` guarantees the exact result).
    variable:
        Variable memory allocation (one shared pool; PROBV/RANDV/OPTV)
        instead of the fixed M/2 + M/2 split.
    warmup:
        Ticks before output counting starts; defaults to ``2 * window``
        (the paper's choice, so startup effects don't pollute counts).
    count_simultaneous:
        Count the always-produced pair ``(r(t), s(t))`` when keys match.
    materialize:
        Collect the actual post-warmup output pairs (costs memory; used
        by metrics and small-scale tests).
    track_shares:
        Record ``(t, resident R-tuples, resident S-tuples)`` each
        ``share_sample_every`` ticks (Figure 8).
    track_survival:
        Record per-tuple departure times (needed by the Archive-metric
        and by OPT cross-validation).
    memory_schedule:
        Optional time-varying budget: a callable ``t -> M(t)`` or a
        sequence indexed by tick.  ``memory`` is the initial budget; when
        the budget shrinks, the policy sheds its weakest residents (the
        paper, Section 3.3: PROB/LIFE "can easily deal with varying
        memory and window sizes").
    window_schedule:
        Optional time-varying window: a callable ``t -> w(t)`` or a
        sequence indexed by tick (the other half of the same Section 3.3
        claim).  ``window`` is the initial size.  At tick ``t`` tuples
        older than ``t - w(t)`` expire, i.e. a pair is in the join iff
        the earlier tuple is within the window *in force when the later
        one arrives*.  Survival tracking is unsupported in this mode
        (per-tuple lifetimes become schedule-dependent); LIFE's
        priorities use the initial window as its lifetime scale.
    profile:
        With a metrics registry attached, collect the *detailed*
        instrumentation: per-phase (expire/probe/admit) wall-clock
        timers and occupancy series at ``share_sample_every`` cadence.
        Off by default — the default metrics mode batches everything
        into end-of-run counter flushes plus occupancy samples every
        ``metrics_sample_every`` ticks, keeping the instrumented run
        within a few percent of the uninstrumented one.
    metrics_sample_every:
        Tick cadence of the occupancy/memory-share series in the
        default (non-``profile``) metrics mode; ``None`` picks
        ``max(1, window // 8)``.
    batch_size:
        Enable the columnar micro-batch fast path with this chunk size
        (``None``, the default, keeps the per-tuple loops).  Batching is
        *adaptive*: it engages only for configurations it can reproduce
        bit-identically at chunk granularity — the EXACT count-only
        lane (no policy, lossless budget) and the vectorized policy
        lanes for RAND, PROB, and LIFE with static probability tables
        (fixed or variable allocation) — and silently falls back to the
        per-tuple path whenever a tracer, schedule, validation hook,
        arrival observer (online estimators), or an uncovered policy
        (ARM, FIFO) needs tuple granularity.  Results are bit-identical
        either way.
    force_general:
        Route the run through the general per-tick loop even when the
        fast path would apply (benchmarking only: lets overhead
        comparisons pin both sides to the same execution lane).
    validate:
        Run per-tick invariant checks (tests only; slow).
    """

    window: int
    memory: int
    variable: bool = False
    warmup: Optional[int] = None
    count_simultaneous: bool = True
    materialize: bool = False
    track_shares: bool = False
    share_sample_every: int = 1
    track_survival: bool = True
    memory_schedule: Optional[object] = None
    window_schedule: Optional[object] = None
    profile: bool = False
    metrics_sample_every: Optional[int] = None
    batch_size: Optional[int] = None
    force_general: bool = False
    validate: bool = False

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError(f"window must be positive, got {self.window}")
        if self.memory <= 0:
            raise ValueError(f"memory must be positive, got {self.memory}")
        if self.warmup is None:
            self.warmup = 2 * self.window
        if self.warmup < 0:
            raise ValueError(f"warmup must be non-negative, got {self.warmup}")
        if self.share_sample_every <= 0:
            raise ValueError("share_sample_every must be positive")
        if self.metrics_sample_every is not None and self.metrics_sample_every <= 0:
            raise ValueError("metrics_sample_every must be positive")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.window_schedule is not None and self.track_survival:
            raise ValueError(
                "track_survival is not supported with a window_schedule "
                "(per-tuple lifetimes become schedule-dependent)"
            )


@dataclass
class RunResult(BaseRunResult):
    """Everything one engine run produces.

    ``output_count`` is the post-warmup output size — the quantity every
    figure of the paper plots.  ``r_departures[i]`` / ``s_departures[i]``
    give the last probe-event time the tuple arriving at ``i`` was present
    for (see module docstring); ``None`` when survival tracking is off.
    ``metrics`` is the attached observability snapshot when the engine
    ran with a :class:`~repro.obs.MetricsRegistry`.
    """

    output_count: int
    total_output_count: int
    length: int
    window: int
    memory: int
    warmup: int
    policy_name: str
    pairs: Optional[list[JoinResultTuple]] = None
    r_departures: Optional[list[int]] = None
    s_departures: Optional[list[int]] = None
    shares: Optional[list[tuple[int, int, int]]] = None
    drop_counts: dict = field(default_factory=dict)
    metrics: Optional[dict] = None
    trace: Optional[list] = None

    engine_kind = "fast"

    def drop_breakdown(self) -> DropBreakdown:
        return DropBreakdown.from_side_counts(self.drop_counts)

    def share_fraction_r(self) -> list[tuple[int, float]]:
        """Fraction of resident tuples belonging to R over time."""
        if self.shares is None:
            raise ValueError("run was not configured with track_shares")
        return [
            (t, (r / (r + s)) if (r + s) else 0.5) for t, r, s in self.shares
        ]


class JoinEngine:
    """Drives one sliding-window join run under a shedding policy.

    Parameters
    ----------
    config:
        Run configuration.
    policy:
        * ``None`` — no shedding; the memory must never overflow (use
          ``memory >= 2 * window`` — the EXACT reference);
        * a single :class:`EvictionPolicy` — governs the shared pool
          (requires ``config.variable``);
        * :class:`~repro.core.policies.SidePolicies` — one independent
          policy per side (requires fixed allocation).
    metrics:
        Optional :class:`~repro.obs.MetricsRegistry`; when given, the
        run records probe/admission/drop counters, per-tick occupancy
        and memory-share series, and hot-loop phase timings, and the
        snapshot is attached to the result.  ``None`` (the default)
        keeps the hot path uninstrumented.
    trace:
        Optional :class:`~repro.obs.trace.Tracer`; when given, the run
        emits the full per-tuple event lifecycle (arrive / admit /
        evict / expire / join_output / drop) into the tracer's sink and
        the buffered events (if the sink retains them) are attached to
        the result.  ``None`` (the default) keeps tracing entirely off
        the hot path.
    """

    def __init__(
        self,
        config: EngineConfig,
        policy: PolicySpec = None,
        *,
        metrics=None,
        trace=None,
    ) -> None:
        self.config = config
        self.memory = JoinMemory(config.memory, variable=config.variable)
        self.metrics = metrics
        self.trace = trace
        self._kernel = None  # live only while the general loop executes

        resolved = resolve_policy_spec(policy, self.memory, variable=config.variable)
        self._policy_r = resolved.r
        self._policy_s = resolved.s
        self._policies = resolved.instances
        # Only policies that actually override observe_arrival (and have
        # not declared themselves uninterested via `observes_arrivals`)
        # are called per tick — the no-op broadcast was pure overhead.
        self._observers = arrival_observers(resolved.instances)
        if resolved.name == "NONE":
            self.policy_name = "EXACT" if config.memory >= 2 * config.window else "NONE"
        else:
            self.policy_name = resolved.name

    # ------------------------------------------------------------------
    def run(self, pair: StreamPair) -> RunResult:
        """Process a finite stream pair and return the run's results.

        Implemented as ``run_stream(PairSource(pair))``: the pair is one
        particular source, and :meth:`run_stream` routes a plain
        ``PairSource`` with no streaming options to the historical
        pair-path loops — results are bit-identical to the pre-source
        engine (a regression test pins them).
        """
        return self.run_stream(PairSource(pair))

    # ------------------------------------------------------------------
    def run_stream(
        self,
        source: Union[Source, StreamPair],
        *,
        until: Optional[int] = None,
        emit=None,
        on_summary=None,
        on_summary_every: Optional[int] = None,
        stop=None,
    ) -> RunResult:
        """Consume a pull-based source and return the run's results.

        ``source`` is anything satisfying the
        :class:`~repro.streams.sources.Source` protocol (or a
        :class:`StreamPair`, adapted automatically).  A plain
        :class:`~repro.streams.sources.PairSource` with none of the
        streaming options takes the historical pair-path loops
        (:meth:`_run_pair`), bit-identical to the pre-source engine;
        everything else runs the *incremental* path, whose working state
        is bounded by the window/memory budget — never by stream length
        — so unbounded sources are safe.

        Parameters
        ----------
        until:
            Process at most this many ticks (required, together with
            ``stop``, for unbounded sources).
        emit:
            Join-result sink: ``emit(JoinResultTuple)`` is called for
            every post-warmup output pair instead of materializing an
            output list.
        on_summary / on_summary_every:
            Rolling progress: ``on_summary(summary)`` receives an
            engine-agnostic :class:`~repro.core.results.RunSummary` of
            the counters so far after every ``on_summary_every`` ticks
            (default 4096 when only the callback is given).
        stop:
            Cooperative shutdown: a ``() -> bool`` callable polled each
            tick; a truthy return ends the run cleanly (``repro serve``
            wires SIGINT here).

        The incremental path keeps the synchronous tick semantics,
        generalized to per-tick batches: expiry, then all probes of the
        tick (against resident state, plus the same-tick cross pairs the
        top path contributes), then admissions R-batch-first.  Survival
        tracking and the pair-only features (``materialize``,
        ``track_shares``, schedules, ``profile``) are unsupported here —
        they hold per-arrival state, which an unbounded stream forbids.
        """
        source = as_source(source)
        if until is not None and until < 0:
            raise ValueError(f"until must be non-negative, got {until}")
        if on_summary_every is not None and on_summary_every <= 0:
            raise ValueError(
                f"on_summary_every must be positive, got {on_summary_every}"
            )
        streaming = (
            until is not None
            or emit is not None
            or on_summary is not None
            or stop is not None
        )
        if isinstance(source, PairSource) and not streaming:
            return self._run_pair(source.pair)

        config = self.config
        unsupported = [
            name
            for name, active in (
                ("materialize", config.materialize),
                ("track_shares", config.track_shares),
                ("memory_schedule", config.memory_schedule is not None),
                ("window_schedule", config.window_schedule is not None),
                ("profile", config.profile),
            )
            if active
        ]
        if unsupported:
            raise ValueError(
                f"{', '.join(unsupported)} not supported on the incremental "
                "source path (they hold per-arrival state); run the "
                "materialized pair path instead"
            )
        if source.length is None and until is None and stop is None:
            raise ValueError(
                "unbounded source: pass until= and/or stop= to bound the run"
            )
        stride = on_summary_every or 4096

        obs = active_or_none(self.metrics)
        tracer = tracing_or_none(self.trace)
        if (
            obs is None
            and tracer is None
            and emit is None
            and not config.validate
            and self._policy_r is None
            and self._policy_s is None
            and not self._observers
        ):
            return self._run_exact_stream(source, until, stop, on_summary, stride)
        if (
            obs is None
            and tracer is None
            and emit is None
            and on_summary is None
            and not config.validate
            and config.batch_size is not None
            and getattr(source, "unit_rate", False)
        ):
            kind = self._policy_lane_kind()
            if kind is not None:
                return self._run_policy_stream(source, until, stop, kind)
        return self._run_incremental(
            source, obs, tracer, until, emit, on_summary, stride, stop
        )

    # ------------------------------------------------------------------
    def _run_pair(self, pair: StreamPair) -> RunResult:
        """The materialized pair path (see :meth:`run`).

        Dispatches to one of two loop implementations with identical
        semantics (a regression test pins them to each other):

        * the *fast loop* — the throughput path, with probes and
          admissions inlined, counters batched into plain ints, and (if
          a metrics registry is attached) instrumentation reduced to
          end-of-run flushes plus sampled occupancy series;
        * the *general loop* — tracing, time-varying budgets/windows,
          result materialisation, share tracking, per-tick invariant
          checks, and ``profile`` metrics (per-phase timers) all run
          here.

        With ``config.batch_size`` set, eligible configurations take a
        third implementation — the *columnar batched lanes*
        (:meth:`_run_exact_batched` for policy-less lossless runs,
        :meth:`_run_policy_batched` for RAND/PROB/LIFE with static
        probability tables); see :attr:`EngineConfig.batch_size` for the
        fallback matrix.
        """
        config = self.config
        obs = active_or_none(self.metrics)
        tracer = tracing_or_none(self.trace)
        if (
            tracer is None
            and config.memory_schedule is None
            and config.window_schedule is None
            and not config.materialize
            and not config.track_shares
            and not config.validate
            and not (config.profile and obs is not None)
            and not config.force_general
        ):
            if config.batch_size is not None:
                if (
                    self._policy_r is None
                    and self._policy_s is None
                    and not self._observers
                    and self.memory.capacity >= 2 * config.window
                ):
                    return self._run_exact_batched(pair, obs)
                kind = self._policy_lane_kind()
                if kind is not None:
                    return self._run_policy_batched(pair, obs, kind)
            return self._run_fast(pair, obs)
        return self._run_general(pair, obs, tracer)

    # ------------------------------------------------------------------
    def _run_fast(self, pair: StreamPair, obs) -> RunResult:
        """The inlined hot loop (see :meth:`run`).

        Every per-tick attribute lookup is hoisted into a local, probes
        read the per-key alive counters directly, admissions are inlined
        (including the eviction contest), and drop tallies are plain
        ints flushed into the result's ledger once at the end.
        """
        config = self.config
        memory = self.memory
        window = config.window
        warmup = config.warmup
        assert warmup is not None

        length = len(pair)
        r_keys = pair.r
        s_keys = pair.s

        track_survival = config.track_survival
        r_departures: Optional[list[int]] = [0] * length if track_survival else None
        s_departures: Optional[list[int]] = [0] * length if track_survival else None

        mem_r = memory.r
        mem_s = memory.s
        r_slots = mem_r._slots
        s_slots = mem_s._slots
        r_counts = mem_r._key_counts
        s_counts = mem_s._key_counts
        r_by_arrival = mem_r._by_arrival
        s_by_arrival = mem_s._by_arrival
        r_add = mem_r.add
        s_add = mem_s.add
        r_expire = mem_r.expire_until
        s_expire = mem_s.expire_until

        policy_r = self._policy_r
        policy_s = self._policy_s
        observers = self._observers
        variable = memory.variable
        capacity = memory.capacity
        half = capacity // 2
        count_sim = config.count_simultaneous

        output = 0
        total_output = 0
        simultaneous_total = 0
        rej_r = rej_s = ev_r = ev_s = exp_r = exp_s = 0

        timed = obs is not None
        if timed:
            run_timer = Timer()
            run_timer.start()
            occupancy_r = obs.series("engine.occupancy", side="R")
            occupancy_s = obs.series("engine.occupancy", side="S")
            share_series = obs.series("engine.memory_share", side="R")
            sample_every = config.metrics_sample_every or max(1, window // 8)
        else:
            sample_every = 0

        for t in range(length):
            # 1. expiry ------------------------------------------------
            horizon = t - window
            if r_by_arrival and r_by_arrival[0].arrival <= horizon:
                for record in r_expire(horizon):
                    exp_r += 1
                    if policy_r is not None:
                        policy_r.on_remove(record, t, expired=True)
                    if track_survival:
                        r_departures[record.arrival] = record.arrival + window - 1
            if s_by_arrival and s_by_arrival[0].arrival <= horizon:
                for record in s_expire(horizon):
                    exp_s += 1
                    if policy_s is not None:
                        policy_s.on_remove(record, t, expired=True)
                    if track_survival:
                        s_departures[record.arrival] = record.arrival + window - 1

            r_key = r_keys[t]
            s_key = s_keys[t]

            # 2. statistics hooks --------------------------------------
            for policy in observers:
                policy.observe_arrival("R", r_key, t)
                policy.observe_arrival("S", s_key, t)

            # 3. probes ------------------------------------------------
            matched = s_counts.get(r_key, 0) + r_counts.get(s_key, 0)
            if count_sim and r_key == s_key:
                matched += 1
                simultaneous_total += 1
            total_output += matched
            if t >= warmup:
                output += matched

            # 4. admissions: R first, then S ---------------------------
            record = TupleRecord("R", t, r_key)
            if (
                (len(r_slots) + len(s_slots) < capacity)
                if variable
                else (len(r_slots) < half)
            ):
                r_add(record)
                if policy_r is not None:
                    policy_r.on_admit(record, t)
            elif policy_r is None:
                raise CapacityExceededError(
                    f"memory overflow at t={t} with no shedding policy "
                    f"(capacity {config.memory}, window {config.window})"
                )
            else:
                victim = policy_r.choose_victim(record, t)
                if victim is None:
                    rej_r += 1
                    if track_survival:
                        r_departures[t] = t
                else:
                    if not victim.alive:
                        raise RuntimeError(
                            f"policy {policy_r.name} returned a non-resident "
                            f"victim {victim!r}"
                        )
                    if victim.stream == "R":
                        mem_r.remove(victim)
                        ev_r += 1
                        policy_r.on_remove(victim, t, expired=False)
                        if track_survival:
                            r_departures[victim.arrival] = t
                    else:
                        mem_s.remove(victim)
                        ev_s += 1
                        policy_s.on_remove(victim, t, expired=False)
                        if track_survival:
                            s_departures[victim.arrival] = t
                    r_add(record)
                    policy_r.on_admit(record, t)

            record = TupleRecord("S", t, s_key)
            if (
                (len(r_slots) + len(s_slots) < capacity)
                if variable
                else (len(s_slots) < half)
            ):
                s_add(record)
                if policy_s is not None:
                    policy_s.on_admit(record, t)
            elif policy_s is None:
                raise CapacityExceededError(
                    f"memory overflow at t={t} with no shedding policy "
                    f"(capacity {config.memory}, window {config.window})"
                )
            else:
                victim = policy_s.choose_victim(record, t)
                if victim is None:
                    rej_s += 1
                    if track_survival:
                        s_departures[t] = t
                else:
                    if not victim.alive:
                        raise RuntimeError(
                            f"policy {policy_s.name} returned a non-resident "
                            f"victim {victim!r}"
                        )
                    if victim.stream == "R":
                        mem_r.remove(victim)
                        ev_r += 1
                        policy_r.on_remove(victim, t, expired=False)
                        if track_survival:
                            r_departures[victim.arrival] = t
                    else:
                        mem_s.remove(victim)
                        ev_s += 1
                        policy_s.on_remove(victim, t, expired=False)
                        if track_survival:
                            s_departures[victim.arrival] = t
                    s_add(record)
                    policy_s.on_admit(record, t)

            if sample_every and not t % sample_every:
                r_size = len(r_slots)
                s_size = len(s_slots)
                occupancy_r.append(t, r_size)
                occupancy_s.append(t, s_size)
                total = r_size + s_size
                share_series.append(t, (r_size / total) if total else 0.5)

        # Tuples still resident at stream end would have served their
        # full window; record the counterfactual natural departure.
        if track_survival:
            for side in (mem_r, mem_s):
                for record in side.records():
                    self._set_departure(
                        r_departures, s_departures, record, record.arrival + window - 1
                    )

        drop_counts = {
            "R": {DROP_REJECTED: rej_r, DROP_EVICTED: ev_r, DROP_EXPIRED: exp_r},
            "S": {DROP_REJECTED: rej_s, DROP_EVICTED: ev_s, DROP_EXPIRED: exp_s},
        }

        snapshot = None
        if timed:
            run_timer.stop()
            self._flush_metrics(
                obs, length, total_output, simultaneous_total, output, drop_counts
            )
            obs.record_phase("engine/run", run_timer.seconds)
            snapshot = obs.snapshot()

        return RunResult(
            output_count=output,
            total_output_count=total_output,
            length=length,
            window=window,
            memory=config.memory,
            warmup=warmup,
            policy_name=self.policy_name,
            pairs=None,
            r_departures=r_departures,
            s_departures=s_departures,
            shares=None,
            drop_counts=drop_counts,
            metrics=snapshot,
            trace=None,
        )

    # ------------------------------------------------------------------
    def _run_exact_batched(self, pair: StreamPair, obs) -> RunResult:
        """The columnar EXACT count lane (see :meth:`run`).

        Replaces per-match iteration with dictionary count arithmetic
        over struct-of-arrays chunks (:mod:`repro.core.batched`).  Only
        dispatched when the run is provably lossless (no policy,
        ``capacity >= 2 * window``), which makes every result field
        analytic: drop ledger, survival records, and occupancy series
        are synthesised in closed form and match the per-tuple loop
        bit for bit.
        """
        from ..streams.batches import encode_chunks
        from .batched import exact_chunk_counts

        config = self.config
        window = config.window
        warmup = config.warmup
        assert warmup is not None
        length = len(pair)

        timed = obs is not None
        if timed:
            run_timer = Timer()
            run_timer.start()

        output, total_output, simultaneous_total, _ = exact_chunk_counts(
            encode_chunks(pair, config.batch_size),
            window,
            warmup,
            count_simultaneous=config.count_simultaneous,
        )

        # EXACT never rejects or evicts; each side expires exactly the
        # arrivals older than the final window.
        expired = max(0, length - window)
        drop_counts = {
            "R": {DROP_REJECTED: 0, DROP_EVICTED: 0, DROP_EXPIRED: expired},
            "S": {DROP_REJECTED: 0, DROP_EVICTED: 0, DROP_EXPIRED: expired},
        }
        # Every tuple serves its full window: natural departure at
        # arrival + w - 1, for the expired and the end-resident alike.
        r_departures = s_departures = None
        if config.track_survival:
            r_departures = [arrival + window - 1 for arrival in range(length)]
            s_departures = list(r_departures)

        snapshot = None
        if timed:
            # After tick t's admissions each side holds min(t+1, window)
            # residents — the same samples the per-tuple loop records.
            occupancy_r = obs.series("engine.occupancy", side="R")
            occupancy_s = obs.series("engine.occupancy", side="S")
            share_series = obs.series("engine.memory_share", side="R")
            sample_every = config.metrics_sample_every or max(1, window // 8)
            for t in range(0, length, sample_every):
                size = min(t + 1, window)
                occupancy_r.append(t, size)
                occupancy_s.append(t, size)
                share_series.append(t, 0.5)
            run_timer.stop()
            self._flush_metrics(
                obs, length, total_output, simultaneous_total, output,
                drop_counts, final_occupancy=min(length, window),
            )
            obs.record_phase("engine/run", run_timer.seconds)
            snapshot = obs.snapshot()

        return RunResult(
            output_count=output,
            total_output_count=total_output,
            length=length,
            window=window,
            memory=config.memory,
            warmup=warmup,
            policy_name=self.policy_name,
            pairs=None,
            r_departures=r_departures,
            s_departures=s_departures,
            shares=None,
            drop_counts=drop_counts,
            metrics=snapshot,
            trace=None,
        )

    # ------------------------------------------------------------------
    def _policy_lane_kind(self) -> Optional[str]:
        """Which vectorized policy lane covers this engine's wiring.

        ``None`` means the per-tuple loops must run (uncovered policy
        type, online estimators, arrival observers, …); see
        :func:`repro.core.batched.lane_kind_for_policies`.
        """
        from .batched import lane_kind_for_policies

        return lane_kind_for_policies(
            self._policy_r,
            self._policy_s,
            variable=self.memory.variable,
            observers=self._observers,
        )

    # ------------------------------------------------------------------
    def _run_policy_lane(
        self, chunks, kind, r_departures, s_departures, sampler, sample_every
    ):
        """Dispatch chunks into the matching policy lane (see
        :mod:`repro.core.batched_policies`), feeding it the policies'
        own state: RAND's generators, PROB/LIFE's static
        partner-probability tables."""
        from .batched import life_chunk_run, prob_chunk_run, rand_chunk_run

        config = self.config
        memory = self.memory
        warmup = config.warmup
        assert warmup is not None
        common = dict(
            capacity=memory.capacity,
            variable=memory.variable,
            count_simultaneous=config.count_simultaneous,
            r_departures=r_departures,
            s_departures=s_departures,
            sampler=sampler,
            sample_every=sample_every,
        )
        if kind == "rand":
            return rand_chunk_run(
                chunks,
                config.window,
                warmup,
                rng_r=self._policy_r._rng,
                rng_s=None if memory.variable else self._policy_s._rng,
                **common,
            )
        if memory.variable:
            probs = self._policy_r._partner_probs
            probs_r = probs["R"]
            probs_s = probs["S"]
        else:
            probs_r = self._policy_r._partner_probs["R"]
            probs_s = self._policy_s._partner_probs["S"]
        lane = prob_chunk_run if kind == "prob" else life_chunk_run
        return lane(
            chunks,
            config.window,
            warmup,
            probs_r=probs_r,
            probs_s=probs_s,
            **common,
        )

    # ------------------------------------------------------------------
    def _run_policy_batched(self, pair: StreamPair, obs, kind: str) -> RunResult:
        """The columnar policy lane of the pair path (see :meth:`run`).

        RAND/PROB/LIFE runs with static probability tables collapse to
        flat per-chunk state (count dicts, key rings, priority heaps,
        per-key aggregate cells) — no :class:`TupleRecord` allocation,
        no policy method dispatch.  Output, drop ledger, survival
        departures, and metrics are bit-identical to :meth:`_run_fast`;
        ``benchmarks/bench_policy_batch.py`` pins the contract.
        """
        from ..streams.batches import encode_chunks

        config = self.config
        window = config.window
        warmup = config.warmup
        assert warmup is not None
        length = len(pair)

        r_departures = s_departures = None
        if config.track_survival:
            # Natural departures cover the expired and the end-resident;
            # the lane overwrites only the rejected (t) and the evicted
            # (eviction tick) — same arrays the per-tuple loop builds.
            r_departures = [arrival + window - 1 for arrival in range(length)]
            s_departures = list(r_departures)

        timed = obs is not None
        sampler = None
        sample_every = 0
        if timed:
            run_timer = Timer()
            run_timer.start()
            occupancy_r = obs.series("engine.occupancy", side="R")
            occupancy_s = obs.series("engine.occupancy", side="S")
            share_series = obs.series("engine.memory_share", side="R")
            sample_every = config.metrics_sample_every or max(1, window // 8)

            def sampler(t, r_size, s_size):
                occupancy_r.append(t, r_size)
                occupancy_s.append(t, s_size)
                total = r_size + s_size
                share_series.append(t, (r_size / total) if total else 0.5)

        totals = self._run_policy_lane(
            encode_chunks(pair, config.batch_size),
            kind,
            r_departures,
            s_departures,
            sampler,
            sample_every,
        )

        drop_counts = {
            "R": {
                DROP_REJECTED: totals.rej_r,
                DROP_EVICTED: totals.ev_r,
                DROP_EXPIRED: totals.exp_r,
            },
            "S": {
                DROP_REJECTED: totals.rej_s,
                DROP_EVICTED: totals.ev_s,
                DROP_EXPIRED: totals.exp_s,
            },
        }

        snapshot = None
        if timed:
            run_timer.stop()
            self._flush_metrics(
                obs,
                length,
                totals.total_output,
                totals.simultaneous_total,
                totals.output,
                drop_counts,
                final_occupancy=(totals.r_size, totals.s_size),
            )
            obs.record_phase("engine/run", run_timer.seconds)
            snapshot = obs.snapshot()

        return RunResult(
            output_count=totals.output,
            total_output_count=totals.total_output,
            length=length,
            window=window,
            memory=config.memory,
            warmup=warmup,
            policy_name=self.policy_name,
            pairs=None,
            r_departures=r_departures,
            s_departures=s_departures,
            shares=None,
            drop_counts=drop_counts,
            metrics=snapshot,
            trace=None,
        )

    # ------------------------------------------------------------------
    def _chunks_from_source(self, source, until, stop, batch_size):
        """Re-chunk a unit-rate source into :class:`StreamChunk` columns.

        Polls ``until``/``stop`` at each tick boundary — the same tick
        set :meth:`_run_incremental` would process — and emits a chunk
        every ``batch_size`` ticks plus the remainder.
        """
        from ..streams.batches import StreamChunk, _encode_column

        buf_r: list = []
        buf_s: list = []
        start = 0
        t = 0
        for r_batch, s_batch in iter(source):
            if until is not None and t >= until:
                break
            if stop is not None and stop():
                break
            buf_r.append(r_batch[0])
            buf_s.append(s_batch[0])
            t += 1
            if len(buf_r) >= batch_size:
                yield StreamChunk(start, _encode_column(buf_r), _encode_column(buf_s))
                start = t
                buf_r = []
                buf_s = []
        if buf_r:
            yield StreamChunk(start, _encode_column(buf_r), _encode_column(buf_s))

    # ------------------------------------------------------------------
    def _run_policy_stream(self, source, until, stop, kind: str) -> RunResult:
        """The columnar policy lane of the incremental path.

        Unit-rate sources (one arrival per side per tick — the
        synchronous model) re-chunk into columns on the fly and drive
        the same lanes as :meth:`_run_policy_batched`.  Working state is
        ``O(window + batch_size)`` — ring buffers instead of per-arrival
        arrays — so unbounded streams are safe; like the rest of the
        incremental path, survival tracking is unavailable here.
        """
        config = self.config

        totals = self._run_policy_lane(
            self._chunks_from_source(source, until, stop, config.batch_size),
            kind,
            None,
            None,
            None,
            0,
        )

        drop_counts = {
            "R": {
                DROP_REJECTED: totals.rej_r,
                DROP_EVICTED: totals.ev_r,
                DROP_EXPIRED: totals.exp_r,
            },
            "S": {
                DROP_REJECTED: totals.rej_s,
                DROP_EVICTED: totals.ev_s,
                DROP_EXPIRED: totals.exp_s,
            },
        }

        return RunResult(
            output_count=totals.output,
            total_output_count=totals.total_output,
            length=totals.length,
            window=config.window,
            memory=config.memory,
            warmup=config.warmup,
            policy_name=self.policy_name,
            pairs=None,
            r_departures=None,
            s_departures=None,
            shares=None,
            drop_counts=drop_counts,
            metrics=None,
            trace=None,
        )

    # ------------------------------------------------------------------
    def _run_exact_stream(
        self, source, until, stop, on_summary, stride
    ) -> RunResult:
        """The count-only EXACT lane of the incremental path.

        Policy-less, uninstrumented source runs reduce to the dictionary
        count arithmetic of :func:`repro.core.batched.exact_stream_counts`
        — bounded working state, no record allocation.  This is what
        ``make soak`` drives for millions of ticks.
        """
        from .batched import exact_stream_counts

        config = self.config
        window = config.window
        warmup = config.warmup
        assert warmup is not None

        on_progress = None
        if on_summary is not None:
            policy_name = self.policy_name

            def on_progress(t, output, total_output, arrivals, exp_r, exp_s):
                on_summary(RunSummary(
                    engine="fast",
                    policy_name=policy_name,
                    output_count=output,
                    drops=DropBreakdown(expired=exp_r + exp_s),
                ))

        output, total_output, _, expired_r, expired_s, ticks = exact_stream_counts(
            iter(source),
            window,
            warmup,
            capacity=self.memory.capacity,
            variable=self.memory.variable,
            count_simultaneous=config.count_simultaneous,
            overflow_error=CapacityExceededError,
            until=until,
            stop=stop,
            on_progress=on_progress,
            progress_every=stride if on_summary is not None else 0,
        )
        drop_counts = empty_side_drop_counts()
        drop_counts["R"][DROP_EXPIRED] = expired_r
        drop_counts["S"][DROP_EXPIRED] = expired_s
        return RunResult(
            output_count=output,
            total_output_count=total_output,
            length=ticks,
            window=window,
            memory=config.memory,
            warmup=warmup,
            policy_name=self.policy_name,
            pairs=None,
            r_departures=None,
            s_departures=None,
            shares=None,
            drop_counts=drop_counts,
            metrics=None,
            trace=None,
        )

    # ------------------------------------------------------------------
    def _run_incremental(
        self, source, obs, tracer, until, emit, on_summary, stride, stop
    ) -> RunResult:
        """The kernel-driven incremental loop (see :meth:`run_stream`).

        Synchronous tick semantics generalized to arrival batches: per
        tick — expire, observe both batches, probe *both* batches
        against resident state plus the same-tick cross pairs (the top
        path: a new tuple is always seen by the join), then admit the R
        batch and the S batch through the kernel's eviction contests.
        On one-arrival-per-side ticks this reduces exactly to the pair
        path's per-tick body.

        No per-arrival state is kept: output pairs go to ``emit``,
        progress goes to ``on_summary``, and the only growing structure
        is the (sampled) metrics series of an instrumented run.
        """
        config = self.config
        memory = self.memory
        window = config.window
        warmup = config.warmup
        assert warmup is not None
        count_sim = config.count_simultaneous

        kernel = JoinKernel(
            memory,
            self._policy_r,
            self._policy_s,
            tracer=tracer,
            overflow_error=CapacityExceededError,
        )
        self._kernel = kernel
        drop_counts = kernel.drop_counts
        tracing = tracer is not None
        timed = obs is not None

        output = 0
        total_output = 0
        simultaneous_total = 0
        arrivals_r = 0
        arrivals_s = 0
        ticks = 0

        if timed:
            run_timer = Timer()
            run_timer.start()
            occupancy_r = obs.series("engine.occupancy", side="R")
            occupancy_s = obs.series("engine.occupancy", side="S")
            share_series = obs.series("engine.memory_share", side="R")
            sample_every = config.metrics_sample_every or max(1, window // 8)
        else:
            sample_every = 0

        mem_r = memory.r
        mem_s = memory.s

        for t, (r_batch, s_batch) in enumerate(iter(source)):
            if until is not None and t >= until:
                break
            if stop is not None and stop():
                break

            # 1. expiry ------------------------------------------------
            kernel.expire(t - window, t)

            # 2. statistics hooks --------------------------------------
            arrivals_r += len(r_batch)
            arrivals_s += len(s_batch)
            kernel.observe_batch("R", r_batch, t)
            kernel.observe_batch("S", s_batch, t)
            if tracing:
                for key in r_batch:
                    tracer.emit(TraceEvent(t, "R", key, EVENT_ARRIVE, t))
                for key in s_batch:
                    tracer.emit(TraceEvent(t, "S", key, EVENT_ARRIVE, t))

            # 3. probes (before any same-tick admission) ---------------
            matches = kernel.probe_batch("R", r_batch, t) + kernel.probe_batch(
                "S", s_batch, t
            )
            cross = 0
            if count_sim and r_batch and s_batch:
                if len(r_batch) == 1 and len(s_batch) == 1:
                    cross = 1 if r_batch[0] == s_batch[0] else 0
                else:
                    tick_counts: dict = {}
                    for key in r_batch:
                        tick_counts[key] = tick_counts.get(key, 0) + 1
                    cross = sum(tick_counts.get(key, 0) for key in s_batch)
                simultaneous_total += cross
            total_output += matches + cross
            if t >= warmup:
                output += matches + cross
                if emit is not None:
                    for key in r_batch:
                        for partner in mem_s.matches(key):
                            emit(JoinResultTuple(t, partner.arrival, key))
                    for key in s_batch:
                        for partner in mem_r.matches(key):
                            emit(JoinResultTuple(partner.arrival, t, key))
                    if cross:
                        for key in s_batch:
                            for r_key in r_batch:
                                if r_key == key:
                                    emit(JoinResultTuple(t, t, key))
            if tracing and cross:
                for key in s_batch:
                    for r_key in r_batch:
                        if r_key == key:
                            tracer.emit(TraceEvent(
                                t, "R", key, EVENT_JOIN_OUTPUT, t,
                                None, REASON_SIMULTANEOUS,
                            ))

            # 4. admissions: R batch first, then S ---------------------
            for key in r_batch:
                kernel.insert(TupleRecord("R", t, key), t)
            for key in s_batch:
                kernel.insert(TupleRecord("S", t, key), t)

            if sample_every and not t % sample_every:
                r_size = mem_r.size
                s_size = mem_s.size
                occupancy_r.append(t, r_size)
                occupancy_s.append(t, s_size)
                total = r_size + s_size
                share_series.append(t, (r_size / total) if total else 0.5)

            if config.validate:
                self._check_invariants(t)

            ticks = t + 1
            if on_summary is not None and ticks % stride == 0:
                on_summary(RunSummary(
                    engine="fast",
                    policy_name=self.policy_name,
                    output_count=output,
                    drops=DropBreakdown.from_side_counts(drop_counts),
                ))

        snapshot = None
        if timed:
            run_timer.stop()
            obs.counter("engine.probes").inc(arrivals_r + arrivals_s)
            obs.counter("engine.matches").inc(total_output)
            obs.counter("engine.simultaneous").inc(simultaneous_total)
            obs.counter("engine.output").inc(output)
            for side, arrived in (("R", arrivals_r), ("S", arrivals_s)):
                obs.counter("engine.arrivals", side=side).inc(arrived)
                obs.counter("engine.admissions", side=side).inc(
                    arrived - drop_counts[side][DROP_REJECTED]
                )
                for reason, count in drop_counts[side].items():
                    obs.counter("engine.drops", side=side, reason=reason).inc(count)
                obs.gauge("engine.final_occupancy", side=side).set(
                    memory.side(side).size
                )
            obs.record_phase("engine/run", run_timer.seconds)
            snapshot = obs.snapshot()

        trace_events = None
        if tracing:
            trace_events = tracer.collect()
        self._kernel = None

        return RunResult(
            output_count=output,
            total_output_count=total_output,
            length=ticks,
            window=window,
            memory=config.memory,
            warmup=warmup,
            policy_name=self.policy_name,
            pairs=None,
            r_departures=None,
            s_departures=None,
            shares=None,
            drop_counts=drop_counts,
            metrics=snapshot,
            trace=trace_events,
        )

    # ------------------------------------------------------------------
    def _flush_metrics(
        self,
        obs,
        length: int,
        total_output: int,
        simultaneous_total: int,
        output: int,
        drop_counts: dict,
        *,
        final_occupancy: Union[int, tuple, None] = None,
    ) -> None:
        """End-of-run counter/gauge flush shared by the fast loops.

        ``final_occupancy`` overrides the end-of-run gauge for lanes
        that never populate the join memory: a single int applies to
        both sides (the count-only EXACT lane computes residency
        analytically), an ``(r, s)`` tuple sets them separately (the
        policy lanes track per-side occupancy).
        """
        memory = self.memory
        obs.counter("engine.probes").inc(2 * length)
        obs.counter("engine.matches").inc(total_output)
        obs.counter("engine.simultaneous").inc(simultaneous_total)
        obs.counter("engine.output").inc(output)
        for side in ("R", "S"):
            obs.counter("engine.arrivals", side=side).inc(length)
            obs.counter("engine.admissions", side=side).inc(
                length - drop_counts[side][DROP_REJECTED]
            )
            for reason, count in drop_counts[side].items():
                obs.counter("engine.drops", side=side, reason=reason).inc(count)
            if final_occupancy is None:
                occupancy = memory.side(side).size
            elif isinstance(final_occupancy, tuple):
                occupancy = final_occupancy[0 if side == "R" else 1]
            else:
                occupancy = final_occupancy
            obs.gauge("engine.final_occupancy", side=side).set(occupancy)

    # ------------------------------------------------------------------
    def _run_general(self, pair: StreamPair, obs, tracer) -> RunResult:
        """The fully featured loop (see :meth:`run`).

        Expiry, probes, admissions, and all their drop/notify/trace
        bookkeeping run through a :class:`~repro.core.kernel.JoinKernel`;
        this loop keeps only what is engine-specific — output counting,
        warmup, survival records, materialisation, share tracking, the
        time-varying schedules, and instrumentation.
        """
        config = self.config
        memory = self.memory
        window = config.window
        warmup = config.warmup
        assert warmup is not None

        length = len(pair)
        r_keys = pair.r
        s_keys = pair.s

        track_survival = config.track_survival
        r_departures: Optional[list[int]] = [0] * length if track_survival else None
        s_departures: Optional[list[int]] = [0] * length if track_survival else None

        pairs: Optional[list[JoinResultTuple]] = [] if config.materialize else None
        shares: Optional[list[tuple[int, int, int]]] = [] if config.track_shares else None

        output = 0
        total_output = 0
        simultaneous_total = 0

        # Observability: `obs` and `tracer` are None on the
        # uninstrumented path, so the hot loop pays only a handful of
        # local-boolean branches per tick.
        kernel = JoinKernel(
            memory,
            self._policy_r,
            self._policy_s,
            tracer=tracer,
            overflow_error=CapacityExceededError,
        )
        self._kernel = kernel
        drop_counts = kernel.drop_counts
        tracing = tracer is not None
        timed = obs is not None
        if timed:
            run_timer = Timer()
            run_timer.start()
            expire_timer = Timer()
            probe_timer = Timer()
            admit_timer = Timer()
            occupancy_r = obs.series("engine.occupancy", side="R")
            occupancy_s = obs.series("engine.occupancy", side="S")
            share_series = obs.series("engine.memory_share", side="R")

        schedule = config.memory_schedule
        if schedule is not None and not callable(schedule):
            sequence = schedule
            schedule = lambda t: sequence[t]  # noqa: E731 - tiny adapter
        window_schedule = config.window_schedule
        if window_schedule is not None and not callable(window_schedule):
            window_sequence = window_schedule
            window_schedule = lambda t: window_sequence[t]  # noqa: E731

        for t in range(length):
            # 0. budget / window change (time-varying resources) --------
            if schedule is not None:
                target = int(schedule(t))
                if target != memory.capacity:
                    memory.resize(target)
                    # Budget victims were last present for the previous
                    # tick's probes, so their record ends at t - 1.
                    for victim in kernel.shed_surplus(t):
                        if track_survival:
                            self._set_departure(
                                r_departures, s_departures, victim, t - 1
                            )
            if window_schedule is not None:
                window = int(window_schedule(t))
                if window <= 0:
                    raise ValueError(f"window schedule produced {window} at t={t}")

            # 1. expiry ------------------------------------------------
            if timed:
                expire_timer.start()
            for record in kernel.expire(t - window, t):
                if track_survival:
                    self._set_departure(
                        r_departures, s_departures, record, record.arrival + window - 1
                    )

            if timed:
                expire_timer.stop()

            r_key = r_keys[t]
            s_key = s_keys[t]

            # 2. statistics hooks ---------------------------------------
            kernel.observe("R", r_key, t)
            kernel.observe("S", s_key, t)
            if tracing:
                tracer.emit(TraceEvent(t, "R", r_key, EVENT_ARRIVE, t))
                tracer.emit(TraceEvent(t, "S", s_key, EVENT_ARRIVE, t))

            # 3. probes -------------------------------------------------
            if timed:
                probe_timer.start()
            matches = kernel.probe("R", r_key, t) + kernel.probe("S", s_key, t)
            simultaneous = 1 if (config.count_simultaneous and r_key == s_key) else 0
            total_output += matches + simultaneous
            simultaneous_total += simultaneous
            if t >= warmup:
                output += matches + simultaneous
                if pairs is not None:
                    for record in memory.s.matches(r_key):
                        pairs.append(JoinResultTuple(t, record.arrival, r_key))
                    for record in memory.r.matches(s_key):
                        pairs.append(JoinResultTuple(record.arrival, t, s_key))
                    if simultaneous:
                        pairs.append(JoinResultTuple(t, t, r_key))
            if tracing and simultaneous:
                # kernel.probe credited the resident partners; the
                # simultaneous pair has none, so the engine emits it.
                tracer.emit(TraceEvent(
                    t, "R", r_key, EVENT_JOIN_OUTPUT, t,
                    None, REASON_SIMULTANEOUS,
                ))

            # 4. admissions ---------------------------------------------
            if timed:
                probe_timer.stop()
                admit_timer.start()
            for stream, key in (("R", r_key), ("S", s_key)):
                record = TupleRecord(stream, t, key)
                admitted, victim = kernel.insert(record, t)
                if track_survival:
                    if not admitted:
                        # A rejected tuple was only present for its own
                        # arrival's probes.
                        self._set_departure(
                            r_departures, s_departures, record, record.arrival
                        )
                    elif victim is not None:
                        self._set_departure(r_departures, s_departures, victim, t)
            if timed:
                admit_timer.stop()

            if shares is not None and t % config.share_sample_every == 0:
                shares.append((t, memory.r.size, memory.s.size))

            if timed and t % config.share_sample_every == 0:
                r_size = memory.r.size
                s_size = memory.s.size
                occupancy_r.append(t, r_size)
                occupancy_s.append(t, s_size)
                total = r_size + s_size
                share_series.append(t, (r_size / total) if total else 0.5)

            if config.validate:
                self._check_invariants(t)

        # Tuples still resident at stream end would have served their full
        # window; record the counterfactual natural departure.
        if track_survival:
            for side in (memory.r, memory.s):
                for record in side.records():
                    self._set_departure(
                        r_departures, s_departures, record, record.arrival + window - 1
                    )

        snapshot = None
        if obs is not None:
            run_timer.stop()
            obs.counter("engine.probes").inc(2 * length)
            obs.counter("engine.matches").inc(total_output)
            obs.counter("engine.simultaneous").inc(simultaneous_total)
            obs.counter("engine.output").inc(output)
            for side in ("R", "S"):
                obs.counter("engine.arrivals", side=side).inc(length)
                obs.counter("engine.admissions", side=side).inc(
                    length - drop_counts[side][DROP_REJECTED]
                )
                for reason, count in drop_counts[side].items():
                    obs.counter("engine.drops", side=side, reason=reason).inc(count)
                obs.gauge("engine.final_occupancy", side=side).set(
                    memory.side(side).size
                )
            expire_timer.flush(obs, "engine/expire")
            probe_timer.flush(obs, "engine/probe")
            admit_timer.flush(obs, "engine/admit")
            obs.record_phase("engine/run", run_timer.seconds)
            snapshot = obs.snapshot()

        trace_events = None
        if tracing:
            trace_events = tracer.collect()
        self._kernel = None

        return RunResult(
            output_count=output,
            total_output_count=total_output,
            length=length,
            window=window,
            memory=config.memory,
            warmup=warmup,
            policy_name=self.policy_name,
            pairs=pairs,
            r_departures=r_departures,
            s_departures=s_departures,
            shares=shares,
            drop_counts=drop_counts,
            metrics=snapshot,
            trace=trace_events,
        )

    # ------------------------------------------------------------------
    def _policy_for(self, stream: str) -> Optional[EvictionPolicy]:
        return self._policy_r if stream == "R" else self._policy_s

    @staticmethod
    def _set_departure(
        r_departures: Optional[list[int]],
        s_departures: Optional[list[int]],
        record: TupleRecord,
        departure: int,
    ) -> None:
        target = r_departures if record.stream == "R" else s_departures
        if target is not None:
            target[record.arrival] = departure

    def _check_invariants(self, now: int) -> None:
        memory = self.memory
        if memory.variable:
            if memory.total_size > memory.capacity:
                raise AssertionError(
                    f"t={now}: pool holds {memory.total_size} > M={memory.capacity}"
                )
        else:
            half = memory.capacity // 2
            if memory.r.size > half or memory.s.size > half:
                raise AssertionError(
                    f"t={now}: sides hold {memory.r.size}/{memory.s.size} > M/2={half}"
                )
        for side in (memory.r, memory.s):
            for record in side.records():
                if not record.alive:
                    raise AssertionError(f"t={now}: dead record in slot array")
                if record.arrival <= now - self.config.window:
                    raise AssertionError(f"t={now}: expired record {record!r} resident")
