"""Common run-result contract shared by every engine.

The four execution models (fast-CPU :class:`~repro.core.engine.JoinEngine`,
:class:`~repro.core.async_engine.AsyncJoinEngine`, the modular
:class:`~repro.core.slowcpu.SlowCpuEngine`, and the shared-queue
:class:`~repro.core.multiquery.SharedQueueSystem`) produce results with
engine-specific detail, but all of them now agree on a minimal surface:

* ``output_count`` — the counted (post-warmup) output size;
* ``drop_breakdown()`` — a :class:`DropBreakdown` of how many tuples were
  lost and why (rejected on arrival / evicted from state / expired);
* ``metrics`` — the attached metrics snapshot (a dict produced by
  :meth:`repro.obs.MetricsRegistry.snapshot`) when the run was
  instrumented, else ``None``.

:class:`BaseRunResult` is the mixin providing the shared helpers; the
facade's :meth:`BaseRunResult.summary` flattens any result into one
engine-agnostic :class:`RunSummary` record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: How a tuple left the join state.
DROP_REJECTED = "rejected"
DROP_EVICTED = "evicted"
DROP_EXPIRED = "expired"

DROP_REASONS = (DROP_REJECTED, DROP_EVICTED, DROP_EXPIRED)


def empty_side_drop_counts() -> dict:
    """The per-side drop ledger the engines count into."""
    return {
        "R": {DROP_REJECTED: 0, DROP_EVICTED: 0, DROP_EXPIRED: 0},
        "S": {DROP_REJECTED: 0, DROP_EVICTED: 0, DROP_EXPIRED: 0},
    }


@dataclass(frozen=True)
class DropBreakdown:
    """How many tuples were lost, by cause.

    ``rejected`` — dropped on arrival (admission refusal or queue shed);
    ``evicted`` — displaced from join state before natural death;
    ``expired`` — aged out of the window (not a loss of result quality
    by itself, reported for completeness).
    """

    rejected: int = 0
    evicted: int = 0
    expired: int = 0

    @property
    def total(self) -> int:
        return self.rejected + self.evicted + self.expired

    @property
    def shed(self) -> int:
        """Tuples lost to load shedding (everything but natural expiry)."""
        return self.rejected + self.evicted

    def as_dict(self) -> dict:
        return {
            DROP_REJECTED: self.rejected,
            DROP_EVICTED: self.evicted,
            DROP_EXPIRED: self.expired,
        }

    @classmethod
    def from_side_counts(cls, drop_counts: dict) -> "DropBreakdown":
        """Collapse a per-side ledger (``{"R": {...}, "S": {...}}``)."""
        sides = drop_counts.values()
        return cls(
            rejected=sum(side.get(DROP_REJECTED, 0) for side in sides),
            evicted=sum(side.get(DROP_EVICTED, 0) for side in sides),
            expired=sum(side.get(DROP_EXPIRED, 0) for side in sides),
        )


@dataclass(frozen=True)
class RunSummary:
    """Engine-agnostic view of one run, as returned by ``summary()``."""

    engine: str
    policy_name: str
    output_count: int
    drops: DropBreakdown
    metrics: Optional[dict] = None


class BaseRunResult:
    """Mixin giving every engine result the unified surface.

    Subclasses are dataclasses that provide ``output_count`` and a
    ``metrics`` field, and override :meth:`drop_breakdown` (and
    ``engine_kind`` / ``policy_label`` where the legacy field names
    differ).
    """

    #: Engine family for reporting ("fast", "async", "slowcpu", "multiquery").
    engine_kind: str = "?"

    def drop_breakdown(self) -> DropBreakdown:
        """Total tuples lost, by cause (see :class:`DropBreakdown`)."""
        raise NotImplementedError

    @property
    def policy_label(self) -> str:
        return getattr(self, "policy_name", "?")

    def summary(self) -> RunSummary:
        """Flatten into the engine-agnostic :class:`RunSummary`."""
        return RunSummary(
            engine=self.engine_kind,
            policy_name=self.policy_label,
            output_count=self.output_count,  # type: ignore[attr-defined]
            drops=self.drop_breakdown(),
            metrics=getattr(self, "metrics", None),
        )
