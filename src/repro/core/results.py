"""Common run-result contract shared by every engine.

The four execution models (fast-CPU :class:`~repro.core.engine.JoinEngine`,
:class:`~repro.core.async_engine.AsyncJoinEngine`, the modular
:class:`~repro.core.slowcpu.SlowCpuEngine`, and the shared-queue
:class:`~repro.core.multiquery.SharedQueueSystem`) produce results with
engine-specific detail, but all of them now agree on a minimal surface:

* ``output_count`` — the counted (post-warmup) output size;
* ``drop_breakdown()`` — a :class:`DropBreakdown` of how many tuples were
  lost and why (rejected on arrival / evicted from state / expired);
* ``metrics`` — the attached metrics snapshot (a dict produced by
  :meth:`repro.obs.MetricsRegistry.snapshot`) when the run was
  instrumented, else ``None``.

:class:`BaseRunResult` is the mixin providing the shared helpers; the
facade's :meth:`BaseRunResult.summary` flattens any result into one
engine-agnostic :class:`RunSummary` record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Version stamped on every serialised result record (``to_dict``) and
#: on checkpoint payloads.  Bump when a field is added, renamed, or its
#: meaning changes; ``from_dict`` accepts every version it knows how to
#: upgrade (currently 1 — pre-``lost_shard`` records — and 2).
SCHEMA_VERSION = 2

#: How a tuple left the join state.
DROP_REJECTED = "rejected"
DROP_EVICTED = "evicted"
DROP_EXPIRED = "expired"
#: An entire hash shard was abandoned after retry exhaustion (graceful
#: degradation); counts the shard's *input* tuples, per side.  Engines
#: never write this reason — only the shard merge layer does.
DROP_LOST = "lost_shard"

DROP_REASONS = (DROP_REJECTED, DROP_EVICTED, DROP_EXPIRED, DROP_LOST)


def empty_side_drop_counts() -> dict:
    """The per-side drop ledger the engines count into.

    ``lost_shard`` is intentionally absent: it is a merge-layer category
    (see :data:`DROP_LOST`), and the engines iterate this dict when
    flushing per-reason metrics — an always-zero entry would pollute
    every unsharded snapshot.  :meth:`DropBreakdown.from_side_counts`
    reads it with a default of 0.
    """
    return {
        "R": {DROP_REJECTED: 0, DROP_EVICTED: 0, DROP_EXPIRED: 0},
        "S": {DROP_REJECTED: 0, DROP_EVICTED: 0, DROP_EXPIRED: 0},
    }


@dataclass(frozen=True)
class DropBreakdown:
    """How many tuples were lost, by cause.

    ``rejected`` — dropped on arrival (admission refusal or queue shed);
    ``evicted`` — displaced from join state before natural death;
    ``expired`` — aged out of the window (not a loss of result quality
    by itself, reported for completeness);
    ``lost`` — input tuples of hash shards abandoned after retry
    exhaustion under graceful degradation (sharded runs only).
    """

    rejected: int = 0
    evicted: int = 0
    expired: int = 0
    lost: int = 0

    @property
    def total(self) -> int:
        return self.rejected + self.evicted + self.expired + self.lost

    @property
    def shed(self) -> int:
        """Tuples lost to load shedding (everything but natural expiry).

        Lost-shard tuples count as shed: like an eviction, the system —
        not the window — decided they would never produce output.
        """
        return self.rejected + self.evicted + self.lost

    def as_dict(self) -> dict:
        return {
            DROP_REJECTED: self.rejected,
            DROP_EVICTED: self.evicted,
            DROP_EXPIRED: self.expired,
            DROP_LOST: self.lost,
        }

    def to_dict(self) -> dict:
        """Versioned JSON-serialisable export (see :data:`SCHEMA_VERSION`)."""
        record = self.as_dict()
        record["schema_version"] = SCHEMA_VERSION
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "DropBreakdown":
        """Rebuild from :meth:`to_dict` output.

        Accepts version-1 records (no ``lost_shard`` key, no
        ``schema_version``) by defaulting the missing field to 0.
        """
        version = record.get("schema_version", 1)
        if version > SCHEMA_VERSION:
            raise ValueError(
                f"drop-breakdown record has schema_version {version}; "
                f"this build reads <= {SCHEMA_VERSION}"
            )
        return cls(
            rejected=record.get(DROP_REJECTED, 0),
            evicted=record.get(DROP_EVICTED, 0),
            expired=record.get(DROP_EXPIRED, 0),
            lost=record.get(DROP_LOST, 0),
        )

    @classmethod
    def from_side_counts(cls, drop_counts: dict) -> "DropBreakdown":
        """Collapse a per-side ledger (``{"R": {...}, "S": {...}}``)."""
        sides = drop_counts.values()
        return cls(
            rejected=sum(side.get(DROP_REJECTED, 0) for side in sides),
            evicted=sum(side.get(DROP_EVICTED, 0) for side in sides),
            expired=sum(side.get(DROP_EXPIRED, 0) for side in sides),
            lost=sum(side.get(DROP_LOST, 0) for side in sides),
        )


@dataclass(frozen=True)
class RunSummary:
    """Engine-agnostic view of one run, as returned by ``summary()``."""

    engine: str
    policy_name: str
    output_count: int
    drops: DropBreakdown
    metrics: Optional[dict] = None

    def to_dict(self, *, metrics: bool = False) -> dict:
        """Versioned JSON-serialisable export.

        ``metrics=True`` embeds the (potentially large) metrics snapshot;
        the default keeps the record compact — the CLI emits the snapshot
        alongside, not inside, the summary.
        """
        record = {
            "schema_version": SCHEMA_VERSION,
            "engine": self.engine,
            "policy": self.policy_name,
            "output_count": self.output_count,
            "drops": self.drops.to_dict(),
        }
        if metrics and self.metrics is not None:
            record["metrics"] = self.metrics
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "RunSummary":
        """Rebuild from :meth:`to_dict` output (round-trip exact)."""
        version = record.get("schema_version", 1)
        if version > SCHEMA_VERSION:
            raise ValueError(
                f"run-summary record has schema_version {version}; "
                f"this build reads <= {SCHEMA_VERSION}"
            )
        return cls(
            engine=record["engine"],
            policy_name=record["policy"],
            output_count=record["output_count"],
            drops=DropBreakdown.from_dict(record.get("drops", {})),
            metrics=record.get("metrics"),
        )


class BaseRunResult:
    """Mixin giving every engine result the unified surface.

    Subclasses are dataclasses that provide ``output_count`` and a
    ``metrics`` field, and override :meth:`drop_breakdown` (and
    ``engine_kind`` / ``policy_label`` where the legacy field names
    differ).
    """

    #: Engine family for reporting ("fast", "async", "slowcpu", "multiquery").
    engine_kind: str = "?"

    def drop_breakdown(self) -> DropBreakdown:
        """Total tuples lost, by cause (see :class:`DropBreakdown`)."""
        raise NotImplementedError

    @property
    def policy_label(self) -> str:
        return getattr(self, "policy_name", "?")

    def summary(self) -> RunSummary:
        """Flatten into the engine-agnostic :class:`RunSummary`."""
        return RunSummary(
            engine=self.engine_kind,
            policy_name=self.policy_label,
            output_count=self.output_count,  # type: ignore[attr-defined]
            drops=self.drop_breakdown(),
            metrics=getattr(self, "metrics", None),
        )
