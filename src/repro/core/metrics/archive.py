"""The Archive-metric (ArM) — the paper's novel measure (Section 2.2).

In archive-backed "load smoothing" deployments an approximate daytime
result is completed at night from the archive, so the relevant cost is
not approximation error but *post-processing work*: the number of tuples
that were not matched with all of their partners while streaming.

Formally (paper notation): ``r(i)`` is *complete* iff

* every earlier partner ``s(j)``, ``j ∈ S^<(i) = {j ∈ [i-w+1, i-1] :
  s(j) = r(i)}``, was still in memory at time ``i``  (``δ_S(j, i-j)=1``),
  and
* ``r(i)`` itself stayed in memory until its last partner's arrival
  ``j_r(i) = max{j ∈ [i, i+w-1] : s(j) = r(i)}``  (``δ_R(i, j_r-i)=1``).

ArM is the count of incomplete tuples across both streams.  It is
computed here from the per-tuple survival records the engine (and
OPT-offline) emit, using the convention that ``departure[i]`` is the last
probe tick the tuple was present for — so "in memory at time t" means
``departure >= t``, and surviving to ``j_r`` means ``departure >= j_r``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Sequence

from ...streams.tuples import StreamPair


@dataclass(frozen=True)
class ArchiveMetricReport:
    """ArM breakdown for one run.

    Attributes
    ----------
    incomplete_r / incomplete_s:
        Tuples of each stream missing at least one partner.
    considered:
        Tuples inspected (those with ``arrival >= count_from``).
    """

    incomplete_r: int
    incomplete_s: int
    considered: int

    @property
    def arm(self) -> int:
        """The Archive-metric: total incomplete tuples."""
        return self.incomplete_r + self.incomplete_s

    @property
    def incomplete_fraction(self) -> float:
        if self.considered == 0:
            return 0.0
        return self.arm / self.considered


def _times_by_key(keys: Sequence) -> dict:
    index: dict = {}
    for t, key in enumerate(keys):
        index.setdefault(key, []).append(t)
    return index


def _is_complete(
    arrival: int,
    own_departure: int,
    partner_times: Sequence[int],
    partner_departures: Sequence[int],
    window: int,
    length: int,
) -> bool:
    """Completeness of one tuple given its partner index."""
    if not partner_times:
        return True
    # Earlier partners must have been in memory at `arrival`.
    start = bisect_left(partner_times, arrival - window + 1)
    stop = bisect_left(partner_times, arrival)
    for idx in range(start, stop):
        j = partner_times[idx]
        if partner_departures[j] < arrival:
            return False
    # The tuple must survive to its last partner in [arrival, arrival+w-1].
    last_idx = bisect_right(partner_times, min(arrival + window - 1, length - 1)) - 1
    if last_idx >= 0:
        last_partner = partner_times[last_idx]
        if last_partner >= arrival and own_departure < last_partner:
            return False
    return True


def archive_metric(
    pair: StreamPair,
    r_departures: Sequence[int],
    s_departures: Sequence[int],
    window: int,
    *,
    count_from: int = 0,
) -> ArchiveMetricReport:
    """Compute ArM from survival records.

    Parameters
    ----------
    pair:
        The input streams.
    r_departures / s_departures:
        Engine survival records (:attr:`RunResult.r_departures`): last
        probe tick each tuple was present for.
    window:
        Window size ``w``.
    count_from:
        Only tuples arriving at or after this tick are assessed (skips
        the warmup phase, mirroring the output accounting).
    """
    length = len(pair)
    if len(r_departures) != length or len(s_departures) != length:
        raise ValueError("survival records must cover every arrival")
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")

    r_times = _times_by_key(pair.r)
    s_times = _times_by_key(pair.s)

    incomplete_r = 0
    incomplete_s = 0
    for i in range(count_from, length):
        r_key = pair.r[i]
        if not _is_complete(
            i, r_departures[i], s_times.get(r_key, ()), s_departures, window, length
        ):
            incomplete_r += 1
        s_key = pair.s[i]
        if not _is_complete(
            i, s_departures[i], r_times.get(s_key, ()), r_departures, window, length
        ):
            incomplete_s += 1

    considered = 2 * max(0, length - count_from)
    return ArchiveMetricReport(
        incomplete_r=incomplete_r,
        incomplete_s=incomplete_s,
        considered=considered,
    )
