"""Quality measures for approximate join results (Section 2.2)."""

from .archive import ArchiveMetricReport, archive_metric
from .emd import emd, emd_sorted
from .mac import mac_distance
from .max_subset import (
    MaxSubsetReport,
    fraction_of,
    max_subset_report,
    missing_tuples,
    verify_subset,
)
from .set_measures import (
    cosine_coefficient,
    dice_coefficient,
    is_multisubset,
    jaccard_coefficient,
    matching_coefficient,
    multiset_intersection_size,
    multiset_union_size,
    overlap_coefficient,
    symmetric_difference_size,
)

__all__ = [
    "ArchiveMetricReport",
    "MaxSubsetReport",
    "archive_metric",
    "cosine_coefficient",
    "dice_coefficient",
    "emd",
    "emd_sorted",
    "fraction_of",
    "is_multisubset",
    "jaccard_coefficient",
    "mac_distance",
    "matching_coefficient",
    "max_subset_report",
    "missing_tuples",
    "multiset_intersection_size",
    "multiset_union_size",
    "overlap_coefficient",
    "symmetric_difference_size",
    "verify_subset",
]
