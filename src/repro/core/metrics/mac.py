"""Match-And-Compare (MAC) set similarity (Section 2.2, after [19]).

Ioannidis & Poosala's MAC measure first finds a minimum-cost cover of the
complete bipartite graph between the two (multi)sets under a ground
distance, then scores the cover.  We implement the common instantiation:
a minimum-cost matching where every element of the smaller multiset is
matched and leftovers of the larger one pay a fixed ``unmatched_penalty``
— computed exactly as a min-cost flow on the library's solver.

``mac_distance(X, Y) == 0`` iff X and Y are identical multisets (with a
positive penalty and an identity-of-indiscernibles ground distance), and
for ``X ⊆ Y`` it degenerates to ``penalty * (|Y| - |X|)`` — again
ordering approximations exactly as MAX-subset does, which is the paper's
point about measure equivalence on subset results.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Hashable, Iterable, Optional

from ...flow.network import FlowNetwork
from ...flow.ssp import solve_min_cost_flow


def mac_distance(
    x: Iterable[Hashable],
    y: Iterable[Hashable],
    distance: Optional[Callable[[Hashable, Hashable], int]] = None,
    *,
    unmatched_penalty: int = 1,
) -> int:
    """Minimum matching cost + penalty for unmatched elements.

    Parameters
    ----------
    x, y:
        Multisets; sizes may differ (the size difference is charged
        ``unmatched_penalty`` per element).
    distance:
        Non-negative integer ground distance; defaults to ``abs(a - b)``.
    unmatched_penalty:
        Cost per element of the larger multiset left unmatched.
    """
    if distance is None:
        distance = lambda a, b: abs(a - b)  # noqa: E731 - simple default
    if unmatched_penalty < 0:
        raise ValueError(f"unmatched_penalty must be non-negative, got {unmatched_penalty}")

    counts_x = Counter(x)
    counts_y = Counter(y)
    mass_x = sum(counts_x.values())
    mass_y = sum(counts_y.values())
    if mass_x > mass_y:
        counts_x, counts_y = counts_y, counts_x
        mass_x, mass_y = mass_y, mass_x

    if mass_x == 0:
        return unmatched_penalty * mass_y

    network = FlowNetwork()
    x_nodes = {
        value: network.add_node(f"x:{value!r}", supply=count)
        for value, count in counts_x.items()
    }
    y_nodes = {value: network.add_node(f"y:{value!r}") for value in counts_y}
    sink = network.add_node("sink", supply=-mass_x)

    for x_value, x_node in x_nodes.items():
        for y_value, y_node in y_nodes.items():
            cost = distance(x_value, y_value)
            if cost < 0 or cost != int(cost):
                raise ValueError(
                    f"distance must be a non-negative integer, got {cost!r}"
                )
            network.add_arc(x_node, y_node, counts_x[x_value], int(cost))
    for y_value, y_node in y_nodes.items():
        network.add_arc(y_node, sink, counts_y[y_value], 0)

    result = solve_min_cost_flow(network)
    if not result.feasible:
        raise RuntimeError("MAC matching problem was infeasible")  # pragma: no cover
    return result.cost + unmatched_penalty * (mass_y - mass_x)
