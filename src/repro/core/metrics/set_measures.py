"""Set-theoretic similarity measures for approximate query results.

Section 2.2 surveys the design space of error measures for set-valued
(really multiset-valued) query answers.  These are implemented over
multisets via :class:`collections.Counter`: intersections take per-element
minima, unions take maxima.

For a subset relation ``X ⊆ Y`` (the situation tuple-dropping joins
create) the matching/Dice/Jaccard/cosine coefficients are all maximised
by maximising ``|X|`` — i.e. they reduce to the MAX-subset measure — and
the overlap coefficient degenerates to 1.  The test-suite verifies these
claims.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Hashable, Iterable


def _counter(items: Iterable[Hashable]) -> Counter:
    return items if isinstance(items, Counter) else Counter(items)


def multiset_intersection_size(x: Iterable[Hashable], y: Iterable[Hashable]) -> int:
    """``|X ∩ Y|`` with multiset (minimum multiplicity) semantics."""
    cx, cy = _counter(x), _counter(y)
    if len(cy) < len(cx):
        cx, cy = cy, cx
    return sum(min(count, cy[key]) for key, count in cx.items() if key in cy)


def multiset_union_size(x: Iterable[Hashable], y: Iterable[Hashable]) -> int:
    """``|X ∪ Y|`` with multiset (maximum multiplicity) semantics."""
    cx, cy = _counter(x), _counter(y)
    total = sum(cx.values()) + sum(cy.values())
    return total - multiset_intersection_size(cx, cy)


def symmetric_difference_size(x: Iterable[Hashable], y: Iterable[Hashable]) -> int:
    """``|(X - Y) ∪ (Y - X)|`` — the paper's base error measure.

    For ``X ⊆ Y`` this equals ``|Y| - |X|``, the number of missing output
    tuples, motivating the MAX-subset measure.
    """
    cx, cy = _counter(x), _counter(y)
    total = sum(cx.values()) + sum(cy.values())
    return total - 2 * multiset_intersection_size(cx, cy)


def matching_coefficient(x: Iterable[Hashable], y: Iterable[Hashable]) -> int:
    """``|X ∩ Y|``."""
    return multiset_intersection_size(x, y)


def dice_coefficient(x: Iterable[Hashable], y: Iterable[Hashable]) -> float:
    """``2 |X ∩ Y| / (|X| + |Y|)`` in [0, 1]; 1 for two empty sets."""
    cx, cy = _counter(x), _counter(y)
    denominator = sum(cx.values()) + sum(cy.values())
    if denominator == 0:
        return 1.0
    return 2.0 * multiset_intersection_size(cx, cy) / denominator


def jaccard_coefficient(x: Iterable[Hashable], y: Iterable[Hashable]) -> float:
    """``|X ∩ Y| / |X ∪ Y|`` in [0, 1]; 1 for two empty sets."""
    cx, cy = _counter(x), _counter(y)
    union = multiset_union_size(cx, cy)
    if union == 0:
        return 1.0
    return multiset_intersection_size(cx, cy) / union


def cosine_coefficient(x: Iterable[Hashable], y: Iterable[Hashable]) -> float:
    """``|X ∩ Y| / sqrt(|X| * |Y|)`` in [0, 1]; 1 for two empty sets.

    Note: the paper's text prints ``sqrt(|X| + |Y|)``, which is neither
    the standard Ochiai/cosine coefficient nor bounded by 1; we implement
    the standard ``sqrt(|X| * |Y|)`` form (van Rijsbergen), which for
    ``X ⊆ Y`` is still maximised by maximising ``|X|``.
    """
    cx, cy = _counter(x), _counter(y)
    size_x = sum(cx.values())
    size_y = sum(cy.values())
    if size_x == 0 and size_y == 0:
        return 1.0
    if size_x == 0 or size_y == 0:
        return 0.0
    return multiset_intersection_size(cx, cy) / math.sqrt(size_x * size_y)


def overlap_coefficient(x: Iterable[Hashable], y: Iterable[Hashable]) -> float:
    """``|X ∩ Y| / min(|X|, |Y|)``; equals 1 whenever ``X ⊆ Y``."""
    cx, cy = _counter(x), _counter(y)
    smaller = min(sum(cx.values()), sum(cy.values()))
    if smaller == 0:
        return 1.0
    return multiset_intersection_size(cx, cy) / smaller


def is_multisubset(x: Iterable[Hashable], y: Iterable[Hashable]) -> bool:
    """True when every element of X occurs in Y at least as often."""
    cx, cy = _counter(x), _counter(y)
    return all(count <= cy.get(key, 0) for key, count in cx.items())
