"""Earth Mover's Distance between multisets (Section 2.2).

EMD views two multisets as mass distributions over a metric space and
measures the least total ``mass x distance`` needed to transform one into
the other.  The paper cites it as an alternative quality measure which
"trivially evaluates to 0" for subset results; it is implemented here to
complete the measure design space and because it exercises the flow
substrate from a second angle.

Two solvers:

* :func:`emd_sorted` — the classical 1-D closed form for equal-mass
  multisets of numbers (sort both, sum coordinate distances);
* :func:`emd` — the general case (``|X| <= |Y|``): a min-cost
  transportation problem where all of X's mass must land on Y, solved
  with :mod:`repro.flow`.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Hashable, Iterable, Optional

from ...flow.network import FlowNetwork
from ...flow.ssp import solve_min_cost_flow


def emd_sorted(x: Iterable[float], y: Iterable[float]) -> float:
    """1-D EMD of two equal-mass multisets of numbers.

    Sorting both sides and pairing by rank is optimal in one dimension.

    Raises
    ------
    ValueError
        If the multisets differ in size (use :func:`emd` then).
    """
    xs = sorted(x)
    ys = sorted(y)
    if len(xs) != len(ys):
        raise ValueError(
            f"emd_sorted needs equal masses, got {len(xs)} and {len(ys)}"
        )
    return float(sum(abs(a - b) for a, b in zip(xs, ys)))


def emd(
    x: Iterable[Hashable],
    y: Iterable[Hashable],
    distance: Optional[Callable[[Hashable, Hashable], int]] = None,
) -> int:
    """General EMD via min-cost flow: move all of X's mass onto Y.

    Parameters
    ----------
    x, y:
        Multisets with ``|X| <= |Y|`` (the paper's "equal or greater
        mass" convention).
    distance:
        Integer ground distance between elements; defaults to
        ``abs(a - b)`` for numeric values.  Integrality keeps the flow
        solver exact.

    Returns
    -------
    The minimum total work; ``0`` whenever X is a sub-multiset of Y.
    """
    if distance is None:
        distance = lambda a, b: abs(a - b)  # noqa: E731 - simple default

    counts_x = Counter(x)
    counts_y = Counter(y)
    mass_x = sum(counts_x.values())
    mass_y = sum(counts_y.values())
    if mass_x > mass_y:
        raise ValueError(
            f"EMD requires |X| <= |Y| (got {mass_x} > {mass_y}); swap the arguments"
        )
    if mass_x == 0:
        return 0

    network = FlowNetwork()
    x_nodes = {value: network.add_node(f"x:{value!r}", supply=count)
               for value, count in counts_x.items()}
    y_nodes = {value: network.add_node(f"y:{value!r}")
               for value, count in counts_y.items()}
    # Y's surplus capacity drains to a slack sink at zero cost.
    sink = network.add_node("slack", supply=-mass_x)

    for x_value, x_node in x_nodes.items():
        for y_value, y_node in y_nodes.items():
            cost = distance(x_value, y_value)
            if cost < 0 or cost != int(cost):
                raise ValueError(
                    f"distance must be a non-negative integer, got {cost!r} "
                    f"for ({x_value!r}, {y_value!r})"
                )
            network.add_arc(x_node, y_node, counts_x[x_value], int(cost))
    for y_value, y_node in y_nodes.items():
        network.add_arc(y_node, sink, counts_y[y_value], 0)

    result = solve_min_cost_flow(network)
    if not result.feasible:
        raise RuntimeError("EMD transportation problem was infeasible")  # pragma: no cover
    return result.cost
