"""The MAX-subset measure (Section 2.2) — the paper's principal metric.

When load shedding only ever *drops* output tuples, the approximate
result is a sub-multiset of the exact one, the symmetric difference
collapses to the count of missing tuples, and maximising quality means
maximising the produced output size.  These helpers quantify a run
against the exact result and guard the subset assumption.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Optional

from .set_measures import is_multisubset


@dataclass(frozen=True)
class MaxSubsetReport:
    """Loss accounting of one approximate join run.

    Attributes
    ----------
    exact_size / produced_size:
        Output sizes of the exact join and the approximation.
    missing:
        ``exact_size - produced_size`` — the MAX-subset error.
    fraction:
        ``produced_size / exact_size`` (1.0 when the exact size is 0) —
        the quantity the paper's "fraction of OPT/EXACT" plots use.
    """

    exact_size: int
    produced_size: int

    def __post_init__(self) -> None:
        if self.exact_size < 0 or self.produced_size < 0:
            raise ValueError("sizes must be non-negative")
        if self.produced_size > self.exact_size:
            raise ValueError(
                f"produced {self.produced_size} exceeds exact {self.exact_size}: "
                "the approximation is not a subset of the exact result"
            )

    @property
    def missing(self) -> int:
        return self.exact_size - self.produced_size

    @property
    def fraction(self) -> float:
        if self.exact_size == 0:
            return 1.0
        return self.produced_size / self.exact_size


def max_subset_report(exact_size: int, produced_size: int) -> MaxSubsetReport:
    """Build a report from two output counts."""
    return MaxSubsetReport(exact_size=exact_size, produced_size=produced_size)


def verify_subset(
    produced: Iterable[Hashable],
    exact: Iterable[Hashable],
) -> MaxSubsetReport:
    """Check the subset property on materialised results and report.

    Raises
    ------
    ValueError
        If the produced result contains a tuple (or multiplicity) absent
        from the exact result — load shedding can never create output, so
        this indicates an engine bug.
    """
    produced = list(produced)
    exact = list(exact)
    if not is_multisubset(produced, exact):
        raise ValueError("produced result is not a sub-multiset of the exact result")
    return MaxSubsetReport(exact_size=len(exact), produced_size=len(produced))


def fraction_of(reference: int, produced: int, *, default: float = 1.0) -> float:
    """``produced / reference`` guarding the zero-reference case.

    Unlike :class:`MaxSubsetReport` this allows ``produced > reference``
    (EXACT routinely exceeds OPT in the Figure 9-11 normalisation).
    """
    if reference < 0 or produced < 0:
        raise ValueError("counts must be non-negative")
    if reference == 0:
        return default
    return produced / reference


def missing_tuples(exact_size: int, produced_size: int) -> int:
    """The MAX-subset error: how many output tuples were lost."""
    return max_subset_report(exact_size, produced_size).missing
