"""Hash-partitioned sharded execution of one join run.

An equi-join output pair always has equal keys on both sides, so a
partition of the *key domain* induces a partition of the *output*: hash
every arrival to one of ``N`` key-disjoint shards, run an independent
sliding-window join per shard, and sum the results.  Tick numbering is
global — each shard sees the original arrival times with gaps where the
other shards' tuples arrived — so window expiry and warmup counting are
untouched by the split (the shard runs execute on the asynchronous
engine, which accepts empty ticks natively).

Semantics
---------
* **EXACT** — provably identical to the unsharded run.  Every shard
  gets the full lossless budget of ``2 * window`` tuples (its residents
  are a subset of the global residents, which never exceed that), no
  tuple is ever shed, and each output pair is produced in exactly the
  shard its key hashes to.  Merged counts — output *and* the expiry
  ledger — equal the unsharded engine's, tuple for tuple.
* **RAND / PROB / LIFE / FIFO (and V-variants)** — a documented
  *approximation variant*, not a replay of the unsharded run: the
  memory budget is split across shards (evenly, or frequency-weighted
  via the statistics module), so eviction pressure is local to a shard
  rather than global.  For a fixed ``shards=N`` the result is
  bit-identical regardless of how many worker processes execute the
  shards (each shard derives its policy RNG from ``(seed, shard)`` and
  the merge is deterministic), but changing ``N`` changes the result.

This module is pure planning and merging — it never runs an engine and
has no dependency on :mod:`repro.api` (the api layer composes the two;
:mod:`repro.runtime.cells` ships :class:`ShardCell` tasks to workers).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

from ..streams.tuples import StreamPair
from .results import BaseRunResult, DropBreakdown, empty_side_drop_counts

#: Smallest per-shard budget: one resident per side.
MIN_SHARD_BUDGET = 2


def shard_of(key: Hashable, shards: int) -> int:
    """Deterministic shard of a join key.

    Integer keys partition by residue (cheap, and spreads the dense
    synthetic domains evenly); everything else hashes its string form
    through ``crc32`` — stable across processes and Python runs, unlike
    the builtin ``hash``.
    """
    if isinstance(key, int) and not isinstance(key, bool):
        return key % shards
    return zlib.crc32(str(key).encode("utf-8")) % shards


#: Shared batch for a tick with no arrivals on a shard.  Most ticks of a
#: shard's view are empty (a shard sees ~1/N of the arrivals), and the
#: engines only ever read batches, so one immutable tuple serves them
#: all — ``shard_batches`` allocates O(arrivals) instead of O(ticks).
EMPTY_BATCH: tuple = ()


def shard_batches(
    pair: StreamPair, shard: int, shards: int
) -> tuple[list, list]:
    """One shard's view of the workload, as per-tick arrival batches.

    Tick ``t`` holds ``(pair.r[t],)`` when that key belongs to the shard
    and the shared :data:`EMPTY_BATCH` otherwise (likewise for S),
    preserving global time.  This is already the batched execution
    unit: the asynchronous engine consumes per-tick batches natively,
    and its policy-less fast lanes bulk-process each one.

    ``pair`` may also be a :class:`~repro.streams.sources.PairSource`
    (the adapter unwraps to its pair); incremental sources shard through
    :func:`shard_source` instead, which never materializes the ticks.
    """
    from ..streams.sources import PairSource

    if isinstance(pair, PairSource):
        pair = pair.pair
    r_batches = [
        (key,) if shard_of(key, shards) == shard else EMPTY_BATCH
        for key in pair.r
    ]
    s_batches = [
        (key,) if shard_of(key, shards) == shard else EMPTY_BATCH
        for key in pair.s
    ]
    return r_batches, s_batches


@dataclass(frozen=True)
class ShardedSource:
    """One shard's incremental view of a :class:`~repro.streams.sources.Source`.

    Wraps the source without materializing it: iteration re-derives the
    filter per tick, keeping each batch's keys whose hash lands on this
    shard (empty ticks share :data:`EMPTY_BATCH`).  Restartable and
    picklable exactly when the wrapped source is — which the Source
    contract guarantees — so shard cells ship it to worker processes
    and retries simply restart it.
    """

    source: object
    shard: int
    shards: int

    @property
    def length(self) -> Optional[int]:
        return self.source.length

    @property
    def name(self) -> str:
        base = getattr(self.source, "name", "") or "source"
        return f"{base}[shard {self.shard}/{self.shards}]"

    def __iter__(self):
        shard = self.shard
        shards = self.shards
        for r_batch, s_batch in self.source:
            r_mine = (
                tuple(key for key in r_batch if shard_of(key, shards) == shard)
                if r_batch
                else EMPTY_BATCH
            )
            s_mine = (
                tuple(key for key in s_batch if shard_of(key, shards) == shard)
                if s_batch
                else EMPTY_BATCH
            )
            yield (r_mine or EMPTY_BATCH, s_mine or EMPTY_BATCH)


def shard_source(source, shard: int, shards: int) -> ShardedSource:
    """One shard's view of a source (see :class:`ShardedSource`)."""
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if not 0 <= shard < shards:
        raise ValueError(f"shard must be in [0, {shards}), got {shard}")
    return ShardedSource(source, shard, shards)


def shard_weights(pair: StreamPair, shards: int) -> list[int]:
    """Arrival mass per shard (both streams), for weighted budget splits."""
    weights = [0] * shards
    for key in pair.r:
        weights[shard_of(key, shards)] += 1
    for key in pair.s:
        weights[shard_of(key, shards)] += 1
    return weights


def shard_input_counts(
    pair: StreamPair, shard: int, shards: int
) -> tuple[int, int]:
    """Per-side input tuples belonging to one shard: ``(r_count, s_count)``.

    This is the quantity a lost shard writes into the ``lost_shard``
    drop ledger — every input tuple the abandoned sub-join would have
    seen, attributed as shed by the system.
    """
    r_count = sum(1 for key in pair.r if shard_of(key, shards) == shard)
    s_count = sum(1 for key in pair.s if shard_of(key, shards) == shard)
    return r_count, s_count


def shard_exact_output(
    pair: StreamPair, shard: int, shards: int, window: int, *, count_from: int = 0
) -> int:
    """Exact join output produced by one shard's key slice.

    An equi-join output pair has one key, so the global exact output
    partitions cleanly by ``shard_of(key)`` — summing this over all
    shards gives :func:`~repro.streams.tuples.exact_join_size`.  Used to
    reconcile a degraded EXACT run: merged output plus the lost shards'
    exact outputs must equal the fault-free total.
    """
    from ..streams.tuples import iterate_exact_join

    return sum(
        1
        for out in iterate_exact_join(pair, window, count_from=count_from)
        if shard_of(out.key, shards) == shard
    )


def _even_budget(amount: int) -> int:
    """Round down to an even number, floored at :data:`MIN_SHARD_BUDGET`.

    Even budgets keep the fixed M/2 + M/2 per-side split exact inside
    every shard.
    """
    return max(MIN_SHARD_BUDGET, amount - (amount % 2))


@dataclass(frozen=True)
class ShardPlan:
    """How one run splits into shards: the count and per-shard budgets."""

    shards: int
    budgets: tuple
    weighted: bool = False

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if len(self.budgets) != self.shards:
            raise ValueError(
                f"got {len(self.budgets)} budgets for {self.shards} shards"
            )
        if any(budget < MIN_SHARD_BUDGET for budget in self.budgets):
            raise ValueError(
                f"every shard budget must be >= {MIN_SHARD_BUDGET}, "
                f"got {self.budgets}"
            )


def plan_shards(
    memory: int,
    shards: int,
    *,
    lossless_budget: Optional[int] = None,
    weights: Optional[Sequence[int]] = None,
) -> ShardPlan:
    """Build the :class:`ShardPlan` for a total budget of ``memory``.

    ``lossless_budget`` (the EXACT case) gives *every* shard that budget
    — a shard's residents are a subset of the global window, so the
    unsharded lossless budget is lossless per shard too.  Otherwise the
    budget splits evenly, or proportionally to ``weights`` (per-shard
    arrival mass) when given; each share is rounded down to an even
    number and floored at :data:`MIN_SHARD_BUDGET`, so heavily skewed
    weights can make the floors push the aggregate slightly above ``M``.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if lossless_budget is not None:
        return ShardPlan(shards, (lossless_budget,) * shards, weighted=False)
    if weights is None:
        return ShardPlan(
            shards, (_even_budget(memory // shards),) * shards, weighted=False
        )
    if len(weights) != shards:
        raise ValueError(f"got {len(weights)} weights for {shards} shards")
    total = sum(weights)
    if total <= 0:
        return plan_shards(memory, shards)
    budgets = tuple(
        _even_budget(memory * weight // total) for weight in weights
    )
    return ShardPlan(shards, budgets, weighted=True)


@dataclass
class ShardedRunResult(BaseRunResult):
    """Deterministic merge of one run's per-shard results.

    ``per_shard`` keeps each shard's engine-agnostic
    :class:`~repro.core.results.RunSummary` (the merged totals are their
    sums); ``metrics`` is the fold of every shard's snapshot through
    :meth:`~repro.obs.MetricsRegistry.merge_snapshot` when the run was
    instrumented.

    A degraded merge (retry exhaustion with ``degrade=True``) lists the
    abandoned shard indices in ``lost_shards`` (their ``per_shard``
    entries are ``None``), attributes their input tuples under the
    ``lost_shard`` ledger reason, and — for EXACT runs, where it is
    computable — reports the forgone output in ``lost_output`` so
    ``output_count + lost_output`` reconciles to the fault-free total.

    A supervised run records ``attempts`` (per-shard attempt counts,
    aligned with ``per_shard``; retries are ``attempt - 1``), and a
    telemetry-instrumented one attaches ``timeline`` — the merged
    supervisor/worker span timeline (see :mod:`repro.obs.spans`).
    """

    output_count: int
    total_output_count: int
    length: int
    window: int
    memory: int
    warmup: int
    policy_name: str
    plan: ShardPlan = None  # type: ignore[assignment]
    per_shard: tuple = ()
    drop_counts: dict = None  # type: ignore[assignment]
    metrics: Optional[dict] = None
    lost_shards: tuple = ()
    lost_output: Optional[int] = None
    attempts: tuple = ()
    timeline: Optional[list] = None

    engine_kind = "sharded"

    @property
    def shards(self) -> int:
        return self.plan.shards

    def drop_breakdown(self) -> DropBreakdown:
        return DropBreakdown.from_side_counts(self.drop_counts)


def merge_shard_results(
    results: Sequence,
    plan: ShardPlan,
    *,
    length: int,
    window: int,
    memory: int,
    warmup: int,
    lost: Sequence[int] = (),
    lost_inputs: Optional[Sequence[tuple]] = None,
    lost_output: Optional[int] = None,
    attempts: Optional[Sequence[int]] = None,
) -> ShardedRunResult:
    """Fold per-shard :class:`~repro.core.async_engine.AsyncRunResult`\\ s.

    Purely additive and order-deterministic: counts and the per-side
    drop ledger sum; metrics snapshots merge shard 0 first.  The merged
    totals therefore equal the sums of ``per_shard`` by construction —
    the invariant the partition tests pin.

    ``lost`` names shard indices abandoned after retry exhaustion; their
    ``results`` entries are ignored (errors or ``None``).  ``lost_inputs``
    aligns with ``lost`` and carries each lost shard's per-side input
    counts (see :func:`shard_input_counts`), booked under the
    ``lost_shard`` ledger reason and the ``engine.drops`` /
    ``runtime.lost_shards`` metrics counters.  At least one shard must
    survive — with nothing to merge there is no degraded result to
    report, only the failure itself.

    ``attempts`` (one count per shard, from
    ``parallel_map(attempts_out=...)``) lands on the result and — when
    the run was instrumented — in the merged snapshot as per-shard
    ``runtime.attempts`` / ``runtime.retries`` counters, so ``--metrics
    json|csv`` reports how hard each shard fought, not just its final
    outcome.
    """
    if len(results) != plan.shards:
        raise ValueError(
            f"got {len(results)} shard results for {plan.shards} shards"
        )
    lost = tuple(sorted(set(lost)))
    if any(shard < 0 or shard >= plan.shards for shard in lost):
        raise ValueError(f"lost shard indices out of range: {lost}")
    if lost_inputs is not None and len(lost_inputs) != len(lost):
        raise ValueError(
            f"got {len(lost_inputs)} lost_inputs for {len(lost)} lost shards"
        )
    if attempts is not None and len(attempts) != plan.shards:
        raise ValueError(
            f"got {len(attempts)} attempt counts for {plan.shards} shards"
        )
    lost_set = set(lost)
    survivors = [
        result for shard, result in enumerate(results) if shard not in lost_set
    ]
    if not survivors:
        raise ValueError("all shards were lost; nothing to merge")

    drop_counts = empty_side_drop_counts()
    for result in survivors:
        for side, reasons in result.drop_counts.items():
            for reason, count in reasons.items():
                drop_counts[side][reason] += count
    if lost:
        from .results import DROP_LOST

        lost_r = lost_s = 0
        if lost_inputs is not None:
            lost_r = sum(entry[0] for entry in lost_inputs)
            lost_s = sum(entry[1] for entry in lost_inputs)
        drop_counts["R"][DROP_LOST] = lost_r
        drop_counts["S"][DROP_LOST] = lost_s

    snapshots = [r.metrics for r in survivors if r.metrics is not None]
    merged_metrics = None
    if snapshots:
        from ..obs import MetricsRegistry

        registry = MetricsRegistry()
        for snapshot in snapshots:
            registry.merge_snapshot(snapshot)
        if lost:
            from .results import DROP_LOST

            registry.counter("runtime.lost_shards").inc(len(lost))
            registry.counter(
                "engine.drops", side="R", reason=DROP_LOST
            ).inc(drop_counts["R"][DROP_LOST])
            registry.counter(
                "engine.drops", side="S", reason=DROP_LOST
            ).inc(drop_counts["S"][DROP_LOST])
        if attempts is not None:
            for shard, count in enumerate(attempts):
                registry.counter(
                    "runtime.attempts", shard=str(shard)
                ).inc(count)
                if count > 1:
                    registry.counter(
                        "runtime.retries", shard=str(shard)
                    ).inc(count - 1)
        merged_metrics = registry.snapshot()

    per_shard = tuple(
        None if shard in lost_set else result.summary()
        for shard, result in enumerate(results)
    )
    return ShardedRunResult(
        output_count=sum(r.output_count for r in survivors),
        total_output_count=sum(r.total_output_count for r in survivors),
        length=length,
        window=window,
        memory=memory,
        warmup=warmup,
        policy_name=survivors[0].policy_name,
        plan=plan,
        per_shard=per_shard,
        drop_counts=drop_counts,
        metrics=merged_metrics,
        lost_shards=lost,
        lost_output=lost_output,
        attempts=tuple(attempts) if attempts is not None else (),
    )


def shard_seed(seed: int, shard: int) -> int:
    """Per-shard RNG seed: deterministic in ``(seed, shard)`` only.

    Shard results must not depend on worker scheduling, so each shard's
    policy randomness derives from the run seed and its own index.
    """
    return seed * 1_000_003 + shard


__all__ = [
    "MIN_SHARD_BUDGET",
    "ShardPlan",
    "ShardedRunResult",
    "ShardedSource",
    "merge_shard_results",
    "plan_shards",
    "shard_batches",
    "shard_exact_output",
    "shard_input_counts",
    "shard_of",
    "shard_seed",
    "shard_source",
    "shard_weights",
]
