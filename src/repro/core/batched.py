"""Count-only EXACT execution lanes for the batched fast path.

Under the EXACT configuration (no shedding policy, lossless budget
``M >= 2w``) the sliding-window join needs none of the per-tuple
machinery the engines carry for policies: no :class:`TupleRecord`
allocation, no slot arrays, no per-key deques, no eviction contests.
Everything the result reports is reachable with dictionary count
arithmetic:

* probes — ``matches(t) = s_counts[r(t)] + r_counts[s(t)]`` (plus the
  simultaneous pair), where the count dicts track *resident tuples per
  key*;
* expiry — the synchronous model admits exactly one tuple per side per
  tick, so the tuple expiring at tick ``t`` is exactly the key that
  arrived at ``t - w``: one dict decrement per side, no arrival deque;
* the drop ledger — EXACT never rejects or evicts, and each side
  expires exactly ``max(0, length - w)`` tuples;
* survival — every tuple departs at its natural ``arrival + w - 1``
  (both the tuples that expire mid-run and the ones still resident at
  stream end);
* occupancy — after tick ``t``'s admissions each side holds exactly
  ``min(t + 1, w)`` residents.

The lanes here are *gated*, not general: callers must verify the
configuration cannot overflow (``capacity >= 2 * window`` for the
synchronous engine) or must pass capacity bounds for the lane to check
(the asynchronous lane, where bursts can overflow).  A regression gate
(``benchmarks/bench_batch.py``) pins the lane output bit-identical to
the per-tuple engines.

The shedding policies have chunk lanes too: :mod:`.batched_policies`
(re-exported here) carries ``rand_chunk_run`` / ``prob_chunk_run`` /
``life_chunk_run``, which keep the same per-key count arithmetic for
probes and add flat, allocation-free replicas of the eviction contests.
Their regression gate is ``benchmarks/bench_policy_batch.py``.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Optional, Sequence

from ..streams.batches import StreamChunk
from .batched_policies import (
    LaneTotals,
    lane_kind_for_policies,
    life_chunk_run,
    prob_chunk_run,
    rand_chunk_run,
)

__all__ = [
    "LaneTotals",
    "exact_chunk_counts",
    "exact_stream_counts",
    "exact_tick_counts",
    "lane_kind_for_policies",
    "life_chunk_run",
    "prob_chunk_run",
    "rand_chunk_run",
]


def exact_chunk_counts(
    chunks: Iterable[StreamChunk],
    window: int,
    warmup: int,
    *,
    count_simultaneous: bool = True,
) -> tuple[int, int, int, int]:
    """Run the synchronous EXACT join over columnar chunks.

    Returns ``(output, total_output, simultaneous_total, length)`` with
    exactly the semantics of ``JoinEngine._run_fast`` under a ``None``
    policy: per tick — expire the two ``t - window`` arrivals, probe
    both newcomers against the opposite counts (before either same-tick
    insert), count the simultaneous pair, then insert both.

    The caller guarantees the lossless budget (``capacity >= 2 *
    window``), so no capacity checks appear in the loop.
    """
    r_counts: dict = {}
    s_counts: dict = {}
    # Flat key history, extended chunk-wise *before* the chunk's ticks
    # run: expiry at tick t reads index t - window, which is always
    # behind the loop cursor, and probes never read the history.
    r_hist: list = []
    s_hist: list = []

    output = 0
    total_output = 0
    simultaneous_total = 0
    length = 0

    r_get = r_counts.get
    s_get = s_counts.get

    for chunk in chunks:
        r_keys = chunk.r_list()
        s_keys = chunk.s_list()
        base = chunk.start
        r_hist.extend(r_keys)
        s_hist.extend(s_keys)
        for i in range(chunk.length):
            t = base + i
            # 1. expiry: the synchronous model retires exactly the
            #    arrival at t - window on each side.
            old = t - window
            if old >= 0:
                key = r_hist[old]
                remaining = r_counts[key] - 1
                if remaining:
                    r_counts[key] = remaining
                else:
                    del r_counts[key]
                key = s_hist[old]
                remaining = s_counts[key] - 1
                if remaining:
                    s_counts[key] = remaining
                else:
                    del s_counts[key]

            r_key = r_keys[i]
            s_key = s_keys[i]

            # 2. probes (before either same-tick insert).
            matched = s_get(r_key, 0) + r_get(s_key, 0)
            if count_simultaneous and r_key == s_key:
                matched += 1
                simultaneous_total += 1
            total_output += matched
            if t >= warmup:
                output += matched

            # 3. admissions (no contest possible at lossless budget).
            r_counts[r_key] = r_get(r_key, 0) + 1
            s_counts[s_key] = s_get(s_key, 0) + 1
        length = base + chunk.length

    return output, total_output, simultaneous_total, length


def exact_tick_counts(
    r_batches: Sequence[Sequence],
    s_batches: Sequence[Sequence],
    window: int,
    warmup: int,
    *,
    capacity: int,
    variable: bool,
    overflow_error: type = RuntimeError,
) -> tuple[int, int, int, int, int]:
    """Run the asynchronous EXACT join over per-tick arrival batches.

    Semantics of ``AsyncJoinEngine.run`` in time-window mode with a
    ``None`` policy: per tick — expire ``arrival <= t - window`` on both
    sides, then process the R batch and then the S batch, each tuple
    probing the opposite counts when processed (so a same-tick pair is
    found by the later-processed partner, and R arrivals of tick ``t``
    are visible to tick ``t``'s S probes).

    Unlike the synchronous lane, bursts can overflow the budget, so
    inserts check capacity exactly where :meth:`JoinKernel.insert`
    would and raise ``overflow_error`` with the kernel's message.

    Returns ``(output, total_output, arrivals, expired_r, expired_s)``.
    """
    r_counts: dict = {}
    s_counts: dict = {}
    # Per-side expiry queues of (arrival, key); arrivals enter in tick
    # order, so expiry only inspects the front.
    r_queue: deque = deque()
    s_queue: deque = deque()

    output = 0
    total_output = 0
    arrivals = 0
    expired_r = 0
    expired_s = 0
    r_size = 0
    s_size = 0

    r_get = r_counts.get
    s_get = s_counts.get
    half = capacity // 2

    ticks = len(r_batches)
    for t in range(ticks):
        horizon = t - window
        if horizon >= 0:  # earliest arrival is 0; skip warm-start ticks
            while r_queue and r_queue[0][0] <= horizon:
                _, key = r_queue.popleft()
                remaining = r_counts[key] - 1
                if remaining:
                    r_counts[key] = remaining
                else:
                    del r_counts[key]
                expired_r += 1
                r_size -= 1
            while s_queue and s_queue[0][0] <= horizon:
                _, key = s_queue.popleft()
                remaining = s_counts[key] - 1
                if remaining:
                    s_counts[key] = remaining
                else:
                    del s_counts[key]
                expired_s += 1
                s_size -= 1

        batch = r_batches[t]
        if batch:
            for key in batch:
                arrivals += 1
                matches = s_get(key, 0)
                total_output += matches
                if t >= warmup:
                    output += matches
                if (r_size + s_size >= capacity) if variable else (r_size >= half):
                    raise overflow_error(
                        f"memory overflow at t={t} with no shedding policy "
                        f"(capacity {capacity})"
                    )
                r_counts[key] = r_get(key, 0) + 1
                r_queue.append((t, key))
                r_size += 1
        batch = s_batches[t]
        if batch:
            for key in batch:
                arrivals += 1
                matches = r_get(key, 0)
                total_output += matches
                if t >= warmup:
                    output += matches
                if (r_size + s_size >= capacity) if variable else (s_size >= half):
                    raise overflow_error(
                        f"memory overflow at t={t} with no shedding policy "
                        f"(capacity {capacity})"
                    )
                s_counts[key] = s_get(key, 0) + 1
                s_queue.append((t, key))
                s_size += 1

    return output, total_output, arrivals, expired_r, expired_s


def exact_stream_counts(
    events: Iterable,
    window: int,
    warmup: int,
    *,
    capacity: int,
    variable: bool,
    count_simultaneous: bool = True,
    overflow_error: type = RuntimeError,
    until: Optional[int] = None,
    stop: Optional[Callable[[], bool]] = None,
    on_progress: Optional[Callable] = None,
    progress_every: int = 0,
) -> tuple[int, int, int, int, int, int]:
    """Run the EXACT join incrementally over a source's event iterator.

    The bounded-memory analogue of :func:`exact_tick_counts`: ``events``
    yields per-tick ``(r_keys, s_keys)`` arrival batches (a
    :class:`repro.streams.sources.Source` iterator), which may be
    unbounded — working state is two count dicts plus two expiry queues,
    all bounded by the window contents, never by stream length.  This is
    the lane ``make soak`` exercises.

    Counting is order-equivalent for both engines' EXACT semantics: R
    arrivals are probed against resident S then admitted before the S
    batch probes, so a same-tick pair is counted once — exactly the
    asynchronous per-tuple order, and exactly the synchronous engine's
    probes-plus-top-path total.  ``count_simultaneous=False`` (a
    synchronous-engine knob) subtracts the same-tick pairs.

    ``until`` bounds the tick count, ``stop()`` is polled each tick for
    cooperative shutdown (``repro serve``'s SIGINT path), and
    ``on_progress(t, output, total_output, arrivals, expired_r,
    expired_s)`` fires after every ``progress_every`` ticks — the
    rolling-summary hook.

    Returns ``(output, total_output, arrivals, expired_r, expired_s,
    ticks)``.
    """
    r_counts: dict = {}
    s_counts: dict = {}
    r_queue: deque = deque()
    s_queue: deque = deque()

    output = 0
    total_output = 0
    arrivals = 0
    expired_r = 0
    expired_s = 0
    r_size = 0
    s_size = 0
    ticks = 0

    r_get = r_counts.get
    s_get = s_counts.get
    half = capacity // 2

    for t, (r_batch, s_batch) in enumerate(events):
        if until is not None and t >= until:
            break
        if stop is not None and stop():
            break
        horizon = t - window
        if horizon >= 0:
            while r_queue and r_queue[0][0] <= horizon:
                _, key = r_queue.popleft()
                remaining = r_counts[key] - 1
                if remaining:
                    r_counts[key] = remaining
                else:
                    del r_counts[key]
                expired_r += 1
                r_size -= 1
            while s_queue and s_queue[0][0] <= horizon:
                _, key = s_queue.popleft()
                remaining = s_counts[key] - 1
                if remaining:
                    s_counts[key] = remaining
                else:
                    del s_counts[key]
                expired_s += 1
                s_size -= 1

        if r_batch:
            for key in r_batch:
                arrivals += 1
                matches = s_get(key, 0)
                total_output += matches
                if t >= warmup:
                    output += matches
                if (r_size + s_size >= capacity) if variable else (r_size >= half):
                    raise overflow_error(
                        f"memory overflow at t={t} with no shedding policy "
                        f"(capacity {capacity})"
                    )
                r_counts[key] = r_get(key, 0) + 1
                r_queue.append((t, key))
                r_size += 1
        if s_batch:
            for key in s_batch:
                arrivals += 1
                matches = r_get(key, 0)
                total_output += matches
                if t >= warmup:
                    output += matches
                if (r_size + s_size >= capacity) if variable else (s_size >= half):
                    raise overflow_error(
                        f"memory overflow at t={t} with no shedding policy "
                        f"(capacity {capacity})"
                    )
                s_counts[key] = s_get(key, 0) + 1
                s_queue.append((t, key))
                s_size += 1
        if not count_simultaneous and r_batch and s_batch:
            # The synchronous engine's top path is optional; the insert
            # order above already counted every same-tick pair, so take
            # them back out.
            tick_counts: dict = {}
            for key in r_batch:
                tick_counts[key] = tick_counts.get(key, 0) + 1
            cross = sum(tick_counts.get(key, 0) for key in s_batch)
            total_output -= cross
            if t >= warmup:
                output -= cross
        ticks = t + 1

        if progress_every and ticks % progress_every == 0 and on_progress is not None:
            on_progress(t, output, total_output, arrivals, expired_r, expired_s)

    return output, total_output, arrivals, expired_r, expired_s, ticks
