"""EXACT: the unconstrained sliding-window join reference.

With ``M = 2w`` the memory always holds the full window and no shedding
occurs; the output is the exact join result the paper's EXACT curves
plot.  Implemented as an engine run without a policy so that warmup
handling and output accounting are shared with every approximation.
"""

from __future__ import annotations

from typing import Optional

from ..streams.tuples import StreamPair
from .engine import EngineConfig, JoinEngine, RunResult


def run_exact(
    pair: StreamPair,
    window: int,
    *,
    warmup: Optional[int] = None,
    materialize: bool = False,
    count_simultaneous: bool = True,
) -> RunResult:
    """Run the exact sliding-window join over a finite stream pair.

    Parameters
    ----------
    pair:
        The input streams.
    window:
        Window size ``w``; the engine is given the paper's exact-join
        budget ``M = 2w``.
    warmup:
        Output-counting start; defaults to ``2 * window``.
    materialize:
        Also collect the concrete output pairs (for the set-similarity
        metrics and the archive refinement example).
    """
    config = EngineConfig(
        window=window,
        memory=2 * window,
        warmup=warmup,
        materialize=materialize,
        count_simultaneous=count_simultaneous,
        track_survival=False,
    )
    return JoinEngine(config, policy=None).run(pair)
