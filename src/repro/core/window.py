"""Sliding-window semantics.

The paper defines time-based windows with one arrival per stream per time
unit: at time ``t`` the window contains every tuple with arrival ``i``
such that ``t - w < i <= t``.  These helpers centralise the boundary
arithmetic so that the engine, the exact join, OPT-offline, and the
Archive-metric all agree on inclusion/expiry down to the off-by-one.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WindowSpec:
    """A sliding-window join specification.

    Attributes
    ----------
    size:
        Window length ``w`` in time units (positive).
    """

    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"window size must be positive, got {self.size}")

    def contains(self, arrival: int, now: int) -> bool:
        """Is a tuple that arrived at ``arrival`` in the window at ``now``?"""
        return now - self.size < arrival <= now

    def expiry_time(self, arrival: int) -> int:
        """First instant at which the tuple is *outside* the window."""
        return arrival + self.size

    def last_event_seen(self, arrival: int) -> int:
        """Latest arrival instant on the other stream this tuple can match.

        A tuple arriving at ``i`` is still present when the tuples of time
        ``i + w - 1`` arrive, but has expired by time ``i + w``.
        """
        return arrival + self.size - 1

    def joins_with(self, arrival_a: int, arrival_b: int) -> bool:
        """Do two arrivals co-occur in some window instance?

        True iff ``|a - b| < w``: the earlier tuple is still in the window
        when the later one arrives.
        """
        return abs(arrival_a - arrival_b) < self.size

    def exact_memory_requirement(self) -> int:
        """Tuples of state needed for an exact join: ``2 w``.

        (Strictly ``2w - 2`` suffice thanks to the input buffer cells —
        footnote 1 of the paper — but ``2w`` is the figure the paper's
        EXACT curves use.)
        """
        return 2 * self.size

    def default_warmup(self) -> int:
        """The paper's warmup: twice the window (Section 4.1)."""
        return 2 * self.size
